file(REMOVE_RECURSE
  "CMakeFiles/fig21_link_speed.dir/fig21_link_speed.cpp.o"
  "CMakeFiles/fig21_link_speed.dir/fig21_link_speed.cpp.o.d"
  "fig21_link_speed"
  "fig21_link_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_link_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
