# Empty dependencies file for fig21_link_speed.
# This may be replaced when dependencies are built.
