# Empty dependencies file for fig05_buffer_breakdown.
# This may be replaced when dependencies are built.
