# Empty dependencies file for fig01_queue_buildup.
# This may be replaced when dependencies are built.
