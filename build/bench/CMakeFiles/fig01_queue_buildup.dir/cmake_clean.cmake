file(REMOVE_RECURSE
  "CMakeFiles/fig01_queue_buildup.dir/fig01_queue_buildup.cpp.o"
  "CMakeFiles/fig01_queue_buildup.dir/fig01_queue_buildup.cpp.o.d"
  "fig01_queue_buildup"
  "fig01_queue_buildup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_queue_buildup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
