file(REMOVE_RECURSE
  "CMakeFiles/fig09_credit_queue.dir/fig09_credit_queue.cpp.o"
  "CMakeFiles/fig09_credit_queue.dir/fig09_credit_queue.cpp.o.d"
  "fig09_credit_queue"
  "fig09_credit_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_credit_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
