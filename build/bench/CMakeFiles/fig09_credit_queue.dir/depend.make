# Empty dependencies file for fig09_credit_queue.
# This may be replaced when dependencies are built.
