file(REMOVE_RECURSE
  "CMakeFiles/ext_rdma_comparison.dir/ext_rdma_comparison.cpp.o"
  "CMakeFiles/ext_rdma_comparison.dir/ext_rdma_comparison.cpp.o.d"
  "ext_rdma_comparison"
  "ext_rdma_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rdma_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
