# Empty compiler generated dependencies file for ext_rdma_comparison.
# This may be replaced when dependencies are built.
