file(REMOVE_RECURSE
  "CMakeFiles/fig02_convergence_naive.dir/fig02_convergence_naive.cpp.o"
  "CMakeFiles/fig02_convergence_naive.dir/fig02_convergence_naive.cpp.o.d"
  "fig02_convergence_naive"
  "fig02_convergence_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_convergence_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
