# Empty dependencies file for fig02_convergence_naive.
# This may be replaced when dependencies are built.
