# Empty dependencies file for fig10_parking_lot.
# This may be replaced when dependencies are built.
