file(REMOVE_RECURSE
  "CMakeFiles/fig10_parking_lot.dir/fig10_parking_lot.cpp.o"
  "CMakeFiles/fig10_parking_lot.dir/fig10_parking_lot.cpp.o.d"
  "fig10_parking_lot"
  "fig10_parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
