file(REMOVE_RECURSE
  "CMakeFiles/tab03_queue_occupancy.dir/tab03_queue_occupancy.cpp.o"
  "CMakeFiles/tab03_queue_occupancy.dir/tab03_queue_occupancy.cpp.o.d"
  "tab03_queue_occupancy"
  "tab03_queue_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_queue_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
