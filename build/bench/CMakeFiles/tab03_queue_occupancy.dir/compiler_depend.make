# Empty compiler generated dependencies file for tab03_queue_occupancy.
# This may be replaced when dependencies are built.
