file(REMOVE_RECURSE
  "CMakeFiles/fig16_convergence_speed.dir/fig16_convergence_speed.cpp.o"
  "CMakeFiles/fig16_convergence_speed.dir/fig16_convergence_speed.cpp.o.d"
  "fig16_convergence_speed"
  "fig16_convergence_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_convergence_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
