# Empty compiler generated dependencies file for fig16_convergence_speed.
# This may be replaced when dependencies are built.
