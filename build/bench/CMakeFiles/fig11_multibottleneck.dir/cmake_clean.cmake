file(REMOVE_RECURSE
  "CMakeFiles/fig11_multibottleneck.dir/fig11_multibottleneck.cpp.o"
  "CMakeFiles/fig11_multibottleneck.dir/fig11_multibottleneck.cpp.o.d"
  "fig11_multibottleneck"
  "fig11_multibottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_multibottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
