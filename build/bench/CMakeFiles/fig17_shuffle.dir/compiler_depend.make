# Empty compiler generated dependencies file for fig17_shuffle.
# This may be replaced when dependencies are built.
