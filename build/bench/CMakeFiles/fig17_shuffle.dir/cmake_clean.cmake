file(REMOVE_RECURSE
  "CMakeFiles/fig17_shuffle.dir/fig17_shuffle.cpp.o"
  "CMakeFiles/fig17_shuffle.dir/fig17_shuffle.cpp.o.d"
  "fig17_shuffle"
  "fig17_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
