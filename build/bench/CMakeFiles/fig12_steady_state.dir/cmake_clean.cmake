file(REMOVE_RECURSE
  "CMakeFiles/fig12_steady_state.dir/fig12_steady_state.cpp.o"
  "CMakeFiles/fig12_steady_state.dir/fig12_steady_state.cpp.o.d"
  "fig12_steady_state"
  "fig12_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
