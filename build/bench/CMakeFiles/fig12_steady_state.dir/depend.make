# Empty dependencies file for fig12_steady_state.
# This may be replaced when dependencies are built.
