file(REMOVE_RECURSE
  "CMakeFiles/fig15_flow_scalability.dir/fig15_flow_scalability.cpp.o"
  "CMakeFiles/fig15_flow_scalability.dir/fig15_flow_scalability.cpp.o.d"
  "fig15_flow_scalability"
  "fig15_flow_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_flow_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
