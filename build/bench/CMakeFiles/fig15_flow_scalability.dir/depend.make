# Empty dependencies file for fig15_flow_scalability.
# This may be replaced when dependencies are built.
