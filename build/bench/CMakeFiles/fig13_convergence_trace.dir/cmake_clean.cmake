file(REMOVE_RECURSE
  "CMakeFiles/fig13_convergence_trace.dir/fig13_convergence_trace.cpp.o"
  "CMakeFiles/fig13_convergence_trace.dir/fig13_convergence_trace.cpp.o.d"
  "fig13_convergence_trace"
  "fig13_convergence_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_convergence_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
