# Empty compiler generated dependencies file for fig13_convergence_trace.
# This may be replaced when dependencies are built.
