file(REMOVE_RECURSE
  "CMakeFiles/fig20_credit_waste.dir/fig20_credit_waste.cpp.o"
  "CMakeFiles/fig20_credit_waste.dir/fig20_credit_waste.cpp.o.d"
  "fig20_credit_waste"
  "fig20_credit_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_credit_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
