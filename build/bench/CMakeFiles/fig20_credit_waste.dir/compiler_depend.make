# Empty compiler generated dependencies file for fig20_credit_waste.
# This may be replaced when dependencies are built.
