file(REMOVE_RECURSE
  "CMakeFiles/fig19_fct_realistic.dir/fig19_fct_realistic.cpp.o"
  "CMakeFiles/fig19_fct_realistic.dir/fig19_fct_realistic.cpp.o.d"
  "fig19_fct_realistic"
  "fig19_fct_realistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_fct_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
