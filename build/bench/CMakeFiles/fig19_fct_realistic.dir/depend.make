# Empty dependencies file for fig19_fct_realistic.
# This may be replaced when dependencies are built.
