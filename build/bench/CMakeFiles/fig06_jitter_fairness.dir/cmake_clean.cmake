file(REMOVE_RECURSE
  "CMakeFiles/fig06_jitter_fairness.dir/fig06_jitter_fairness.cpp.o"
  "CMakeFiles/fig06_jitter_fairness.dir/fig06_jitter_fairness.cpp.o.d"
  "fig06_jitter_fairness"
  "fig06_jitter_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_jitter_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
