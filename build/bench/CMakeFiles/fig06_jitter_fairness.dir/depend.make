# Empty dependencies file for fig06_jitter_fairness.
# This may be replaced when dependencies are built.
