file(REMOVE_RECURSE
  "CMakeFiles/tab01_buffer_bounds.dir/tab01_buffer_bounds.cpp.o"
  "CMakeFiles/tab01_buffer_bounds.dir/tab01_buffer_bounds.cpp.o.d"
  "tab01_buffer_bounds"
  "tab01_buffer_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_buffer_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
