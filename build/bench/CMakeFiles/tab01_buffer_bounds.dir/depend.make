# Empty dependencies file for tab01_buffer_bounds.
# This may be replaced when dependencies are built.
