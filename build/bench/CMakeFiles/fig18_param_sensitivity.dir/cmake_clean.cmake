file(REMOVE_RECURSE
  "CMakeFiles/fig18_param_sensitivity.dir/fig18_param_sensitivity.cpp.o"
  "CMakeFiles/fig18_param_sensitivity.dir/fig18_param_sensitivity.cpp.o.d"
  "fig18_param_sensitivity"
  "fig18_param_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_param_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
