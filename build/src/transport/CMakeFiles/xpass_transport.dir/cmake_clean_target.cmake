file(REMOVE_RECURSE
  "libxpass_transport.a"
)
