# Empty compiler generated dependencies file for xpass_transport.
# This may be replaced when dependencies are built.
