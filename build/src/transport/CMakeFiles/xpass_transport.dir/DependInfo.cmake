
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/cubic.cpp" "src/transport/CMakeFiles/xpass_transport.dir/cubic.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/cubic.cpp.o.d"
  "/root/repo/src/transport/dcqcn.cpp" "src/transport/CMakeFiles/xpass_transport.dir/dcqcn.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/dcqcn.cpp.o.d"
  "/root/repo/src/transport/dctcp.cpp" "src/transport/CMakeFiles/xpass_transport.dir/dctcp.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/dctcp.cpp.o.d"
  "/root/repo/src/transport/dx.cpp" "src/transport/CMakeFiles/xpass_transport.dir/dx.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/dx.cpp.o.d"
  "/root/repo/src/transport/hull.cpp" "src/transport/CMakeFiles/xpass_transport.dir/hull.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/hull.cpp.o.d"
  "/root/repo/src/transport/ideal.cpp" "src/transport/CMakeFiles/xpass_transport.dir/ideal.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/ideal.cpp.o.d"
  "/root/repo/src/transport/maxmin.cpp" "src/transport/CMakeFiles/xpass_transport.dir/maxmin.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/maxmin.cpp.o.d"
  "/root/repo/src/transport/rcp.cpp" "src/transport/CMakeFiles/xpass_transport.dir/rcp.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/rcp.cpp.o.d"
  "/root/repo/src/transport/timely.cpp" "src/transport/CMakeFiles/xpass_transport.dir/timely.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/timely.cpp.o.d"
  "/root/repo/src/transport/window.cpp" "src/transport/CMakeFiles/xpass_transport.dir/window.cpp.o" "gcc" "src/transport/CMakeFiles/xpass_transport.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xpass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xpass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xpass_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
