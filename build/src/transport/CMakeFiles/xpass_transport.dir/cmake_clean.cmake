file(REMOVE_RECURSE
  "CMakeFiles/xpass_transport.dir/cubic.cpp.o"
  "CMakeFiles/xpass_transport.dir/cubic.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/dcqcn.cpp.o"
  "CMakeFiles/xpass_transport.dir/dcqcn.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/dctcp.cpp.o"
  "CMakeFiles/xpass_transport.dir/dctcp.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/dx.cpp.o"
  "CMakeFiles/xpass_transport.dir/dx.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/hull.cpp.o"
  "CMakeFiles/xpass_transport.dir/hull.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/ideal.cpp.o"
  "CMakeFiles/xpass_transport.dir/ideal.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/maxmin.cpp.o"
  "CMakeFiles/xpass_transport.dir/maxmin.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/rcp.cpp.o"
  "CMakeFiles/xpass_transport.dir/rcp.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/timely.cpp.o"
  "CMakeFiles/xpass_transport.dir/timely.cpp.o.d"
  "CMakeFiles/xpass_transport.dir/window.cpp.o"
  "CMakeFiles/xpass_transport.dir/window.cpp.o.d"
  "libxpass_transport.a"
  "libxpass_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
