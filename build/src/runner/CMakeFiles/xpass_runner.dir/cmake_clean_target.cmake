file(REMOVE_RECURSE
  "libxpass_runner.a"
)
