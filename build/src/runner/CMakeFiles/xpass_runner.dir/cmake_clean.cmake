file(REMOVE_RECURSE
  "CMakeFiles/xpass_runner.dir/flow_driver.cpp.o"
  "CMakeFiles/xpass_runner.dir/flow_driver.cpp.o.d"
  "CMakeFiles/xpass_runner.dir/protocols.cpp.o"
  "CMakeFiles/xpass_runner.dir/protocols.cpp.o.d"
  "libxpass_runner.a"
  "libxpass_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
