# Empty dependencies file for xpass_runner.
# This may be replaced when dependencies are built.
