file(REMOVE_RECURSE
  "libxpass_core.a"
)
