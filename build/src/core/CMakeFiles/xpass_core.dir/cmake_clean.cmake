file(REMOVE_RECURSE
  "CMakeFiles/xpass_core.dir/expresspass.cpp.o"
  "CMakeFiles/xpass_core.dir/expresspass.cpp.o.d"
  "libxpass_core.a"
  "libxpass_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
