# Empty dependencies file for xpass_core.
# This may be replaced when dependencies are built.
