file(REMOVE_RECURSE
  "CMakeFiles/xpass_sim.dir/event_queue.cpp.o"
  "CMakeFiles/xpass_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/xpass_sim.dir/time.cpp.o"
  "CMakeFiles/xpass_sim.dir/time.cpp.o.d"
  "libxpass_sim.a"
  "libxpass_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
