file(REMOVE_RECURSE
  "libxpass_sim.a"
)
