# Empty dependencies file for xpass_sim.
# This may be replaced when dependencies are built.
