# Empty dependencies file for xpass_stats.
# This may be replaced when dependencies are built.
