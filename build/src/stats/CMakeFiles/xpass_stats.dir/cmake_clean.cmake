file(REMOVE_RECURSE
  "CMakeFiles/xpass_stats.dir/fairness.cpp.o"
  "CMakeFiles/xpass_stats.dir/fairness.cpp.o.d"
  "CMakeFiles/xpass_stats.dir/fct.cpp.o"
  "CMakeFiles/xpass_stats.dir/fct.cpp.o.d"
  "CMakeFiles/xpass_stats.dir/percentile.cpp.o"
  "CMakeFiles/xpass_stats.dir/percentile.cpp.o.d"
  "CMakeFiles/xpass_stats.dir/rate_tracker.cpp.o"
  "CMakeFiles/xpass_stats.dir/rate_tracker.cpp.o.d"
  "libxpass_stats.a"
  "libxpass_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
