file(REMOVE_RECURSE
  "libxpass_stats.a"
)
