
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/fairness.cpp" "src/stats/CMakeFiles/xpass_stats.dir/fairness.cpp.o" "gcc" "src/stats/CMakeFiles/xpass_stats.dir/fairness.cpp.o.d"
  "/root/repo/src/stats/fct.cpp" "src/stats/CMakeFiles/xpass_stats.dir/fct.cpp.o" "gcc" "src/stats/CMakeFiles/xpass_stats.dir/fct.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/stats/CMakeFiles/xpass_stats.dir/percentile.cpp.o" "gcc" "src/stats/CMakeFiles/xpass_stats.dir/percentile.cpp.o.d"
  "/root/repo/src/stats/rate_tracker.cpp" "src/stats/CMakeFiles/xpass_stats.dir/rate_tracker.cpp.o" "gcc" "src/stats/CMakeFiles/xpass_stats.dir/rate_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/xpass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xpass_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
