file(REMOVE_RECURSE
  "CMakeFiles/xpass_workload.dir/flow_size_dist.cpp.o"
  "CMakeFiles/xpass_workload.dir/flow_size_dist.cpp.o.d"
  "CMakeFiles/xpass_workload.dir/generators.cpp.o"
  "CMakeFiles/xpass_workload.dir/generators.cpp.o.d"
  "CMakeFiles/xpass_workload.dir/rpc_loop.cpp.o"
  "CMakeFiles/xpass_workload.dir/rpc_loop.cpp.o.d"
  "libxpass_workload.a"
  "libxpass_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
