# Empty dependencies file for xpass_workload.
# This may be replaced when dependencies are built.
