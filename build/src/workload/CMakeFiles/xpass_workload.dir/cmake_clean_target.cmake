file(REMOVE_RECURSE
  "libxpass_workload.a"
)
