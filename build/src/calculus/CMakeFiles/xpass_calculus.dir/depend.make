# Empty dependencies file for xpass_calculus.
# This may be replaced when dependencies are built.
