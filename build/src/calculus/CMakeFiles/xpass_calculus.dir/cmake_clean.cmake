file(REMOVE_RECURSE
  "CMakeFiles/xpass_calculus.dir/buffer_bounds.cpp.o"
  "CMakeFiles/xpass_calculus.dir/buffer_bounds.cpp.o.d"
  "libxpass_calculus.a"
  "libxpass_calculus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
