file(REMOVE_RECURSE
  "libxpass_calculus.a"
)
