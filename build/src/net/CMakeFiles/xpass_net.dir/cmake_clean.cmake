file(REMOVE_RECURSE
  "CMakeFiles/xpass_net.dir/host.cpp.o"
  "CMakeFiles/xpass_net.dir/host.cpp.o.d"
  "CMakeFiles/xpass_net.dir/packet.cpp.o"
  "CMakeFiles/xpass_net.dir/packet.cpp.o.d"
  "CMakeFiles/xpass_net.dir/port.cpp.o"
  "CMakeFiles/xpass_net.dir/port.cpp.o.d"
  "CMakeFiles/xpass_net.dir/queue.cpp.o"
  "CMakeFiles/xpass_net.dir/queue.cpp.o.d"
  "CMakeFiles/xpass_net.dir/switch.cpp.o"
  "CMakeFiles/xpass_net.dir/switch.cpp.o.d"
  "CMakeFiles/xpass_net.dir/token_bucket.cpp.o"
  "CMakeFiles/xpass_net.dir/token_bucket.cpp.o.d"
  "CMakeFiles/xpass_net.dir/topology.cpp.o"
  "CMakeFiles/xpass_net.dir/topology.cpp.o.d"
  "CMakeFiles/xpass_net.dir/topology_builders.cpp.o"
  "CMakeFiles/xpass_net.dir/topology_builders.cpp.o.d"
  "libxpass_net.a"
  "libxpass_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
