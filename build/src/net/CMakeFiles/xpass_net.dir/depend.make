# Empty dependencies file for xpass_net.
# This may be replaced when dependencies are built.
