file(REMOVE_RECURSE
  "libxpass_net.a"
)
