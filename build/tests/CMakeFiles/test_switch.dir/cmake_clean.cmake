file(REMOVE_RECURSE
  "CMakeFiles/test_switch.dir/net/switch_test.cpp.o"
  "CMakeFiles/test_switch.dir/net/switch_test.cpp.o.d"
  "test_switch"
  "test_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
