# Empty dependencies file for test_calculus.
# This may be replaced when dependencies are built.
