file(REMOVE_RECURSE
  "CMakeFiles/test_calculus.dir/calculus/calculus_test.cpp.o"
  "CMakeFiles/test_calculus.dir/calculus/calculus_test.cpp.o.d"
  "test_calculus"
  "test_calculus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
