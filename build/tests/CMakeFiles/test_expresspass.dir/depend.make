# Empty dependencies file for test_expresspass.
# This may be replaced when dependencies are built.
