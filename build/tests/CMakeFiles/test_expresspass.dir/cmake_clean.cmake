file(REMOVE_RECURSE
  "CMakeFiles/test_expresspass.dir/core/expresspass_test.cpp.o"
  "CMakeFiles/test_expresspass.dir/core/expresspass_test.cpp.o.d"
  "test_expresspass"
  "test_expresspass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expresspass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
