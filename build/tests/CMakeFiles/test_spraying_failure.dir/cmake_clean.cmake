file(REMOVE_RECURSE
  "CMakeFiles/test_spraying_failure.dir/net/spraying_failure_test.cpp.o"
  "CMakeFiles/test_spraying_failure.dir/net/spraying_failure_test.cpp.o.d"
  "test_spraying_failure"
  "test_spraying_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spraying_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
