# Empty dependencies file for test_spraying_failure.
# This may be replaced when dependencies are built.
