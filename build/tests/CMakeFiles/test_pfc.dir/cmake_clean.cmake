file(REMOVE_RECURSE
  "CMakeFiles/test_pfc.dir/net/pfc_test.cpp.o"
  "CMakeFiles/test_pfc.dir/net/pfc_test.cpp.o.d"
  "test_pfc"
  "test_pfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
