# Empty dependencies file for test_pfc.
# This may be replaced when dependencies are built.
