# Empty dependencies file for test_zero_loss.
# This may be replaced when dependencies are built.
