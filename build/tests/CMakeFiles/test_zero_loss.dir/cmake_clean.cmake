file(REMOVE_RECURSE
  "CMakeFiles/test_zero_loss.dir/integration/zero_loss_test.cpp.o"
  "CMakeFiles/test_zero_loss.dir/integration/zero_loss_test.cpp.o.d"
  "test_zero_loss"
  "test_zero_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
