file(REMOVE_RECURSE
  "CMakeFiles/test_window.dir/transport/window_test.cpp.o"
  "CMakeFiles/test_window.dir/transport/window_test.cpp.o.d"
  "test_window"
  "test_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
