
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport/protocols_test.cpp" "tests/CMakeFiles/test_protocols.dir/transport/protocols_test.cpp.o" "gcc" "tests/CMakeFiles/test_protocols.dir/transport/protocols_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calculus/CMakeFiles/xpass_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xpass_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/runner/CMakeFiles/xpass_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xpass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/xpass_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/xpass_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xpass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xpass_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
