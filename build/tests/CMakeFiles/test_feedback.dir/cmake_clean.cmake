file(REMOVE_RECURSE
  "CMakeFiles/test_feedback.dir/core/feedback_test.cpp.o"
  "CMakeFiles/test_feedback.dir/core/feedback_test.cpp.o.d"
  "test_feedback"
  "test_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
