file(REMOVE_RECURSE
  "CMakeFiles/test_maxmin.dir/transport/maxmin_test.cpp.o"
  "CMakeFiles/test_maxmin.dir/transport/maxmin_test.cpp.o.d"
  "test_maxmin"
  "test_maxmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
