file(REMOVE_RECURSE
  "CMakeFiles/test_multibottleneck.dir/integration/multibottleneck_test.cpp.o"
  "CMakeFiles/test_multibottleneck.dir/integration/multibottleneck_test.cpp.o.d"
  "test_multibottleneck"
  "test_multibottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multibottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
