# Empty dependencies file for test_multibottleneck.
# This may be replaced when dependencies are built.
