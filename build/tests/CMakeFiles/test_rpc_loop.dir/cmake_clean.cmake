file(REMOVE_RECURSE
  "CMakeFiles/test_rpc_loop.dir/workload/rpc_loop_test.cpp.o"
  "CMakeFiles/test_rpc_loop.dir/workload/rpc_loop_test.cpp.o.d"
  "test_rpc_loop"
  "test_rpc_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpc_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
