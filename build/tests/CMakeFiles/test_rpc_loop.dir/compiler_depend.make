# Empty compiler generated dependencies file for test_rpc_loop.
# This may be replaced when dependencies are built.
