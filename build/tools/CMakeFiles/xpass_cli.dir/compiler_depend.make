# Empty compiler generated dependencies file for xpass_cli.
# This may be replaced when dependencies are built.
