file(REMOVE_RECURSE
  "CMakeFiles/xpass_cli.dir/xpass_sim.cpp.o"
  "CMakeFiles/xpass_cli.dir/xpass_sim.cpp.o.d"
  "xpass_cli"
  "xpass_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpass_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
