file(REMOVE_RECURSE
  "CMakeFiles/qos_classes.dir/qos_classes.cpp.o"
  "CMakeFiles/qos_classes.dir/qos_classes.cpp.o.d"
  "qos_classes"
  "qos_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
