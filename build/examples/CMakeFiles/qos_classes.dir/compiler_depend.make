# Empty compiler generated dependencies file for qos_classes.
# This may be replaced when dependencies are built.
