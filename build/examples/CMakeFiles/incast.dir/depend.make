# Empty dependencies file for incast.
# This may be replaced when dependencies are built.
