file(REMOVE_RECURSE
  "CMakeFiles/incast.dir/incast.cpp.o"
  "CMakeFiles/incast.dir/incast.cpp.o.d"
  "incast"
  "incast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
