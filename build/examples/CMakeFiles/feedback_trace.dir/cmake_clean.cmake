file(REMOVE_RECURSE
  "CMakeFiles/feedback_trace.dir/feedback_trace.cpp.o"
  "CMakeFiles/feedback_trace.dir/feedback_trace.cpp.o.d"
  "feedback_trace"
  "feedback_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
