# Empty compiler generated dependencies file for feedback_trace.
# This may be replaced when dependencies are built.
