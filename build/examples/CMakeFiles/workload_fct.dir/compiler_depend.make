# Empty compiler generated dependencies file for workload_fct.
# This may be replaced when dependencies are built.
