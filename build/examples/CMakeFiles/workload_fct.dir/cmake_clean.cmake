file(REMOVE_RECURSE
  "CMakeFiles/workload_fct.dir/workload_fct.cpp.o"
  "CMakeFiles/workload_fct.dir/workload_fct.cpp.o.d"
  "workload_fct"
  "workload_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
