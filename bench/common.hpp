// Shared helpers for the experiment benches.
//
// Every bench prints the rows/series of one paper table or figure. Benches
// default to scaled-down runs that finish quickly on one core; pass --full
// (or set XPASS_FULL=1) for paper-scale parameters. EXPERIMENTS.md records
// paper-vs-measured values from the default runs.
//
// Benches are spec-driven: each builds runner::ScenarioSpec values and runs
// them through runner::ScenarioEngine (singly or as a run_grid sweep); the
// bench file itself is only the spec plus the figure's formatter.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "exec/sweep_runner.hpp"
#include "net/topology_builders.hpp"
#include "runner/args.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "runner/scenario.hpp"
#include "stats/fairness.hpp"
#include "workload/generators.hpp"

namespace xpass::bench {

// The flags every bench understands, parsed through runner::Args: malformed
// values (`--jobs garbage`, `--jobs 0`) and unknown flags abort with usage
// instead of being silently ignored.
struct BenchOptions {
  bool full = false;  // --full or XPASS_FULL=1: paper-scale parameters
  size_t jobs = 0;    // --jobs N / --jobs=N; 0 = SweepRunner default
};

inline BenchOptions bench_options(int argc, char** argv) {
  runner::Args args(argc, argv);
  BenchOptions o;
  o.full = args.flag("full");
  o.jobs = args.jobs();
  args.die_on_error("usage: bench [--full] [--jobs N]\n");
  if (!o.full) {
    const char* env = std::getenv("XPASS_FULL");
    o.full = env != nullptr && env[0] == '1';
  }
  return o;
}

inline bool full_mode(int argc, char** argv) {
  return bench_options(argc, argv).full;
}

// Worker count for sweep-style benches. Results are identical for every
// value — only wall-clock changes.
inline size_t jobs_arg(int argc, char** argv) {
  return bench_options(argc, argv).jobs;
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

// Goodput fraction of the ExpressPass data ceiling (95% of line rate).
inline double data_ceiling_bps(double link_bps) {
  return link_bps * static_cast<double>(net::kMaxWireBytes) /
         static_cast<double>(net::kCreditCycleBytes);
}

// One cell of the Fig-15 flow-scalability grid (also the 12-point sweep the
// hotpath bench times): long-running flows on a 10G dumbbell, measured over
// a post-warmup window.
struct ScalabilityCell {
  double util_gbps = 0;
  double fairness = 0;
  double max_q_kb = 0;
  uint64_t drops = 0;
};

inline runner::ScenarioSpec scalability_spec(runner::Protocol proto,
                                             size_t n_flows, bool full) {
  runner::ScenarioSpec s;
  s.name = "fig15/" + std::string(runner::protocol_name(proto)) + "/" +
           std::to_string(n_flows);
  s.seed = 29;
  s.topology.kind = runner::TopologyKind::kDumbbell;
  s.topology.scale = n_flows;
  s.protocol = proto;
  s.traffic.kind = runner::TrafficKind::kPairwise;
  s.traffic.flows = n_flows;
  s.traffic.start_spread_sec = 5e-3;
  s.stop = runner::StopSpec::measure_window(sim::Time::ms(full ? 50 : 20),
                                            sim::Time::ms(full ? 100 : 50));
  return s;
}

inline ScalabilityCell to_scalability_cell(const runner::ScenarioResult& r) {
  ScalabilityCell c;
  c.util_gbps = r.sum_rate_bps / 1e9;
  c.fairness = r.jain;
  c.max_q_kb = r.bottleneck_max_queue_bytes / 1e3;
  c.drops = r.data_drops;
  return c;
}

inline ScalabilityCell scalability_cell(runner::Protocol proto, size_t n_flows,
                                        bool full) {
  return to_scalability_cell(
      runner::ScenarioEngine().run(scalability_spec(proto, n_flows, full)));
}

struct FlowSpecBuilder {
  uint32_t next_id = 1;
  transport::FlowSpec make(net::Host* src, net::Host* dst, uint64_t bytes,
                           sim::Time start = sim::Time::zero()) {
    transport::FlowSpec s;
    s.id = next_id++;
    s.src = src;
    s.dst = dst;
    s.size_bytes = bytes;
    s.start_time = start;
    return s;
  }
};

}  // namespace xpass::bench
