// Shared helpers for the experiment benches.
//
// Every bench prints the rows/series of one paper table or figure. Benches
// default to scaled-down runs that finish quickly on one core; pass --full
// (or set XPASS_FULL=1) for paper-scale parameters. EXPERIMENTS.md records
// paper-vs-measured values from the default runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "stats/fairness.hpp"
#include "workload/generators.hpp"

namespace xpass::bench {

inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  const char* env = std::getenv("XPASS_FULL");
  return env != nullptr && env[0] == '1';
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

// Goodput fraction of the ExpressPass data ceiling (95% of line rate).
inline double data_ceiling_bps(double link_bps) {
  return link_bps * static_cast<double>(net::kMaxWireBytes) /
         static_cast<double>(net::kCreditCycleBytes);
}

struct FlowSpecBuilder {
  uint32_t next_id = 1;
  transport::FlowSpec make(net::Host* src, net::Host* dst, uint64_t bytes,
                           sim::Time start = sim::Time::zero()) {
    transport::FlowSpec s;
    s.id = next_id++;
    s.src = src;
    s.dst = dst;
    s.size_bytes = bytes;
    s.start_time = start;
    return s;
  }
};

}  // namespace xpass::bench
