// Shared helpers for the experiment benches.
//
// Every bench prints the rows/series of one paper table or figure. Benches
// default to scaled-down runs that finish quickly on one core; pass --full
// (or set XPASS_FULL=1) for paper-scale parameters. EXPERIMENTS.md records
// paper-vs-measured values from the default runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/expresspass.hpp"
#include "exec/sweep_runner.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "stats/fairness.hpp"
#include "workload/generators.hpp"

namespace xpass::bench {

inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  const char* env = std::getenv("XPASS_FULL");
  return env != nullptr && env[0] == '1';
}

// Worker count for sweep-style benches: `--jobs N` / `--jobs=N`, else the
// SweepRunner default (XPASS_JOBS env or hardware concurrency). Results are
// identical for every value — only wall-clock changes.
inline size_t jobs_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[i + 1], nullptr, 10);
      if (v >= 1) return static_cast<size_t>(v);
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      const long v = std::strtol(argv[i] + 7, nullptr, 10);
      if (v >= 1) return static_cast<size_t>(v);
    }
  }
  return exec::default_jobs();
}

inline void header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n");
}

// Goodput fraction of the ExpressPass data ceiling (95% of line rate).
inline double data_ceiling_bps(double link_bps) {
  return link_bps * static_cast<double>(net::kMaxWireBytes) /
         static_cast<double>(net::kCreditCycleBytes);
}

// One cell of the Fig-15 flow-scalability grid (also the 12-point sweep the
// hotpath bench times): long-running flows on a 10G dumbbell, measured over
// a post-warmup window.
struct ScalabilityCell {
  double util_gbps = 0;
  double fairness = 0;
  double max_q_kb = 0;
  uint64_t drops = 0;
};

inline ScalabilityCell scalability_cell(runner::Protocol proto, size_t n_flows,
                                        bool full) {
  sim::Simulator sim(29);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, sim::Time::us(1));
  auto d = net::build_dumbbell(topo, n_flows, link, link);
  auto t = runner::make_transport(proto, sim, topo, sim::Time::us(100));
  runner::FlowDriver driver(sim, *t);
  uint32_t next_id = 1;
  for (size_t i = 0; i < n_flows; ++i) {
    transport::FlowSpec s;
    s.id = next_id++;
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = transport::kLongRunning;
    s.start_time = sim::Time::seconds(sim.rng().uniform(0.0, 5e-3));
    driver.add(s);
  }
  const sim::Time warmup = sim::Time::ms(full ? 50 : 20);
  const sim::Time window = sim::Time::ms(full ? 100 : 50);
  sim.run_until(warmup);
  driver.rates().snapshot_rates(warmup);
  sim.run_until(warmup + window);
  auto rates = driver.rates().snapshot_rates(window);
  ScalabilityCell r;
  double sum = 0;
  for (double x : rates) sum += x;
  r.util_gbps = sum / 1e9;
  r.fairness = stats::jain_index(rates);
  r.max_q_kb = d.bottleneck->data_queue().stats().max_bytes / 1e3;
  r.drops = topo.data_drops();
  driver.stop_all();
  return r;
}

struct FlowSpecBuilder {
  uint32_t next_id = 1;
  transport::FlowSpec make(net::Host* src, net::Host* dst, uint64_t bytes,
                           sim::Time start = sim::Time::zero()) {
    transport::FlowSpec s;
    s.id = next_id++;
    s.src = src;
    s.dst = dst;
    s.size_bytes = bytes;
    s.start_time = start;
    return s;
  }
};

}  // namespace xpass::bench
