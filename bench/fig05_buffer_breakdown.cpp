// Fig 5: maximum buffer required for one ToR switch of a 32-ary fat tree,
// broken down by contributing source, for two parameter sets:
//   (a) 8-credit queues, ∆d_host = 5us  (software/SoftNIC hosts)
//   (b) 4-credit queues, ∆d_host = 1us  (NIC-hardware hosts)
#include "bench/common.hpp"
#include "calculus/buffer_bounds.hpp"

using namespace xpass;

namespace {

void table(const char* title, size_t credit_q, sim::Time dhost) {
  std::printf("\n%s\n", title);
  std::printf("%-22s %12s %12s %12s %12s\n", "link/core speed", "total(MB)",
              "creditQ(MB)", "host(MB)", "path(MB)");
  struct Row {
    const char* name;
    double edge, fabric;
  };
  for (const Row& s : {Row{"10/40 Gbps", 10e9, 40e9},
                       Row{"40/100 Gbps", 40e9, 100e9},
                       Row{"100/100 Gbps", 100e9, 100e9}}) {
    calculus::CalculusParams p;
    p.edge_rate_bps = s.edge;
    p.fabric_rate_bps = s.fabric;
    p.credit_queue_pkts = credit_q;
    p.delta_host = dhost;
    p.ports_per_tor_down = 16;
    p.ports_per_tor_up = 16;
    auto r = calculus::compute_buffer_bounds(p);
    std::printf("%-22s %12.2f %12.2f %12.2f %12.2f\n", s.name,
                r.tor_switch_total_bytes / 1e6,
                r.contribution_credit_queue / 1e6,
                r.contribution_host_spread / 1e6,
                r.contribution_path_spread / 1e6);
  }
}

}  // namespace

int main(int, char**) {
  bench::header("Fig 5: max ToR-switch buffer breakdown, 32-ary fat tree",
                "Fig 5, SIGCOMM'17 (paper peaks ~10-40MB; shape: grows with "
                "link speed sub-linearly, shrinks with smaller credit queue "
                "and host delay spread)");
  table("(a) 8-credit queue, delta_d_host = 5us", 8, sim::Time::us(5));
  table("(b) 4-credit queue, delta_d_host = 1us", 4, sim::Time::us(1));
  std::printf(
      "\nBoth remain below shallow-buffer switch capacity (9-16MB at 10GbE,\n"
      "16-256MB at 100GbE) as the paper argues in §3.1.\n");
  return 0;
}
