// Spec construction for the realistic-workload benches (Fig 18-21, Table 3):
// the §6.3 oversubscribed Clos fabric (runner::clos_scale — the single
// source of truth for its dimensions) under a Poisson flow arrival process
// from a Table-2 size distribution targeting a ToR-uplink load. The benches
// run the spec through runner::ScenarioEngine and read FCT/queue/waste
// statistics straight off the ScenarioResult.
#pragma once

#include "bench/common.hpp"
#include "stats/fct.hpp"
#include "workload/flow_size_dist.hpp"

namespace xpass::bench {

struct WorkloadRunConfig {
  workload::WorkloadKind kind = workload::WorkloadKind::kWebServer;
  runner::Protocol proto = runner::Protocol::kExpressPass;
  double load = 0.6;            // target load on ToR up-links
  double host_rate_bps = 10e9;
  double fabric_rate_bps = 40e9;
  size_t n_flows = 2000;
  bool full_scale = false;      // paper: 192 hosts / 100k flows
  uint64_t seed = runner::kWorkloadSeed;
  double xp_alpha = 1.0 / 16;   // §6.3's chosen setting
  double xp_w_init = 1.0 / 16;
  sim::Time deadline = sim::Time::sec(30);  // sim-time cap
};

inline runner::ScenarioSpec workload_spec(const WorkloadRunConfig& cfg) {
  runner::ScenarioSpec s;
  s.name = "workload/" + std::string(workload::workload_name(cfg.kind)) +
           "/" + std::string(runner::protocol_name(cfg.proto));
  s.seed = cfg.seed;
  s.topology.kind = runner::TopologyKind::kClos;
  s.topology.clos = runner::clos_scale(cfg.full_scale);
  s.topology.host_rate_bps = cfg.host_rate_bps;
  s.topology.fabric_rate_bps = cfg.fabric_rate_bps;
  s.topology.host_prop = sim::Time::us(4);
  s.topology.fabric_prop = sim::Time::us(4);
  s.topology.host_delay = runner::HostDelay::kTestbed;
  s.protocol = cfg.proto;
  if (cfg.proto == runner::Protocol::kExpressPass) {
    // ExpressPass workload parameters per §6.3.
    s.xp.emplace();
    s.xp->alpha_init = cfg.xp_alpha;
    s.xp->w_init = cfg.xp_w_init;
  }
  s.traffic.kind = runner::TrafficKind::kPoisson;
  s.traffic.workload = cfg.kind;
  s.traffic.load = cfg.load;
  s.traffic.flows = cfg.n_flows;
  s.stop = runner::StopSpec::completion(cfg.deadline);
  return s;
}

inline runner::ScenarioResult run_workload(const WorkloadRunConfig& cfg) {
  return runner::ScenarioEngine().run(workload_spec(cfg));
}

}  // namespace xpass::bench
