// Shared machinery for the realistic-workload benches (Fig 18-21, Table 3):
// build the §6.3 oversubscribed Clos fabric (scaled by default), generate a
// Poisson flow arrival process from a Table-2 size distribution targeting a
// ToR-uplink load, run it under a protocol, and collect FCT/queue/waste
// statistics.
#pragma once

#include <memory>

#include "bench/common.hpp"
#include "stats/fct.hpp"
#include "workload/flow_size_dist.hpp"

namespace xpass::bench {

struct WorkloadRunConfig {
  workload::WorkloadKind kind = workload::WorkloadKind::kWebServer;
  runner::Protocol proto = runner::Protocol::kExpressPass;
  double load = 0.6;            // target load on ToR up-links
  double host_rate_bps = 10e9;
  double fabric_rate_bps = 40e9;
  size_t n_flows = 2000;
  bool full_scale = false;      // paper: 192 hosts / 100k flows
  uint64_t seed = 101;
  double xp_alpha = 1.0 / 16;   // §6.3's chosen setting
  double xp_w_init = 1.0 / 16;
  sim::Time deadline = sim::Time::sec(30);  // sim-time cap
};

struct WorkloadRunResult {
  stats::FctCollector fcts;
  size_t scheduled = 0;
  size_t completed = 0;
  uint64_t data_drops = 0;
  double avg_queue_bytes = 0;   // time-weighted, averaged over fabric ports
  double max_queue_bytes = 0;
  double credit_waste_ratio = 0;  // wasted / received at senders (XP only)
  double elapsed_sim_sec = 0;
};

inline WorkloadRunResult run_workload(const WorkloadRunConfig& cfg) {
  sim::Simulator sim(cfg.seed);
  net::Topology topo(sim);
  const auto host_link = runner::protocol_link_config(
      cfg.proto, cfg.host_rate_bps, sim::Time::us(4));
  const auto fabric_link = runner::protocol_link_config(
      cfg.proto, cfg.fabric_rate_bps, sim::Time::us(4));
  // §6.3 fabric: 8 cores / 16 aggrs / 32 ToRs / 192 hosts at full scale
  // (3:1 oversubscription at the ToR layer); quarter-scale by default.
  auto cl = cfg.full_scale
                ? net::build_clos(topo, 8, 8, 2, 4, 6, host_link, fabric_link)
                : net::build_clos(topo, 4, 4, 2, 2, 6, host_link, fabric_link);
  for (auto* h : topo.hosts()) {
    h->set_delay_model(net::HostDelayModel::testbed());
  }
  auto transport = runner::make_transport(cfg.proto, sim, topo,
                                          sim::Time::us(100));
  // ExpressPass workload parameters per §6.3.
  std::unique_ptr<transport::Transport> xp_transport;
  if (cfg.proto == runner::Protocol::kExpressPass) {
    core::ExpressPassConfig xcfg;
    xcfg.alpha_init = cfg.xp_alpha;
    xcfg.w_init = cfg.xp_w_init;
    xcfg.update_period = sim::Time::us(100);
    xp_transport = std::make_unique<core::ExpressPassTransport>(sim, xcfg);
    transport = std::move(xp_transport);
  }

  runner::FlowDriver driver(sim, *transport);
  auto dist = workload::FlowSizeDist::make(cfg.kind);
  // Load is defined on the ToR up-links (most traffic crosses them due to
  // random peer selection).
  const double uplink_capacity =
      static_cast<double>(cl.tor_uplinks.size()) * cfg.fabric_rate_bps;
  const double lambda =
      workload::lambda_for_load(cfg.load, uplink_capacity, dist.mean());
  auto specs = workload::poisson_flows(sim.rng(), cl.hosts, dist, lambda,
                                       cfg.n_flows);
  driver.add_all(specs);
  driver.run_to_completion(cfg.deadline);

  WorkloadRunResult res;
  res.scheduled = driver.scheduled();
  res.completed = driver.completed();
  res.data_drops = topo.data_drops();
  res.elapsed_sim_sec = sim.now().to_sec();
  double avg_sum = 0, max_q = 0;
  auto ports = topo.switch_ports();
  for (net::Port* p : ports) {
    avg_sum += p->data_queue().stats().avg_bytes(sim.now());
    max_q = std::max(max_q,
                     static_cast<double>(p->data_queue().stats().max_bytes));
  }
  res.avg_queue_bytes = ports.empty() ? 0 : avg_sum / ports.size();
  res.max_queue_bytes = max_q;

  if (cfg.proto == runner::Protocol::kExpressPass) {
    // Waste ratio = credits that reached a sender with nothing to send,
    // over all credits that reached senders (strays arrived for finished
    // flows count in both).
    uint64_t recv = topo.stray_credits();
    uint64_t wasted = topo.stray_credits();
    for (const auto& c : driver.connections()) {
      auto* x = dynamic_cast<const core::ExpressPassConnection*>(c.get());
      if (x != nullptr) {
        recv += x->credits_received();
        wasted += x->credits_wasted();
      }
    }
    res.credit_waste_ratio =
        recv > 0 ? static_cast<double>(wasted) / static_cast<double>(recv)
                 : 0.0;
  }
  // Move the collected FCTs out.
  res.fcts = driver.fcts();
  driver.stop_all();
  return res;
}

}  // namespace xpass::bench
