// Counting allocator probe: proves the hot path allocation-free.
//
// Links a replacement global operator new/delete pair that counts every
// allocation and free. A scope of interest is bracketed with
// AllocProbe::mark() / AllocProbe::since(), and a steady-state test asserts
// the delta is zero — the pooled packets, inline callbacks, ring buffers
// and recycled event slots together mean a warmed-up simulation should
// never touch the allocator again, and this probe is the regression gate
// that keeps it that way.
//
// Only translation units linked into a binary that also links
// alloc_probe.cpp get the counting operators; the library itself is
// unaffected. Under sanitizers the replacement operators would fight the
// interceptors, so the probe compiles to inert stubs there (XPASS_SANITIZE
// or address-sanitizer feature detection) and enabled() reports false.
#pragma once

#include <cstdint>

namespace xpass::bench {

struct AllocProbe {
  struct Counts {
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t bytes = 0;
  };

  // Whether the counting operators are live in this binary (false under
  // sanitizers, where the probe is stubbed out).
  static bool enabled();
  // Cumulative counters since process start.
  static Counts total();
  // Snapshot for delta measurement.
  static Counts mark() { return total(); }
  // Counts accrued since `m`.
  static Counts since(const Counts& m) {
    const Counts t = total();
    return Counts{t.allocs - m.allocs, t.frees - m.frees, t.bytes - m.bytes};
  }
};

}  // namespace xpass::bench
