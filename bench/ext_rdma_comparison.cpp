// Extension experiment: ExpressPass vs the PFC-based RDMA status quo
// (DCQCN, TIMELY) — the §1 motivation made quantitative.
//
//   (a) 16-way incast of 200KB flows under one ToR: everyone is lossless,
//       but the PFC protocols pause the whole switch while credits schedule
//       arrivals without touching innocent traffic.
//   (b) victim flow: an incast on one downlink vs a victim flow between two
//       uninvolved hosts on the same switch (PFC head-of-line blocking).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct IncastRow {
  double p99_fct_ms;
  uint64_t drops;
  uint64_t pauses;
  double max_q_kb;
};

IncastRow incast(runner::Protocol proto) {
  sim::Simulator sim(87);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto star = net::build_star(topo, 20, link);
  auto t = runner::make_transport(proto, sim, topo, Time::us(20));
  runner::FlowDriver driver(sim, *t);
  std::vector<net::Host*> workers(star.hosts.begin() + 1, star.hosts.end());
  driver.add_all(workload::incast_flows(workers, star.hosts[0], 200'000, 16));
  driver.run_to_completion(Time::sec(10));
  IncastRow r;
  r.p99_fct_ms = driver.fcts().all().percentile(0.99) * 1e3;
  r.drops = topo.data_drops();
  r.pauses = 0;
  for (auto* h : topo.hosts()) r.pauses += h->nic().pause_events();
  r.max_q_kb = topo.max_switch_data_queue_bytes() / 1e3;
  return r;
}

double victim_goodput(runner::Protocol proto) {
  sim::Simulator sim(89);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto star = net::build_star(topo, 12, link);
  auto t = runner::make_transport(proto, sim, topo, Time::us(20));
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  for (size_t i = 2; i <= 9; ++i) {
    driver.add(fb.make(star.hosts[i], star.hosts[0],
                       transport::kLongRunning));
  }
  auto victim = fb.make(star.hosts[10], star.hosts[11],
                        transport::kLongRunning);
  driver.add(victim);
  sim.run_until(Time::ms(10));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(10));
  driver.stop_all();
  return rates[victim.id] / 1e9;
}

}  // namespace

int main(int, char**) {
  bench::header("Extension: ExpressPass vs PFC-based RDMA CC (DCQCN/TIMELY)",
                "the RDMA motivation of sec 1 (no paper figure)");
  std::printf("(a) 16-way incast, 200KB flows, one 10G ToR\n");
  std::printf("%-14s %14s %8s %10s %10s\n", "protocol", "p99 FCT(ms)",
              "drops", "pauses", "maxQ(KB)");
  for (auto p : {runner::Protocol::kExpressPass, runner::Protocol::kDcqcn,
                 runner::Protocol::kTimely, runner::Protocol::kDctcp}) {
    IncastRow r = incast(p);
    std::printf("%-14s %14.2f %8zu %10zu %10.1f\n",
                std::string(runner::protocol_name(p)).c_str(), r.p99_fct_ms,
                static_cast<size_t>(r.drops), static_cast<size_t>(r.pauses),
                r.max_q_kb);
  }
  std::printf(
      "\n(b) victim goodput (Gbps) while 8 hosts incast another port\n");
  for (auto p : {runner::Protocol::kExpressPass, runner::Protocol::kDcqcn,
                 runner::Protocol::kTimely}) {
    std::printf("%-14s %8.2f\n",
                std::string(runner::protocol_name(p)).c_str(),
                victim_goodput(p));
  }
  std::printf(
      "\nReading: ExpressPass and the PFC protocols are all lossless, but\n"
      "only ExpressPass is lossless *without pauses*: DCQCN/TIMELY pause\n"
      "the whole switch (HOL blocking) and collateral-damage the victim,\n"
      "while credits leave it at line rate. DCTCP (no PFC) drops instead.\n");
  return 0;
}
