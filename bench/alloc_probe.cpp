#include "bench/alloc_probe.hpp"

#if defined(XPASS_SANITIZE) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define XPASS_ALLOC_PROBE_STUB 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define XPASS_ALLOC_PROBE_STUB 1
#endif
#endif

#ifndef XPASS_ALLOC_PROBE_STUB

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// Relaxed atomics: the probe is read single-threaded between runs; the
// counters only need to not tear when the sweep executor's worker threads
// allocate concurrently.
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};

void* counted_alloc(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(size_t n) { return counted_alloc(n); }
void* operator new[](size_t n) { return counted_alloc(n); }
void* operator new(size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(n, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](size_t n, const std::nothrow_t&) noexcept {
  return operator new(n, std::nothrow);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, size_t) noexcept { counted_free(p); }
void operator delete[](void* p, size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace xpass::bench {

bool AllocProbe::enabled() { return true; }

AllocProbe::Counts AllocProbe::total() {
  return Counts{g_allocs.load(std::memory_order_relaxed),
                g_frees.load(std::memory_order_relaxed),
                g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace xpass::bench

#else  // XPASS_ALLOC_PROBE_STUB

namespace xpass::bench {

bool AllocProbe::enabled() { return false; }
AllocProbe::Counts AllocProbe::total() { return Counts{}; }

}  // namespace xpass::bench

#endif
