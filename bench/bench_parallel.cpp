// Sharded-core scaling baseline: runs one fat-tree scenario on the serial
// core and on the sharded parallel core at 2/4/8 shards, and emits
// BENCH_parallel.json (schema documented in EXPERIMENTS.md, gated by
// tools/check_bench_regression.py --parallel).
//
// Two metric classes, gated differently:
//  - Determinism invariants (count/byte-based, hold on any hardware):
//    two runs at the same shard count produce byte-identical recorder JSON,
//    and --shards=1 routes through the serial core byte-identically.
//    Always gated.
//  - Wall-clock scaling (speedup, parallel efficiency at 8 shards): only
//    meaningful when the host actually has >= 8 cores. The JSON records
//    "cores" so the gate can skip the efficiency check on small runners
//    (the committed baseline is the maintainer-machine measurement, exactly
//    like BENCH_core.json's absolute throughputs).
//
// Also runs the large-scale acceptance workload: a k=16 fat tree with
// >= 100k Poisson flows under a run budget, proving the sharded core
// completes (budget-truncated, gracefully measured) instead of hanging or
// exhausting memory.
//
// Usage: bench_parallel [BENCH_parallel.json] [--quick]
//   --quick shrinks the workload for CI smoke (k=4 scaling, no large run);
//   the committed JSON must be regenerated without it.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "runner/scenario.hpp"
#include "sim/run_budget.hpp"

namespace {

using namespace xpass;
using sim::Time;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool g_quick = false;

// The scaling workload: every host pair talks (long-running flows, so the
// credit/data machinery stays saturated for the whole window) on a fat tree
// whose pods partition cleanly across shards.
runner::ScenarioSpec scaling_spec(size_t shards) {
  runner::ScenarioSpec s;
  s.name = "bench_parallel/scaling";
  s.seed = 29;
  s.protocol = runner::Protocol::kExpressPass;
  s.topology.kind = runner::TopologyKind::kFatTree;
  s.topology.fat_tree_k = g_quick ? 4 : 8;
  s.traffic.kind = runner::TrafficKind::kPairwise;
  s.traffic.flows = g_quick ? 16 : 256;
  s.traffic.bytes = transport::kLongRunning;
  s.traffic.start_spread_sec = 1e-3;
  s.stop = runner::StopSpec::completion(Time::ms(g_quick ? 2 : 5));
  s.shards = shards;
  return s;
}

struct ScalingRow {
  size_t shards;  // 0 = serial core
  double wall_sec;
  std::string recorder_json;
  uint64_t data_drops = 0;
  double sum_rate_bps = 0;
};

ScalingRow run_scaling(size_t shards) {
  runner::ScenarioEngine engine;
  const runner::ScenarioSpec spec = scaling_spec(shards);
  const double t0 = now_sec();
  const runner::ScenarioResult r = engine.run(spec);
  ScalingRow row;
  row.shards = shards;
  row.wall_sec = now_sec() - t0;
  row.recorder_json = r.recorder.to_json(r.name);
  row.data_drops = r.data_drops;
  row.sum_rate_bps = r.sum_rate_bps;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_parallel.json";
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
    } else if (positional == 0) {
      out_path = argv[i];
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  const size_t cores = std::thread::hardware_concurrency();

  // ---- Scaling: serial vs 2/4/8 shards -----------------------------------
  const std::vector<size_t> shard_counts =
      g_quick ? std::vector<size_t>{0, 2, 4} : std::vector<size_t>{0, 2, 4, 8};
  std::printf("sharded-core scaling (fat tree k=%zu, %zu long flows, "
              "%zu cores)...\n",
              static_cast<size_t>(g_quick ? 4 : 8),
              static_cast<size_t>(g_quick ? 16 : 256), cores);
  std::vector<ScalingRow> rows;
  for (size_t s : shard_counts) {
    rows.push_back(run_scaling(s));
    std::printf("  shards=%zu%s: %.2fs  (goodput %.1fG, drops %llu)\n",
                rows.back().shards, s == 0 ? " (serial)" : "",
                rows.back().wall_sec, rows.back().sum_rate_bps / 1e9,
                static_cast<unsigned long long>(rows.back().data_drops));
  }
  const double serial_wall = rows.front().wall_sec;
  const size_t max_shards = shard_counts.back();
  const double max_wall = rows.back().wall_sec;
  const double speedup = serial_wall / max_wall;
  const double efficiency = speedup / static_cast<double>(max_shards);
  std::printf("  speedup at %zu shards: %.2fx (efficiency %.2f)%s\n",
              max_shards, speedup, efficiency,
              cores < max_shards ? "  [cores < shards: not meaningful]" : "");

  // ---- Determinism: same shard count twice => byte-identical recorder ----
  const ScalingRow rerun = run_scaling(max_shards);
  const bool identical = rerun.recorder_json == rows.back().recorder_json;
  // --shards=1 must route through the untouched serial core.
  runner::ScenarioEngine engine;
  runner::ScenarioSpec one = scaling_spec(1);
  const std::string one_json = engine.run(one).recorder.to_json(one.name);
  const bool serial_identical = one_json == rows.front().recorder_json;
  std::printf("  determinism: rerun at %zu shards %s, shards=1 vs serial "
              "%s\n",
              max_shards, identical ? "byte-identical" : "DIVERGED",
              serial_identical ? "byte-identical" : "DIVERGED");

  // ---- Large-scale acceptance: k=16, >= 100k flows, budgeted -------------
  bool large_ran = false;
  bool large_completed = false;
  size_t large_scheduled = 0, large_completed_flows = 0;
  double large_wall = 0;
  std::string large_abort;
  if (!g_quick) {
    std::printf("large-scale run (fat tree k=16, 100k flows, event "
                "budget)...\n");
    runner::ScenarioSpec big;
    big.name = "bench_parallel/large";
    big.seed = 29;
    big.protocol = runner::Protocol::kExpressPass;
    big.topology.kind = runner::TopologyKind::kFatTree;
    big.topology.fat_tree_k = 16;
    big.traffic.kind = runner::TrafficKind::kPoisson;
    big.traffic.workload = workload::WorkloadKind::kWebSearch;
    big.traffic.load = 0.4;
    big.traffic.flows = 100'000;
    big.stop = runner::StopSpec::completion(Time::ms(200));
    sim::RunBudget budget;
    budget.max_events = 20'000'000;  // graceful truncation, bounded wall
    big.budget = budget;
    big.shards = 8;
    const double t0 = now_sec();
    const runner::ScenarioResult r = engine.run(big);
    large_wall = now_sec() - t0;
    large_ran = true;
    large_completed = true;  // returned at all = completed under budget
    large_scheduled = r.scheduled;
    large_completed_flows = r.completed;
    large_abort = r.aborted ? r.abort_reason : "";
    std::printf("  %zu flows scheduled, %zu completed, %.1fs wall%s%s\n",
                r.scheduled, r.completed, large_wall,
                r.aborted ? ", budget-truncated: " : "",
                r.aborted ? r.abort_reason.c_str() : "");
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"quick\": %s,\n", g_quick ? "true" : "false");
  std::fprintf(f, "  \"cores\": %zu,\n", cores);
  std::fprintf(f, "  \"scaling\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"shards\": %zu, \"wall_sec\": %.3f, "
                 "\"goodput_gbps\": %.2f, \"data_drops\": %llu}%s\n",
                 rows[i].shards, rows[i].wall_sec,
                 rows[i].sum_rate_bps / 1e9,
                 static_cast<unsigned long long>(rows[i].data_drops),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"max_shards\": %zu,\n", max_shards);
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"efficiency\": %.3f,\n", efficiency);
  std::fprintf(f, "  \"identical_rerun\": %s,\n", identical ? "true" : "false");
  std::fprintf(f, "  \"shards1_matches_serial\": %s,\n",
               serial_identical ? "true" : "false");
  if (large_ran) {
    std::fprintf(f,
                 "  \"large\": {\"k\": 16, \"shards\": 8, \"scheduled\": %zu, "
                 "\"completed\": %zu, \"wall_sec\": %.1f, "
                 "\"finished\": %s, \"abort_reason\": \"%s\"}\n",
                 large_scheduled, large_completed_flows, large_wall,
                 large_completed ? "true" : "false", large_abort.c_str());
  } else {
    std::fprintf(f, "  \"large\": null\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return (identical && serial_identical) ? 0 : 1;
}
