// Fig 21: average-FCT speed-up when host links go from 10G to 40G (fabric
// 40G -> 100G), per protocol and size bin, @ load 0.6. Paper shape:
// ExpressPass gains the most (1.5-3.5x) except Web Server L where RCP's
// aggressive start wins; DCTCP ~2x; DX/HULL benefit least.
#include "bench/workload_runner.hpp"

using namespace xpass;

namespace {

std::array<double, stats::kNumBins> avg_fct(runner::Protocol proto,
                                            workload::WorkloadKind kind,
                                            double host_rate, bool full) {
  bench::WorkloadRunConfig cfg;
  cfg.kind = kind;
  cfg.proto = proto;
  cfg.host_rate_bps = host_rate;
  cfg.fabric_rate_bps = host_rate == 10e9 ? 40e9 : 100e9;
  cfg.full_scale = full;
  cfg.n_flows = full ? 10000 : 1200;
  auto r = bench::run_workload(cfg);
  std::array<double, stats::kNumBins> out{};
  for (size_t b = 0; b < stats::kNumBins; ++b) {
    const auto& s = r.fcts.bin(static_cast<stats::SizeBin>(b));
    out[b] = s.empty() ? 0.0 : s.mean();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 21: average FCT speed-up of 40G hosts over 10G hosts",
                "Fig 21, SIGCOMM'17");
  const std::vector<workload::WorkloadKind> kinds =
      full ? std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kWebServer,
                 workload::WorkloadKind::kWebSearch}
           : std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kWebServer};
  const std::vector<runner::Protocol> protos = {
      runner::Protocol::kExpressPass, runner::Protocol::kRcp,
      runner::Protocol::kDctcp, runner::Protocol::kDx,
      runner::Protocol::kHull};

  for (auto kind : kinds) {
    std::printf("\n### workload: %s (speed-up = FCT@10G / FCT@40G)\n",
                std::string(workload::workload_name(kind)).c_str());
    std::printf("%-14s", "protocol");
    for (size_t b = 0; b < stats::kNumBins; ++b) {
      std::printf(" %12s",
                  std::string(stats::bin_name(static_cast<stats::SizeBin>(b)))
                      .substr(0, 12)
                      .c_str());
    }
    std::printf("\n");
    for (auto proto : protos) {
      auto slow = avg_fct(proto, kind, 10e9, full);
      auto fast = avg_fct(proto, kind, 40e9, full);
      std::printf("%-14s", std::string(runner::protocol_name(proto)).c_str());
      for (size_t b = 0; b < stats::kNumBins; ++b) {
        if (fast[b] > 0 && slow[b] > 0) {
          std::printf(" %11.2fx", slow[b] / fast[b]);
        } else {
          std::printf(" %12s", "-");
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check: small-flow bins speed up less (RTT-bound); the\n"
      "ExpressPass rows show the largest gains on M/L bins; DX and HULL\n"
      "gain least (least aggressive ramp).\n");
  return 0;
}
