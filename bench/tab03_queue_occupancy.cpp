// Table 3: time-averaged and maximum fabric queue occupancy per workload x
// load x protocol. Paper shape: ExpressPass has sub-KB averages independent
// of load (the bound is a property of the topology); RCP pins the queue at
// capacity; DCTCP averages grow with load; DX/HULL stay sub-KB with modest
// maxima.
#include "bench/workload_runner.hpp"

using namespace xpass;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Table 3: avg/max fabric queue occupancy (KB) @ 10G hosts",
                "Table 3, SIGCOMM'17");
  const std::vector<workload::WorkloadKind> kinds =
      full ? std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kDataMining,
                 workload::WorkloadKind::kWebSearch,
                 workload::WorkloadKind::kCacheFollower,
                 workload::WorkloadKind::kWebServer}
           : std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kWebSearch,
                 workload::WorkloadKind::kWebServer};
  const std::vector<double> loads =
      full ? std::vector<double>{0.2, 0.4, 0.6} : std::vector<double>{0.6};
  const std::vector<runner::Protocol> protos = {
      runner::Protocol::kExpressPass, runner::Protocol::kRcp,
      runner::Protocol::kDctcp, runner::Protocol::kDx,
      runner::Protocol::kHull};

  std::printf("%-14s %5s", "workload", "load");
  for (auto p : protos) {
    std::printf(" %18s", std::string(runner::protocol_name(p)).c_str());
  }
  std::printf("\n");
  for (auto kind : kinds) {
    for (double load : loads) {
      std::printf("%-14s %5.1f",
                  std::string(workload::workload_name(kind)).c_str(), load);
      for (auto proto : protos) {
        bench::WorkloadRunConfig cfg;
        cfg.kind = kind;
        cfg.proto = proto;
        cfg.load = load;
        cfg.full_scale = full;
        cfg.n_flows = full ? 10000 : 1000;
        auto r = bench::run_workload(cfg);
        std::printf(" %8.2f/%8.1f", r.avg_switch_queue_bytes / 1e3,
                    static_cast<double>(r.max_switch_queue_bytes) / 1e3);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nCells are avg/max KB. Shape check: ExpressPass averages stay\n"
      "sub-KB and its max does not scale with load; RCP pins the max at\n"
      "queue capacity; DCTCP's average grows with load.\n");
  return 0;
}
