// Ablation: the design choices DESIGN.md calls out, each disabled in turn.
//   A. full design (defaults)
//   B. no host emission noise (exact software pacing + exact NIC limiter)
//   C. no credit-size randomization (no switch-level drain jitter)
//   D. no feedback loop (naive max-rate credits)
//   E. aggressive start (alpha = w_init = 1/2) vs workload default 1/16
// Metrics on an 8-flow dumbbell: fairness at two timescales, goodput, and
// max data queue; plus multi-bottleneck utilization for the feedback row.
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct Variant {
  const char* name;
  double jitter;
  double nic_noise;
  bool randomize_size;
  bool naive;
};

struct Row {
  double jain_1ms;
  double jain_100ms;
  double goodput_gbps;
  double max_q_kb;
};

Row run(const Variant& v, uint64_t seed) {
  sim::Simulator sim(seed);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(1));
  link.host_credit_shaper_noise = v.nic_noise;
  auto d = net::build_dumbbell(topo, 8, link, link);
  core::ExpressPassConfig cfg;
  cfg.update_period = Time::us(100);
  cfg.jitter = v.jitter;
  cfg.randomize_credit_size = v.randomize_size;
  cfg.naive = v.naive;
  core::ExpressPassTransport t(sim, cfg);
  runner::FlowDriver driver(sim, t);
  bench::FlowSpecBuilder fb;
  for (size_t i = 0; i < 8; ++i) {
    driver.add(fb.make(d.senders[i], d.receivers[i], transport::kLongRunning,
                       sim::Time::seconds(sim.rng().uniform(0.0, 2e-3))));
  }
  sim.run_until(Time::ms(10));
  driver.rates().snapshot_rates(Time::ms(10));
  double j1 = 0;
  for (int w = 0; w < 10; ++w) {
    sim.run_until(sim.now() + Time::ms(1));
    j1 += stats::jain_index(driver.rates().snapshot_rates(Time::ms(1)));
  }
  sim.run_until(Time::ms(120));
  auto rates = driver.rates().snapshot_rates(Time::ms(100));
  Row r;
  r.jain_1ms = j1 / 10;
  r.jain_100ms = stats::jain_index(rates);
  double sum = 0;
  for (double x : rates) sum += x;
  r.goodput_gbps = sum / 1e9;
  r.max_q_kb = d.bottleneck->data_queue().stats().max_bytes / 1e3;
  driver.stop_all();
  return r;
}

}  // namespace

int main(int, char**) {
  bench::header("Ablation: ExpressPass design mechanisms",
                "DESIGN.md design-choice index (jitter: Fig 6a; credit size "
                "randomization: sec 3.1; feedback: Fig 10/11)");
  const Variant variants[] = {
      {"full design", 0.1, 0.6, true, false},
      {"no emission noise", 0.0, 0.0, true, false},
      {"no size randomization", 0.1, 0.6, false, false},
      {"no noise at all", 0.0, 0.0, false, false},
      {"no feedback (naive)", 0.1, 0.6, true, true},
  };
  std::printf("%-24s %10s %11s %12s %10s\n", "variant", "Jain@1ms",
              "Jain@100ms", "goodput(G)", "maxQ(KB)");
  for (const Variant& v : variants) {
    Row a = run(v, 3);
    Row b = run(v, 7);
    std::printf("%-24s %10.3f %11.3f %12.2f %10.1f\n", v.name,
                (a.jain_1ms + b.jain_1ms) / 2,
                (a.jain_100ms + b.jain_100ms) / 2,
                (a.goodput_gbps + b.goodput_gbps) / 2,
                std::max(a.max_q_kb, b.max_q_kb));
  }
  std::printf(
      "\nReading: removing emission noise degrades short-timescale\n"
      "fairness (credit-drop lockout); the naive variant wrecks\n"
      "multi-bottleneck behavior (see fig10/fig11 benches) though it looks\n"
      "fine on this single bottleneck; everything keeps the queue bounded.\n");
  return 0;
}
