// Fig 10: parking-lot utilization. One long flow crosses N bottlenecks;
// one cross flow per link. Naive max-rate credits waste reverse-path
// bandwidth (83.3% at N=2 sliding toward 60%); the feedback loop holds
// ~98% (normalized to the max data rate).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

double link1_utilization(size_t n_links, bool naive) {
  sim::Simulator sim(61);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto p = net::build_parking_lot(topo, n_links, link, link);
  core::ExpressPassConfig cfg;
  cfg.naive = naive;
  auto t = runner::make_transport(naive ? runner::Protocol::kExpressPassNaive
                                        : runner::Protocol::kExpressPass,
                                  sim, topo, Time::us(100), &cfg);
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  driver.add(fb.make(p.long_src, p.long_dst, transport::kLongRunning));
  for (size_t i = 0; i < n_links; ++i) {
    driver.add(
        fb.make(p.cross_srcs[i], p.cross_dsts[i], transport::kLongRunning));
  }
  sim.run_until(Time::ms(15));
  const uint64_t before = p.data_links[0]->tx_data_bytes();
  sim.run_until(Time::ms(40));
  const uint64_t bytes = p.data_links[0]->tx_data_bytes() - before;
  driver.stop_all();
  const double max_data = bench::data_ceiling_bps(10e9) / 8.0 * 25e-3;
  return static_cast<double>(bytes) / max_data;
}

}  // namespace

int main(int, char**) {
  bench::header("Fig 10: parking-lot utilization of link 1",
                "Fig 10b, SIGCOMM'17 (paper: naive 83.3%..60%, feedback "
                "98%..97.8%)");
  std::printf("%14s %14s %16s\n", "bottlenecks", "naive", "with feedback");
  for (size_t n = 1; n <= 6; ++n) {
    std::printf("%14zu %13.1f%% %15.1f%%\n", n,
                100.0 * link1_utilization(n, true),
                100.0 * link1_utilization(n, false));
  }
  std::printf(
      "\nShape check: the naive column decays with depth; the feedback\n"
      "column stays flat near full utilization.\n");
  return 0;
}
