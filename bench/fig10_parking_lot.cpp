// Fig 10: parking-lot utilization. One long flow crosses N bottlenecks;
// one cross flow per link. Naive max-rate credits waste reverse-path
// bandwidth (83.3% at N=2 sliding toward 60%); the feedback loop holds
// ~98% (normalized to the max data rate).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

double link1_utilization(size_t n_links, bool naive) {
  runner::ScenarioSpec s;
  s.name = std::string("fig10/") + (naive ? "naive" : "feedback") + "/" +
           std::to_string(n_links);
  s.seed = 61;
  s.topology.kind = runner::TopologyKind::kParkingLot;
  s.topology.scale = n_links;
  s.protocol = naive ? runner::Protocol::kExpressPassNaive
                     : runner::Protocol::kExpressPass;
  s.xp.emplace();
  s.xp->naive = naive;
  s.traffic.kind = runner::TrafficKind::kChain;
  s.stop = runner::StopSpec::measure_window(Time::ms(15), Time::ms(25));
  const auto r = runner::ScenarioEngine().run(s);
  const double max_data = bench::data_ceiling_bps(10e9) / 8.0 * 25e-3;
  return static_cast<double>(r.bottleneck_tx_data_bytes) / max_data;
}

}  // namespace

int main(int, char**) {
  bench::header("Fig 10: parking-lot utilization of link 1",
                "Fig 10b, SIGCOMM'17 (paper: naive 83.3%..60%, feedback "
                "98%..97.8%)");
  std::printf("%14s %14s %16s\n", "bottlenecks", "naive", "with feedback");
  for (size_t n = 1; n <= 6; ++n) {
    std::printf("%14zu %13.1f%% %15.1f%%\n", n,
                100.0 * link1_utilization(n, true),
                100.0 * link1_utilization(n, false));
  }
  std::printf(
      "\nShape check: the naive column decays with depth; the feedback\n"
      "column stays flat near full utilization.\n");
  return 0;
}
