// Fig 11: fairness with multiple bottlenecks. Flow 0 has a single
// bottleneck (link 1); flows 1..N cross three links. Max-min fairness gives
// everyone C/(N+1). Naive credits leave flow 0 near half the link; the
// feedback loop tracks max-min closely for small N and degrades gracefully
// once flows get less than a credit per RTT.
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

double flow0_gbps(size_t n, bool naive) {
  runner::ScenarioSpec s;
  s.name = std::string("fig11/") + (naive ? "naive" : "feedback") + "/" +
           std::to_string(n);
  s.seed = 67;
  s.topology.kind = runner::TopologyKind::kMultiBottleneck;
  s.topology.scale = n;
  s.protocol = naive ? runner::Protocol::kExpressPassNaive
                     : runner::Protocol::kExpressPass;
  s.xp.emplace();
  s.xp->naive = naive;
  s.traffic.kind = runner::TrafficKind::kChain;
  s.stop = runner::StopSpec::measure_window(Time::ms(15), Time::ms(25));
  const auto r = runner::ScenarioEngine().run(s);
  return r.rate_of(1) / 1e9;  // flow id 1 = the single-bottleneck flow 0
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 11: flow 0 throughput in the multi-bottleneck topology",
                "Fig 11b, SIGCOMM'17");
  const std::vector<size_t> ns = full
                                     ? std::vector<size_t>{1,  4,   16,  64,
                                                           256, 1024}
                                     : std::vector<size_t>{1, 4, 16, 64};
  std::printf("%8s %12s %16s %16s\n", "N", "naive(G)", "feedback(G)",
              "max-min ideal(G)");
  for (size_t n : ns) {
    const double ideal = bench::data_ceiling_bps(10e9) / (n + 1) / 1e9;
    std::printf("%8zu %12.3f %16.3f %16.3f\n", n, flow0_gbps(n, true),
                flow0_gbps(n, false), ideal);
  }
  std::printf(
      "\nShape check: naive stays near half the link regardless of N;\n"
      "feedback tracks the max-min column closely for small N (paper: gap\n"
      "opens beyond ~4 flows; fairness deteriorates with less than one\n"
      "credit per RTT).\n");
  return 0;
}
