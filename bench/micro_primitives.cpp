// Micro-benchmarks of the simulator primitives (google-benchmark): event
// queue throughput, symmetric hashing, queue operations, and a packed
// end-to-end packet-forwarding rate. These bound how much simulated traffic
// the experiment benches can afford.
#include <benchmark/benchmark.h>

#include "net/queue.hpp"
#include "net/switch.hpp"
#include "net/topology_builders.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace xpass;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      q.schedule(sim::Time::ns(i * 7 % 997), [&sink] { ++sink; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueScheduleCancel(benchmark::State& state) {
  // Teardown pattern: schedule then cancel, draining the heap entries.
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1024; ++i) {
      sim::TimerId id = q.schedule(sim::Time::ns(i * 7 % 997), [] {});
      q.cancel(id);
    }
    q.run();
    benchmark::DoNotOptimize(q.pending());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleCancel);

void BM_EventQueueChurn(benchmark::State& state) {
  // Mixed fire/cancel churn, including the cancel-after-fire no-op that a
  // tombstone-based queue turns into a leak.
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 512; ++i) {
      sim::TimerId fired =
          q.schedule(q.now() + sim::Time::ns(1), [&sink] { ++sink; });
      sim::TimerId live =
          q.schedule(q.now() + sim::Time::ns(2), [&sink] { ++sink; });
      q.step();
      q.cancel(live);
      q.cancel(fired);
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueChurn);

void BM_SymmetricHash(benchmark::State& state) {
  uint64_t acc = 0;
  uint32_t i = 0;
  for (auto _ : state) {
    acc ^= net::Switch::symmetric_hash(i, i * 2654435761u, i * 40503u);
    ++i;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SymmetricHash);

void BM_DropTailQueueCycle(benchmark::State& state) {
  net::DropTailQueue q;
  sim::Time t;
  uint64_t n = 0;
  for (auto _ : state) {
    t += sim::Time::ns(100);
    net::Packet p = net::make_data(1, 0, 1, n++, net::kMssBytes);
    q.enqueue(std::move(p), t);
    benchmark::DoNotOptimize(q.dequeue(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailQueueCycle);

void BM_PacketForwardingFatTree(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(7);
    net::Topology topo(sim);
    net::LinkConfig link;
    link.rate_bps = 10e9;
    link.prop_delay = sim::Time::us(1);
    auto ft = net::build_fat_tree(topo, 4, link, link);
    state.ResumeTiming();
    // Inject 1000 packets host0 -> hostN and run them through the fabric.
    for (int i = 0; i < 1000; ++i) {
      ft.hosts[0]->send(net::make_data(1, ft.hosts[0]->id(),
                                       ft.hosts.back()->id(), i,
                                       net::kMssBytes));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PacketForwardingFatTree);

}  // namespace

BENCHMARK_MAIN();
