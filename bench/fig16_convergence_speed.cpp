// Fig 16: convergence time in RTTs at 10G and 100G bottlenecks, with base
// RTT 100us. ExpressPass converges in a handful of RTTs *independent of
// link speed*; DCTCP's additive increase needs hundreds of RTTs at 10G and
// thousands at 100G; RCP's explicit rate converges in a few RTTs.
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

// A flow joins a loaded link; returns RTTs until both flows hold within
// 25% of the fair share for 3 consecutive RTTs (the paper's notion of
// "converged" — a transient slow-start burst does not count).
double converge_rtts(runner::Protocol proto, double rate_bps, double alpha,
                     int max_rtts) {
  sim::Simulator sim(9);
  net::Topology topo(sim);
  // Links get 4us prop + host 1us-ish to make a ~100us RTT fabric as in the
  // paper's simulation setup.
  auto link = runner::protocol_link_config(proto, rate_bps, Time::us(12));
  auto d = net::build_dumbbell(topo, 2, link, link);
  const Time rtt = Time::us(100);
  core::ExpressPassConfig xp;
  xp.alpha_init = alpha;
  xp.w_init = alpha >= 0.5 ? 0.5 : alpha;
  auto t = runner::make_transport(proto, sim, topo, rtt, &xp);
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  driver.add(fb.make(d.senders[0], d.receivers[0], transport::kLongRunning));
  const Time join = rtt * 20;
  driver.add(
      fb.make(d.senders[1], d.receivers[1], transport::kLongRunning, join));
  sim.run_until(join);
  driver.rates().snapshot_rates_by_flow(join);
  const double fair = 0.475 * rate_bps;  // data ceiling / 2
  int streak = 0;
  for (int k = 1; k <= max_rtts; ++k) {
    sim.run_until(join + rtt * k);
    auto rates = driver.rates().snapshot_rates_by_flow(rtt);
    const bool fair_now = rates[1] > 0.75 * fair && rates[1] < 1.35 * fair &&
                          rates[2] > 0.75 * fair && rates[2] < 1.35 * fair;
    streak = fair_now ? streak + 1 : 0;
    if (streak >= 3) {
      driver.stop_all();
      return k - 2;
    }
  }
  driver.stop_all();
  return -1;
}

struct RowSpec {
  const char* name;
  runner::Protocol proto;
  double alpha;
  int cap10;
  int cap100;
  const char* paper;
};

void print_row(const RowSpec& s, double r10, double r100) {
  char b10[32], b100[32];
  if (r10 < 0) {
    std::snprintf(b10, sizeof b10, ">%d", s.cap10);
  } else {
    std::snprintf(b10, sizeof b10, "%.0f", r10);
  }
  if (r100 < 0) {
    std::snprintf(b100, sizeof b100, ">%d", s.cap100);
  } else {
    std::snprintf(b100, sizeof b100, "%.0f", r100);
  }
  std::printf("%-28s %10s %10s   [paper: %s]\n", s.name, b10, b100, s.paper);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 16: convergence time in RTTs (RTT=100us)",
                "Fig 16, SIGCOMM'17");
  std::printf("%-28s %10s %10s\n", "protocol", "@10G", "@100G");
  const std::vector<RowSpec> specs = {
      {"ExpressPass (a=1/2)", runner::Protocol::kExpressPass, 0.5, 40, 40,
       "3 RTTs @10G and @100G"},
      {"ExpressPass (a=1/16)", runner::Protocol::kExpressPass, 1.0 / 16, 60,
       60, "6 RTTs @10G and @100G"},
      {"RCP", runner::Protocol::kRcp, 0, 40, 40, "3 RTTs"},
      {"DCTCP", runner::Protocol::kDctcp, 0, full ? 1000 : 600,
       full ? 6000 : 1200, "260 RTTs @10G, 2350 @100G"},
  };
  // Each (row, link speed) pair is an independent simulation; the DCTCP
  // 100G run dominates serial wall-clock, so fan the grid out.
  exec::SweepRunner pool(bench::jobs_arg(argc, argv));
  const auto rtts = pool.map(specs.size() * 2, [&](size_t i) {
    const RowSpec& s = specs[i / 2];
    return i % 2 == 0 ? converge_rtts(s.proto, 10e9, s.alpha, s.cap10)
                      : converge_rtts(s.proto, 100e9, s.alpha, s.cap100);
  });
  for (size_t r = 0; r < specs.size(); ++r) {
    print_row(specs[r], rtts[2 * r], rtts[2 * r + 1]);
  }
  std::printf(
      "\nShape check: ExpressPass/RCP converge in a few RTTs at both\n"
      "speeds; DCTCP needs O(BDP) RTTs and degrades ~10x from 10G->100G.\n");
  return 0;
}
