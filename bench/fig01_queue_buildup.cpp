// Fig 1: data queue length under partition/aggregate fan-in, vs number of
// concurrent flows, for (a) a hypothetically ideal rate control, (b) DCTCP,
// and (c) the credit-based scheme.
//
// An 8-ary fat tree (128 hosts, 10G) hosts the workers; everyone sends to
// one master host. Even the oracle — exact fair shares, perfect pacing —
// builds a queue that grows with the flow count because independently paced
// packets coincide; DCTCP is worse (min cwnd 2 per flow); the credit scheme
// bounds the queue regardless of fan-out because the credit arrival order
// schedules data arrivals.
#include "bench/common.hpp"
#include "transport/ideal.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct Cell {
  uint64_t max_queue_bytes;
  uint64_t drops;
};

Cell run(const char* kind, size_t fanout, bool full) {
  sim::Simulator sim(77);
  net::Topology topo(sim);
  const runner::Protocol proto = std::string_view(kind) == "dctcp"
                                     ? runner::Protocol::kDctcp
                                     : runner::Protocol::kExpressPass;
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto ft = net::build_fat_tree(topo, full ? 8 : 4, link, link);
  for (auto* h : ft.hosts) {
    h->set_delay_model(net::HostDelayModel::hardware());
  }
  net::Host* master = ft.hosts[0];

  std::unique_ptr<transport::Transport> t;
  if (std::string_view(kind) == "ideal") {
    t = std::make_unique<transport::IdealTransport>(sim, topo, 1.0);
  } else {
    t = runner::make_transport(proto, sim, topo, Time::us(100));
  }
  runner::FlowDriver driver(sim, *t);
  std::vector<net::Host*> workers(ft.hosts.begin() + 1, ft.hosts.end());
  auto specs = workload::incast_flows(workers, master,
                                      transport::kLongRunning, fanout);
  driver.add_all(specs);
  sim.run_until(Time::ms(full ? 20 : 10));
  // The bottleneck is the master's ToR downlink: the peer port of its NIC.
  net::Port* down = master->nic().peer();
  Cell c;
  c.max_queue_bytes = down->data_queue().stats().max_bytes;
  c.drops = topo.data_drops();
  driver.stop_all();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 1: data queue vs concurrent flows (partition/aggregate)",
                "Fig 1, SIGCOMM'17 (shape: ideal & DCTCP queues grow with "
                "fan-out and overflow; credit-based stays bounded)");
  const std::vector<size_t> fanouts =
      full ? std::vector<size_t>{32, 64, 128, 256, 512, 1024, 2048}
           : std::vector<size_t>{32, 64, 128, 256, 512};
  std::printf("%8s %18s %18s %18s %10s\n", "flows", "ideal maxQ(pkts)",
              "dctcp maxQ(pkts)", "credit maxQ(pkts)", "drops(i/d/c)");
  for (size_t f : fanouts) {
    Cell ideal = run("ideal", f, full);
    Cell dctcp = run("dctcp", f, full);
    Cell credit = run("credit", f, full);
    std::printf("%8zu %18.1f %18.1f %18.1f  %zu/%zu/%zu\n", f,
                ideal.max_queue_bytes / 1538.0, dctcp.max_queue_bytes / 1538.0,
                credit.max_queue_bytes / 1538.0,
                static_cast<size_t>(ideal.drops),
                static_cast<size_t>(dctcp.drops),
                static_cast<size_t>(credit.drops));
  }
  std::printf(
      "\nShape check: ideal/DCTCP columns grow with flow count (DCTCP "
      "saturating at the\nqueue capacity of 250 pkts with drops); the credit "
      "column stays flat and small.\n");
  return 0;
}
