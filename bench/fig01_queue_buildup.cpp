// Fig 1: data queue length under partition/aggregate fan-in, vs number of
// concurrent flows, for (a) a hypothetically ideal rate control, (b) DCTCP,
// and (c) the credit-based scheme.
//
// An 8-ary fat tree (128 hosts, 10G) hosts the workers; everyone sends to
// one master host. Even the oracle — exact fair shares, perfect pacing —
// builds a queue that grows with the flow count because independently paced
// packets coincide; DCTCP is worse (min cwnd 2 per flow); the credit scheme
// bounds the queue regardless of fan-out because the credit arrival order
// schedules data arrivals.
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

runner::ScenarioSpec spec(runner::Protocol proto, size_t fanout, bool full) {
  runner::ScenarioSpec s;
  s.name = "fig01/" + std::string(runner::protocol_name(proto)) + "/" +
           std::to_string(fanout);
  s.seed = 77;
  s.topology.kind = runner::TopologyKind::kFatTree;
  s.topology.fat_tree_k = full ? 8 : 4;
  s.topology.host_delay = runner::HostDelay::kHardware;
  s.protocol = proto;
  // All workers (hosts[1..], cycled) send to the master (hosts[0]); the
  // bottleneck is the master's ToR downlink.
  s.traffic.kind = runner::TrafficKind::kIncast;
  s.traffic.flows = fanout;
  s.stop = runner::StopSpec::run_for(Time::ms(full ? 20 : 10));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 1: data queue vs concurrent flows (partition/aggregate)",
                "Fig 1, SIGCOMM'17 (shape: ideal & DCTCP queues grow with "
                "fan-out and overflow; credit-based stays bounded)");
  const std::vector<size_t> fanouts =
      full ? std::vector<size_t>{32, 64, 128, 256, 512, 1024, 2048}
           : std::vector<size_t>{32, 64, 128, 256, 512};
  runner::ScenarioEngine engine;
  std::printf("%8s %18s %18s %18s %10s\n", "flows", "ideal maxQ(pkts)",
              "dctcp maxQ(pkts)", "credit maxQ(pkts)", "drops(i/d/c)");
  for (size_t f : fanouts) {
    auto ideal = engine.run(spec(runner::Protocol::kIdeal, f, full));
    auto dctcp = engine.run(spec(runner::Protocol::kDctcp, f, full));
    auto credit = engine.run(spec(runner::Protocol::kExpressPass, f, full));
    std::printf("%8zu %18.1f %18.1f %18.1f  %zu/%zu/%zu\n", f,
                ideal.bottleneck_max_queue_bytes / 1538.0,
                dctcp.bottleneck_max_queue_bytes / 1538.0,
                credit.bottleneck_max_queue_bytes / 1538.0,
                static_cast<size_t>(ideal.data_drops),
                static_cast<size_t>(dctcp.data_drops),
                static_cast<size_t>(credit.data_drops));
  }
  std::printf(
      "\nShape check: ideal/DCTCP columns grow with flow count (DCTCP "
      "saturating at the\nqueue capacity of 250 pkts with drops); the credit "
      "column stays flat and small.\n");
  return 0;
}
