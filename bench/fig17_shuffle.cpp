// Fig 17: MapReduce-style shuffle under a single ToR — all-to-all transfers
// between tasks on every host. Paper (40 hosts x 8 tasks x 1MB): DCTCP has
// a slightly better median FCT, but ExpressPass is 1.51x better at the 99th
// percentile and 6.65x better at the tail, because DCTCP's stragglers pile
// onto a few hosts and hit RTO-driven timeouts.
#include "bench/workload_runner.hpp"

using namespace xpass;
using sim::Time;

namespace {

stats::FctCollector run(runner::Protocol proto, size_t hosts, size_t tasks,
                        uint64_t bytes) {
  runner::ScenarioSpec s;
  s.name = "fig17/" + std::string(runner::protocol_name(proto));
  s.seed = 33;
  s.topology.kind = runner::TopologyKind::kStar;
  s.topology.scale = hosts;
  s.topology.host_delay = runner::HostDelay::kTestbed;
  s.protocol = proto;
  s.traffic.kind = runner::TrafficKind::kShuffle;
  s.traffic.tasks_per_host = tasks;
  s.traffic.bytes = bytes;
  s.stop = runner::StopSpec::completion(Time::sec(60));
  const auto r = runner::ScenarioEngine().run(s);
  std::printf("  [%s: %zu/%zu flows completed, %zu data drops]\n",
              std::string(runner::protocol_name(proto)).c_str(), r.completed,
              r.scheduled, static_cast<size_t>(r.data_drops));
  return r.fcts;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 17: shuffle workload FCT distribution",
                "Fig 17, SIGCOMM'17 (paper: DCTCP median 2.05s vs XP 2.23s; "
                "p99 XP 1.51x better; max XP 6.65x better)");
  // Scaled: 16 hosts x 4 tasks x 250KB by default (40 x 8 x 1MB with
  // --full). The scaled run must still oversubscribe each receiver with
  // more concurrent flows (here 15*16 = 240) than the 250-packet queue can
  // hold at DCTCP's minimum window, or the straggler/timeout tail the
  // figure is about never materializes.
  const size_t hosts = full ? 40 : 20;
  const size_t tasks = full ? 8 : 6;
  const uint64_t bytes = full ? 1'000'000 : 300'000;
  std::printf("hosts=%zu tasks/host=%zu bytes/flow=%zu -> %zu flows/host\n",
              hosts, tasks, bytes, (hosts - 1) * tasks * tasks);

  auto xp = run(runner::Protocol::kExpressPass, hosts, tasks, bytes);
  auto dctcp = run(runner::Protocol::kDctcp, hosts, tasks, bytes);

  std::printf("\n%12s %12s %12s %10s\n", "percentile", "XP (s)", "DCTCP (s)",
              "DCTCP/XP");
  for (double p : {0.50, 0.90, 0.99, 1.0}) {
    const double a = xp.all().percentile(p);
    const double b = dctcp.all().percentile(p);
    std::printf("%11.0f%% %12.3f %12.3f %10.2f\n", p * 100, a, b,
                a > 0 ? b / a : 0.0);
  }
  std::printf(
      "\nShape check: the ratio column rises with the percentile — DCTCP\n"
      "competitive at the median, ExpressPass far better in the tail.\n");
  return 0;
}
