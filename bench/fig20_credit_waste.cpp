// Fig 20: credit waste ratio by workload and link speed, for alpha = 1/2
// and 1/16 @ load 0.6. Waste grows as the average flow size shrinks (Web
// Server worst) and with the BDP (40G worse than 10G); alpha=1/16 cuts it
// substantially (paper: 60% -> 31% at 40G Web Server).
#include "bench/workload_runner.hpp"

using namespace xpass;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 20: credit waste ratio @ load 0.6",
                "Fig 20, SIGCOMM'17");
  const std::vector<workload::WorkloadKind> kinds =
      full ? std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kDataMining,
                 workload::WorkloadKind::kWebSearch,
                 workload::WorkloadKind::kCacheFollower,
                 workload::WorkloadKind::kWebServer}
           : std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kWebSearch,
                 workload::WorkloadKind::kWebServer};

  std::printf("%-16s %14s %14s %14s %14s\n", "workload", "10G a=1/2",
              "10G a=1/16", "40G a=1/2", "40G a=1/16");
  // The 10G a=1/16 cell doubles as the ExpressPass column of the shootout
  // table below (identical config) — cache it instead of re-running.
  std::vector<double> xp_waste_10g;
  for (auto kind : kinds) {
    std::printf("%-16s", std::string(workload::workload_name(kind)).c_str());
    for (double host_rate : {10e9, 40e9}) {
      for (double alpha : {0.5, 1.0 / 16}) {
        bench::WorkloadRunConfig cfg;
        cfg.kind = kind;
        cfg.proto = runner::Protocol::kExpressPass;
        cfg.host_rate_bps = host_rate;
        cfg.fabric_rate_bps = host_rate == 10e9 ? 40e9 : 100e9;
        cfg.full_scale = full;
        cfg.n_flows = full ? 10000 : 1000;
        cfg.xp_alpha = alpha;
        cfg.xp_w_init = alpha;
        auto r = bench::run_workload(cfg);
        if (host_rate == 10e9 && alpha != 0.5) {
          xp_waste_10g.push_back(r.credit_waste_ratio);
        }
        std::printf(" %13.1f%%", 100.0 * r.credit_waste_ratio);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (paper Fig 20): waste grows toward the small-flow\n"
      "workloads (left to right: DataMining 3-4%% ... WebServer 19-60%%),\n"
      "is higher at 40G than 10G, and alpha=1/16 roughly halves it.\n");

  // Three-way proactive shootout @ 10G: how much permission-packet
  // overcommit each scheme pays on the same workloads. ExpressPass credits
  // blindly (waste = credits answered with nothing); SIRD grants against
  // sender-advertised demand (waste collapses to grants in flight past the
  // tail); BFC issues no permission packets at all (identically zero).
  // Each protocol is normalized by its own denominator
  // (xp.credit_waste_ratio vs proactive.waste_ratio).
  std::printf("\n### proactive shootout: permission waste @ 10G, a=1/16\n");
  std::printf("%-16s %14s %14s %14s\n", "workload", "ExpressPass", "SIRD",
              "BFC");
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::printf("%-16s",
                std::string(workload::workload_name(kinds[k])).c_str());
    std::printf(" %13.1f%%", 100.0 * xp_waste_10g[k]);
    for (auto proto :
         {runner::Protocol::kSird, runner::Protocol::kBfc}) {
      bench::WorkloadRunConfig cfg;
      cfg.kind = kinds[k];
      cfg.proto = proto;
      cfg.full_scale = full;
      cfg.n_flows = full ? 10000 : 1000;
      auto r = bench::run_workload(cfg);
      std::printf(" %13.1f%%", 100.0 * r.credit_waste_ratio);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: SIRD's demand-informed waste is a small fraction of\n"
      "ExpressPass's blind-crediting waste on every workload; BFC, with no\n"
      "proactive admission, is identically zero.\n");
  return 0;
}
