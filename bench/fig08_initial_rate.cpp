// Fig 8: the initial-rate trade-off. (a) convergence time of a new flow
// joining an existing one, as the initial credit rate drops from max_rate
// to max_rate/32 (paper: 2 -> 14 RTTs); (b) credits wasted by a one-packet
// flow on an idle 100us-RTT network (paper: ~80 credits at init=max down to
// ~2 at max/32).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

double converge_rtts_once(double alpha, uint64_t seed) {
  sim::Simulator sim(seed);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(12));
  auto d = net::build_dumbbell(topo, 2, link, link);
  const Time rtt = Time::us(100);
  core::ExpressPassConfig xp;
  xp.alpha_init = alpha;
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  rtt, &xp);
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  driver.add(fb.make(d.senders[0], d.receivers[0], transport::kLongRunning));
  const Time join = rtt * 20;
  driver.add(
      fb.make(d.senders[1], d.receivers[1], transport::kLongRunning, join));
  sim.run_until(join);
  driver.rates().snapshot_rates_by_flow(join);
  for (int k = 1; k <= 100; ++k) {
    sim.run_until(join + rtt * k);
    auto rates = driver.rates().snapshot_rates_by_flow(rtt);
    if (rates[2] > 0.4 * 10e9) {
      driver.stop_all();
      return k;
    }
  }
  driver.stop_all();
  return 100;
}

double converge_rtts(double alpha) {
  double sum = 0;
  for (uint64_t seed : {15, 115, 215, 315, 415}) {
    sum += converge_rtts_once(alpha, seed);
  }
  return sum / 5.0;
}

double wasted_credits(double alpha) {
  sim::Simulator sim(16);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(12));
  auto d = net::build_dumbbell(topo, 1, link, link);
  core::ExpressPassConfig xp;
  xp.alpha_init = alpha;
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100), &xp);
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  driver.add(fb.make(d.senders[0], d.receivers[0], 1000));  // one packet
  driver.run_to_completion(Time::ms(50));
  sim.run_until(sim.now() + Time::ms(5));  // let stray credits arrive
  auto* c = dynamic_cast<core::ExpressPassConnection*>(
      driver.connections()[0].get());
  const double wasted =
      static_cast<double>(c->credits_wasted() + topo.stray_credits());
  driver.stop_all();
  return wasted;
}

}  // namespace

int main(int, char**) {
  bench::header("Fig 8: initial-rate trade-off (convergence vs credit waste)",
                "Fig 8, SIGCOMM'17 (paper: 2->14 RTTs and ~80->2 credits as "
                "alpha goes 1 -> 1/32)");
  std::printf("%12s %20s %22s\n", "init/max", "convergence (RTTs)",
              "1-pkt flow waste (credits)");
  for (double alpha : {1.0, 0.5, 0.25, 0.125, 1.0 / 16, 1.0 / 32}) {
    std::printf("%12.4f %20.0f %22.0f\n", alpha, converge_rtts(alpha),
                wasted_credits(alpha));
  }
  std::printf(
      "\nShape check: convergence RTTs increase and wasted credits decrease\n"
      "monotonically as the initial rate drops.\n");
  return 0;
}
