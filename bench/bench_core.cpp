// Event-core performance baseline: measures schedule/cancel/fire throughput
// of sim::EventQueue against an embedded copy of the seed implementation
// (std::function callbacks, std::priority_queue, tombstone set), plus
// end-to-end events/sec on the Fig-15 flow-scalability scenario, and emits
// the results as BENCH_core.json (schema documented in EXPERIMENTS.md).
//
// This seeds the repo's perf trajectory: later PRs compare their committed
// BENCH_core.json against this one. Usage:
//
//   bench_core [output.json]        # default output: ./BENCH_core.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "bench/common.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace xpass;
using sim::Time;

// ---- Seed event queue (verbatim behavior of the pre-rebuild core) --------
// Kept here, not in src/: it exists only so the speedup in BENCH_core.json
// is measured in-binary under identical compiler flags, not against a stale
// recorded number.

class SeedEventQueue {
 public:
  struct TimerId {
    uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  TimerId schedule(Time t, std::function<void()> cb) {
    const uint64_t seq = next_seq_++;
    heap_.push(Entry{t, seq, std::move(cb)});
    ++live_count_;
    return TimerId{seq};
  }

  void cancel(TimerId id) {
    if (!id.valid()) return;
    cancelled_.insert(id.id);  // may have already fired: leaks forever
  }

  Time now() const { return now_; }

  bool step() {
    while (!heap_.empty()) {
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      auto it = cancelled_.find(e.seq);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        if (live_count_ > 0) --live_count_;
        continue;
      }
      now_ = e.t;
      if (live_count_ > 0) --live_count_;
      e.cb();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  size_t tombstones() const { return cancelled_.size(); }

 private:
  struct Entry {
    Time t;
    uint64_t seq;
    std::function<void()> cb;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<uint64_t> cancelled_;
  Time now_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
};

// ---- Microbenchmarks -----------------------------------------------------

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr size_t kOps = 1 << 21;   // ~2M primitive cycles per microbench
constexpr size_t kBatch = 4096;    // pending events per drain batch

uint64_t lcg_next(uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s;
}

// One op = schedule an event and (eventually) fire it.
template <class Q>
double bench_schedule_fire() {
  Q q;
  uint64_t sink = 0;
  uint64_t rng = 42;
  const double t0 = now_sec();
  for (size_t done = 0; done < kOps; done += kBatch) {
    for (size_t i = 0; i < kBatch; ++i) {
      q.schedule(q.now() + Time::ns(1 + (lcg_next(rng) >> 40) % 1000),
                 [&sink] { ++sink; });
    }
    q.run();
  }
  const double dt = now_sec() - t0;
  if (sink != kOps) std::fprintf(stderr, "bench bug: %llu fires\n",
                                 static_cast<unsigned long long>(sink));
  return static_cast<double>(kOps) / dt;
}

// One op = schedule an event, cancel it, and drain its queue entry. This is
// the exact pattern of connection teardown and RTO rescheduling.
template <class Q>
double bench_schedule_cancel() {
  Q q;
  using Id = decltype(q.schedule(Time::zero(), [] {}));
  std::vector<Id> ids;
  ids.reserve(kBatch);
  uint64_t rng = 43;
  const double t0 = now_sec();
  for (size_t done = 0; done < kOps; done += kBatch) {
    for (size_t i = 0; i < kBatch; ++i) {
      ids.push_back(
          q.schedule(q.now() + Time::ns(1 + (lcg_next(rng) >> 40) % 1000),
                     [] {}));
    }
    for (const Id& id : ids) q.cancel(id);
    ids.clear();
    q.run();  // drain the cancelled entries
  }
  return static_cast<double>(kOps) / (now_sec() - t0);
}

// Mixed churn including cancel-after-fire, the leak path: each cycle
// schedules two events, fires one, cancels the other, then cancels the
// already-fired id (a no-op that the seed queue turns into a permanent
// tombstone).
template <class Q>
double bench_churn() {
  Q q;
  uint64_t sink = 0;
  uint64_t rng = 44;
  const double t0 = now_sec();
  for (size_t cycle = 0; cycle < kOps / 2; ++cycle) {
    auto fired = q.schedule(q.now() + Time::ns(1), [&sink] { ++sink; });
    auto live = q.schedule(
        q.now() + Time::ns(2 + (lcg_next(rng) >> 40) % 100), [&sink] { ++sink; });
    q.step();        // fires `fired`
    q.cancel(live);  // cancel-before-fire
    q.cancel(fired); // cancel-after-fire: must not retain state
    if ((cycle & 1023) == 1023) q.run();  // drain cancelled entries
  }
  q.run();
  return static_cast<double>(kOps) / (now_sec() - t0);
}

// ---- Fig-15 scenario events/sec ------------------------------------------

struct ScenarioResult {
  size_t flows;
  uint64_t events_fired;
  double wall_sec;
  double events_per_sec;
  double goodput_gbps;
};

ScenarioResult bench_fig15(size_t n_flows) {
  const double t0 = now_sec();
  sim::Simulator sim(29);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, n_flows, link, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  for (size_t i = 0; i < n_flows; ++i) {
    driver.add(fb.make(d.senders[i], d.receivers[i], transport::kLongRunning,
                       Time::seconds(sim.rng().uniform(0.0, 5e-3))));
  }
  const Time warmup = Time::ms(20);
  const Time window = Time::ms(50);
  sim.run_until(warmup);
  driver.rates().snapshot_rates(warmup);
  sim.run_until(warmup + window);
  auto rates = driver.rates().snapshot_rates(window);
  double sum = 0;
  for (double x : rates) sum += x;
  driver.stop_all();
  ScenarioResult r;
  r.flows = n_flows;
  r.events_fired = sim.events().fired();
  r.wall_sec = now_sec() - t0;
  r.events_per_sec = static_cast<double>(r.events_fired) / r.wall_sec;
  r.goodput_gbps = sum / 1e9;
  return r;
}

}  // namespace

// Best-of-3: microbench numbers gate later PRs, so shield them from
// one-off scheduler noise.
template <typename F>
double best_of_3(F f) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) best = std::max(best, f());
  return best;
}

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_core.json";

  std::printf("event-core microbenchmarks (%zu ops each, best of 3)...\n",
              kOps);
  const double sf = best_of_3(bench_schedule_fire<sim::EventQueue>);
  const double sc = best_of_3(bench_schedule_cancel<sim::EventQueue>);
  const double ch = best_of_3(bench_churn<sim::EventQueue>);
  std::printf("  slot-pool queue : schedule+fire %.2fM/s  schedule+cancel "
              "%.2fM/s  churn %.2fM/s\n",
              sf / 1e6, sc / 1e6, ch / 1e6);
  const double seed_sf = best_of_3(bench_schedule_fire<SeedEventQueue>);
  const double seed_sc = best_of_3(bench_schedule_cancel<SeedEventQueue>);
  const double seed_ch = best_of_3(bench_churn<SeedEventQueue>);
  std::printf("  seed queue      : schedule+fire %.2fM/s  schedule+cancel "
              "%.2fM/s  churn %.2fM/s\n",
              seed_sf / 1e6, seed_sc / 1e6, seed_ch / 1e6);
  std::printf("  speedup         : schedule+fire %.2fx  schedule+cancel "
              "%.2fx  churn %.2fx\n",
              sf / seed_sf, sc / seed_sc, ch / seed_ch);

  std::printf("fig15 flow-scalability scenario (ExpressPass, dumbbell)...\n");
  std::vector<ScenarioResult> scen;
  for (size_t flows : {64, 256}) {
    scen.push_back(bench_fig15(flows));
    const ScenarioResult& r = scen.back();
    std::printf("  %4zu flows: %llu events in %.2fs -> %.2fM events/s "
                "(goodput %.2fG)\n",
                r.flows, static_cast<unsigned long long>(r.events_fired),
                r.wall_sec, r.events_per_sec / 1e6, r.goodput_gbps);
  }

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"core\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"config\": {\"ops_per_microbench\": %zu, "
                  "\"batch\": %zu},\n", kOps, kBatch);
  std::fprintf(f, "  \"event_queue\": {\n");
  std::fprintf(f, "    \"schedule_fire_ops_per_sec\": %.0f,\n", sf);
  std::fprintf(f, "    \"schedule_cancel_ops_per_sec\": %.0f,\n", sc);
  std::fprintf(f, "    \"churn_ops_per_sec\": %.0f\n", ch);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"seed_baseline\": {\n");
  std::fprintf(f, "    \"schedule_fire_ops_per_sec\": %.0f,\n", seed_sf);
  std::fprintf(f, "    \"schedule_cancel_ops_per_sec\": %.0f,\n", seed_sc);
  std::fprintf(f, "    \"churn_ops_per_sec\": %.0f\n", seed_ch);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_vs_seed\": {\n");
  std::fprintf(f, "    \"schedule_fire\": %.3f,\n", sf / seed_sf);
  std::fprintf(f, "    \"schedule_cancel\": %.3f,\n", sc / seed_sc);
  std::fprintf(f, "    \"churn\": %.3f\n", ch / seed_ch);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fig15_scenario\": [\n");
  for (size_t i = 0; i < scen.size(); ++i) {
    const ScenarioResult& r = scen[i];
    std::fprintf(f,
                 "    {\"flows\": %zu, \"events_fired\": %llu, "
                 "\"wall_sec\": %.3f, \"events_per_sec\": %.0f, "
                 "\"goodput_gbps\": %.2f}%s\n",
                 r.flows, static_cast<unsigned long long>(r.events_fired),
                 r.wall_sec, r.events_per_sec, r.goodput_gbps,
                 i + 1 < scen.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
