// Event-core performance baseline: measures schedule/cancel/fire throughput
// of sim::EventQueue against an embedded copy of the seed implementation
// (std::function callbacks, std::priority_queue, tombstone set), plus
// end-to-end events/sec on the Fig-15 flow-scalability scenario, and emits
// the results as BENCH_core.json (schema documented in EXPERIMENTS.md).
//
// It also emits BENCH_hotpath.json: per-packet-hop event accounting for the
// fig15 scenario in both port event modes (legacy tx-done events vs the
// coalesced self-scheduling port), the comparison against the committed
// baseline throughput, and the 12-point scalability sweep timed at
// --jobs 1 vs --jobs N with a byte-identity check on the reduced rows.
//
// This seeds the repo's perf trajectory: later PRs compare their committed
// BENCH_core.json against this one. Usage:
//
//   bench_core [core.json] [hotpath.json] [--ops=N] [--sweep-jobs=N]
//              [--no-sweep]
//
// Defaults: ./BENCH_core.json ./BENCH_hotpath.json, ops = 2^21, sweep-jobs
// = hardware concurrency. --ops shrinks the microbenches for CI smoke runs
// (the committed JSONs must be regenerated with the default).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "bench/alloc_probe.hpp"
#include "bench/common.hpp"
#include "net/topology_builders.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace xpass;
using sim::Time;

// ---- Seed event queue (verbatim behavior of the pre-rebuild core) --------
// Kept here, not in src/: it exists only so the speedup in BENCH_core.json
// is measured in-binary under identical compiler flags, not against a stale
// recorded number.

class SeedEventQueue {
 public:
  struct TimerId {
    uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  TimerId schedule(Time t, std::function<void()> cb) {
    const uint64_t seq = next_seq_++;
    heap_.push(Entry{t, seq, std::move(cb)});
    ++live_count_;
    return TimerId{seq};
  }

  void cancel(TimerId id) {
    if (!id.valid()) return;
    cancelled_.insert(id.id);  // may have already fired: leaks forever
  }

  Time now() const { return now_; }

  bool step() {
    while (!heap_.empty()) {
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      auto it = cancelled_.find(e.seq);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        if (live_count_ > 0) --live_count_;
        continue;
      }
      now_ = e.t;
      if (live_count_ > 0) --live_count_;
      e.cb();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

  size_t tombstones() const { return cancelled_.size(); }

 private:
  struct Entry {
    Time t;
    uint64_t seq;
    std::function<void()> cb;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<uint64_t> cancelled_;
  Time now_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
};

// ---- Microbenchmarks -----------------------------------------------------

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t g_ops = 1 << 21;            // primitive cycles per microbench (--ops)
size_t g_scenario_repeats = 3;     // best-of-N scenario timing (--repeats)
constexpr size_t kBatch = 4096;    // pending events per drain batch

uint64_t lcg_next(uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s;
}

// One op = schedule an event and (eventually) fire it.
template <class Q>
double bench_schedule_fire() {
  Q q;
  uint64_t sink = 0;
  uint64_t rng = 42;
  const double t0 = now_sec();
  for (size_t done = 0; done < g_ops; done += kBatch) {
    for (size_t i = 0; i < kBatch; ++i) {
      q.schedule(q.now() + Time::ns(1 + (lcg_next(rng) >> 40) % 1000),
                 [&sink] { ++sink; });
    }
    q.run();
  }
  const double dt = now_sec() - t0;
  if (sink != g_ops) std::fprintf(stderr, "bench bug: %llu fires\n",
                                 static_cast<unsigned long long>(sink));
  return static_cast<double>(g_ops) / dt;
}

// One op = schedule an event, cancel it, and drain its queue entry. This is
// the exact pattern of connection teardown and RTO rescheduling.
template <class Q>
double bench_schedule_cancel() {
  Q q;
  using Id = decltype(q.schedule(Time::zero(), [] {}));
  std::vector<Id> ids;
  ids.reserve(kBatch);
  uint64_t rng = 43;
  const double t0 = now_sec();
  for (size_t done = 0; done < g_ops; done += kBatch) {
    for (size_t i = 0; i < kBatch; ++i) {
      ids.push_back(
          q.schedule(q.now() + Time::ns(1 + (lcg_next(rng) >> 40) % 1000),
                     [] {}));
    }
    for (const Id& id : ids) q.cancel(id);
    ids.clear();
    q.run();  // drain the cancelled entries
  }
  return static_cast<double>(g_ops) / (now_sec() - t0);
}

// Mixed churn including cancel-after-fire, the leak path: each cycle
// schedules two events, fires one, cancels the other, then cancels the
// already-fired id (a no-op that the seed queue turns into a permanent
// tombstone).
template <class Q>
double bench_churn() {
  Q q;
  uint64_t sink = 0;
  uint64_t rng = 44;
  const double t0 = now_sec();
  for (size_t cycle = 0; cycle < g_ops / 2; ++cycle) {
    auto fired = q.schedule(q.now() + Time::ns(1), [&sink] { ++sink; });
    auto live = q.schedule(
        q.now() + Time::ns(2 + (lcg_next(rng) >> 40) % 100), [&sink] { ++sink; });
    q.step();        // fires `fired`
    q.cancel(live);  // cancel-before-fire
    q.cancel(fired); // cancel-after-fire: must not retain state
    if ((cycle & 1023) == 1023) q.run();  // drain cancelled entries
  }
  q.run();
  return static_cast<double>(g_ops) / (now_sec() - t0);
}

// ---- Fig-15 scenario events/sec and events/packet-hop --------------------

struct ScenarioResult {
  size_t flows;
  uint64_t events_fired;
  uint64_t packet_hops;  // sum of tx_packets over every port in the network
  uint64_t kick_events;   // serializer-free service wakeups (all ports)
  uint64_t retry_events;  // shaper token-wait retries (all ports)
  uint64_t wheel_events;  // events routed through the timing wheel
  uint64_t heap_events;   // events that overflowed to the far-future heap
  uint64_t hot_path_allocs;  // allocator calls inside the steady window
  double wall_sec;
  double events_per_sec;
  double events_per_hop;
  double goodput_gbps;
};

// `legacy` selects the pre-coalescing port event pattern (a serializer-done
// event per transmission) so the event diet is measurable in-binary on the
// identical trajectory; the two modes deliver the same packets at the same
// times. `backend` selects the event-queue backend (hybrid timing wheel vs
// heap-only) for the in-binary wheel comparison — the two must fire the
// identical event sequence.
ScenarioResult bench_fig15(size_t n_flows, bool legacy,
                           sim::EventQueue::Backend backend =
                               sim::EventQueue::Backend::kHybrid) {
  const double t0 = now_sec();
  sim::Simulator sim(29, backend);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  link.legacy_tx_events = legacy;
  auto d = net::build_dumbbell(topo, n_flows, link, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  for (size_t i = 0; i < n_flows; ++i) {
    driver.add(fb.make(d.senders[i], d.receivers[i], transport::kLongRunning,
                       Time::seconds(sim.rng().uniform(0.0, 5e-3))));
  }
  const Time warmup = Time::ms(20);
  const Time window = Time::ms(50);
  sim.run_until(warmup);
  driver.rates().snapshot_rates(warmup);
  const auto alloc_mark = bench::AllocProbe::mark();
  sim.run_until(warmup + window);
  const uint64_t allocs = bench::AllocProbe::since(alloc_mark).allocs;
  auto rates = driver.rates().snapshot_rates(window);
  double sum = 0;
  for (double x : rates) sum += x;
  ScenarioResult r;
  r.flows = n_flows;
  r.events_fired = sim.events().fired();
  r.kick_events = 0;
  r.retry_events = 0;
  r.packet_hops = 0;
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    net::Node& node = topo.node(static_cast<net::NodeId>(n));
    for (size_t i = 0; i < node.num_ports(); ++i) {
      r.packet_hops += node.port(i).tx_packets();
      r.kick_events += node.port(i).kick_events();
      r.retry_events += node.port(i).retry_events();
    }
  }
  r.wheel_events = sim.events().wheel_scheduled();
  r.heap_events = sim.events().heap_scheduled();
  r.hot_path_allocs = allocs;
  driver.stop_all();
  r.wall_sec = now_sec() - t0;
  r.events_per_sec = static_cast<double>(r.events_fired) / r.wall_sec;
  r.events_per_hop = static_cast<double>(r.events_fired) /
                     static_cast<double>(r.packet_hops);
  r.goodput_gbps = sum / 1e9;
  return r;
}

// ---- Multi-hop chain with train delivery: the sub-event-per-hop row ------
//
// fig15's dumbbell can never honestly go below one event per packet-hop:
// every packet crosses only two links, so per-packet transport work (credit
// handling, pacing timers) amortizes over almost nothing. A parking-lot
// chain pushes one long flow across n_links+2 store-and-forward hops with
// train delivery on every link: deliveries coalesce into one drain per
// window and backlogged data transmits in serializer bursts, so the
// events/packet-hop ratio drops below 1 — the metric BENCH_hotpath gates.

struct ChainResult {
  size_t links;
  uint64_t events_fired;
  uint64_t packet_hops;
  uint64_t train_events;
  uint64_t train_frames;
  uint64_t hot_path_allocs;
  double wall_sec;
  double events_per_hop;
  double coalesce_factor;  // frames delivered per drain event
  double goodput_gbps;
};

ChainResult bench_chain(size_t n_links) {
  const double t0 = now_sec();
  sim::Simulator sim(29);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  link.train_window = Time::us(10);  // ~8 full-MTU serializations at 10G
  auto pl = net::build_parking_lot(topo, n_links, link, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  driver.add(fb.make(pl.long_src, pl.long_dst, transport::kLongRunning,
                     Time::zero()));
  const Time warmup = Time::ms(20);
  const Time window = Time::ms(50);
  sim.run_until(warmup);
  driver.rates().snapshot_rates(warmup);
  const auto alloc_mark = bench::AllocProbe::mark();
  sim.run_until(warmup + window);
  const uint64_t allocs = bench::AllocProbe::since(alloc_mark).allocs;
  auto rates = driver.rates().snapshot_rates(window);
  double sum = 0;
  for (double x : rates) sum += x;
  ChainResult r;
  r.links = n_links;
  r.events_fired = sim.events().fired();
  r.packet_hops = 0;
  r.train_events = 0;
  r.train_frames = 0;
  for (size_t n = 0; n < topo.num_nodes(); ++n) {
    net::Node& node = topo.node(static_cast<net::NodeId>(n));
    for (size_t i = 0; i < node.num_ports(); ++i) {
      r.packet_hops += node.port(i).tx_packets();
      r.train_events += node.port(i).train_events();
      r.train_frames += node.port(i).train_frames();
    }
  }
  r.hot_path_allocs = allocs;
  driver.stop_all();
  r.wall_sec = now_sec() - t0;
  r.events_per_hop = static_cast<double>(r.events_fired) /
                     static_cast<double>(r.packet_hops);
  r.coalesce_factor = r.train_events == 0
                          ? 0.0
                          : static_cast<double>(r.train_frames) /
                                static_cast<double>(r.train_events);
  r.goodput_gbps = sum / 1e9;
  return r;
}

// ---- Topology construction: fat-tree build + route computation -----------
//
// finalize() runs recompute_routes(), the all-pairs BFS that builds every
// switch's CSR route table; on large fat trees this dominated large-scale
// scenario startup before the CSR flattening (the nested table allocated
// one inner vector per (switch, destination) pair). Best-of-3 wall seconds
// for build+finalize of a k-ary fat tree.

struct TopoBuildResult {
  size_t k;
  size_t hosts;
  size_t switches;
  double build_sec;
};

TopoBuildResult bench_topology_build(size_t k) {
  TopoBuildResult r;
  r.k = k;
  r.build_sec = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_sec();
    sim::Simulator sim(1);
    net::Topology topo(sim);
    net::LinkConfig cfg;
    auto ft = net::build_fat_tree(topo, k, cfg, cfg);
    r.build_sec = std::min(r.build_sec, now_sec() - t0);
    r.hosts = ft.hosts.size();
    r.switches = topo.switches().size();
  }
  return r;
}

// ---- 12-point sweep: --jobs scaling and byte-identity --------------------

struct SweepResult {
  size_t points = 0;
  size_t jobs = 1;
  double wall_jobs1_sec = 0;
  double wall_jobsN_sec = 0;
  bool identical_output = false;
};

std::string sweep_rows(size_t jobs) {
  const std::vector<runner::Protocol> protos = {
      runner::Protocol::kExpressPass, runner::Protocol::kDctcp,
      runner::Protocol::kRcp};
  const std::vector<size_t> counts = {4, 16, 64, 256};
  struct Cell {
    runner::Protocol proto;
    size_t flows;
  };
  std::vector<Cell> grid;
  for (auto p : protos) {
    for (size_t n : counts) grid.push_back({p, n});
  }
  exec::SweepRunner pool(jobs);
  const auto cells = pool.map(grid.size(), [&](size_t i) {
    return bench::scalability_cell(grid[i].proto, grid[i].flows, false);
  });
  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%d %zu %.9g %.9g %.9g %llu\n",
                  static_cast<int>(grid[i].proto), grid[i].flows,
                  cells[i].util_gbps, cells[i].fairness, cells[i].max_q_kb,
                  static_cast<unsigned long long>(cells[i].drops));
    out += buf;
  }
  return out;
}

SweepResult bench_sweep(size_t jobs) {
  SweepResult s;
  s.points = 12;
  s.jobs = jobs;
  const double t0 = now_sec();
  const std::string serial = sweep_rows(1);
  const double t1 = now_sec();
  const std::string parallel = sweep_rows(jobs);
  const double t2 = now_sec();
  s.wall_jobs1_sec = t1 - t0;
  s.wall_jobsN_sec = t2 - t1;
  s.identical_output = serial == parallel;
  return s;
}

}  // namespace

// Best-of-3: microbench numbers gate later PRs, so shield them from
// one-off scheduler noise.
template <typename F>
double best_of_3(F f) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) best = std::max(best, f());
  return best;
}

namespace {

// Committed-baseline fig15 throughput from BENCH_core.json at the event-core
// rebuild (PR 1). The hotpath report compares against these constants so the
// speedup is visible without parsing a second JSON at run time; regenerate
// them if the committed baseline is ever re-measured.
constexpr double kBaselineEps64 = 8048926.0;
constexpr double kBaselineEps256 = 7095552.0;
constexpr uint64_t kBaselineEvents64 = 1369573;
constexpr uint64_t kBaselineEvents256 = 5069478;

}  // namespace

int main(int argc, char** argv) {
  const char* core_path = "BENCH_core.json";
  const char* hotpath_path = "BENCH_hotpath.json";
  size_t sweep_jobs = xpass::exec::default_jobs();
  bool run_sweep = true;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      const long v = std::strtol(argv[i] + 6, nullptr, 10);
      if (v >= 1) g_ops = static_cast<size_t>(v);
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      // Scenario timings take the min over N runs; the trajectory is
      // deterministic, so more repeats only sharpen the wall-clock estimate
      // on a noisy (shared-core) host. Counts are identical either way.
      const long v = std::strtol(argv[i] + 10, nullptr, 10);
      if (v >= 1) g_scenario_repeats = static_cast<size_t>(v);
    } else if (std::strncmp(argv[i], "--sweep-jobs=", 13) == 0) {
      const long v = std::strtol(argv[i] + 13, nullptr, 10);
      if (v >= 1) sweep_jobs = static_cast<size_t>(v);
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      run_sweep = false;
    } else if (positional == 0) {
      core_path = argv[i];
      ++positional;
    } else if (positional == 1) {
      hotpath_path = argv[i];
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("event-core microbenchmarks (%zu ops each, best of 3)...\n",
              g_ops);
  const double sf = best_of_3(bench_schedule_fire<sim::EventQueue>);
  const double sc = best_of_3(bench_schedule_cancel<sim::EventQueue>);
  const double ch = best_of_3(bench_churn<sim::EventQueue>);
  std::printf("  slot-pool queue : schedule+fire %.2fM/s  schedule+cancel "
              "%.2fM/s  churn %.2fM/s\n",
              sf / 1e6, sc / 1e6, ch / 1e6);
  const double seed_sf = best_of_3(bench_schedule_fire<SeedEventQueue>);
  const double seed_sc = best_of_3(bench_schedule_cancel<SeedEventQueue>);
  const double seed_ch = best_of_3(bench_churn<SeedEventQueue>);
  std::printf("  seed queue      : schedule+fire %.2fM/s  schedule+cancel "
              "%.2fM/s  churn %.2fM/s\n",
              seed_sf / 1e6, seed_sc / 1e6, seed_ch / 1e6);
  std::printf("  speedup         : schedule+fire %.2fx  schedule+cancel "
              "%.2fx  churn %.2fx\n",
              sf / seed_sf, sc / seed_sc, ch / seed_ch);

  std::printf("fig15 flow-scalability scenario (ExpressPass, dumbbell, "
              "best of %zu)...\n", g_scenario_repeats);
  // The scenario is deterministic — every repeat fires the identical event
  // sequence — so best-of-N only filters scheduler noise out of wall_sec,
  // exactly as for the microbenches above.
  const auto best_fig15 = [](size_t flows, bool legacy_mode) {
    ScenarioResult best = bench_fig15(flows, legacy_mode);
    for (size_t i = 1; i < g_scenario_repeats; ++i) {
      ScenarioResult r = bench_fig15(flows, legacy_mode);
      if (r.wall_sec < best.wall_sec) best = r;
    }
    return best;
  };
  const auto best_fig15_backend = [](size_t flows,
                                     sim::EventQueue::Backend b) {
    ScenarioResult best = bench_fig15(flows, false, b);
    for (size_t i = 1; i < g_scenario_repeats; ++i) {
      ScenarioResult r = bench_fig15(flows, false, b);
      if (r.wall_sec < best.wall_sec) best = r;
    }
    return best;
  };
  std::vector<ScenarioResult> scen;     // coalesced ports (default)
  std::vector<ScenarioResult> legacy;   // pre-diet tx-done event pattern
  for (size_t flows : {64, 256}) {
    scen.push_back(best_fig15(flows, /*legacy=*/false));
    legacy.push_back(best_fig15(flows, /*legacy=*/true));
    const ScenarioResult& r = scen.back();
    const ScenarioResult& l = legacy.back();
    std::printf("  %4zu flows: %llu events in %.2fs -> %.2fM events/s, "
                "%.2f ev/hop (goodput %.2fG)\n",
                r.flows, static_cast<unsigned long long>(r.events_fired),
                r.wall_sec, r.events_per_sec / 1e6, r.events_per_hop,
                r.goodput_gbps);
    std::printf("       legacy: %llu events in %.2fs -> %.2fM events/s, "
                "%.2f ev/hop (%.1f%% fewer events coalesced)\n",
                static_cast<unsigned long long>(l.events_fired), l.wall_sec,
                l.events_per_sec / 1e6, l.events_per_hop,
                100.0 * (1.0 - static_cast<double>(r.events_fired) /
                                   static_cast<double>(l.events_fired)));
    std::printf("       breakdown: %llu kicks, %llu shaper retries, "
                "%.1f%% wheel-routed, %llu hot-path allocs\n",
                static_cast<unsigned long long>(r.kick_events),
                static_cast<unsigned long long>(r.retry_events),
                100.0 * static_cast<double>(r.wheel_events) /
                    static_cast<double>(r.wheel_events + r.heap_events),
                static_cast<unsigned long long>(r.hot_path_allocs));
  }

  // In-binary wheel-vs-heap: the hybrid backend must fire the identical
  // event sequence as the heap-only backend (the wheel is a pure scheduling
  // structure swap), and not be slower.
  std::printf("wheel-vs-heap backend comparison (fig15, 64 flows)...\n");
  const ScenarioResult heap_only = best_fig15_backend(
      64, sim::EventQueue::Backend::kHeapOnly);
  const bool wheel_identical =
      heap_only.events_fired == scen[0].events_fired &&
      heap_only.packet_hops == scen[0].packet_hops &&
      heap_only.goodput_gbps == scen[0].goodput_gbps;
  std::printf("  hybrid %.2fs vs heap-only %.2fs (%.2fx); trajectories %s\n",
              scen[0].wall_sec, heap_only.wall_sec,
              heap_only.wall_sec / scen[0].wall_sec,
              wheel_identical ? "identical" : "DIVERGED");

  std::printf("multi-hop chain, train delivery (parking lot, 6 links)...\n");
  ChainResult chain = bench_chain(6);
  for (size_t i = 1; i < g_scenario_repeats; ++i) {
    ChainResult c = bench_chain(6);
    if (c.wall_sec < chain.wall_sec) chain = c;
  }
  std::printf("  %llu events / %llu hops = %.3f ev/hop, %.1f frames/drain, "
              "goodput %.2fG, %llu hot-path allocs\n",
              static_cast<unsigned long long>(chain.events_fired),
              static_cast<unsigned long long>(chain.packet_hops),
              chain.events_per_hop, chain.coalesce_factor, chain.goodput_gbps,
              static_cast<unsigned long long>(chain.hot_path_allocs));

  std::printf("topology construction (fat tree build + routes, best of "
              "3)...\n");
  std::vector<TopoBuildResult> topo_builds;
  for (size_t k : {8, 16}) {
    topo_builds.push_back(bench_topology_build(k));
    const TopoBuildResult& t = topo_builds.back();
    std::printf("  k=%-2zu: %zu hosts, %zu switches, %.3fs\n", t.k, t.hosts,
                t.switches, t.build_sec);
  }

  SweepResult sweep;
  if (run_sweep) {
    std::printf("12-point scalability sweep (3 protocols x {4,16,64,256} "
                "flows, jobs=1 vs jobs=%zu)...\n", sweep_jobs);
    sweep = bench_sweep(sweep_jobs);
    std::printf("  jobs=1: %.2fs   jobs=%zu: %.2fs   speedup %.2fx   "
                "output %s\n",
                sweep.wall_jobs1_sec, sweep.jobs, sweep.wall_jobsN_sec,
                sweep.wall_jobs1_sec / sweep.wall_jobsN_sec,
                sweep.identical_output ? "byte-identical" : "DIVERGED");
  }

  FILE* f = std::fopen(core_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", core_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"core\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"config\": {\"ops_per_microbench\": %zu, "
                  "\"batch\": %zu},\n", g_ops, kBatch);
  std::fprintf(f, "  \"event_queue\": {\n");
  std::fprintf(f, "    \"schedule_fire_ops_per_sec\": %.0f,\n", sf);
  std::fprintf(f, "    \"schedule_cancel_ops_per_sec\": %.0f,\n", sc);
  std::fprintf(f, "    \"churn_ops_per_sec\": %.0f\n", ch);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"seed_baseline\": {\n");
  std::fprintf(f, "    \"schedule_fire_ops_per_sec\": %.0f,\n", seed_sf);
  std::fprintf(f, "    \"schedule_cancel_ops_per_sec\": %.0f,\n", seed_sc);
  std::fprintf(f, "    \"churn_ops_per_sec\": %.0f\n", seed_ch);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup_vs_seed\": {\n");
  std::fprintf(f, "    \"schedule_fire\": %.3f,\n", sf / seed_sf);
  std::fprintf(f, "    \"schedule_cancel\": %.3f,\n", sc / seed_sc);
  std::fprintf(f, "    \"churn\": %.3f\n", ch / seed_ch);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fig15_scenario\": [\n");
  for (size_t i = 0; i < scen.size(); ++i) {
    const ScenarioResult& r = scen[i];
    std::fprintf(f,
                 "    {\"flows\": %zu, \"events_fired\": %llu, "
                 "\"wall_sec\": %.3f, \"events_per_sec\": %.0f, "
                 "\"goodput_gbps\": %.2f}%s\n",
                 r.flows, static_cast<unsigned long long>(r.events_fired),
                 r.wall_sec, r.events_per_sec, r.goodput_gbps,
                 i + 1 < scen.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"topology_construction\": [\n");
  for (size_t i = 0; i < topo_builds.size(); ++i) {
    const TopoBuildResult& t = topo_builds[i];
    std::fprintf(f,
                 "    {\"k\": %zu, \"hosts\": %zu, \"switches\": %zu, "
                 "\"build_sec\": %.4f}%s\n",
                 t.k, t.hosts, t.switches, t.build_sec,
                 i + 1 < topo_builds.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", core_path);

  // ---- BENCH_hotpath.json ------------------------------------------------
  // Two speedup figures against the committed baseline, reported side by
  // side because the event diet changes what "an event" means:
  //  - raw = events_per_sec / baseline_eps. Understates the win: the diet
  //    deleted the *cheapest* events (tx-done), so surviving events are
  //    heavier on average.
  //  - work_normalized = (legacy-pattern event count / new wall) /
  //    baseline_eps. Holds the workload definition fixed at the pre-diet
  //    event pattern, so it measures wall-clock progress on the same work.
  FILE* h = std::fopen(hotpath_path, "w");
  if (h == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", hotpath_path);
    return 1;
  }
  std::fprintf(h, "{\n");
  std::fprintf(h, "  \"bench\": \"hotpath\",\n");
  std::fprintf(h, "  \"schema_version\": 2,\n");
  std::fprintf(h, "  \"alloc_probe_enabled\": %s,\n",
               bench::AllocProbe::enabled() ? "true" : "false");
  std::fprintf(h, "  \"fig15\": [\n");
  for (size_t i = 0; i < scen.size(); ++i) {
    const ScenarioResult& r = scen[i];
    const ScenarioResult& l = legacy[i];
    const double baseline_eps = r.flows == 64 ? kBaselineEps64
                                              : kBaselineEps256;
    const uint64_t baseline_events =
        r.flows == 64 ? kBaselineEvents64 : kBaselineEvents256;
    std::fprintf(h, "    {\n");
    std::fprintf(h, "      \"flows\": %zu,\n", r.flows);
    std::fprintf(h, "      \"events_fired\": %llu,\n",
                 static_cast<unsigned long long>(r.events_fired));
    std::fprintf(h, "      \"packet_hops\": %llu,\n",
                 static_cast<unsigned long long>(r.packet_hops));
    std::fprintf(h, "      \"wall_sec\": %.3f,\n", r.wall_sec);
    std::fprintf(h, "      \"events_per_sec\": %.0f,\n", r.events_per_sec);
    std::fprintf(h, "      \"events_per_hop\": %.3f,\n", r.events_per_hop);
    std::fprintf(h, "      \"goodput_gbps\": %.2f,\n", r.goodput_gbps);
    std::fprintf(h, "      \"kick_events\": %llu,\n",
                 static_cast<unsigned long long>(r.kick_events));
    std::fprintf(h, "      \"retry_events\": %llu,\n",
                 static_cast<unsigned long long>(r.retry_events));
    std::fprintf(h, "      \"wheel_events\": %llu,\n",
                 static_cast<unsigned long long>(r.wheel_events));
    std::fprintf(h, "      \"heap_events\": %llu,\n",
                 static_cast<unsigned long long>(r.heap_events));
    std::fprintf(h, "      \"hot_path_allocs\": %llu,\n",
                 static_cast<unsigned long long>(r.hot_path_allocs));
    std::fprintf(h, "      \"legacy\": {\"events_fired\": %llu, "
                    "\"wall_sec\": %.3f, \"events_per_sec\": %.0f, "
                    "\"events_per_hop\": %.3f},\n",
                 static_cast<unsigned long long>(l.events_fired), l.wall_sec,
                 l.events_per_sec, l.events_per_hop);
    std::fprintf(h, "      \"event_reduction_vs_legacy\": %.3f,\n",
                 1.0 - static_cast<double>(r.events_fired) /
                           static_cast<double>(l.events_fired));
    std::fprintf(h, "      \"committed_baseline\": {\"events_fired\": %llu, "
                    "\"events_per_sec\": %.0f},\n",
                 static_cast<unsigned long long>(baseline_events),
                 baseline_eps);
    std::fprintf(h, "      \"raw_speedup_vs_baseline\": %.3f,\n",
                 r.events_per_sec / baseline_eps);
    std::fprintf(h, "      \"work_normalized_speedup_vs_baseline\": %.3f\n",
                 (static_cast<double>(l.events_fired) / r.wall_sec) /
                     baseline_eps);
    std::fprintf(h, "    }%s\n", i + 1 < scen.size() ? "," : "");
  }
  std::fprintf(h, "  ],\n");
  std::fprintf(h, "  \"wheel_vs_heap\": {\"flows\": 64, "
                  "\"wall_hybrid_sec\": %.3f, \"wall_heap_sec\": %.3f, "
                  "\"identical_trajectory\": %s},\n",
               scen[0].wall_sec, heap_only.wall_sec,
               wheel_identical ? "true" : "false");
  std::fprintf(h, "  \"chain\": {\"links\": %zu, \"events_fired\": %llu, "
                  "\"packet_hops\": %llu, \"events_per_hop\": %.3f, "
                  "\"train_events\": %llu, \"train_frames\": %llu, "
                  "\"coalesce_factor\": %.2f, \"goodput_gbps\": %.2f, "
                  "\"hot_path_allocs\": %llu},\n",
               chain.links,
               static_cast<unsigned long long>(chain.events_fired),
               static_cast<unsigned long long>(chain.packet_hops),
               chain.events_per_hop,
               static_cast<unsigned long long>(chain.train_events),
               static_cast<unsigned long long>(chain.train_frames),
               chain.coalesce_factor, chain.goodput_gbps,
               static_cast<unsigned long long>(chain.hot_path_allocs));
  if (run_sweep) {
    std::fprintf(h, "  \"sweep\": {\"points\": %zu, \"jobs\": %zu, "
                    "\"wall_jobs1_sec\": %.3f, \"wall_jobsN_sec\": %.3f, "
                    "\"speedup\": %.3f, \"identical_output\": %s}\n",
                 sweep.points, sweep.jobs, sweep.wall_jobs1_sec,
                 sweep.wall_jobsN_sec,
                 sweep.wall_jobs1_sec / sweep.wall_jobsN_sec,
                 sweep.identical_output ? "true" : "false");
  } else {
    std::fprintf(h, "  \"sweep\": null\n");
  }
  std::fprintf(h, "}\n");
  std::fclose(h);
  std::printf("wrote %s\n", hotpath_path);
  return 0;
}
