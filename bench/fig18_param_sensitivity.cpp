// Fig 18: sensitivity of the 99th-percentile FCT to the initial rate
// fraction alpha and initial aggressiveness w_init, under realistic
// workloads at load 0.6. Lower (alpha, w_init) helps large flows (less
// credit waste from short flows) at the cost of short-flow FCT;
// (1/16, 1/16) is the paper's sweet spot.
#include "bench/workload_runner.hpp"

using namespace xpass;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 18: alpha / w_init sensitivity of 99%-ile FCT",
                "Fig 18, SIGCOMM'17");
  struct Setting {
    double alpha, w;
  };
  const std::vector<Setting> settings = {
      {0.5, 0.5}, {1.0 / 16, 0.5}, {1.0 / 16, 1.0 / 16},
      {1.0 / 32, 1.0 / 16}, {1.0 / 32, 1.0 / 32}};
  const std::vector<workload::WorkloadKind> kinds =
      full ? std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kDataMining,
                 workload::WorkloadKind::kCacheFollower,
                 workload::WorkloadKind::kWebServer}
           : std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kWebServer};

  for (auto kind : kinds) {
    std::printf("\n### workload: %s\n",
                std::string(workload::workload_name(kind)).c_str());
    std::printf("%10s %10s %16s %16s\n", "alpha", "w_init", "p99 S-bin(ms)",
                "p99 L-bin(ms)");
    for (const auto& s : settings) {
      bench::WorkloadRunConfig cfg;
      cfg.kind = kind;
      cfg.proto = runner::Protocol::kExpressPass;
      cfg.full_scale = full;
      cfg.n_flows = full ? 10000 : 1200;
      cfg.xp_alpha = s.alpha;
      cfg.xp_w_init = s.w;
      auto r = bench::run_workload(cfg);
      const auto& sbin = r.fcts.bin(stats::SizeBin::kS);
      const auto& lbin = r.fcts.bin(stats::SizeBin::kL);
      std::printf("%10.4f %10.4f %16.3f %16.3f\n", s.alpha, s.w,
                  sbin.empty() ? 0 : sbin.percentile(0.99) * 1e3,
                  lbin.empty() ? 0 : lbin.percentile(0.99) * 1e3);
    }
  }
  std::printf(
      "\nShape check: moving from (1/2,1/2) to (1/16,1/16) improves the\n"
      "L-bin p99 while the S-bin p99 grows by less than ~2x (paper's\n"
      "sweet-spot argument, §6.3).\n");
  return 0;
}
