// Fig 12 / §4: steady-state behavior of the feedback control. We drive N
// analytic CreditFeedback instances against a shared bottleneck model and
// report the oscillation amplitude D(t), which must decay to
// D* = C * w_min * (1 - 1/N), and the convergence of each rate to C/N.
#include <cmath>
#include <vector>

#include "bench/common.hpp"
#include "core/feedback.hpp"

using namespace xpass;

int main(int, char**) {
  bench::header("Fig 12 / sec 4: steady-state oscillation of Algorithm 1",
                "Fig 12 + the D* bound of the stability analysis");
  const double max_rate = 10e9;
  const double c = max_rate * 1.1;
  std::printf("%6s %14s %14s %14s %12s\n", "N", "mean rate(G)", "C/N (G)",
              "osc D(t) (G)", "D* (G)");
  for (int n : {2, 4, 8, 16, 32}) {
    std::vector<core::CreditFeedback> flows;
    for (int i = 0; i < n; ++i) {
      core::FeedbackParams p;
      p.max_rate = max_rate;
      p.init_rate = max_rate * (i + 1) / (2.0 * n);  // staggered start
      flows.emplace_back(p);
    }
    double osc = 0.0, mean = 0.0;
    for (int period = 0; period < 4000; ++period) {
      double sum = 0;
      for (auto& f : flows) sum += f.rate();
      const double loss = sum > max_rate ? 1.0 - max_rate / sum : 0.0;
      for (auto& f : flows) {
        const double before = f.rate();
        f.update(loss);
        if (period >= 3900) {
          osc = std::max(osc, std::abs(f.rate() - before));
          mean += f.rate();
        }
      }
    }
    mean /= 100.0 * n;
    const double d_star = c * 0.01 * (1.0 - 1.0 / n);
    std::printf("%6d %14.3f %14.3f %14.4f %12.4f\n", n, mean / 1e9,
                c / n / 1e9, osc / 1e9, d_star / 1e9);
  }
  std::printf(
      "\nShape check: rates sit at C/N; the late-time oscillation D(t) is\n"
      "on the order of D* = C*w_min*(1-1/N) and does not blow up.\n");
  return 0;
}
