// Fig 19: average and 99th-percentile FCT by flow-size bin under realistic
// workloads at load 0.6, for ExpressPass, RCP, DCTCP, DX, and HULL on the
// oversubscribed Clos fabric — extended into the three-way proactive
// shootout with SIRD (demand-informed grants) and BFC (per-hop per-flow
// backpressure, no proactive admission at all).
//
// Paper shape: ExpressPass wins on S and M bins across workloads (1.3-5.1x
// faster average than DCTCP, more at the 99th); DCTCP/RCP win on L/XL
// (ExpressPass trades utilization and wastes credits on short flows,
// especially for Web Server's small average size).
#include "bench/workload_runner.hpp"

using namespace xpass;

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 19: FCT by size bin, realistic workloads @ load 0.6",
                "Fig 19, SIGCOMM'17");
  const std::vector<workload::WorkloadKind> kinds =
      full ? std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kDataMining,
                 workload::WorkloadKind::kWebSearch,
                 workload::WorkloadKind::kCacheFollower,
                 workload::WorkloadKind::kWebServer}
           : std::vector<workload::WorkloadKind>{
                 workload::WorkloadKind::kWebServer,
                 workload::WorkloadKind::kCacheFollower};
  const std::vector<runner::Protocol> protos = {
      runner::Protocol::kExpressPass, runner::Protocol::kSird,
      runner::Protocol::kBfc,         runner::Protocol::kRcp,
      runner::Protocol::kDctcp,       runner::Protocol::kDx,
      runner::Protocol::kHull};

  // The (workload, protocol) grid is embarrassingly parallel: each cell
  // builds its own fabric and flow schedule. Compute all cells up front,
  // then print in grid order.
  std::vector<runner::ScenarioSpec> grid;
  for (auto kind : kinds) {
    for (auto proto : protos) {
      bench::WorkloadRunConfig cfg;
      cfg.kind = kind;
      cfg.proto = proto;
      cfg.full_scale = full;
      cfg.n_flows = full ? 20000 : 1200;
      grid.push_back(bench::workload_spec(cfg));
    }
  }
  const auto results = runner::ScenarioEngine().run_grid(
      grid, bench::jobs_arg(argc, argv));

  size_t at = 0;
  for (auto kind : kinds) {
    std::printf("\n### workload: %s\n",
                std::string(workload::workload_name(kind)).c_str());
    std::printf("%-14s %10s", "protocol", "done");
    for (size_t b = 0; b < stats::kNumBins; ++b) {
      std::printf("  %11s avg/p99(ms)",
                  std::string(stats::bin_name(static_cast<stats::SizeBin>(b)))
                      .substr(0, 11)
                      .c_str());
    }
    std::printf("\n");
    for (auto proto : protos) {
      const auto& r = results[at++];
      std::printf("%-14s %6zu/%zu",
                  std::string(runner::protocol_name(proto)).c_str(),
                  r.completed, r.scheduled);
      for (size_t b = 0; b < stats::kNumBins; ++b) {
        const auto& s = r.fcts.bin(static_cast<stats::SizeBin>(b));
        if (s.empty()) {
          std::printf("  %22s", "-");
        } else {
          std::printf("  %10.3f /%9.3f", s.mean() * 1e3,
                      s.percentile(0.99) * 1e3);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check: ExpressPass has the smallest S/M-bin FCTs (avg and\n"
      "p99); reactive protocols catch up or win on L/XL, most visibly for\n"
      "Web Server where credit waste is largest.\n");
  return 0;
}
