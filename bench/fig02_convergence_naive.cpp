// Fig 2: convergence of a second flow joining a 10G bottleneck.
//   (a) naive credit-based: converges within ~1 RTT (paper: 25us)
//   (b) TCP Cubic: ~47ms
//   (c) DCTCP: ~70ms
// We print the time for the joining flow to first reach 40% of the
// bottleneck (i.e. ~85% of its fair share) and a short rate trace.
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct Result {
  double converge_us = -1;
  std::vector<std::pair<double, double>> trace;  // (t_us, flow2 Gbps)
};

Result run(runner::Protocol proto, Time sample, int n_samples,
           bool naive_credit) {
  sim::Simulator sim(5);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, 2, link, link);
  core::ExpressPassConfig xp;
  xp.naive = naive_credit;
  auto t = runner::make_transport(proto, sim, topo, Time::us(100), &xp);
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  driver.add(fb.make(d.senders[0], d.receivers[0], transport::kLongRunning));
  const Time join = sample * 5;
  driver.add(
      fb.make(d.senders[1], d.receivers[1], transport::kLongRunning, join));

  Result res;
  for (int k = 0; k < n_samples; ++k) {
    sim.run_until(sample * (k + 1));
    auto rates = driver.rates().snapshot_rates_by_flow(sample);
    const double t_us = sim.now().to_us();
    res.trace.push_back({t_us, rates[2] / 1e9});
    if (res.converge_us < 0 && sim.now() > join && rates[2] > 4e9) {
      res.converge_us = (sim.now() - join).to_us();
    }
  }
  driver.stop_all();
  return res;
}

void report(const char* name, const Result& r, const char* paper) {
  if (r.converge_us >= 0) {
    std::printf("%-22s converged in %10.1f us   [paper: %s]\n", name,
                r.converge_us, paper);
  } else {
    std::printf("%-22s did not converge in the run  [paper: %s]\n", name,
                paper);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 2: convergence time of a joining flow @10G",
                "Fig 2, SIGCOMM'17");
  auto naive = run(runner::Protocol::kExpressPassNaive, Time::us(25), 40,
                   true);
  auto cubic = run(runner::Protocol::kCubic, Time::ms(2),
                   full ? 100 : 50, false);
  auto dctcp = run(runner::Protocol::kDctcp, Time::ms(2),
                   full ? 250 : 75, false);
  report("naive credit-based", naive, "~25us (one RTT)");
  report("TCP Cubic", cubic, "~47ms");
  report("DCTCP", dctcp, "~70ms");

  std::printf("\nJoining-flow rate trace, naive credit (Gbps):\n");
  for (size_t i = 4; i < 16 && i < naive.trace.size(); ++i) {
    std::printf("  t=%6.0fus  %5.2f\n", naive.trace[i].first,
                naive.trace[i].second);
  }
  return 0;
}
