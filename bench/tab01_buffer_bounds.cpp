// Table 1: zero-loss buffer requirement per port class for the four
// datacenter fabrics, from the network-calculus recursion (Eq. 1).
#include "bench/common.hpp"
#include "calculus/buffer_bounds.hpp"

using namespace xpass;

namespace {

void row(const char* name, double edge_bps, double fabric_bps,
         const char* paper_down, const char* paper_up, const char* paper_core) {
  calculus::CalculusParams p;
  p.edge_rate_bps = edge_bps;
  p.fabric_rate_bps = fabric_bps;
  p.delta_host = sim::Time::ns(5100);  // testbed ∆d_host
  auto r = calculus::compute_buffer_bounds(p);
  std::printf("%-28s %10.1f %10.1f %10.1f   | %8s %8s %8s\n", name,
              r.tor_down.buffer_bytes / 1e3, r.tor_up.buffer_bytes / 1e3,
              r.core.buffer_bytes / 1e3, paper_down, paper_up, paper_core);
}

}  // namespace

int main(int, char**) {
  bench::header("Table 1: required buffer for zero data loss (KB/port)",
                "Table 1, Credit-Scheduled Delay-Bounded CC, SIGCOMM'17");
  std::printf("%-28s %10s %10s %10s   | %8s %8s %8s\n", "topology (link/core)",
              "ToR-down", "ToR-up", "Core", "[paper]", "[paper]", "[paper]");
  // The fat-tree and 3-tier Clos share per-port classes in the calculus, so
  // their rows coincide — exactly as in the paper's Table 1.
  row("32-ary fat tree (10/40G)", 10e9, 40e9, "577.3", "19.0", "131.1");
  row("32-ary fat tree (40/100G)", 40e9, 100e9, "1060", "37.2", "221.8");
  row("3-tier Clos (10/40G)", 10e9, 40e9, "577.3", "19.0", "131.1");
  row("3-tier Clos (40/100G)", 40e9, 100e9, "1060", "37.2", "221.8");
  std::printf(
      "\nShape checks: ToR-down >> Core > ToR-up per row; byte counts grow\n"
      "sub-linearly in link speed (paper: 577KB -> 1.06MB for 4x links).\n");
  return 0;
}
