// Extension: mixed-protocol coexistence grid. The paper's §4.3 leaves a
// quantitative question open: when ExpressPass shares a fabric with
// loss-based/reactive TCP, how much throughput does the minimum credit-rate
// reservation actually protect? This grid puts a long-running ExpressPass
// flow group on a dumbbell bottleneck against each reactive comparator
// (CUBIC, DCTCP, BBR), with the cross-traffic either saturating (long-running
// pairwise) or real-time-style (duty-cycled on/off bursts), and reads the
// per-group split straight out of the engine's group collectors.
//
// Shape check: the ExpressPass group's share never falls below the w_min
// floor (~5% of the credit budget -> a few percent of the wire) and no
// ExpressPass flow starves; saturating CUBIC is the worst case, on/off
// cross-traffic returns the idle half-periods to the credit schedule.
//
// --json-dir DIR additionally writes each cell's recorder JSON (the
// xpass.recorder.v1 document with the group.<g>.* scalars) for CI schema
// validation via tools/check_recorder_json.py.
#include <filesystem>

#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct Cell {
  runner::Protocol cross;
  bool onoff;
};

runner::ScenarioSpec coexist_spec(const Cell& c, bool full) {
  runner::ScenarioSpec s;
  s.name = "ext_coexist/" + std::string(runner::protocol_name(c.cross)) +
           (c.onoff ? "/onoff" : "/steady");
  s.seed = 17;
  s.protocol = runner::Protocol::kExpressPass;
  s.topology.kind = runner::TopologyKind::kDumbbell;
  s.topology.scale = 8;
  s.stop = runner::StopSpec::measure_window(Time::ms(full ? 30 : 10),
                                            Time::ms(full ? 100 : 30));

  runner::FlowGroupSpec xp;
  xp.protocol = runner::Protocol::kExpressPass;
  xp.traffic.kind = runner::TrafficKind::kPairwise;
  xp.traffic.bytes = transport::kLongRunning;
  xp.traffic.flows = 4;
  s.flow_groups.push_back(xp);

  runner::FlowGroupSpec cross;
  cross.protocol = c.cross;
  cross.traffic.bytes = transport::kLongRunning;
  if (c.onoff) {
    cross.traffic.kind = runner::TrafficKind::kOnOff;
    cross.traffic.flows = 4;
    cross.traffic.on_period_sec = 5e-3;
    cross.traffic.on_duty = 0.5;
  } else {
    cross.traffic.kind = runner::TrafficKind::kPairwise;
    cross.traffic.flows = 4;
  }
  s.flow_groups.push_back(cross);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  runner::Args args(argc, argv);
  const bool flag_full = args.flag("full");
  const size_t jobs = args.jobs();
  const auto json_dir = args.str("json-dir");
  args.die_on_error(
      "usage: ext_coexistence [--full] [--jobs N] [--json-dir DIR]\n");
  bool full = flag_full;
  if (!full) {
    const char* env = std::getenv("XPASS_FULL");
    full = env != nullptr && env[0] == '1';
  }

  bench::header("Ext: mixed-protocol coexistence (per-group split)",
                "extends SIGCOMM'17 §4.3 (minimum credit-rate reservation)");

  const std::vector<Cell> cells = {
      {runner::Protocol::kCubic, false}, {runner::Protocol::kCubic, true},
      {runner::Protocol::kDctcp, false}, {runner::Protocol::kDctcp, true},
      {runner::Protocol::kBbr, false},   {runner::Protocol::kBbr, true},
  };
  std::vector<runner::ScenarioSpec> grid;
  for (const Cell& c : cells) grid.push_back(coexist_spec(c, full));
  const auto results = runner::ScenarioEngine().run_grid(grid, jobs);

  if (json_dir) {
    std::filesystem::create_directories(*json_dir);
    for (size_t i = 0; i < results.size(); ++i) {
      std::string name = grid[i].name;
      for (char& ch : name) {
        if (ch == '/') ch = '-';
      }
      const std::string path = *json_dir + "/" + name + ".json";
      std::FILE* out = std::fopen(path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      const std::string doc = results[i].recorder.to_json(grid[i].name);
      std::fwrite(doc.data(), 1, doc.size(), out);
      std::fclose(out);
    }
  }

  std::printf("%8s %8s | %10s %8s %8s | %10s %8s %8s %10s\n", "cross",
              "style", "xp(Gbps)", "xp share", "xp strv", "ct(Gbps)",
              "ct done", "ct strv", "p99(ms)");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (r.groups.size() != 2) {
      std::fprintf(stderr, "%s: expected 2 result groups, got %zu\n",
                   grid[i].name.c_str(), r.groups.size());
      return 1;
    }
    const auto& xp = r.groups[0];
    const auto& ct = r.groups[1];
    std::printf("%8s %8s | %10.3f %7.1f%% %8zu | %10.3f %4zu/%zu %8zu %10.2f\n",
                std::string(runner::protocol_name(cells[i].cross)).c_str(),
                cells[i].onoff ? "onoff" : "steady", xp.goodput_bps / 1e9,
                xp.goodput_share * 100, xp.starved, ct.goodput_bps / 1e9,
                ct.completed, ct.scheduled, ct.starved,
                ct.fct_p99_sec * 1e3);
  }
  std::printf(
      "\nShape check: the ExpressPass group keeps a hard goodput floor in\n"
      "every cell (the w_min credit reservation; the coexistence oracle\n"
      "asserts >= 2%% of the bottleneck) and starves zero flows. Saturating\n"
      "CUBIC squeezes it hardest; on/off cross-traffic hands the idle\n"
      "half-periods back to the credit schedule.\n");
  return 0;
}
