// Fig 6a: credit-drop fairness vs host pacing jitter. Concurrent max-rate
// (naive) credit flows share one bottleneck; Jain's index is computed over
// 1ms windows of delivered goodput. Perfect pacing (j=0) locks some flows
// out of the tiny credit queue; jitter breaks the synchronization.
//
// Fig 6b / Fig 14: the host model's inter-credit gap and credit-processing
// delay distributions (the testbed substitution).
#include <algorithm>

#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

double fairness_for_jitter(double jitter, size_t n_flows, uint64_t seed) {
  sim::Simulator sim(seed);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(1));
  // The swept variable is the total host-side emission noise: the pacing
  // jitter plus the software rate-limiter's release noise scale together
  // (in the paper both stem from the same SoftNIC host; Fig 6b measures
  // their combined effect).
  link.host_credit_shaper_noise = jitter;
  auto d = net::build_dumbbell(topo, n_flows, link, link);
  core::ExpressPassConfig cfg;
  cfg.naive = true;  // isolate drop fairness from the feedback loop
  cfg.jitter = jitter;
  cfg.update_period = Time::us(100);
  core::ExpressPassTransport t(sim, cfg);
  runner::FlowDriver driver(sim, t);
  for (size_t i = 0; i < n_flows; ++i) {
    transport::FlowSpec s;
    s.id = static_cast<uint32_t>(i + 1);
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = transport::kLongRunning;
    s.start_time = sim::Time::seconds(sim.rng().uniform(0.0, 2e-3));
    driver.add(s);
  }
  sim.run_until(Time::ms(10));
  driver.rates().snapshot_rates(Time::ms(10));
  double jsum = 0;
  const int windows = 10;
  for (int w = 0; w < windows; ++w) {
    sim.run_until(sim.now() + Time::ms(1));
    jsum += stats::jain_index(driver.rates().snapshot_rates(Time::ms(1)));
  }
  driver.stop_all();
  return jsum / windows;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 6a: jitter level vs fairness (naive credits, 1ms Jain)",
                "Fig 6a, SIGCOMM'17 (shape: j=0 unfair, fairness -> 1 with "
                "jitter; our purely-simulated hosts need the full measured "
                "NIC noise ~0.3-0.6 of the gap, paper Fig 6b)");
  const std::vector<size_t> flow_counts =
      full ? std::vector<size_t>{4, 16, 64, 256, 1024}
           : std::vector<size_t>{4, 16, 64};
  std::printf("%8s", "jitter");
  for (size_t n : flow_counts) std::printf("  n=%-6zu", n);
  std::printf("\n");
  for (double j : {0.0, 0.01, 0.02, 0.04, 0.08, 0.2, 0.4, 0.6}) {
    std::printf("%8.2f", j);
    for (size_t n : flow_counts) {
      std::printf("  %-8.3f", fairness_for_jitter(j, n, 7));
    }
    std::printf("\n");
  }

  // Fig 6b / Fig 14a companion: the host-delay model distributions.
  bench::header("Fig 6b/14: host credit-processing delay model (CDF)",
                "Fig 14a, SIGCOMM'17 (median ~0.38us, 99.99th ~6.2us)");
  sim::Rng rng(3);
  auto m = net::HostDelayModel::testbed();
  std::vector<double> xs(200000);
  for (auto& x : xs) x = m.sample(rng).to_us();
  std::sort(xs.begin(), xs.end());
  for (double p : {0.10, 0.50, 0.90, 0.99, 0.9999}) {
    std::printf("  p%-7.2f %8.2f us\n", p * 100,
                xs[static_cast<size_t>(p * (xs.size() - 1))]);
  }
  return 0;
}
