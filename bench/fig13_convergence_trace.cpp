// Fig 13: convergence behavior of five staggered long flows sharing one 10G
// bottleneck — per-flow throughput trace and bottleneck queue occupancy,
// ExpressPass vs DCTCP. The paper's testbed shows ExpressPass at a stable
// fair share with <= 18KB of queue while DCTCP oscillates with ~240KB peaks.
#include "bench/common.hpp"
#include "stats/queue_monitor.hpp"

using namespace xpass;
using sim::Time;

namespace {

void run(runner::Protocol proto, Time horizon, Time sample) {
  sim::Simulator sim(23);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, 5, link, link);
  auto t = runner::make_transport(proto, sim, topo, Time::us(100));
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  // Five flows arrive staggered, then depart in reverse order (the paper's
  // arrive-and-depart staircase compressed in time).
  const Time step = horizon / 10;
  for (uint32_t i = 0; i < 5; ++i) {
    driver.add(fb.make(d.senders[i], d.receivers[i], transport::kLongRunning,
                       step * (i + 1)));
  }
  stats::QueueMonitor qmon(sim, d.bottleneck->data_queue(), sample);

  std::printf("\n--- %s ---\n", std::string(protocol_name(proto)).c_str());
  std::printf("%10s %7s %7s %7s %7s %7s %10s\n", "t(ms)", "f1(G)", "f2(G)",
              "f3(G)", "f4(G)", "f5(G)", "queue(KB)");
  uint64_t q_max = 0;
  for (Time now = sample; now <= horizon; now += sample) {
    sim.run_until(now);
    auto rates = driver.rates().snapshot_rates_by_flow(sample);
    const uint64_t q = d.bottleneck->data_queue().stats().max_bytes;
    q_max = std::max(q_max, q);
    std::printf("%10.2f %7.2f %7.2f %7.2f %7.2f %7.2f %10.1f\n",
                now.to_ms(), rates[1] / 1e9, rates[2] / 1e9, rates[3] / 1e9,
                rates[4] / 1e9, rates[5] / 1e9,
                d.bottleneck->data_queue().bytes() / 1e3);
  }
  std::printf("max bottleneck queue: %.1f KB; data drops: %zu\n",
              q_max / 1e3, static_cast<size_t>(topo.data_drops()));
  driver.stop_all();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 13: 5-flow convergence trace + queue",
                "Fig 13, SIGCOMM'17 (paper: XP max queue 18KB vs DCTCP "
                "240.7KB; XP throughput stable at fair share)");
  const Time horizon = full ? Time::ms(400) : Time::ms(100);
  const Time sample = horizon / 20;
  run(runner::Protocol::kExpressPass, horizon, sample);
  run(runner::Protocol::kDctcp, horizon, sample);
  return 0;
}
