// Extension: incast fan-in sweep. How does each protocol's tail FCT and
// receiver-downlink queue scale as the §2 partition/aggregate fan-in grows?
// Not a paper figure — it fills the gap between Fig 1 (queue growth) and
// Fig 17 (shuffle tails) with one fan-in axis.
//
// This bench is the "adding a scenario costs a spec plus a formatter" demo:
// the grid is one base spec expanded over two axes (protocol, fan-in) and
// handed to ScenarioEngine::run_grid. No topology wiring, no stat plumbing.
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::bench_options(argc, argv);
  bench::header("Ext: incast fan-in sweep (p99 FCT / maxQ / drops)",
                "extends Fig 1 + Fig 17, SIGCOMM'17");
  const std::vector<runner::Protocol> protos = {
      runner::Protocol::kExpressPass, runner::Protocol::kDctcp,
      runner::Protocol::kRcp};
  const std::vector<size_t> fanouts =
      opt.full ? std::vector<size_t>{8, 16, 32, 64, 128, 256}
               : std::vector<size_t>{8, 16, 32, 64};

  runner::ScenarioSpec base;
  base.name = "ext_incast";
  base.seed = 1;
  base.topology.kind = runner::TopologyKind::kStar;
  base.topology.scale = 33;
  base.topology.host_delay = runner::HostDelay::kTestbed;
  base.traffic.kind = runner::TrafficKind::kIncast;
  base.traffic.bytes = 100'000;
  base.stop = runner::StopSpec::completion(Time::sec(10));

  auto grid = runner::expand_axis(
      std::vector<runner::ScenarioSpec>{base}, protos,
      [](runner::ScenarioSpec& s, runner::Protocol p) {
        s.protocol = p;
        s.name += "/" + std::string(runner::protocol_name(p));
      });
  grid = runner::expand_axis(grid, fanouts,
                             [](runner::ScenarioSpec& s, size_t n) {
                               s.traffic.flows = n;
                               s.name += "/" + std::to_string(n);
                             });
  const auto results = runner::ScenarioEngine().run_grid(grid, opt.jobs);

  size_t at = 0;
  for (auto proto : protos) {
    std::printf("\n--- %s ---\n",
                std::string(runner::protocol_name(proto)).c_str());
    std::printf("%8s %10s %14s %12s %8s\n", "fan-in", "done", "p99 FCT(ms)",
                "maxQ(KB)", "drops");
    for (size_t n : fanouts) {
      const auto& r = results[at++];
      std::printf("%8zu %6zu/%zu %14.2f %12.1f %8zu\n", n, r.completed,
                  r.scheduled, r.fcts.all().percentile(0.99) * 1e3,
                  r.bottleneck_max_queue_bytes / 1e3,
                  static_cast<size_t>(r.data_drops));
    }
  }
  std::printf(
      "\nShape check: ExpressPass's p99 grows linearly with fan-in (serial\n"
      "credit schedule) with a flat, small queue; DCTCP/RCP queues grow\n"
      "toward capacity and the tail inflates once drops appear.\n");
  return 0;
}
