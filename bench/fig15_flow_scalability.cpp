// Fig 15: flow scalability on a 10G dumbbell — utilization, Jain fairness
// (100ms windows, as in §6.1), and max bottleneck queue, as the number of
// long-running flows grows from 4 to 1024, for ExpressPass, DCTCP, and RCP.
//
// Paper shape: ExpressPass ~95% utilization (credit overhead), fairness ~1
// throughout, queue ~1 pkt. DCTCP: 100% utilization but fairness collapses
// past ~64 flows (min cwnd 2) with queue growing to capacity and drops.
// RCP: good fairness, queue overflows (flows start at the advertised rate).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct Row {
  double util_gbps;
  double fairness;
  double max_q_kb;
  uint64_t drops;
};

Row run(runner::Protocol proto, size_t n_flows, bool full) {
  sim::Simulator sim(29);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, n_flows, link, link);
  auto t = runner::make_transport(proto, sim, topo, Time::us(100));
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  for (size_t i = 0; i < n_flows; ++i) {
    driver.add(fb.make(d.senders[i], d.receivers[i], transport::kLongRunning,
                       sim::Time::seconds(sim.rng().uniform(0.0, 5e-3))));
  }
  const Time warmup = Time::ms(full ? 50 : 20);
  const Time window = Time::ms(full ? 100 : 50);
  sim.run_until(warmup);
  driver.rates().snapshot_rates(warmup);
  sim.run_until(warmup + window);
  auto rates = driver.rates().snapshot_rates(window);
  Row r;
  double sum = 0;
  for (double x : rates) sum += x;
  r.util_gbps = sum / 1e9;
  r.fairness = stats::jain_index(rates);
  r.max_q_kb = d.bottleneck->data_queue().stats().max_bytes / 1e3;
  r.drops = topo.data_drops();
  driver.stop_all();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 15: utilization / fairness / max queue vs flow count",
                "Fig 15 b/d/f, SIGCOMM'17");
  const std::vector<size_t> counts =
      full ? std::vector<size_t>{4, 16, 64, 256, 1024}
           : std::vector<size_t>{4, 16, 64, 256};
  const std::vector<runner::Protocol> protos = {
      runner::Protocol::kExpressPass, runner::Protocol::kDctcp,
      runner::Protocol::kRcp};
  for (auto proto : protos) {
    std::printf("\n--- %s ---\n",
                std::string(runner::protocol_name(proto)).c_str());
    std::printf("%8s %12s %10s %12s %8s\n", "flows", "goodput(G)", "Jain",
                "maxQ(KB)", "drops");
    for (size_t n : counts) {
      Row r = run(proto, n, full);
      std::printf("%8zu %12.2f %10.3f %12.1f %8zu\n", n, r.util_gbps,
                  r.fairness, r.max_q_kb, static_cast<size_t>(r.drops));
    }
  }
  std::printf(
      "\nShape check (paper Fig 15): ExpressPass holds ~9.5G util, Jain\n"
      "~1, ~KB-scale queue, zero drops at every flow count. DCTCP's\n"
      "fairness collapses at high counts with queue at capacity and drops;\n"
      "RCP overflows the queue when flow counts are large.\n");
  return 0;
}
