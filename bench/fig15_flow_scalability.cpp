// Fig 15: flow scalability on a 10G dumbbell — utilization, Jain fairness
// (100ms windows, as in §6.1), and max bottleneck queue, as the number of
// long-running flows grows from 4 to 1024, for ExpressPass, DCTCP, and RCP.
//
// Paper shape: ExpressPass ~95% utilization (credit overhead), fairness ~1
// throughout, queue ~1 pkt. DCTCP: 100% utilization but fairness collapses
// past ~64 flows (min cwnd 2) with queue growing to capacity and drops.
// RCP: good fairness, queue overflows (flows start at the advertised rate).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {
using Row = bench::ScalabilityCell;
}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 15: utilization / fairness / max queue vs flow count",
                "Fig 15 b/d/f, SIGCOMM'17");
  const std::vector<size_t> counts =
      full ? std::vector<size_t>{4, 16, 64, 256, 1024}
           : std::vector<size_t>{4, 16, 64, 256};
  const std::vector<runner::Protocol> protos = {
      runner::Protocol::kExpressPass, runner::Protocol::kDctcp,
      runner::Protocol::kRcp};
  // Every (protocol, flow-count) cell is an independent simulation: compute
  // the grid in parallel, print in grid order.
  std::vector<runner::ScenarioSpec> grid;
  for (auto proto : protos) {
    for (size_t n : counts) {
      grid.push_back(bench::scalability_spec(proto, n, full));
    }
  }
  const auto results = runner::ScenarioEngine().run_grid(
      grid, bench::jobs_arg(argc, argv));
  size_t at = 0;
  for (auto proto : protos) {
    std::printf("\n--- %s ---\n",
                std::string(runner::protocol_name(proto)).c_str());
    std::printf("%8s %12s %10s %12s %8s\n", "flows", "goodput(G)", "Jain",
                "maxQ(KB)", "drops");
    for (size_t n : counts) {
      const Row r = bench::to_scalability_cell(results[at++]);
      std::printf("%8zu %12.2f %10.3f %12.1f %8zu\n", n, r.util_gbps,
                  r.fairness, r.max_q_kb, static_cast<size_t>(r.drops));
    }
  }
  std::printf(
      "\nShape check (paper Fig 15): ExpressPass holds ~9.5G util, Jain\n"
      "~1, ~KB-scale queue, zero drops at every flow count. DCTCP's\n"
      "fairness collapses at high counts with queue at capacity and drops;\n"
      "RCP overflows the queue when flow counts are large.\n");
  return 0;
}
