// Fig 9: credit queue capacity vs utilization. N flows from different
// ingress ports converge on one egress; with a too-small credit queue,
// credit bursts arriving simultaneously from different ports are dropped
// and the data link goes idle. A capacity of ~8 credits suffices (the
// paper's recommended setting).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

double under_utilization(size_t credit_q, size_t n_flows) {
  sim::Simulator sim(19);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(1));
  link.credit_queue_pkts = credit_q;
  // N senders behind one switch, one receiver: flows enter the switch on
  // different physical ports and their data departs through one port (the
  // credit contention is on that port's reverse direction).
  auto star = net::build_star(topo, n_flows + 1, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  bench::FlowSpecBuilder fb;
  for (size_t i = 1; i <= n_flows; ++i) {
    driver.add(
        fb.make(star.hosts[i], star.hosts[0], transport::kLongRunning));
  }
  sim.run_until(Time::ms(10));
  net::Port* down = star.hosts[0]->nic().peer();
  const uint64_t before = down->tx_data_bytes();
  sim.run_until(Time::ms(30));
  const uint64_t bytes = down->tx_data_bytes() - before;
  driver.stop_all();
  const double max_data = bench::data_ceiling_bps(10e9) / 8.0 * 20e-3;
  return 1.0 - static_cast<double>(bytes) / max_data;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 9: credit queue capacity vs under-utilization",
                "Fig 9, SIGCOMM'17 (shape: deep under-utilization for 1-2 "
                "credit buffers, near zero by ~8)");
  const std::vector<size_t> flows = full ? std::vector<size_t>{2, 8, 32}
                                         : std::vector<size_t>{2, 8, 16};
  std::printf("%10s", "creditQ");
  for (size_t n : flows) std::printf("  %6zu flows", n);
  std::printf("\n");
  for (size_t q : {1, 2, 4, 8, 16, 32}) {
    std::printf("%10zu", q);
    for (size_t n : flows) {
      std::printf("  %10.2f%%", 100.0 * under_utilization(q, n));
    }
    std::printf("\n");
  }
  return 0;
}
