// Fig 9: credit queue capacity vs utilization. N flows from different
// ingress ports converge on one egress; with a too-small credit queue,
// credit bursts arriving simultaneously from different ports are dropped
// and the data link goes idle. A capacity of ~8 credits suffices (the
// paper's recommended setting).
#include "bench/common.hpp"

using namespace xpass;
using sim::Time;

namespace {

double under_utilization(size_t credit_q, size_t n_flows) {
  // N senders behind one switch, one receiver: flows enter the switch on
  // different physical ports and their data departs through one port (the
  // credit contention is on that port's reverse direction).
  runner::ScenarioSpec s;
  s.name = "fig09/q" + std::to_string(credit_q) + "/" +
           std::to_string(n_flows);
  s.seed = 19;
  s.topology.kind = runner::TopologyKind::kStar;
  s.topology.scale = n_flows + 1;
  s.topology.credit_queue_pkts = credit_q;
  s.traffic.kind = runner::TrafficKind::kIncast;
  s.traffic.flows = n_flows;
  s.stop = runner::StopSpec::measure_window(Time::ms(10), Time::ms(20));
  const auto r = runner::ScenarioEngine().run(s);
  const double max_data = bench::data_ceiling_bps(10e9) / 8.0 * 20e-3;
  return 1.0 - static_cast<double>(r.bottleneck_tx_data_bytes) / max_data;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_mode(argc, argv);
  bench::header("Fig 9: credit queue capacity vs under-utilization",
                "Fig 9, SIGCOMM'17 (shape: deep under-utilization for 1-2 "
                "credit buffers, near zero by ~8)");
  const std::vector<size_t> flows = full ? std::vector<size_t>{2, 8, 32}
                                         : std::vector<size_t>{2, 8, 16};
  std::printf("%10s", "creditQ");
  for (size_t n : flows) std::printf("  %6zu flows", n);
  std::printf("\n");
  for (size_t q : {1, 2, 4, 8, 16, 32}) {
    std::printf("%10zu", q);
    for (size_t n : flows) {
      std::printf("  %10.2f%%", 100.0 * under_utilization(q, n));
    }
    std::printf("\n");
  }
  return 0;
}
