// Multi-class QoS with credits (§7 "Multiple traffic classes"): two tenants
// share a bottleneck with credit-class weights 3:1. The switches never look
// at data packets — scheduling the *credits* by weight divides the data
// bandwidth, because every credit admits exactly one data frame.
//
// Build & run:  ./build/examples/qos_classes
#include <cstdio>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"

using namespace xpass;
using sim::Time;

int main() {
  sim::Simulator sim(5);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(1));
  link.credit_class_weights = {3.0, 1.0};  // gold : bronze
  auto d = net::build_dumbbell(topo, 2, link, link);

  core::ExpressPassConfig gold_cfg;
  gold_cfg.update_period = Time::us(100);
  gold_cfg.traffic_class = 0;
  core::ExpressPassConfig bronze_cfg = gold_cfg;
  bronze_cfg.traffic_class = 1;
  core::ExpressPassTransport gold(sim, gold_cfg);
  core::ExpressPassTransport bronze(sim, bronze_cfg);

  runner::FlowDriver dg(sim, gold);
  runner::FlowDriver db(sim, bronze);
  transport::FlowSpec s1;
  s1.id = 1;
  s1.src = d.senders[0];
  s1.dst = d.receivers[0];
  s1.size_bytes = transport::kLongRunning;
  transport::FlowSpec s2 = s1;
  s2.id = 2;
  s2.src = d.senders[1];
  s2.dst = d.receivers[1];
  dg.add(s1);
  db.add(s2);

  std::printf("%10s %12s %14s %8s\n", "time(ms)", "gold(Gbps)",
              "bronze(Gbps)", "ratio");
  for (int step = 1; step <= 10; ++step) {
    sim.run_until(Time::ms(5) * step);
    const double g = dg.rates().snapshot_rates_by_flow(Time::ms(5))[1];
    const double b = db.rates().snapshot_rates_by_flow(Time::ms(5))[2];
    std::printf("%10d %12.2f %14.2f %8.2f\n", 5 * step, g / 1e9, b / 1e9,
                b > 0 ? g / b : 0.0);
  }
  std::printf("\nConfigured weights 3:1 -> data bandwidth splits ~3:1 while "
              "the link stays full.\n");
  dg.stop_all();
  db.stop_all();
  return 0;
}
