// Realistic-workload FCT comparison on an oversubscribed Clos fabric —
// a miniature of the paper's §6.3 evaluation, runnable in seconds.
//
// Build & run:  ./build/examples/workload_fct [webserver|websearch|
//               cachefollower|datamining] [n_flows]
#include <cstdio>
#include <cstring>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "stats/fct.hpp"
#include "workload/flow_size_dist.hpp"
#include "workload/generators.hpp"

using namespace xpass;
using sim::Time;

int main(int argc, char** argv) {
  workload::WorkloadKind kind = workload::WorkloadKind::kWebServer;
  if (argc > 1) {
    const std::string_view arg = argv[1];
    if (arg == "websearch") kind = workload::WorkloadKind::kWebSearch;
    if (arg == "cachefollower") kind = workload::WorkloadKind::kCacheFollower;
    if (arg == "datamining") kind = workload::WorkloadKind::kDataMining;
  }
  const size_t n_flows = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 800;

  std::printf("workload %s, %zu flows, load 0.6, quarter-scale Clos "
              "(48 hosts, 3:1 oversubscribed)\n\n",
              std::string(workload::workload_name(kind)).c_str(), n_flows);
  std::printf("%-14s %10s %14s %14s %12s\n", "protocol", "done",
              "avg FCT (ms)", "p99 FCT (ms)", "data drops");

  for (auto proto : {runner::Protocol::kExpressPass, runner::Protocol::kDctcp,
                     runner::Protocol::kRcp}) {
    sim::Simulator sim(11);
    net::Topology topo(sim);
    const auto host_link =
        runner::protocol_link_config(proto, 10e9, Time::us(4));
    const auto fabric_link =
        runner::protocol_link_config(proto, 40e9, Time::us(4));
    auto cl = net::build_clos(topo, 4, 4, 2, 2, 6, host_link, fabric_link);
    auto t = runner::make_transport(proto, sim, topo, Time::us(100));
    runner::FlowDriver driver(sim, *t);

    auto dist = workload::FlowSizeDist::make(kind);
    const double uplink_bps = cl.tor_uplinks.size() * 40e9;
    const double lambda =
        workload::lambda_for_load(0.6, uplink_bps, dist.mean());
    driver.add_all(workload::poisson_flows(sim.rng(), cl.hosts, dist, lambda,
                                           n_flows));
    driver.run_to_completion(Time::sec(30));
    std::printf("%-14s %6zu/%zu %14.3f %14.3f %12zu\n",
                std::string(runner::protocol_name(proto)).c_str(),
                driver.completed(), driver.scheduled(),
                driver.fcts().all().mean() * 1e3,
                driver.fcts().all().percentile(0.99) * 1e3,
                static_cast<size_t>(topo.data_drops()));
    driver.stop_all();
  }
  return 0;
}
