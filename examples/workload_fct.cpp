// Realistic-workload FCT comparison on an oversubscribed Clos fabric —
// a miniature of the paper's §6.3 evaluation, runnable in seconds.
//
// One runner::ScenarioSpec per protocol: the quarter-scale Clos, a poisson
// flow schedule from the chosen Table-2 size distribution at load 0.6 (load
// defined on the ToR up-links), run to completion.
//
// Build & run:  ./build/examples/workload_fct [webserver|websearch|
//               cachefollower|datamining] [n_flows]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runner/args.hpp"
#include "runner/protocols.hpp"
#include "runner/scenario.hpp"
#include "workload/flow_size_dist.hpp"

using namespace xpass;
using sim::Time;

int main(int argc, char** argv) {
  runner::Args args(argc, argv);
  args.die_on_error(
      "usage: workload_fct [webserver|websearch|cachefollower|datamining] "
      "[n_flows]\n");
  const auto& pos = args.positional();
  workload::WorkloadKind kind = workload::WorkloadKind::kWebServer;
  if (!pos.empty()) {
    if (pos[0] == "websearch") kind = workload::WorkloadKind::kWebSearch;
    if (pos[0] == "cachefollower") {
      kind = workload::WorkloadKind::kCacheFollower;
    }
    if (pos[0] == "datamining") kind = workload::WorkloadKind::kDataMining;
  }
  const size_t n_flows =
      pos.size() > 1 ? std::strtoul(pos[1].c_str(), nullptr, 10) : 800;

  std::printf("workload %s, %zu flows, load 0.6, quarter-scale Clos "
              "(48 hosts, 3:1 oversubscribed)\n\n",
              std::string(workload::workload_name(kind)).c_str(), n_flows);
  std::printf("%-14s %10s %14s %14s %12s\n", "protocol", "done",
              "avg FCT (ms)", "p99 FCT (ms)", "data drops");

  for (auto proto : {runner::Protocol::kExpressPass, runner::Protocol::kDctcp,
                     runner::Protocol::kRcp}) {
    runner::ScenarioSpec s;
    s.name = "workload_fct/" + std::string(runner::protocol_name(proto));
    s.seed = 11;
    s.topology.kind = runner::TopologyKind::kClos;
    s.topology.clos = runner::clos_scale(false);
    s.topology.host_prop = Time::us(4);
    s.topology.fabric_rate_bps = 40e9;
    s.topology.fabric_prop = Time::us(4);
    s.protocol = proto;
    s.traffic.kind = runner::TrafficKind::kPoisson;
    s.traffic.workload = kind;
    s.traffic.load = 0.6;
    s.traffic.flows = n_flows;
    s.stop = runner::StopSpec::completion(Time::sec(30));
    const auto r = runner::ScenarioEngine().run(s);
    std::printf("%-14s %6zu/%zu %14.3f %14.3f %12zu\n",
                std::string(runner::protocol_name(proto)).c_str(), r.completed,
                r.scheduled, r.fcts.all().mean() * 1e3,
                r.fcts.all().percentile(0.99) * 1e3,
                static_cast<size_t>(r.data_drops));
  }
  return 0;
}
