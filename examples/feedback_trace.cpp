// Feedback-loop anatomy: trace Algorithm 1's internal state (credit rate,
// aggressiveness factor w, phase) for two competing flows, period by
// period. Useful for understanding how the binary increase + adaptive w
// produce fast convergence and a small steady-state oscillation.
//
// Build & run:  ./build/examples/feedback_trace
#include <cstdio>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"

using namespace xpass;
using sim::Time;

int main() {
  sim::Simulator sim(3);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, 2, link, link);
  core::ExpressPassConfig cfg;
  cfg.update_period = Time::us(100);
  core::ExpressPassTransport t(sim, cfg);
  runner::FlowDriver driver(sim, t);
  for (uint32_t i = 0; i < 2; ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = transport::kLongRunning;
    s.start_time = Time::us(500 * i);
    driver.add(s);
  }
  auto* c1 =
      dynamic_cast<core::ExpressPassConnection*>(driver.connections()[0].get());
  auto* c2 =
      dynamic_cast<core::ExpressPassConnection*>(driver.connections()[1].get());

  std::printf("%8s | %10s %7s %5s | %10s %7s %5s | %10s\n", "t(us)",
              "rate1(G)", "w1", "ph1", "rate2(G)", "w2", "ph2",
              "goodput(G)");
  for (int k = 1; k <= 30; ++k) {
    sim.run_until(Time::us(100) * k);
    auto rates = driver.rates().snapshot_rates_by_flow(Time::us(100));
    std::printf("%8d | %10.2f %7.3f %5s | %10.2f %7.3f %5s | %10.2f\n",
                100 * k, c1->credit_rate_bps() / 1e9, c1->feedback().w(),
                c1->feedback().increasing() ? "inc" : "dec",
                c2->credit_rate_bps() / 1e9, c2->feedback().w(),
                c2->feedback().increasing() ? "inc" : "dec",
                (rates[1] + rates[2]) / 1e9);
  }
  std::printf(
      "\nReading the trace: flow 1 grabs the whole link; when flow 2 joins\n"
      "at t=500us both see >10%% credit loss and cut; w halves on every\n"
      "cut, so the oscillation shrinks; binary increase toward C keeps\n"
      "utilization high while rates equalize.\n");
  driver.stop_all();
  return 0;
}
