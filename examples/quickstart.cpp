// Quickstart: the smallest useful ExpressPass simulation.
//
// Two hosts pairs share a 10Gbps dumbbell bottleneck. Flow 0 starts first;
// flow 1 joins 500us later. We print per-100us goodput of both flows and
// watch the credit feedback loop converge to the fair share within a few
// RTTs, with zero data-packet drops.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"

using namespace xpass;

int main() {
  sim::Simulator sim(/*seed=*/1);
  net::Topology topo(sim);

  // 10G links, 1us propagation, paper-default queues (250 MTUs data,
  // 8-credit credit queue shaped to ~5% of the link).
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, sim::Time::us(1));
  auto d = net::build_dumbbell(topo, /*pairs=*/2, link, link);

  auto transport = runner::make_transport(runner::Protocol::kExpressPass, sim,
                                          topo,
                                          /*base_rtt=*/sim::Time::us(100));
  runner::FlowDriver driver(sim, *transport);

  for (uint32_t i = 0; i < 2; ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = transport::kLongRunning;
    s.start_time = sim::Time::us(500 * i);
    driver.add(s);
  }

  std::printf("%10s %12s %12s %14s\n", "time(us)", "flow1(Gbps)",
              "flow2(Gbps)", "bottleneckQ(B)");
  const sim::Time window = sim::Time::us(250);
  for (int step = 1; step <= 28; ++step) {
    sim.run_until(window * step);
    auto rates = driver.rates().snapshot_rates_by_flow(window);
    std::printf("%10.0f %12.3f %12.3f %14llu\n", sim.now().to_us(),
                rates[1] / 1e9, rates[2] / 1e9,
                static_cast<unsigned long long>(
                    d.bottleneck->data_queue().bytes()));
  }
  std::printf("\ndata drops: %llu (ExpressPass guarantees zero)\n",
              static_cast<unsigned long long>(topo.data_drops()));
  std::printf("credit drops: %llu (that's the congestion signal)\n",
              static_cast<unsigned long long>(topo.credit_drops()));
  return 0;
}
