// Incast: the motivating scenario of §2. 64 partition/aggregate workers
// respond to one master through a single ToR switch. We run the same burst
// under DCTCP and under ExpressPass and compare the receiver-downlink queue,
// drops, and completion times.
//
// Build & run:  ./build/examples/incast [fanout] [bytes_per_worker]
#include <cstdio>
#include <cstdlib>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "workload/generators.hpp"

using namespace xpass;
using sim::Time;

namespace {

void run(runner::Protocol proto, size_t fanout, uint64_t bytes) {
  sim::Simulator sim(1);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto star = net::build_star(topo, 33, link);
  for (auto* h : star.hosts) {
    h->set_delay_model(net::HostDelayModel::testbed());
  }
  auto t = runner::make_transport(proto, sim, topo, Time::us(100));
  runner::FlowDriver driver(sim, *t);
  std::vector<net::Host*> workers(star.hosts.begin() + 1, star.hosts.end());
  driver.add_all(
      workload::incast_flows(workers, star.hosts[0], bytes, fanout));
  const bool done = driver.run_to_completion(Time::sec(10));

  net::Port* downlink = star.hosts[0]->nic().peer();
  std::printf("%-14s  completed %3zu/%zu%s  maxQ %7.1f KB  drops %5zu  "
              "p99 FCT %8.2f ms\n",
              std::string(runner::protocol_name(proto)).c_str(),
              driver.completed(), driver.scheduled(), done ? "" : " (!)",
              downlink->data_queue().stats().max_bytes / 1e3,
              static_cast<size_t>(topo.data_drops()),
              driver.fcts().all().percentile(0.99) * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const size_t fanout = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const uint64_t bytes = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                  : 100'000;
  std::printf("incast: %zu workers -> 1 master, %llu bytes each, one 10G "
              "ToR\n\n",
              fanout, static_cast<unsigned long long>(bytes));
  run(runner::Protocol::kDctcp, fanout, bytes);
  run(runner::Protocol::kExpressPass, fanout, bytes);
  std::printf(
      "\nExpressPass keeps the receiver downlink queue bounded and never\n"
      "drops data: the credit arrival order at the ToR schedules the\n"
      "responses packet-by-packet.\n");
  return 0;
}
