// Incast: the motivating scenario of §2. 64 partition/aggregate workers
// respond to one master through a single ToR switch. We run the same burst
// under DCTCP and under ExpressPass and compare the receiver-downlink queue,
// drops, and completion times.
//
// The whole experiment is one runner::ScenarioSpec per protocol; the engine
// builds the star, schedules the burst, and hands back the measurements.
//
// Build & run:  ./build/examples/incast [fanout] [bytes_per_worker]
#include <cstdio>
#include <cstdlib>

#include "runner/args.hpp"
#include "runner/protocols.hpp"
#include "runner/scenario.hpp"

using namespace xpass;
using sim::Time;

namespace {

void run(runner::Protocol proto, size_t fanout, uint64_t bytes) {
  runner::ScenarioSpec s;
  s.name = "incast/" + std::string(runner::protocol_name(proto));
  s.seed = 1;
  s.topology.kind = runner::TopologyKind::kStar;
  s.topology.scale = 33;
  s.topology.host_delay = runner::HostDelay::kTestbed;
  s.protocol = proto;
  s.traffic.kind = runner::TrafficKind::kIncast;
  s.traffic.flows = fanout;
  s.traffic.bytes = bytes;
  s.stop = runner::StopSpec::completion(Time::sec(10));
  const auto r = runner::ScenarioEngine().run(s);

  std::printf("%-14s  completed %3zu/%zu%s  maxQ %7.1f KB  drops %5zu  "
              "p99 FCT %8.2f ms\n",
              std::string(runner::protocol_name(proto)).c_str(), r.completed,
              r.scheduled, r.all_completed ? "" : " (!)",
              r.bottleneck_max_queue_bytes / 1e3,
              static_cast<size_t>(r.data_drops),
              r.fcts.all().percentile(0.99) * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  runner::Args args(argc, argv);
  args.die_on_error("usage: incast [fanout] [bytes_per_worker]\n");
  const auto& pos = args.positional();
  const size_t fanout =
      pos.size() > 0 ? std::strtoul(pos[0].c_str(), nullptr, 10) : 64;
  const uint64_t bytes =
      pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 100'000;
  std::printf("incast: %zu workers -> 1 master, %llu bytes each, one 10G "
              "ToR\n\n",
              fanout, static_cast<unsigned long long>(bytes));
  run(runner::Protocol::kDctcp, fanout, bytes);
  run(runner::Protocol::kExpressPass, fanout, bytes);
  std::printf(
      "\nExpressPass keeps the receiver downlink queue bounded and never\n"
      "drops data: the credit arrival order at the ToR schedules the\n"
      "responses packet-by-packet.\n");
  return 0;
}
