// fuzz_scenarios: randomized property-based validation of the simulator.
//
// Default mode generates --count scenarios from --seed, runs each through
// ScenarioEngine, and judges it with the check::OracleSuite (paper
// properties, metamorphic relations, differential references). Failures are
// greedily shrunk and written as self-contained repro JSON under --out.
//
//   fuzz_scenarios --seed 1 --count 50 --out tests/repros
//   fuzz_scenarios --inject no-jitter --count 20        # must find the bug
//   fuzz_scenarios --repro tests/repros/credit_queue_bound.json
//
// Exit codes: 0 all oracles passed, 2 usage error, 3 an oracle failed.
// Repro regression tests assert either direction: healthy-tree repros of
// injected bugs expect 0 (the bug is absent), while --expect-fail pins that
// re-applying the embedded injection still trips the embedded oracle.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "check/fuzzer.hpp"
#include "check/spec_json.hpp"
#include "runner/args.hpp"
#include "runner/protocols.hpp"
#include "runner/scenario.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fuzz_scenarios [options]\n"
    "  --seed S            campaign seed (default 1)\n"
    "  --count N           scenarios to generate (default 50)\n"
    "  --out DIR           write failing repro JSON files here\n"
    "  --inject NAME       apply a hidden bug to every executed scenario\n"
    "  --protocol NAME     restrict generation to one protocol\n"
    "  --max-flows N       generator flow-count ceiling (default 16)\n"
    "  --mixed             force mixed-protocol coexistence scenarios\n"
    "  --no-faults         generate fault-free scenarios only\n"
    "  --no-shrink         keep failing specs unshrunk\n"
    "  --no-metamorphic    skip metamorphic oracles (faster)\n"
    "  --no-differential   skip differential oracles\n"
    "  --journal FILE      append one verdict line per finished scenario\n"
    "  --resume            with --journal: skip journaled-clean scenarios\n"
    "  --repro FILE        replay one repro/spec JSON instead of fuzzing\n"
    "  --expect-fail       with --repro: exit 0 iff the oracle still fails\n"
    "  --list-oracles      print oracle names and exit\n"
    "  --list-injections   print injection names and exit\n"
    "  --verbose           log passing scenarios too\n";

int run_repro(const std::string& path, bool expect_fail, bool verbose) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "fuzz_scenarios: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string text;
  char buf[4096];
  for (size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);

  std::string err;
  auto repro = xpass::check::repro_from_json(text, &err);
  if (!repro) {
    std::fprintf(stderr, "fuzz_scenarios: bad repro %s: %s\n", path.c_str(),
                 err.c_str());
    return 2;
  }
  if (!repro->inject.empty()) {
    std::fprintf(stderr, "repro injection: %s\n", repro->inject.c_str());
  }

  xpass::runner::ScenarioEngine engine;
  size_t runs = 0;
  const xpass::check::RunFn run =
      [&](const xpass::runner::ScenarioSpec& declared) {
        xpass::runner::ScenarioSpec executed = declared;
        xpass::check::apply_injection(repro->inject, executed);
        ++runs;
        return engine.run(executed);
      };

  const xpass::check::OracleSuite suite{{}};
  std::vector<xpass::check::OracleFinding> findings;
  if (!repro->oracle.empty()) {
    // Pinned oracle: judge exactly the property the repro captured.
    auto one = suite.evaluate_one(repro->oracle, repro->spec, run);
    if (!one) {
      std::fprintf(stderr,
                   "fuzz_scenarios: oracle %s does not apply to this spec\n",
                   repro->oracle.c_str());
      return 2;
    }
    findings.push_back(*one);
  } else {
    findings = suite.evaluate(repro->spec, run);
  }

  bool any_fail = false;
  for (const auto& fi : findings) {
    if (!fi.pass || verbose) {
      std::fprintf(stderr, "%-16s %s  %s\n", fi.oracle.c_str(),
                   fi.pass ? "pass" : "FAIL", fi.details.c_str());
    }
    any_fail = any_fail || !fi.pass;
  }
  std::fprintf(stderr, "repro %s: %zu engine runs, %s\n", path.c_str(), runs,
               any_fail ? "oracle FAILED" : "all oracles passed");
  if (expect_fail) return any_fail ? 0 : 3;
  return any_fail ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  xpass::runner::Args args(argc, argv);

  const bool list_oracles = args.flag("list-oracles");
  const bool list_injections = args.flag("list-injections");

  xpass::check::FuzzOptions opts;
  opts.seed = args.u64("seed", 1);
  opts.count = args.u64("count", 50);
  opts.out_dir = args.str("out").value_or("");
  opts.inject = args.str("inject").value_or("");
  opts.gen.max_flows = args.u64("max-flows", opts.gen.max_flows);
  opts.gen.faults = !args.flag("no-faults");
  opts.gen.mixed = args.flag("mixed");
  opts.shrink = !args.flag("no-shrink");
  opts.oracles.metamorphic = !args.flag("no-metamorphic");
  opts.oracles.differential = !args.flag("no-differential");
  opts.verbose = args.flag("verbose");
  opts.journal = args.str("journal").value_or("");
  opts.resume = args.resume();
  const auto protocol = args.str("protocol");
  const auto repro_path = args.str("repro");
  const bool expect_fail = args.flag("expect-fail");
  args.die_on_error(kUsage);
  if (opts.resume && opts.journal.empty()) {
    std::fprintf(stderr, "fuzz_scenarios: --resume requires --journal\n%s",
                 kUsage);
    return 2;
  }

  if (list_oracles) {
    for (const auto& name : xpass::check::OracleSuite::oracle_names()) {
      std::printf("%s\n", std::string(name).c_str());
    }
    return 0;
  }
  if (list_injections) {
    for (const auto& inj : xpass::check::injections()) {
      std::printf("%-24s %s\n", std::string(inj.name).c_str(),
                  std::string(inj.description).c_str());
    }
    return 0;
  }

  if (protocol) {
    const auto p = xpass::runner::parse_protocol(*protocol);
    if (!p) {
      std::fprintf(stderr, "fuzz_scenarios: unknown protocol %s\n%s",
                   protocol->c_str(), kUsage);
      return 2;
    }
    opts.gen.protocol = *p;
  }
  if (!opts.inject.empty()) {
    xpass::runner::ScenarioSpec probe;
    if (!xpass::check::apply_injection(opts.inject, probe)) {
      std::fprintf(stderr, "fuzz_scenarios: unknown injection %s\n%s",
                   opts.inject.c_str(), kUsage);
      return 2;
    }
  }
  if (repro_path) {
    return run_repro(*repro_path, expect_fail, opts.verbose);
  }
  if (opts.count == 0) {
    std::fprintf(stderr, "fuzz_scenarios: --count must be >= 1\n%s", kUsage);
    return 2;
  }

  const auto report = xpass::check::run_fuzz(opts, stderr);
  std::fprintf(stderr,
               "fuzz: %zu scenarios, %zu engine runs, %zu resumed, "
               "%zu failure(s)\n",
               report.scenarios, report.engine_runs, report.resumed,
               report.failures.size());
  return report.clean() ? 0 : 3;
}
