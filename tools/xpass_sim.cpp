// xpass_sim — command-line driver for the simulator.
//
// Examples:
//   xpass_sim --topology=dumbbell --pairs=8 --protocol=expresspass \
//             --flows=8 --bytes=long --duration-ms=50
//   xpass_sim --topology=clos --protocol=dctcp --workload=websearch \
//             --load=0.6 --flows=2000
//   xpass_sim --topology=fattree --k=8 --protocol=expresspass \
//             --incast=128 --bytes=100000 --json=out.json
//
// Prints goodput, fairness, FCT percentiles, queue statistics, and drop
// counters. All flags have defaults; both `--flag=value` and `--flag value`
// are accepted; unknown or malformed flags abort with usage. The whole CLI
// is a thin shell over runner::ScenarioEngine: flags map onto one
// runner::ScenarioSpec, and the report is formatted from the
// runner::ScenarioResult it returns.
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/campaign.hpp"
#include "exec/sweep_runner.hpp"
#include "runner/args.hpp"
#include "runner/protocols.hpp"
#include "runner/scenario.hpp"
#include "workload/flow_size_dist.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct Options {
  std::string topology = "dumbbell";
  std::string protocol = "expresspass";
  std::string workload;        // empty = fixed-size flows
  size_t pairs = 4;            // dumbbell pairs / star hosts
  size_t k = 4;                // fat-tree arity
  size_t flows = 4;
  size_t incast = 0;           // >0: incast fan-in instead of pair flows
  uint64_t bytes = 1'000'000;  // 0 = long-running
  double load = 0.6;
  double rate_gbps = 10.0;
  double duration_ms = 100.0;
  uint64_t seed = runner::kDefaultSeed;
  bool spraying = false;
  // Mixed-protocol coexistence: --cross=PROTO adds a reactive cross-traffic
  // flow group beside the primary protocol's flows (ScenarioSpec
  // flow_groups; pairwise/fixed-size mode only). --cross-onoff turns the
  // cross group into on/off media-style sources.
  std::string cross;
  size_t cross_flows = 0;  // 0 = same as --flows
  bool cross_onoff = false;
  double onoff_period_ms = 5.0;
  double onoff_duty = 0.5;
  double link_jitter_us = 0.0;  // per-link propagation jitter
  // Fault injection (all target the first switch--switch link, or the
  // first link if the topology has no fabric link).
  double flap_down_ms = 0.0, flap_up_ms = 0.0;  // --flap-ms=D,U
  double kill_ms = 0.0;                         // --kill-ms=T
  net::LinkErrorConfig errors;
  uint64_t fault_seed = runner::kDefaultFaultSeed;
  bool check_invariants = false;
  // Seed replication: --runs=M repeats the scenario with per-run seeds
  // task_seed(seed, run); --jobs=N runs them on N threads. Reports print in
  // run order whatever the thread count.
  size_t runs = 1;
  size_t jobs = 0;  // 0 = XPASS_JOBS / hardware concurrency
  // --shards=N: run each scenario on the sharded parallel event core with N
  // worker threads (0/1 = serial core). run_grid / campaign mode divide
  // --jobs by the shard count so total threads stay bounded.
  size_t shards = 0;
  // --json=PATH: also emit the run's recorder (every scalar plus any series
  // probes) as JSON. With --runs=M, run i writes PATH.i.
  std::string json_path;
  // Campaign mode (any of these set routes runs through exec::run_campaign;
  // the plain path stays byte-identical when none are): --cache-dir=DIR
  // persists results to a resumable content-addressed store, --resume
  // serves verified entries instead of re-running, --timeout-ms=T leashes
  // each run's wall clock, --retries=N retries throwing runs with backoff.
  std::string cache_dir;
  bool resume = false;
  double timeout_ms = 0;
  size_t retries = 0;
};

constexpr const char* kUsage =
    "usage: xpass_sim [--topology=dumbbell|star|fattree|clos]\n"
    "  [--protocol=expresspass|naive|dctcp|rcp|hull|dx|cubic|dcqcn|timely|\n"
    "              sird|bfc|bbr]\n"
    "  [--workload=websearch|webserver|cachefollower|datamining]\n"
    "  [--pairs=N] [--k=N] [--flows=N] [--incast=N] [--bytes=N|long]\n"
    "  [--load=F] [--rate-gbps=F] [--duration-ms=F] [--seed=N]\n"
    "  [--spraying] [--runs=M] [--jobs=N] [--shards=N] [--json=PATH]\n"
    "  coexistence (mixed-protocol flow groups; pairwise mode only):\n"
    "  [--cross=PROTO] [--cross-flows=N] [--cross-onoff]\n"
    "  [--onoff-period-ms=F] [--onoff-duty=F] [--link-jitter-us=F]\n"
    "  campaign (crash-safe batches; see EXPERIMENTS.md):\n"
    "  [--cache-dir=DIR] [--resume] [--timeout-ms=T] [--retries=N]\n"
    "  faults (target: first fabric link):\n"
    "  [--flap-ms=DOWN,UP] [--kill-ms=T] [--data-drop=P] [--credit-drop=P]\n"
    "  [--data-corrupt=P] [--credit-corrupt=P] [--fault-seed=N]\n"
    "  [--check-invariants]\n";

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fputs(kUsage, stderr);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  runner::Args args(argc, argv);
  Options o;
  if (auto v = args.str("topology")) o.topology = *v;
  if (auto v = args.str("protocol")) o.protocol = *v;
  if (auto v = args.str("workload")) o.workload = *v;
  o.pairs = args.u64("pairs", o.pairs);
  o.k = args.u64("k", o.k);
  o.flows = args.u64("flows", o.flows);
  o.incast = args.u64("incast", o.incast);
  if (auto v = args.str("bytes")) {
    if (*v == "long") {
      o.bytes = 0;
    } else {
      char* end = nullptr;
      o.bytes = std::strtoull(v->c_str(), &end, 10);
      if (end == v->c_str() || *end != '\0') {
        usage("--bytes wants a number or 'long'");
      }
    }
  }
  o.load = args.f64("load", o.load);
  o.rate_gbps = args.f64("rate-gbps", o.rate_gbps);
  o.duration_ms = args.f64("duration-ms", o.duration_ms);
  o.seed = args.u64("seed", o.seed);
  o.runs = args.runs();
  o.jobs = args.jobs();
  o.shards = args.shards();
  o.spraying = args.flag("spraying");
  if (auto v = args.str("cross")) o.cross = *v;
  o.cross_flows = args.u64("cross-flows", o.cross_flows);
  o.cross_onoff = args.flag("cross-onoff");
  o.onoff_period_ms = args.f64("onoff-period-ms", o.onoff_period_ms);
  o.onoff_duty = args.f64("onoff-duty", o.onoff_duty);
  o.link_jitter_us = args.f64("link-jitter-us", o.link_jitter_us);
  if (auto v = args.str("flap-ms")) {
    char* rest = nullptr;
    o.flap_down_ms = std::strtod(v->c_str(), &rest);
    if (rest == nullptr || *rest != ',') usage("--flap-ms wants DOWN,UP");
    o.flap_up_ms = std::strtod(rest + 1, nullptr);
    if (o.flap_up_ms <= o.flap_down_ms) usage("--flap-ms: UP must be > DOWN");
  }
  o.kill_ms = args.f64("kill-ms", 0.0);
  o.errors.data_drop = args.f64("data-drop", 0.0);
  o.errors.credit_drop = args.f64("credit-drop", 0.0);
  o.errors.data_corrupt = args.f64("data-corrupt", 0.0);
  o.errors.credit_corrupt = args.f64("credit-corrupt", 0.0);
  o.fault_seed = args.u64("fault-seed", o.fault_seed);
  o.check_invariants = args.flag("check-invariants");
  if (auto v = args.str("json")) o.json_path = *v;
  if (auto v = args.cache_dir()) o.cache_dir = *v;
  o.resume = args.resume();
  o.timeout_ms = args.timeout_ms();
  o.retries = args.retries();
  const bool help = args.flag("help");
  args.die_on_error(kUsage);
  for (const std::string& p : args.positional()) {
    if (p == "-h") {
      usage("help requested");
    }
    usage(("unexpected argument: " + p).c_str());
  }
  if (help) usage("help requested");
  return o;
}

std::optional<workload::WorkloadKind> parse_workload(const std::string& w) {
  if (w == "websearch") return workload::WorkloadKind::kWebSearch;
  if (w == "webserver") return workload::WorkloadKind::kWebServer;
  if (w == "cachefollower") return workload::WorkloadKind::kCacheFollower;
  if (w == "datamining") return workload::WorkloadKind::kDataMining;
  return std::nullopt;
}

// The flag set resolves to one declarative spec; only `seed` varies between
// the --runs replications.
runner::ScenarioSpec make_spec(const Options& o, uint64_t seed) {
  runner::ScenarioSpec s;
  s.name = "xpass_sim/" + o.topology + "/" + o.protocol;
  s.seed = seed;
  s.protocol = *runner::parse_protocol(o.protocol);

  const double rate = o.rate_gbps * 1e9;
  s.topology.host_rate_bps = rate;
  size_t n_hosts = 0;  // the poisson pool size (hosts + pairwise receivers)
  if (o.topology == "dumbbell") {
    s.topology.kind = runner::TopologyKind::kDumbbell;
    s.topology.scale = std::max(o.pairs, o.flows);
    n_hosts = 2 * s.topology.scale;
  } else if (o.topology == "star") {
    s.topology.kind = runner::TopologyKind::kStar;
    s.topology.scale = std::max<size_t>(o.pairs, 2);
    n_hosts = s.topology.scale;
  } else if (o.topology == "fattree") {
    s.topology.kind = runner::TopologyKind::kFatTree;
    s.topology.fat_tree_k = o.k;
    n_hosts = o.k * o.k * o.k / 4;
  } else {  // clos (validated in main)
    s.topology.kind = runner::TopologyKind::kClos;
    s.topology.clos = runner::clos_scale(false);
    s.topology.fabric_rate_bps = rate * 4;
    s.topology.fabric_prop = Time::us(4);
    n_hosts = s.topology.clos.pods * s.topology.clos.tor_per_pod *
              s.topology.clos.hosts_per_tor;
  }
  s.topology.packet_spraying = o.spraying;

  const uint64_t flow_bytes = o.bytes == 0 ? transport::kLongRunning : o.bytes;
  if (!o.workload.empty()) {
    s.traffic.kind = runner::TrafficKind::kPoisson;
    s.traffic.workload = *parse_workload(o.workload);
    s.traffic.load = o.load;
    s.traffic.flows = o.flows;
    // The CLI has always defined load on aggregate-host-rate / 3, clos
    // included (the engine's clos default is the §6.3 ToR-uplink base).
    s.traffic.capacity_bps = static_cast<double>(n_hosts) * rate / 3.0;
  } else if (o.incast > 0) {
    s.traffic.kind = runner::TrafficKind::kIncast;
    s.traffic.flows = o.incast;
    s.traffic.bytes = flow_bytes;
  } else {
    s.traffic.kind = runner::TrafficKind::kPairwise;
    s.traffic.flows = o.flows;
    s.traffic.bytes = flow_bytes;
    s.traffic.start_spread_sec = 1e-3;
  }

  if (o.link_jitter_us > 0) {
    s.topology.link_jitter = Time::seconds(o.link_jitter_us * 1e-6);
  }
  if (!o.cross.empty()) {
    // Two groups on the shared fabric: the primary protocol keeps the
    // pairwise traffic configured above, the cross group rides beside it
    // (validated to pairwise/fixed-size mode in main).
    runner::FlowGroupSpec primary;
    primary.protocol = s.protocol;
    primary.traffic = s.traffic;
    s.flow_groups.push_back(primary);

    runner::FlowGroupSpec cg;
    cg.protocol = *runner::parse_protocol(o.cross);
    cg.traffic = s.traffic;
    cg.traffic.flows = o.cross_flows > 0 ? o.cross_flows : o.flows;
    if (o.cross_onoff) {
      cg.traffic.kind = runner::TrafficKind::kOnOff;
      cg.traffic.on_period_sec = o.onoff_period_ms * 1e-3;
      cg.traffic.on_duty = o.onoff_duty;
    }
    s.flow_groups.push_back(cg);
  }

  s.stop = runner::StopSpec::completion(Time::seconds(o.duration_ms * 1e-3));

  s.faults.flap_down = Time::seconds(o.flap_down_ms * 1e-3);
  s.faults.flap_up = Time::seconds(o.flap_up_ms * 1e-3);
  s.faults.kill_at = Time::seconds(o.kill_ms * 1e-3);
  s.faults.errors = o.errors;
  s.fault_seed = o.fault_seed;
  s.check_invariants = o.check_invariants;
  s.shards = o.shards;
  return s;
}

// printf-style append to the report string (reports are built off-thread
// and printed by main in run order).
void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

std::string format_report(const Options& o, bool has_faults,
                          const runner::ScenarioResult& r) {
  std::string out;
  appendf(out, "xpass_sim: %s on %s, %zu flows, %.1f Gbps links, seed %llu\n",
          std::string(runner::protocol_name(
                          *runner::parse_protocol(o.protocol)))
              .c_str(),
          o.topology.c_str(), r.scheduled, o.rate_gbps,
          static_cast<unsigned long long>(r.seed));
  appendf(out, "  sim time        : %s%s\n", r.end_time.str().c_str(),
          r.all_completed ? " (all flows completed)" : " (horizon reached)");
  appendf(out, "  completed       : %zu / %zu\n", r.completed, r.scheduled);
  appendf(out, "  aggregate goodput: %.3f Gbps   (Jain fairness %.3f)\n",
          r.sum_rate_bps / 1e9, r.jain);
  if (r.fcts.completed() > 0) {
    const auto& f = r.fcts.all();
    appendf(out, "  FCT avg/p50/p99 : %.3f / %.3f / %.3f ms\n",
            f.mean() * 1e3, f.percentile(0.5) * 1e3,
            f.percentile(0.99) * 1e3);
  }
  for (size_t g = 0; g < r.groups.size(); ++g) {
    const auto& gr = r.groups[g];
    appendf(out,
            "  group %zu %-9s: %.3f Gbps (%.1f%% share), %zu/%zu done, "
            "%zu starved\n",
            g, std::string(runner::protocol_name(gr.protocol)).c_str(),
            gr.goodput_bps / 1e9, gr.goodput_share * 100, gr.completed,
            gr.scheduled, gr.starved);
  }
  appendf(out, "  max switch queue: %.1f KB\n",
          r.max_switch_queue_bytes / 1e3);
  appendf(out, "  data drops      : %llu   credit drops: %llu\n",
          static_cast<unsigned long long>(r.data_drops),
          static_cast<unsigned long long>(r.credit_drops));
  if (has_faults) {
    const net::FaultStats& t = r.fault_totals;
    appendf(out, "  faults          : %llu events fired, %llu failures, "
            "%llu recoveries, %zu flows aborted\n",
            static_cast<unsigned long long>(r.faults_fired),
            static_cast<unsigned long long>(t.failures),
            static_cast<unsigned long long>(t.recoveries), r.failed);
    appendf(out, "  injected loss   : data %llu drop / %llu corrupt / %llu "
            "cut, credit %llu drop / %llu corrupt / %llu cut\n",
            static_cast<unsigned long long>(t.injected_data_drops),
            static_cast<unsigned long long>(t.corrupted_data),
            static_cast<unsigned long long>(t.cut_data + t.flushed_data),
            static_cast<unsigned long long>(t.injected_credit_drops),
            static_cast<unsigned long long>(t.corrupted_credits),
            static_cast<unsigned long long>(t.cut_credits +
                                            t.flushed_credits));
  }
  if (o.check_invariants) {
    appendf(out, "  invariants      : %llu sweeps, %llu violations\n",
            static_cast<unsigned long long>(r.invariant_sweeps),
            static_cast<unsigned long long>(r.invariant_violations));
    for (const std::string& m : r.invariant_messages) {
      appendf(out, "    violation: %s\n", m.c_str());
    }
  }
  return out;
}

// Both JSON writers emit payload + '\n', so a cache hit's stored payload
// produces a file byte-identical to the one the original run wrote.
void write_json_payload(const std::string& path, const std::string& payload) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

void write_json(const std::string& path, const runner::ScenarioResult& r) {
  write_json_payload(path, r.recorder.to_json(r.name));
}

// The crash-safe path: every run goes through exec::run_campaign, which
// persists/serves results via the content-addressed store, retries and
// quarantines throwing runs, and leashes hangs with the wall-clock budget.
int run_campaign_mode(const Options& o,
                      const std::vector<runner::ScenarioSpec>& grid) {
  exec::CampaignOptions copts;
  copts.cache_dir = o.cache_dir;
  copts.resume = o.resume;
  copts.retries = o.retries;
  copts.timeout_ms = o.timeout_ms;
  copts.jobs = o.jobs;
  if (o.shards > 1) {
    // Each task spins up `shards` worker threads of its own; divide the
    // task-level parallelism so total threads stay near the core count
    // (mirrors ScenarioEngine::run_grid's clamp).
    const size_t j = o.jobs == 0 ? exec::default_jobs() : o.jobs;
    copts.jobs = std::max<size_t>(1, j / o.shards);
  }
  copts.seed = o.seed;
  const exec::CampaignReport report = exec::run_campaign(grid, copts);

  for (size_t i = 0; i < report.tasks.size(); ++i) {
    const exec::CampaignTaskResult& t = report.tasks[i];
    if (grid.size() > 1) {
      std::printf("=== run %zu/%zu (seed %llu) ===\n", i + 1, grid.size(),
                  static_cast<unsigned long long>(grid[i].seed));
    }
    if (t.cache_hit) {
      std::printf("cached result (key %s)\n", t.key.c_str());
    } else if (t.result) {
      std::fputs(format_report(o, grid[i].faults.any(), *t.result).c_str(),
                 stdout);
      if (t.result->aborted) {
        std::printf("  aborted         : %s\n", t.result->abort_reason.c_str());
      }
    } else {
      std::printf("task %s after %u attempt(s): %s\n",
                  std::string(exec::task_status_name(t.outcome.status)).c_str(),
                  t.outcome.attempts, t.outcome.error.c_str());
      if (!t.quarantine_path.empty()) {
        std::printf("  repro: %s\n", t.quarantine_path.c_str());
      }
    }
    if (i + 1 < report.tasks.size()) std::printf("\n");
    if (!o.json_path.empty() && !t.payload.empty()) {
      const std::string path = grid.size() == 1
                                   ? o.json_path
                                   : o.json_path + "." + std::to_string(i + 1);
      write_json_payload(path, t.payload);
    }
  }
  std::printf("campaign: %zu tasks, cache hits: %zu, ran: %zu, "
              "quarantined: %zu, timed out: %zu, over budget: %zu, "
              "skipped: %zu\n",
              report.tasks.size(), report.hits, report.ran, report.quarantined,
              report.timed_out, report.over_budget, report.skipped);
  return report.all_usable() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  // Validate name-valued options once, up front.
  if (!runner::parse_protocol(o.protocol)) usage("unknown protocol");
  if (o.topology != "dumbbell" && o.topology != "star" &&
      o.topology != "fattree" && o.topology != "clos") {
    usage("unknown topology");
  }
  if (!o.workload.empty() && !parse_workload(o.workload)) {
    usage("unknown workload");
  }

  if (!o.cross.empty()) {
    if (!runner::parse_protocol(o.cross)) usage("unknown --cross protocol");
    if (!o.workload.empty() || o.incast > 0) {
      usage("--cross needs pairwise mode (no --workload / --incast)");
    }
  }

  if (o.resume && o.cache_dir.empty()) usage("--resume requires --cache-dir");
  const bool campaign_mode =
      !o.cache_dir.empty() || o.timeout_ms > 0 || o.retries > 0;
  if (campaign_mode) {
    // Same seed schedule as the plain path: a single run uses --seed
    // itself, replications use task_seed(seed, i) — so cached entries match
    // the plain path's results spec-for-spec.
    std::vector<runner::ScenarioSpec> grid;
    if (o.runs == 1) {
      grid.push_back(make_spec(o, o.seed));
    } else {
      for (size_t i = 0; i < o.runs; ++i) {
        grid.push_back(make_spec(o, exec::task_seed(o.seed, i)));
      }
    }
    return run_campaign_mode(o, grid);
  }

  runner::ScenarioEngine engine;
  if (o.runs == 1) {
    const auto spec = make_spec(o, o.seed);
    const auto r = engine.run(spec);
    std::fputs(format_report(o, spec.faults.any(), r).c_str(), stdout);
    if (!o.json_path.empty()) write_json(o.json_path, r);
    return 0;
  }
  // Seed replication: run i uses task_seed(seed, i), so the set of reports
  // is a pure function of (options, seed) — identical for any --jobs value.
  std::vector<runner::ScenarioSpec> grid;
  for (size_t i = 0; i < o.runs; ++i) {
    grid.push_back(make_spec(o, exec::task_seed(o.seed, i)));
  }
  const auto results = engine.run_grid(grid, o.jobs);
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("=== run %zu/%zu (seed %llu) ===\n", i + 1, results.size(),
                static_cast<unsigned long long>(results[i].seed));
    std::fputs(format_report(o, grid[i].faults.any(), results[i]).c_str(),
               stdout);
    if (i + 1 < results.size()) std::printf("\n");
    if (!o.json_path.empty()) {
      write_json(o.json_path + "." + std::to_string(i + 1), results[i]);
    }
  }
  return 0;
}
