// xpass_sim — command-line driver for the simulator.
//
// Examples:
//   xpass_sim --topology=dumbbell --pairs=8 --protocol=expresspass \
//             --flows=8 --bytes=long --duration-ms=50
//   xpass_sim --topology=clos --protocol=dctcp --workload=websearch \
//             --load=0.6 --flows=2000
//   xpass_sim --topology=fattree --k=8 --protocol=expresspass \
//             --incast=128 --bytes=100000
//
// Prints goodput, fairness, FCT percentiles, queue statistics, and drop
// counters. All flags have defaults; unknown flags abort with usage.
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "exec/sweep_runner.hpp"

#include "core/expresspass.hpp"
#include "net/fault_injector.hpp"
#include "net/topology_builders.hpp"
#include "runner/faults.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariants.hpp"
#include "stats/fairness.hpp"
#include "workload/generators.hpp"

using namespace xpass;
using sim::Time;

namespace {

struct Options {
  std::string topology = "dumbbell";
  std::string protocol = "expresspass";
  std::string workload;        // empty = fixed-size flows
  size_t pairs = 4;            // dumbbell pairs / star hosts
  size_t k = 4;                // fat-tree arity
  size_t flows = 4;
  size_t incast = 0;           // >0: incast fan-in instead of pair flows
  uint64_t bytes = 1'000'000;  // 0 = long-running
  double load = 0.6;
  double rate_gbps = 10.0;
  double duration_ms = 100.0;
  uint64_t seed = 1;
  bool spraying = false;
  // Fault injection (all target the first switch--switch link, or the
  // first link if the topology has no fabric link).
  double flap_down_ms = 0.0, flap_up_ms = 0.0;  // --flap-ms=D,U
  double kill_ms = 0.0;                         // --kill-ms=T
  net::LinkErrorConfig errors;
  uint64_t fault_seed = 0xfa17;
  bool check_invariants = false;
  // Seed replication: --runs=M repeats the scenario with per-run seeds
  // task_seed(seed, run); --jobs=N runs them on N threads. Reports print in
  // run order whatever the thread count.
  size_t runs = 1;
  size_t jobs = 0;  // 0 = XPASS_JOBS / hardware concurrency
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: xpass_sim [--topology=dumbbell|star|fattree|clos]\n"
      "  [--protocol=expresspass|naive|dctcp|rcp|hull|dx|cubic|dcqcn|timely]\n"
      "  [--workload=websearch|webserver|cachefollower|datamining]\n"
      "  [--pairs=N] [--k=N] [--flows=N] [--incast=N] [--bytes=N|long]\n"
      "  [--load=F] [--rate-gbps=F] [--duration-ms=F] [--seed=N]\n"
      "  [--spraying] [--runs=M] [--jobs=N]\n"
      "  faults (target: first fabric link):\n"
      "  [--flap-ms=DOWN,UP] [--kill-ms=T] [--data-drop=P] [--credit-drop=P]\n"
      "  [--data-corrupt=P] [--credit-corrupt=P] [--fault-seed=N]\n"
      "  [--check-invariants]\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* key) -> const char* {
      const size_t n = std::strlen(key);
      if (arg.compare(0, n, key) == 0 && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      return nullptr;
    };
    if (const char* v = val("--topology")) {
      o.topology = v;
    } else if (const char* v = val("--protocol")) {
      o.protocol = v;
    } else if (const char* v = val("--workload")) {
      o.workload = v;
    } else if (const char* v = val("--pairs")) {
      o.pairs = std::strtoul(v, nullptr, 10);
    } else if (const char* v = val("--k")) {
      o.k = std::strtoul(v, nullptr, 10);
    } else if (const char* v = val("--flows")) {
      o.flows = std::strtoul(v, nullptr, 10);
    } else if (const char* v = val("--incast")) {
      o.incast = std::strtoul(v, nullptr, 10);
    } else if (const char* v = val("--bytes")) {
      o.bytes = std::strcmp(v, "long") == 0 ? 0 : std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--load")) {
      o.load = std::strtod(v, nullptr);
    } else if (const char* v = val("--rate-gbps")) {
      o.rate_gbps = std::strtod(v, nullptr);
    } else if (const char* v = val("--duration-ms")) {
      o.duration_ms = std::strtod(v, nullptr);
    } else if (const char* v = val("--seed")) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--runs")) {
      o.runs = std::max<size_t>(1, std::strtoul(v, nullptr, 10));
    } else if (const char* v = val("--jobs")) {
      o.jobs = std::strtoul(v, nullptr, 10);
    } else if (arg == "--spraying") {
      o.spraying = true;
    } else if (const char* v = val("--flap-ms")) {
      char* rest = nullptr;
      o.flap_down_ms = std::strtod(v, &rest);
      if (rest == nullptr || *rest != ',') usage("--flap-ms wants DOWN,UP");
      o.flap_up_ms = std::strtod(rest + 1, nullptr);
      if (o.flap_up_ms <= o.flap_down_ms) usage("--flap-ms: UP must be > DOWN");
    } else if (const char* v = val("--kill-ms")) {
      o.kill_ms = std::strtod(v, nullptr);
    } else if (const char* v = val("--data-drop")) {
      o.errors.data_drop = std::strtod(v, nullptr);
    } else if (const char* v = val("--credit-drop")) {
      o.errors.credit_drop = std::strtod(v, nullptr);
    } else if (const char* v = val("--data-corrupt")) {
      o.errors.data_corrupt = std::strtod(v, nullptr);
    } else if (const char* v = val("--credit-corrupt")) {
      o.errors.credit_corrupt = std::strtod(v, nullptr);
    } else if (const char* v = val("--fault-seed")) {
      o.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--check-invariants") {
      o.check_invariants = true;
    } else if (arg == "--help" || arg == "-h") {
      usage("help requested");
    } else {
      usage(("unknown flag: " + arg).c_str());
    }
  }
  return o;
}

std::optional<workload::WorkloadKind> parse_workload(const std::string& w) {
  if (w == "websearch") return workload::WorkloadKind::kWebSearch;
  if (w == "webserver") return workload::WorkloadKind::kWebServer;
  if (w == "cachefollower") return workload::WorkloadKind::kCacheFollower;
  if (w == "datamining") return workload::WorkloadKind::kDataMining;
  return std::nullopt;
}

// printf-style append to the report string (reports are built off-thread
// and printed by main in run order).
void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

// One full scenario run under `seed`; returns the report text. Pure apart
// from usage() aborts on option values main() has already validated.
std::string run_scenario(const Options& o, uint64_t seed) {
  std::string out;
  auto proto = runner::parse_protocol(o.protocol);
  if (!proto) usage("unknown protocol");

  sim::Simulator sim(seed);
  net::Topology topo(sim);
  const double rate = o.rate_gbps * 1e9;
  const auto link = runner::protocol_link_config(*proto, rate, Time::us(1));
  const auto fabric =
      runner::protocol_link_config(*proto, rate * 4, Time::us(4));

  std::vector<net::Host*> hosts;
  std::vector<net::Host*> peers;  // receivers for pairwise traffic
  if (o.topology == "dumbbell") {
    auto d = net::build_dumbbell(topo, std::max(o.pairs, o.flows), link, link);
    hosts = d.senders;
    peers = d.receivers;
  } else if (o.topology == "star") {
    auto s = net::build_star(topo, std::max<size_t>(o.pairs, 2), link);
    hosts = s.hosts;
  } else if (o.topology == "fattree") {
    auto ft = net::build_fat_tree(topo, o.k, link, link);
    hosts = ft.hosts;
  } else if (o.topology == "clos") {
    auto cl = net::build_clos(topo, 4, 4, 2, 2, 6, link, fabric);
    hosts = cl.hosts;
  } else {
    usage("unknown topology");
  }
  if (o.spraying) {
    for (auto* sw : topo.switches()) sw->set_packet_spraying(true);
  }

  auto transport = runner::make_transport(*proto, sim, topo, Time::us(100));
  runner::FlowDriver driver(sim, *transport);

  const uint64_t flow_bytes =
      o.bytes == 0 ? transport::kLongRunning : o.bytes;
  if (!o.workload.empty()) {
    auto kind = parse_workload(o.workload);
    if (!kind) usage("unknown workload");
    auto dist = workload::FlowSizeDist::make(*kind);
    std::vector<net::Host*> all = hosts;
    all.insert(all.end(), peers.begin(), peers.end());
    const double lambda = workload::lambda_for_load(
        o.load, static_cast<double>(all.size()) * rate / 3.0, dist.mean());
    driver.add_all(
        workload::poisson_flows(sim.rng(), all, dist, lambda, o.flows));
  } else if (o.incast > 0) {
    std::vector<net::Host*> workers(hosts.begin() + 1, hosts.end());
    driver.add_all(workload::incast_flows(workers, hosts[0], flow_bytes,
                                          o.incast));
  } else {
    for (size_t i = 0; i < o.flows; ++i) {
      transport::FlowSpec s;
      s.id = static_cast<uint32_t>(i + 1);
      s.src = hosts[i % hosts.size()];
      s.dst = peers.empty() ? hosts[(i + 1 + hosts.size() / 2) % hosts.size()]
                            : peers[i % peers.size()];
      if (s.dst == s.src) s.dst = hosts[(i + 1) % hosts.size()];
      s.size_bytes = flow_bytes;
      s.start_time = sim::Time::seconds(sim.rng().uniform(0.0, 1e-3));
      driver.add(s);
    }
  }

  // Fault plan: every fault targets the first fabric (switch--switch) link
  // — the bottleneck in all built-in topologies — falling back to the first
  // link for single-switch stars.
  runner::FaultScenario scenario;
  scenario.flap_down = Time::seconds(o.flap_down_ms * 1e-3);
  scenario.flap_up = Time::seconds(o.flap_up_ms * 1e-3);
  scenario.kill_at = Time::seconds(o.kill_ms * 1e-3);
  scenario.errors = o.errors;
  sim::FaultPlan plan(o.fault_seed);
  net::FaultInjector injector(topo, plan);
  if (scenario.any()) {
    const net::Topology::LinkRec* target = nullptr;
    for (const auto& l : topo.links()) {
      if (topo.node(l.a).kind() == net::Node::Kind::kSwitch &&
          topo.node(l.b).kind() == net::Node::Kind::kSwitch) {
        target = &l;
        break;
      }
    }
    if (target == nullptr && !topo.links().empty()) {
      target = &topo.links().front();
    }
    if (target == nullptr) usage("no link to inject faults on");
    runner::apply_fault_scenario(scenario, injector, topo.node(target->a),
                                 topo.node(target->b));
    plan.arm(sim);
  }

  sim::InvariantChecker checker(sim);
  if (o.check_invariants) {
    runner::NetInvariantOptions iopts;
    iopts.expect_zero_data_loss = *proto == runner::Protocol::kExpressPass ||
                                  *proto == runner::Protocol::kExpressPassNaive;
    runner::register_network_invariants(checker, topo, driver,
                                        scenario.any() ? &plan : nullptr,
                                        iopts);
    checker.start(Time::us(100));
  }

  const Time horizon = Time::seconds(o.duration_ms * 1e-3);
  const bool all_done = driver.run_to_completion(horizon);
  if (o.check_invariants) checker.run_checks();

  appendf(out, "xpass_sim: %s on %s, %zu flows, %.1f Gbps links, seed %llu\n",
          std::string(runner::protocol_name(*proto)).c_str(),
          o.topology.c_str(), driver.scheduled(), o.rate_gbps,
          static_cast<unsigned long long>(seed));
  appendf(out, "  sim time        : %s%s\n", sim.now().str().c_str(),
              all_done ? " (all flows completed)" : " (horizon reached)");
  appendf(out, "  completed       : %zu / %zu\n", driver.completed(),
              driver.scheduled());
  auto rates = driver.rates().snapshot_rates(sim.now());
  double sum = 0;
  for (double r : rates) sum += r;
  appendf(out, "  aggregate goodput: %.3f Gbps   (Jain fairness %.3f)\n",
              sum / 1e9, stats::jain_index(rates));
  if (driver.fcts().completed() > 0) {
    const auto& f = driver.fcts().all();
    appendf(out, "  FCT avg/p50/p99 : %.3f / %.3f / %.3f ms\n",
                f.mean() * 1e3, f.percentile(0.5) * 1e3,
                f.percentile(0.99) * 1e3);
  }
  appendf(out, "  max switch queue: %.1f KB\n",
              topo.max_switch_data_queue_bytes() / 1e3);
  appendf(out, "  data drops      : %llu   credit drops: %llu\n",
              static_cast<unsigned long long>(topo.data_drops()),
              static_cast<unsigned long long>(topo.credit_drops()));
  if (scenario.any()) {
    const net::FaultStats t = injector.totals();
    appendf(out, "  faults          : %llu events fired, %llu failures, "
                "%llu recoveries, %zu flows aborted\n",
                static_cast<unsigned long long>(plan.fired()),
                static_cast<unsigned long long>(t.failures),
                static_cast<unsigned long long>(t.recoveries),
                driver.failed());
    appendf(out, "  injected loss   : data %llu drop / %llu corrupt / %llu "
                "cut, credit %llu drop / %llu corrupt / %llu cut\n",
                static_cast<unsigned long long>(t.injected_data_drops),
                static_cast<unsigned long long>(t.corrupted_data),
                static_cast<unsigned long long>(t.cut_data + t.flushed_data),
                static_cast<unsigned long long>(t.injected_credit_drops),
                static_cast<unsigned long long>(t.corrupted_credits),
                static_cast<unsigned long long>(t.cut_credits +
                                                t.flushed_credits));
  }
  if (o.check_invariants) {
    appendf(out, "  invariants      : %llu sweeps, %llu violations\n",
                static_cast<unsigned long long>(checker.sweeps()),
                static_cast<unsigned long long>(checker.violations()));
    for (const std::string& m : checker.messages()) {
      appendf(out, "    violation: %s\n", m.c_str());
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  // Validate name-valued options once, before any worker thread can trip
  // usage()'s exit() off the main thread.
  if (!runner::parse_protocol(o.protocol)) usage("unknown protocol");
  if (o.topology != "dumbbell" && o.topology != "star" &&
      o.topology != "fattree" && o.topology != "clos") {
    usage("unknown topology");
  }
  if (!o.workload.empty() && !parse_workload(o.workload)) {
    usage("unknown workload");
  }

  if (o.runs == 1) {
    std::fputs(run_scenario(o, o.seed).c_str(), stdout);
    return 0;
  }
  // Seed replication: run i uses task_seed(seed, i), so the set of reports
  // is a pure function of (options, seed) — identical for any --jobs value.
  exec::SweepRunner pool(o.jobs);
  const auto reports = pool.map(o.runs, [&](size_t i) {
    return run_scenario(o, exec::task_seed(o.seed, i));
  });
  for (size_t i = 0; i < reports.size(); ++i) {
    std::printf("=== run %zu/%zu (seed %llu) ===\n", i + 1, reports.size(),
                static_cast<unsigned long long>(exec::task_seed(o.seed, i)));
    std::fputs(reports[i].c_str(), stdout);
    if (i + 1 < reports.size()) std::printf("\n");
  }
  return 0;
}
