#!/usr/bin/env python3
"""Validate a recorder JSON document against the xpass.recorder.v1 schema.

The schema is what stats::Recorder::to_json emits and what every
ScenarioEngine run can write (e.g. `xpass_cli --json=out.json`):

    {
      "schema": "xpass.recorder.v1",
      "scenario": "<name>",
      "scalars": {"<dotted.name>": <number>, ...},
      "series": {"<dotted.name>": {"t_sec": [..], "v": [..]}, ...}
    }

Budget-truncated runs additionally carry "aborted": true and a known
"abort_reason" string; healthy runs omit both keys.

Checks: the schema tag, the four required keys (plus the optional abort
pair, and no others), scalar values are finite numbers, every series has
equal-length t_sec/v arrays of finite numbers with non-decreasing t_sec.
With --require-scalar NAME (repeatable), the named scalar(s) must be
present — CI uses this to assert the engine recorded the standard probes.

Usage: check_recorder_json.py FILE... [--require-scalar NAME]...
Exits non-zero with a message per problem.
"""

import argparse
import json
import math
import sys

SCHEMA = "xpass.recorder.v1"
REQUIRED_KEYS = {"schema", "scenario", "scalars", "series"}
# Present only on budget-truncated runs (sim::RunBudget); absent == healthy.
OPTIONAL_KEYS = {"aborted", "abort_reason"}
ABORT_REASONS = {
    "event-budget", "sim-time-budget", "wall-clock-budget",
    "live-event-budget",
}


def is_finite_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool) \
        and math.isfinite(v)


def check_doc(doc, path, require_scalars):
    problems = []

    def bad(msg):
        problems.append(f"{path}: {msg}")

    if not isinstance(doc, dict):
        bad("top-level JSON value is not an object")
        return problems
    keys = set(doc.keys())
    for k in sorted(REQUIRED_KEYS - keys):
        bad(f"missing key '{k}'")
    for k in sorted(keys - REQUIRED_KEYS - OPTIONAL_KEYS):
        bad(f"unexpected key '{k}'")
    if doc.get("schema") != SCHEMA:
        bad(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("scenario"), str) or not doc.get("scenario"):
        bad("scenario must be a non-empty string")

    # The abort pair comes and goes together: a truncated run has
    # aborted == true plus a known reason; a healthy run has neither.
    if "aborted" in keys or "abort_reason" in keys:
        if doc.get("aborted") is not True:
            bad(f"aborted must be true when present, got "
                f"{doc.get('aborted')!r}")
        reason = doc.get("abort_reason")
        if reason not in ABORT_REASONS:
            bad(f"abort_reason {reason!r} is not one of "
                f"{sorted(ABORT_REASONS)}")

    scalars = doc.get("scalars", {})
    if not isinstance(scalars, dict):
        bad("scalars must be an object")
        scalars = {}
    for name, v in scalars.items():
        if not is_finite_number(v):
            bad(f"scalar {name!r} is not a finite number: {v!r}")
    for name in require_scalars:
        if name not in scalars:
            bad(f"required scalar {name!r} missing")

    series = doc.get("series", {})
    if not isinstance(series, dict):
        bad("series must be an object")
        series = {}
    for name, s in series.items():
        if not isinstance(s, dict) or set(s.keys()) != {"t_sec", "v"}:
            bad(f"series {name!r} must be an object with keys t_sec, v")
            continue
        t, v = s["t_sec"], s["v"]
        if not isinstance(t, list) or not isinstance(v, list):
            bad(f"series {name!r}: t_sec and v must be arrays")
            continue
        if len(t) != len(v):
            bad(f"series {name!r}: len(t_sec)={len(t)} != len(v)={len(v)}")
        for arr, label in ((t, "t_sec"), (v, "v")):
            for x in arr:
                if not is_finite_number(x):
                    bad(f"series {name!r}: non-finite {label} value {x!r}")
                    break
        if any(b < a for a, b in zip(t, t[1:])):
            bad(f"series {name!r}: t_sec is not non-decreasing")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+")
    ap.add_argument("--require-scalar", action="append", default=[],
                    metavar="NAME",
                    help="fail unless this scalar is present (repeatable)")
    args = ap.parse_args()

    problems = []
    for path in args.files:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            problems.append(f"{path}: {e}")
            continue
        problems += check_doc(doc, path, args.require_scalar)

    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    if problems:
        sys.exit(1)
    print(f"ok: {len(args.files)} recorder document(s) valid")


if __name__ == "__main__":
    main()
