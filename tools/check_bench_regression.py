#!/usr/bin/env python3
"""Gate event-core throughput against the committed BENCH_core.json.

Usage: check_bench_regression.py <committed_core.json> <fresh_core.json>
       [--threshold 0.20] [--hotpath <fresh_hotpath.json>]
       [--parallel <fresh_parallel.json>]

Compares the *speedup_vs_seed* ratios for schedule_fire and churn, not the
absolute ops/sec: the committed baseline was measured on the maintainer's
machine, a CI runner's absolute throughput tells us nothing. The ratio is
in-binary (new queue vs the embedded seed queue under identical flags on the
same host), so it is hardware-normalized — a >20% drop means the event core
itself got slower relative to its fixed reference, not that the runner was
slow. The fresh run may use --ops far below the committed default; the ratio
is noisier there, which is why the gate is 20% and only two metrics.

With --hotpath, also gates the hot-path invariants from a fresh
BENCH_hotpath.json. These are count-based, not timing-based, so they hold
exactly on any hardware:
  - chain.events_per_hop < 1.0 (train delivery keeps the multi-hop chain
    below one simulator event per packet-hop)
  - hot_path_allocs == 0 on every fig15 row and the chain row (the steady
    state never touches the allocator; skipped if the probe was stubbed out)
  - wheel_vs_heap.identical_trajectory (hybrid and heap-only backends fired
    the same event sequence)

With --parallel, gates a fresh BENCH_parallel.json from bench_parallel:
  - identical_rerun and shards1_matches_serial (byte-identity of recorder
    output across two runs at the same shard count / between --shards=1 and
    the serial core) — count-based, gated on any hardware
  - efficiency >= 0.5 at max_shards — gated only when the runner actually
    had cores >= max_shards; a 1-core CI box cannot measure wall-clock
    scaling, so the check is skipped (and says so) there
"""
import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("committed")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.20)
    ap.add_argument("--hotpath", help="fresh BENCH_hotpath.json to gate "
                    "count-based hot-path invariants on")
    ap.add_argument("--parallel", help="fresh BENCH_parallel.json to gate "
                    "sharded-core determinism (and, with enough cores, "
                    "parallel efficiency) on")
    args = ap.parse_args()

    with open(args.committed) as f:
        committed = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = []
    for metric in ("schedule_fire", "churn"):
        base = committed["speedup_vs_seed"][metric]
        now = fresh["speedup_vs_seed"][metric]
        ratio = now / base
        status = "OK" if ratio >= 1.0 - args.threshold else "REGRESSION"
        print(f"{metric:14s} speedup_vs_seed: committed {base:.3f}, "
              f"fresh {now:.3f} ({ratio:.2%} of committed) {status}")
        if status != "OK":
            failures.append(metric)

    if args.hotpath:
        with open(args.hotpath) as f:
            hot = json.load(f)

        chain = hot["chain"]
        eph = chain["events_per_hop"]
        ok = eph < 1.0
        print(f"chain          events_per_hop: {eph:.3f} "
              f"{'OK' if ok else 'REGRESSION (>= 1.0)'}")
        if not ok:
            failures.append("chain.events_per_hop")

        if hot.get("alloc_probe_enabled", False):
            rows = [(f"fig15[{r['flows']}]", r["hot_path_allocs"])
                    for r in hot["fig15"]]
            rows.append(("chain", chain["hot_path_allocs"]))
            for name, allocs in rows:
                ok = allocs == 0
                print(f"{name:14s} hot_path_allocs: {allocs} "
                      f"{'OK' if ok else 'REGRESSION (!= 0)'}")
                if not ok:
                    failures.append(f"{name}.hot_path_allocs")
        else:
            print("hot_path_allocs: probe stubbed out (sanitized build), "
                  "skipped")

        identical = hot["wheel_vs_heap"]["identical_trajectory"]
        print(f"wheel_vs_heap  identical_trajectory: {identical} "
              f"{'OK' if identical else 'REGRESSION'}")
        if not identical:
            failures.append("wheel_vs_heap.identical_trajectory")

    if args.parallel:
        with open(args.parallel) as f:
            par = json.load(f)

        for key in ("identical_rerun", "shards1_matches_serial"):
            ok = par[key] is True
            print(f"parallel       {key}: {par[key]} "
                  f"{'OK' if ok else 'REGRESSION'}")
            if not ok:
                failures.append(f"parallel.{key}")

        cores = par.get("cores", 0)
        max_shards = par.get("max_shards", 0)
        if cores >= max_shards > 0:
            eff = par["efficiency"]
            ok = eff >= 0.5
            print(f"parallel       efficiency at {max_shards} shards: "
                  f"{eff:.2f} {'OK' if ok else 'REGRESSION (< 0.5)'}")
            if not ok:
                failures.append("parallel.efficiency")
        else:
            print(f"parallel       efficiency: skipped "
                  f"({cores} cores < {max_shards} shards — wall-clock "
                  f"scaling not measurable on this runner)")

    if failures:
        print(f"FAIL: {', '.join(failures)} regressed vs the committed "
              f"baseline / hot-path invariants", file=sys.stderr)
        return 1
    print("bench smoke: no event-core or hot-path regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
