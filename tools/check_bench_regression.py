#!/usr/bin/env python3
"""Gate event-core throughput against the committed BENCH_core.json.

Usage: check_bench_regression.py <committed_core.json> <fresh_core.json>
       [--threshold 0.20]

Compares the *speedup_vs_seed* ratios for schedule_fire and churn, not the
absolute ops/sec: the committed baseline was measured on the maintainer's
machine, a CI runner's absolute throughput tells us nothing. The ratio is
in-binary (new queue vs the embedded seed queue under identical flags on the
same host), so it is hardware-normalized — a >20% drop means the event core
itself got slower relative to its fixed reference, not that the runner was
slow. The fresh run may use --ops far below the committed default; the ratio
is noisier there, which is why the gate is 20% and only two metrics.
"""
import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("committed")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.20)
    args = ap.parse_args()

    with open(args.committed) as f:
        committed = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = []
    for metric in ("schedule_fire", "churn"):
        base = committed["speedup_vs_seed"][metric]
        now = fresh["speedup_vs_seed"][metric]
        ratio = now / base
        status = "OK" if ratio >= 1.0 - args.threshold else "REGRESSION"
        print(f"{metric:14s} speedup_vs_seed: committed {base:.3f}, "
              f"fresh {now:.3f} ({ratio:.2%} of committed) {status}")
        if status != "OK":
            failures.append(metric)

    if failures:
        print(f"FAIL: {', '.join(failures)} regressed more than "
              f"{args.threshold:.0%} vs the committed baseline", file=sys.stderr)
        return 1
    print("bench smoke: no event-core regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
