// ExpressPass connection: receiver-driven credit pacing with the Algorithm-1
// feedback loop, and the Fig-7 sender/receiver state machines.
//
// Lifecycle:
//   sender --SYN(credit request)--> receiver       (piggybacked per §3.1)
//   receiver paces CREDIT packets at cur_rate (jittered; sizes randomized
//     84-92B to break switch-level synchronization)
//   sender answers each credit with one data packet after a sampled host
//     credit-processing delay (in order); credits with nothing to send are
//     counted as waste (Fig 8b / Fig 20)
//   receiver measures credit loss per update period via sent-vs-delivered
//     accounting and runs CreditFeedback
//   sender --CREDIT_STOP--> receiver once all bytes are acknowledged (the
//     credit's cum-ack field doubles as the loss-recovery signal: if it
//     regresses below what was sent, the sender goes back and resends).
#pragma once

#include <deque>
#include <map>

#include "core/feedback.hpp"
#include "net/packet.hpp"
#include "transport/connection.hpp"

namespace xpass::core {

struct ExpressPassConfig {
  double alpha_init = 0.5;   // initial credit rate = alpha * max_rate
  double w_init = 0.5;
  double w_min = 0.01;
  double w_max = 0.5;
  double target_loss = 0.1;
  // Credit pacing jitter as a fraction of the inter-credit gap (Fig 6a).
  // On top of this, host NICs add software rate-limiter noise
  // (LinkConfig::host_credit_shaper_noise, the Fig-6b effect); together
  // they break the drop synchronization that would otherwise lock flows
  // out of the tiny drop-tail credit queues.
  double jitter = 0.1;
  bool randomize_credit_size = true;  // 84..92B (§3.1 switch-jitter fix)
  bool naive = false;                 // max-rate credits, no feedback (§2)
  // Feedback update period; the paper uses the RTT.
  sim::Time update_period = sim::Time::us(100);
  // Max credit rate in data-bps terms; 0 = receiver link rate.
  double max_rate_bps = 0.0;
  // Traffic class of this flow's credits (§7 multi-class extension; only
  // meaningful when ports configure credit_class_weights).
  uint8_t traffic_class = 0;
  // Sender retries the credit request if no credit arrives (Fig 7 timeout).
  sim::Time request_timeout = sim::Time::us(400);
};

class ExpressPassConnection : public transport::Connection {
 public:
  ExpressPassConnection(sim::Simulator& sim, const transport::FlowSpec& spec,
                        const ExpressPassConfig& cfg);
  ~ExpressPassConnection() override;

  void start() override;
  void stop() override;

  // Introspection for tests/benches.
  double credit_rate_bps() const { return feedback_.rate(); }
  uint64_t credits_sent() const { return credits_sent_total_; }
  uint64_t credits_received() const { return credits_received_; }
  uint64_t credits_wasted() const { return credits_wasted_; }
  const CreditFeedback& feedback() const { return feedback_; }
  // Host-release data sends scheduled but not yet on the wire.
  size_t pending_releases() const { return release_timers_.size(); }

 private:
  // Sender side.
  void sender_on_packet(net::Packet&& p);
  void on_credit(const net::Packet& credit);
  void send_request();
  void send_credit_stop();

  // Receiver side.
  void receiver_on_packet(net::Packet&& p);
  void start_credits();
  void send_credit();
  void schedule_next_credit();
  void run_feedback();

  ExpressPassConfig cfg_;
  CreditFeedback feedback_;

  // Sender state (Fig 7a).
  uint64_t snd_nxt_ = 0;  // next byte to send
  bool stop_sent_ = false;
  sim::Time host_release_;  // host processing is FIFO: departures in order
  sim::Time last_data_sent_;  // guards loss-recovery against stale credits
  sim::TimerId request_timer_;
  // Scheduled host-release sends, oldest first (releases are FIFO, so the
  // front is always the next to fire). Cancelled in stop(): a connection
  // destroyed with a release in flight must not fire into freed memory.
  std::deque<sim::TimerId> release_timers_;
  bool any_credit_seen_ = false;

  // Receiver state (Fig 7b).
  bool credits_running_ = false;
  // Latched once crediting ends for good (CREDIT_STOP received, or every
  // byte up to the FIN arrived): a retransmitted SYN/CREDIT_REQUEST that
  // was still in flight must not restart crediting for a finished flow.
  bool done_ = false;
  uint64_t rcv_next_ = 0;        // in-order bytes received
  uint64_t fin_end_ = 0;         // flow length, learned from the FIN flag
  std::map<uint64_t, uint32_t> rcv_ooo_;  // reassembly (packet spraying)
  uint64_t credit_seq_ = 0;
  uint64_t credits_sent_total_ = 0;
  uint64_t credits_sent_period_ = 0;
  // Credit-loss detection (§3.2): every data packet echoes the sequence
  // number of the credit that triggered it; since a flow's path is FIFO, a
  // gap in echoed sequence numbers counts exactly the credits dropped at
  // rate limiters.
  bool has_echo_ = false;
  uint64_t last_echo_seq_ = 0;
  uint64_t credits_dropped_period_ = 0;
  uint64_t data_rcvd_period_ = 0;
  sim::TimerId credit_timer_;
  sim::TimerId feedback_timer_;

  // Waste accounting (sender side).
  uint64_t credits_received_ = 0;
  uint64_t credits_wasted_ = 0;

  bool started_ = false;
};

class ExpressPassTransport : public transport::Transport {
 public:
  explicit ExpressPassTransport(sim::Simulator& sim,
                                ExpressPassConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<transport::Connection> create(
      const transport::FlowSpec& spec) override {
    return std::make_unique<ExpressPassConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override {
    return cfg_.naive ? "ExpressPass-naive" : "ExpressPass";
  }
  const ExpressPassConfig& config() const { return cfg_; }

 private:
  sim::Simulator& sim_;
  ExpressPassConfig cfg_;
};

}  // namespace xpass::core
