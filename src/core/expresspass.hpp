// ExpressPass connection: receiver-driven credit pacing with the Algorithm-1
// feedback loop, and the Fig-7 sender/receiver state machines.
//
// Lifecycle:
//   sender --SYN(credit request)--> receiver       (piggybacked per §3.1)
//   receiver paces CREDIT packets at cur_rate (jittered; sizes randomized
//     84-92B to break switch-level synchronization)
//   sender answers each credit with one data packet after a sampled host
//     credit-processing delay (in order); credits with nothing to send are
//     counted as waste (Fig 8b / Fig 20)
//   receiver measures credit loss per update period via sent-vs-delivered
//     accounting and runs CreditFeedback
//   sender --CREDIT_STOP--> receiver once all bytes are acknowledged (the
//     credit's cum-ack field doubles as the loss-recovery signal: if it
//     regresses below what was sent, the sender goes back and resends).
#pragma once

#include <map>

#include "core/feedback.hpp"
#include "net/packet.hpp"
#include "net/ring_buffer.hpp"
#include "transport/connection.hpp"
#include "transport/credit_sched.hpp"

namespace xpass::core {

struct ExpressPassConfig {
  double alpha_init = 0.5;   // initial credit rate = alpha * max_rate
  double w_init = 0.5;
  double w_min = 0.01;
  double w_max = 0.5;
  double target_loss = 0.1;
  // Credit pacing jitter as a fraction of the inter-credit gap (Fig 6a).
  // On top of this, host NICs add software rate-limiter noise
  // (LinkConfig::host_credit_shaper_noise, the Fig-6b effect); together
  // they break the drop synchronization that would otherwise lock flows
  // out of the tiny drop-tail credit queues.
  double jitter = 0.1;
  bool randomize_credit_size = true;  // 84..92B (§3.1 switch-jitter fix)
  bool naive = false;                 // max-rate credits, no feedback (§2)
  // Feedback update period; the paper uses the RTT.
  sim::Time update_period = sim::Time::us(100);
  // Max credit rate in data-bps terms; 0 = receiver link rate.
  double max_rate_bps = 0.0;
  // Traffic class of this flow's credits (§7 multi-class extension; only
  // meaningful when ports configure credit_class_weights).
  uint8_t traffic_class = 0;
  // Sender retries the credit request if no credit arrives (Fig 7 timeout).
  // This is also the watchdog base interval: whenever a watchdog period
  // passes with zero credits arriving, the sender re-sends the request.
  sim::Time request_timeout = sim::Time::us(400);
  // Dead-path survival. Consecutive silent watchdog periods back off
  // exponentially (doubling up to the cap, +/- jitter fraction so a rack's
  // worth of flows doesn't re-request in lockstep after a link recovers);
  // after max_dead_retries consecutive silent periods the flow aborts
  // gracefully instead of re-requesting forever. Credits flowing again at
  // any point reset the backoff and the retry budget.
  double request_backoff = 2.0;
  sim::Time request_timeout_cap = sim::Time::ms(25);
  double request_jitter = 0.2;
  uint32_t max_dead_retries = 12;
  // Receiver-side dead-flow detection: this many consecutive feedback
  // periods with credits paced but not one data packet back aborts the
  // receiver half. Must comfortably exceed the worst-case credit->data gap
  // at the minimum credit rate (max_rate/10000 floor ~ 13ms at 10G, vs.
  // 600 x 100us = 60ms), so a merely-throttled flow can never trip it.
  uint32_t receiver_dead_periods = 600;
  // CREDIT_STOP is a single unacknowledged control packet; if it is lost
  // the receiver credits forever. The sender re-sends it whenever credits
  // are still arriving this long after the last stop went out.
  sim::Time stop_retx_interval = sim::Time::us(400);
};

class ExpressPassConnection : public transport::Connection {
 public:
  ExpressPassConnection(sim::Simulator& sim, const transport::FlowSpec& spec,
                        const ExpressPassConfig& cfg);
  ~ExpressPassConnection() override;

  void start() override;
  void stop() override;

  // Introspection for tests/benches.
  double credit_rate_bps() const { return feedback_.rate(); }
  uint64_t credits_sent() const { return credits_sent_total_; }
  uint64_t credits_received() const { return ledger_.granted(); }
  uint64_t credits_wasted() const { return ledger_.wasted(); }
  const CreditFeedback& feedback() const { return feedback_; }
  // Sender-side permission accounting (one unit per credit).
  const transport::GrantLedger& ledger() const { return ledger_; }
  // Host-release data sends scheduled but not yet on the wire.
  size_t pending_releases() const { return release_timers_.size(); }
  // Cumulative credits the receiver detected as lost via echoed-sequence
  // gaps (§3.2) — the run-long sum of credits_dropped_period_.
  uint64_t credits_detected_lost() const { return credits_detected_lost_; }
  uint64_t requests_sent() const { return requests_sent_; }
  uint64_t credit_stops_sent() const { return credit_stops_sent_; }

 private:
  // Sender side.
  void sender_on_packet(net::Packet&& p);
  void on_credit(const net::Packet& credit);
  void send_request();
  void send_credit_stop();
  void arm_watchdog();
  void on_watchdog();
  // All bytes sent and the stop signaled: the sender half is finished even
  // though it cannot observe delivery directly.
  bool sender_done() const {
    return stop_sent_ && spec_.size_bytes != transport::kLongRunning &&
           snd_nxt_ >= spec_.size_bytes;
  }
  // Settles the flow as failed. Sharded runs may only touch the calling
  // half's timers (the other half's event queue belongs to another thread);
  // the orphaned half observes failed() and winds itself down.
  void abort_flow(const std::string& why, bool sender_half);

  // Receiver side.
  void receiver_on_packet(net::Packet&& p);
  void start_credits();
  // CreditScheduler's emit callback: builds and sends one CREDIT packet.
  bool emit_credit();
  void run_feedback();

  ExpressPassConfig cfg_;
  CreditFeedback feedback_;

  // Sender state (Fig 7a).
  uint64_t snd_nxt_ = 0;  // next byte to send
  bool stop_sent_ = false;
  sim::Time host_release_;  // host processing is FIFO: departures in order
  sim::Time last_data_sent_;  // guards loss-recovery against stale credits
  sim::TimerId request_timer_;  // doubles as the dead-path watchdog
  sim::Time cur_request_timeout_;   // current (backed-off) watchdog period
  uint32_t dead_retries_ = 0;       // consecutive silent watchdog periods
  uint64_t credits_at_last_watchdog_ = 0;
  sim::Time last_stop_time_;        // last CREDIT_STOP departure
  uint64_t requests_sent_ = 0;
  uint64_t credit_stops_sent_ = 0;
  // Scheduled host-release sends, oldest first (releases are FIFO, so the
  // front is always the next to fire). Cancelled in stop(): a connection
  // destroyed with a release in flight must not fire into freed memory.
  // RingBuffer rather than std::deque: a deque in steady state allocates and
  // frees a block every few hundred releases; the ring recycles its slots.
  net::RingBuffer<sim::TimerId> release_timers_;
  bool any_credit_seen_ = false;

  // Receiver state (Fig 7b). The credit pump (pacing timer, gap jitter,
  // running flag) lives in the extracted transport::CreditScheduler; this
  // class supplies its rate (feedback_) and emission (emit_credit).
  transport::CreditScheduler credit_sched_;
  // Latched once crediting ends for good (CREDIT_STOP received, or every
  // byte up to the FIN arrived): a retransmitted SYN/CREDIT_REQUEST that
  // was still in flight must not restart crediting for a finished flow.
  bool done_ = false;
  uint64_t rcv_next_ = 0;        // in-order bytes received
  uint64_t fin_end_ = 0;         // flow length, learned from the FIN flag
  std::map<uint64_t, uint32_t> rcv_ooo_;  // reassembly (packet spraying)
  uint64_t credit_seq_ = 0;
  uint64_t credits_sent_total_ = 0;
  uint64_t credits_sent_period_ = 0;
  // Credit-loss detection (§3.2): every data packet echoes the sequence
  // number of the credit that triggered it; since a flow's path is FIFO, a
  // gap in echoed sequence numbers counts exactly the credits dropped at
  // rate limiters.
  bool has_echo_ = false;
  uint64_t last_echo_seq_ = 0;
  uint64_t credits_dropped_period_ = 0;
  uint64_t credits_detected_lost_ = 0;  // run-long sum of the above
  uint64_t data_rcvd_period_ = 0;
  uint32_t dead_periods_ = 0;  // consecutive periods: credits out, no data
  sim::TimerId feedback_timer_;

  // Waste accounting (sender side): every credit received is consumed
  // (answered with data) or wasted (Fig 8b / Fig 20).
  transport::GrantLedger ledger_;

  bool started_ = false;
};

class ExpressPassTransport : public transport::Transport {
 public:
  explicit ExpressPassTransport(sim::Simulator& sim,
                                ExpressPassConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<transport::Connection> create(
      const transport::FlowSpec& spec) override {
    return std::make_unique<ExpressPassConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override {
    return cfg_.naive ? "ExpressPass-naive" : "ExpressPass";
  }
  const ExpressPassConfig& config() const { return cfg_; }

 private:
  sim::Simulator& sim_;
  ExpressPassConfig cfg_;
};

}  // namespace xpass::core
