// Credit-ledger telemetry hook: registers the §6.3 credit-efficiency
// counters as pull probes on a stats::Recorder ("xp.credits_received",
// "xp.credits_wasted", "xp.credit_waste_ratio").
//
// The waste ratio follows the Fig 20 accounting exactly: credits that
// reached a sender with nothing to send, over all credits that reached
// senders, with strays (credits that arrived for already-finished flows)
// counted in both numerator and denominator. Walks the connection list in
// creation order; non-ExpressPass connections contribute nothing.
#pragma once

#include <memory>
#include <vector>

#include "core/expresspass.hpp"
#include "net/topology.hpp"
#include "stats/recorder.hpp"

namespace xpass::core {

struct CreditLedger {
  uint64_t received = 0;  // credits delivered to senders, incl. strays
  uint64_t wasted = 0;    // credits answered with no data, incl. strays
  double waste_ratio() const {
    return received > 0
               ? static_cast<double>(wasted) / static_cast<double>(received)
               : 0.0;
  }
};

inline CreditLedger credit_ledger(
    const net::Topology& topo,
    const std::vector<std::unique_ptr<transport::Connection>>& conns) {
  CreditLedger l;
  const uint64_t strays = topo.stray_credits();
  l.received = strays;
  l.wasted = strays;
  for (const auto& c : conns) {
    auto* x = dynamic_cast<const ExpressPassConnection*>(c.get());
    if (x != nullptr) {
      l.received += x->credits_received();
      l.wasted += x->credits_wasted();
    }
  }
  return l;
}

inline void register_credit_telemetry(
    stats::Recorder& r, const net::Topology& topo,
    const std::vector<std::unique_ptr<transport::Connection>>& conns) {
  r.gauge("xp.credits_received", [&topo, &conns] {
    return static_cast<double>(credit_ledger(topo, conns).received);
  });
  r.gauge("xp.credits_wasted", [&topo, &conns] {
    return static_cast<double>(credit_ledger(topo, conns).wasted);
  });
  r.gauge("xp.credit_waste_ratio", [&topo, &conns] {
    return credit_ledger(topo, conns).waste_ratio();
  });
}

}  // namespace xpass::core
