#include "core/expresspass.hpp"

#include <algorithm>

#include "net/packet_pool.hpp"
#include <string>

namespace xpass::core {

using net::Packet;
using net::PktType;
using transport::kLongRunning;

namespace {
FeedbackParams make_params(const ExpressPassConfig& cfg, double link_bps) {
  FeedbackParams p;
  p.max_rate = cfg.max_rate_bps > 0.0 ? cfg.max_rate_bps : link_bps;
  p.init_rate = cfg.naive ? p.max_rate : cfg.alpha_init * p.max_rate;
  p.w_init = cfg.w_init;
  p.w_min = cfg.w_min;
  p.w_max = cfg.w_max;
  p.target_loss = cfg.target_loss;
  return p;
}

transport::CreditScheduler::Config sched_config(const ExpressPassConfig& cfg) {
  transport::CreditScheduler::Config c;
  c.jitter = cfg.jitter;
  c.cycle_bytes = net::kCreditCycleBytes;
  return c;
}
}  // namespace

ExpressPassConnection::ExpressPassConnection(
    sim::Simulator& sim, const transport::FlowSpec& spec,
    const ExpressPassConfig& cfg)
    : Connection(sim, spec),
      cfg_(cfg),
      feedback_(make_params(cfg, spec.dst->nic().config().rate_bps)),
      credit_sched_(
          rsim_, sched_config(cfg), [this] { return feedback_.rate(); },
          [this] { return emit_credit(); }) {}

ExpressPassConnection::~ExpressPassConnection() { stop(); }

void ExpressPassConnection::start() {
  if (started_) return;
  started_ = true;
  spec_.src->register_flow(spec_.id, [this](Packet&& p) {
    sender_on_packet(std::move(p));
  });
  spec_.dst->register_flow(spec_.id, [this](Packet&& p) {
    receiver_on_packet(std::move(p));
  });
  host_release_ = sim_.now();
  cur_request_timeout_ = cfg_.request_timeout;
  send_request();
  arm_watchdog();
}

void ExpressPassConnection::stop() {
  if (!started_) return;
  started_ = false;
  spec_.src->unregister_flow(spec_.id);
  spec_.dst->unregister_flow(spec_.id);
  credit_sched_.stop();
  rsim_.cancel(feedback_timer_);
  sim_.cancel(request_timer_);
  while (!release_timers_.empty()) sim_.cancel(release_timers_.pop_front());
}

// ----- Sender (Fig 7a) ----------------------------------------------------

void ExpressPassConnection::send_request() {
  // Credit request piggybacked on SYN (§3.1).
  Packet syn = net::make_control(PktType::kSyn, spec_.id, spec_.src->id(),
                                 spec_.dst->id());
  spec_.src->send(std::move(syn));
  ++requests_sent_;
}

void ExpressPassConnection::arm_watchdog() {
  sim_.cancel(request_timer_);
  double t_sec = cur_request_timeout_.to_sec();
  if (cfg_.request_jitter > 0.0 && dead_retries_ > 0) {
    // Desynchronize retries: after a shared link recovers, every starved
    // flow's watchdog is pending; identical periods would re-request in
    // lockstep. Healthy re-arms skip the draw so the watchdog leaves the
    // traffic RNG stream untouched on fault-free runs.
    t_sec *= 1.0 + cfg_.request_jitter * sim_.rng().uniform(-1.0, 1.0);
  }
  request_timer_ =
      sim_.after(sim::Time::seconds(t_sec), [this] { on_watchdog(); });
}

void ExpressPassConnection::on_watchdog() {
  // Fig 7's request timeout, generalized into a liveness watchdog: a period
  // with no credit arrivals re-sends CREDIT_REQUEST with exponential
  // backoff; enough consecutive silent periods means the path (or peer) is
  // dead and the flow aborts instead of hanging forever.
  if (completed() || failed() || sender_done()) return;
  if (ledger_.granted() > credits_at_last_watchdog_) {
    credits_at_last_watchdog_ = ledger_.granted();
    dead_retries_ = 0;
    cur_request_timeout_ = cfg_.request_timeout;
    arm_watchdog();
    return;
  }
  ++dead_retries_;
  if (dead_retries_ > cfg_.max_dead_retries) {
    abort_flow("sender: no credits after " +
                   std::to_string(cfg_.max_dead_retries) + " request retries",
               /*sender_half=*/true);
    return;
  }
  send_request();
  cur_request_timeout_ = std::min(
      sim::Time::seconds(cur_request_timeout_.to_sec() * cfg_.request_backoff),
      cfg_.request_timeout_cap);
  arm_watchdog();
}

void ExpressPassConnection::abort_flow(const std::string& why,
                                       bool sender_half) {
  if (&sim_ == &rsim_) {
    // Serial: one thread owns both halves; tear everything down at once.
    sim_.cancel(request_timer_);
    credit_sched_.stop();
    rsim_.cancel(feedback_timer_);
    done_ = true;
    fail_flow(why);
    return;
  }
  // Sharded: each half may only touch its own shard's event queue and its
  // own state. fail_flow()'s settlement is the cross-thread signal — the
  // other half sees failed() on its next timer/packet and goes quiet
  // (watchdog and credit/feedback pumps all check it before re-arming).
  if (sender_half) {
    sim_.cancel(request_timer_);
  } else {
    credit_sched_.stop();
    rsim_.cancel(feedback_timer_);
    done_ = true;
  }
  fail_flow(why);
}

void ExpressPassConnection::sender_on_packet(Packet&& p) {
  if (p.type != PktType::kCredit || failed()) return;
  any_credit_seen_ = true;
  ledger_.grant();

  const uint64_t size = spec_.size_bytes;
  // The credit's cum-ack tells us what the receiver actually has. If we
  // sent everything a while ago and the receiver is still missing bytes (a
  // rare data drop), go back and resend from its cumulative point. The
  // time guard matters: credits that were already in flight when we sent
  // the tail carry stale cum-acks and must not trigger retransmission.
  if (size != kLongRunning && snd_nxt_ >= size && p.ack < size &&
      sim_.now() - last_data_sent_ > cfg_.request_timeout) {
    snd_nxt_ = p.ack;
  }

  if (size != kLongRunning && snd_nxt_ >= size) {
    // Nothing to send: the credit is wasted (Fig 8b / Fig 20). CREDIT_STOP
    // is unacknowledged — if it was lost, the receiver keeps crediting; the
    // arrival of further credits this long after the last stop is exactly
    // that evidence, so re-send it.
    ledger_.waste();
    if (p.ack >= size &&
        (!stop_sent_ ||
         sim_.now() - last_stop_time_ >= cfg_.stop_retx_interval)) {
      send_credit_stop();
    }
    return;
  }

  const uint32_t payload = static_cast<uint32_t>(
      size == kLongRunning ? net::kMssBytes
                           : std::min<uint64_t>(net::kMssBytes,
                                                size - snd_nxt_));
  ledger_.consume();  // this credit is answered with data
  Packet data = net::make_data(spec_.id, spec_.src->id(), spec_.dst->id(),
                               snd_nxt_, payload);
  data.ack = p.seq;  // echo credit sequence (loss detection, §3.2)
  data.ts = sim_.now();
  snd_nxt_ += payload;
  if (size != kLongRunning && snd_nxt_ >= size) data.fin = true;

  // Host credit-processing delay: sampled per credit, released in FIFO
  // order (a host cannot reorder its own transmissions).
  last_data_sent_ = sim_.now();
  const sim::Time release =
      std::max(host_release_, sim_.now() + spec_.src->sample_credit_delay());
  host_release_ = release;
  // Releases fire in FIFO order (times are non-decreasing and ties fire in
  // scheduling order), so this event is release_timers_.front() when it
  // runs.
  // The waiting data frame sits in a pool slot, not in the callback capture:
  // [this + one pointer] stays within the event queue's inline buffer.
  release_timers_.push_back(
      sim_.at(release, [this, d = net::PacketRef(std::move(data))]() mutable {
        release_timers_.pop_front();
        spec_.src->send(std::move(*d));
      }));
}

void ExpressPassConnection::send_credit_stop() {
  stop_sent_ = true;
  last_stop_time_ = sim_.now();
  ++credit_stops_sent_;
  Packet stop = net::make_control(PktType::kCreditStop, spec_.id,
                                  spec_.src->id(), spec_.dst->id());
  spec_.src->send(std::move(stop));
}

// ----- Receiver (Fig 7b) --------------------------------------------------

void ExpressPassConnection::receiver_on_packet(Packet&& p) {
  if (failed()) return;  // an aborted flow is settled; ignore stragglers
  switch (p.type) {
    case PktType::kSyn:
    case PktType::kCreditRequest:
      // done_ guards against a retransmitted request (Fig 7's timeout can
      // leave one in flight) restarting credits for a finished flow.
      if (!credit_sched_.running() && !done_) start_credits();
      return;
    case PktType::kCreditStop:
      done_ = true;
      credit_sched_.stop();
      rsim_.cancel(feedback_timer_);
      return;
    case PktType::kData: {
      ++data_rcvd_period_;
      // Echoed credit sequence: gaps are credits lost at rate limiters.
      if (has_echo_) {
        if (p.ack > last_echo_seq_) {
          const uint64_t gap = p.ack - last_echo_seq_ - 1;
          credits_dropped_period_ += gap;
          credits_detected_lost_ += gap;
          last_echo_seq_ = p.ack;
        }
      } else {
        has_echo_ = true;
        credits_dropped_period_ += p.ack;  // credits before the first echo
        credits_detected_lost_ += p.ack;
        last_echo_seq_ = p.ack;
      }
      // The FIN flag tells the receiver where the flow ends (possibly out
      // of order); credits keep flowing until every byte up to it arrived,
      // which is also what recovers rare data losses.
      if (p.fin) fin_end_ = p.seq + p.payload_bytes;
      if (p.seq == rcv_next_) {
        rcv_next_ += p.payload_bytes;
        deliver(p.payload_bytes);
        // Drain anything reassembly buffered behind the new edge (packet
        // spraying reorders; bounded queues keep this buffer tiny, §7).
        auto it = rcv_ooo_.begin();
        while (it != rcv_ooo_.end() && it->first <= rcv_next_) {
          const uint64_t end = it->first + it->second;
          if (end > rcv_next_) {
            deliver(end - rcv_next_);
            rcv_next_ = end;
          }
          it = rcv_ooo_.erase(it);
        }
      } else if (p.seq > rcv_next_) {
        if (spec_.size_bytes == kLongRunning) {
          // Long-running flows have no retransmission (there is no "end"
          // to recover toward); account goodput across the hole.
          rcv_next_ = p.seq + p.payload_bytes;
          deliver(p.payload_bytes);
        } else {
          rcv_ooo_.emplace(p.seq, p.payload_bytes);
        }
      }
      if (fin_end_ > 0 && rcv_next_ >= fin_end_) {
        // All data arrived: stop crediting immediately and for good.
        // Credits already in flight are the unavoidable waste of Fig 8b /
        // Fig 20.
        done_ = true;
        if (credit_sched_.running()) {
          credit_sched_.stop();
          rsim_.cancel(feedback_timer_);
        }
      }
      return;
    }
    default:
      return;
  }
}

void ExpressPassConnection::start_credits() {
  credits_sent_period_ = 0;
  data_rcvd_period_ = 0;
  credit_sched_.start();
  feedback_timer_ =
      rsim_.after(cfg_.update_period, [this] { run_feedback(); });
}

bool ExpressPassConnection::emit_credit() {
  // failed(): the sender half may have aborted on its own thread; it cannot
  // cancel our timers, so the credit pump stops itself here (returning
  // false ends the scheduler's emission chain).
  if (failed()) return false;
  Packet credit = net::make_control(PktType::kCredit, spec_.id,
                                    spec_.dst->id(), spec_.src->id());
  credit.seq = credit_seq_++;
  credit.ack = rcv_next_;
  credit.credit_class = cfg_.traffic_class;
  if (cfg_.randomize_credit_size) {
    credit.wire_bytes = static_cast<uint32_t>(
        rsim_.rng().uniform_int(net::kMinWireBytes, net::kMinWireBytes + 8));
  }
  spec_.dst->send(std::move(credit));
  ++credits_sent_total_;
  ++credits_sent_period_;
  return true;
}

void ExpressPassConnection::run_feedback() {
  if (!credit_sched_.running() || failed()) return;
  // Dead-flow detection: credits going out, nothing at all coming back, for
  // long enough that even a min-rate sender (one data packet per ~13ms at
  // 10G) would have shown up many times over. The sender is gone — stop
  // pouring credits into the network and settle the flow as failed.
  if (credits_sent_period_ > 0 && data_rcvd_period_ == 0) {
    if (++dead_periods_ >= cfg_.receiver_dead_periods) {
      abort_flow("receiver: credits paced but no data for " +
                     std::to_string(dead_periods_) + " update periods",
                 /*sender_half=*/false);
      return;
    }
  } else if (data_rcvd_period_ > 0) {
    dead_periods_ = 0;
  }
  if (!cfg_.naive && credits_sent_period_ > 0) {
    const uint64_t basis = credits_dropped_period_ + data_rcvd_period_;
    const double loss =
        basis > 0 ? static_cast<double>(credits_dropped_period_) /
                        static_cast<double>(basis)
                  : 0.0;  // no evidence of drops: treat as uncongested
    feedback_.update(loss);
  }
  credits_sent_period_ = 0;
  credits_dropped_period_ = 0;
  data_rcvd_period_ = 0;
  feedback_timer_ =
      rsim_.after(cfg_.update_period, [this] { run_feedback(); });
}

}  // namespace xpass::core
