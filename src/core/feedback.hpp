// Credit feedback control — Algorithm 1 of the paper, verbatim.
//
// Binary-increase toward the max credit rate with an adaptive
// aggressiveness factor w: on low credit loss (<= target_loss) the rate
// moves toward C = max_rate*(1+target_loss) by weight w (and w itself climbs
// back toward w_max after two consecutive increases); on high loss the rate
// is cut to the goodput that actually passed the bottleneck, inflated by the
// target, and w halves (floored at w_min). §4 proves rates converge to C/N
// with oscillation bounded by D* = C*w_min*(1-1/N).
#pragma once

#include <algorithm>

#include "transport/credit_sched.hpp"

namespace xpass::core {

struct FeedbackParams {
  double max_rate = 0.0;    // max credit rate for the link (bps equivalent)
  double init_rate = 0.0;   // alpha * max_rate
  double w_init = 0.5;
  double w_min = 0.01;
  double w_max = 0.5;
  double target_loss = 0.1;
};

class CreditFeedback : public transport::FeedbackController {
 public:
  explicit CreditFeedback(const FeedbackParams& p)
      : p_(p), w_(p.w_init), rate_(p.init_rate) {}

  // One update period elapsed with the given measured credit loss fraction;
  // returns the new credit sending rate.
  double update(double credit_loss) override {
    if (credit_loss <= p_.target_loss) {
      if (prev_increasing_) w_ = (w_ + p_.w_max) / 2.0;
      rate_ = (1.0 - w_) * rate_ +
              w_ * p_.max_rate * (1.0 + p_.target_loss);
      prev_increasing_ = true;
    } else {
      rate_ = rate_ * (1.0 - credit_loss) * (1.0 + p_.target_loss);
      w_ = std::max(w_ / 2.0, p_.w_min);
      prev_increasing_ = false;
    }
    rate_ = std::clamp(rate_, min_rate(), p_.max_rate * (1.0 + p_.target_loss));
    return rate_;
  }

  double rate() const override { return rate_; }
  double w() const { return w_; }
  bool increasing() const { return prev_increasing_; }
  const FeedbackParams& params() const { return p_; }

 private:
  // Keep at least a trickle of credits so a throttled flow can still probe.
  double min_rate() const { return p_.max_rate / 10000.0; }

  FeedbackParams p_;
  double w_;
  double rate_;
  bool prev_increasing_ = false;
};

}  // namespace xpass::core
