#include "check/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xpass::check {

namespace {

const std::string kEmptyString;

// Shortest formatting that strtod round-trips to the same double (same
// scheme as stats::Recorder's JSON emission). Non-finite values have no
// JSON spelling; emit null.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  std::optional<Json> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& why) {
    if (err_ != nullptr && err_->empty()) {
      *err_ = "offset " + std::to_string(pos_) + ": " + why;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json::str(std::move(*s));
    }
    if (literal("null")) return Json();
    if (literal("true")) return Json::boolean(true);
    if (literal("false")) return Json::boolean(false);
    return number();
  }

  std::optional<std::string> string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            const std::string hex(text_.substr(pos_, 4));
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4 || code > 0x7f) {
              fail("unsupported \\u escape (ASCII only)");
              return std::nullopt;
            }
            out += static_cast<char>(code);
            pos_ += 4;
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok(text_.substr(start, pos_ - start));
    if (tok.empty() || tok == "-") {
      pos_ = start;
      fail("expected a value");
      return std::nullopt;
    }
    // Unsigned integer tokens keep exact 64-bit precision (seeds!); any
    // sign/fraction/exponent goes through the double path.
    if (integral && tok[0] != '-') {
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        return Json::u64(static_cast<uint64_t>(u));
      }
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("malformed number '" + tok + "'");
      return std::nullopt;
    }
    return Json::number(d);
  }

  std::optional<Json> array() {
    ++pos_;  // '['
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      out.push(std::move(*v));
      if (consume(']')) return out;
      if (!consume(',')) {
        fail("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> object() {
    ++pos_;  // '{'
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      auto key = string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      auto v = value();
      if (!v) return std::nullopt;
      out.set(*key, std::move(*v));
      if (consume('}')) return out;
      if (!consume(',')) {
        fail("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::string* err_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::u64(uint64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.u64_ = v;
  j.num_ = static_cast<double>(v);
  j.num_is_u64_ = true;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

double Json::as_double(double fallback) const {
  return type_ == Type::kNumber ? num_ : fallback;
}

uint64_t Json::as_u64(uint64_t fallback) const {
  if (type_ != Type::kNumber) return fallback;
  if (num_is_u64_) return u64_;
  return num_ >= 0 ? static_cast<uint64_t>(num_) : fallback;
}

const std::string& Json::as_string() const {
  return type_ == Type::kString ? str_ : kEmptyString;
}

void Json::push(Json v) {
  items_.push_back(std::move(v));
}

Json& Json::set(const std::string& key, Json v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_bool(fallback) : fallback;
}

double Json::get_double(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

uint64_t Json::get_u64(const std::string& key, uint64_t fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_u64(fallback) : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->type() == Type::kString ? v->as_string()
                                                    : fallback;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent) * depth, ' ')
             : std::string();
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (num_is_u64_) {
        out += std::to_string(u64_);
      } else {
        append_double(out, num_);
      }
      break;
    case Type::kString:
      append_quoted(out, str_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        if (pretty) {
          out += '\n';
          out += pad;
        }
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        if (pretty) {
          out += '\n';
          out += pad;
        }
        append_quoted(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* err) {
  if (err != nullptr) err->clear();
  return Parser(text, err).run();
}

}  // namespace xpass::check
