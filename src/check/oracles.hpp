// Oracle suite: executable statements of the paper's properties.
//
// An oracle looks at a declared ScenarioSpec and decides (a) whether it
// applies to that point of the scenario space and (b) whether the observed
// ScenarioResult honors the property. Three families:
//
//  * paper-property — direct claims from the paper on a single run:
//      invariants        runtime InvariantChecker sweeps came back clean
//                        (credit conservation, healthy-window zero loss,
//                        §3.1 queue bound, bounded delivery)
//      zero-data-loss    no data drop anywhere on a fault-free ExpressPass
//                        run (§3.1 headline claim)
//      queue-bound       max switch data queue <= calculus::buffer_bounds
//                        prediction, with slack (Table 1 / Fig 5)
//      fairness          Jain index at steady state >= floor (§6.1)
//      utilization       aggregate goodput >= floor x bottleneck capacity
//      coexistence       on a mixed-protocol fabric the credit reservation
//                        keeps ExpressPass above a minimum bottleneck share
//                        and no ExpressPass flow starves (§4.3)
//  * metamorphic — relations between transformed runs (no ground truth
//    needed, so they apply to every protocol):
//      determinism       same spec twice => byte-identical recorder JSON
//      flow-relabel      flow-id salt shift => identical aggregate stats
//      rescale           link rates x2, every time constant / 2 =>
//                        goodput x2, byte-denominated queues ~invariant
//  * differential — reference implementation comparison:
//      maxmin-diff       ExpressPass steady-state per-flow rates match the
//                        transport::maxmin_rates water-filling solver
//                        within tolerance (Fig 1a / Fig 10 / Fig 11)
//
// The suite drives runs through a caller-supplied RunFn so a harness can
// interpose (the fuzzer's bug injection sabotages the *executed* spec while
// oracles judge against the declared one — a model of "implementation
// diverges from its spec" bugs). Metamorphic oracles cost one extra run
// each; evaluate() runs the primary spec exactly once and shares the result.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runner/scenario.hpp"

namespace xpass::check {

using RunFn =
    std::function<runner::ScenarioResult(const runner::ScenarioSpec&)>;

// Tolerances. The rationale for each default is documented in
// EXPERIMENTS.md ("Property testing"); they are deliberately loose enough
// that a healthy simulator passes every generated spec, and tight enough
// that a broken mechanism (no credit jitter, hidden queue growth, naive
// feedback on a multi-hop chain) lands well outside them.
struct OracleOptions {
  double jain_floor = 0.85;
  double utilization_floor = 0.60;
  double queue_bound_slack = 2.0;  // x the calculus bound, + 8 MTUs
  double maxmin_rel_tol = 0.30;    // per-flow |rate - ref| / fair-share
  double rescale_goodput_tol = 0.25;
  double rescale_queue_factor = 4.0;
  // Coexistence: aggregate ExpressPass goodput on a mixed-protocol dumbbell
  // must stay above this fraction of the bottleneck rate — the observable
  // face of the §4.3 minimum credit-rate reservation (w_min = 0.05 of the
  // credit budget, i.e. ~4.7% of wire rate once credit overhead is paid).
  // The floor sits below the entitlement so only a broken reservation (or a
  // sabotaged rate cap) lands under it.
  double coexist_share_floor = 0.02;
  bool metamorphic = true;   // determinism / flow-relabel / rescale
  bool differential = true;  // maxmin-diff
};

struct OracleFinding {
  std::string oracle;
  bool pass = true;
  std::string details;  // violation description; empty when passing
};

class OracleSuite {
 public:
  explicit OracleSuite(const OracleOptions& opts = {}) : opts_(opts) {}

  // Runs `spec` through `run` (once, plus one run per applicable
  // metamorphic oracle) and returns one finding per applicable oracle.
  std::vector<OracleFinding> evaluate(const runner::ScenarioSpec& spec,
                                      const RunFn& run) const;

  // Re-evaluates a single oracle by name — the shrinker's re-check path.
  // nullopt when the oracle does not apply to `spec` (a shrink step that
  // leaves the property's domain is rejected by the caller).
  std::optional<OracleFinding> evaluate_one(const std::string& oracle,
                                            const runner::ScenarioSpec& spec,
                                            const RunFn& run) const;

  static const std::vector<std::string>& oracle_names();

  const OracleOptions& options() const { return opts_; }

 private:
  OracleOptions opts_;
};

}  // namespace xpass::check
