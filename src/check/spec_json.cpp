#include "check/spec_json.hpp"

namespace xpass::check {

namespace {

using runner::HostDelay;
using runner::Protocol;
using runner::ScenarioSpec;
using runner::StopKind;
using runner::TopologyKind;
using runner::TrafficKind;
using workload::WorkloadKind;

// --- enum spellings -------------------------------------------------------

std::string_view topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kDumbbell: return "dumbbell";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kClos: return "clos";
    case TopologyKind::kParkingLot: return "parking_lot";
    case TopologyKind::kMultiBottleneck: return "multi_bottleneck";
  }
  return "?";
}

std::optional<TopologyKind> parse_topology_kind(std::string_view s) {
  for (TopologyKind k :
       {TopologyKind::kDumbbell, TopologyKind::kStar, TopologyKind::kFatTree,
        TopologyKind::kClos, TopologyKind::kParkingLot,
        TopologyKind::kMultiBottleneck}) {
    if (s == topology_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::string_view host_delay_name(HostDelay d) {
  switch (d) {
    case HostDelay::kNone: return "none";
    case HostDelay::kTestbed: return "testbed";
    case HostDelay::kHardware: return "hardware";
  }
  return "?";
}

std::optional<HostDelay> parse_host_delay(std::string_view s) {
  for (HostDelay d :
       {HostDelay::kNone, HostDelay::kTestbed, HostDelay::kHardware}) {
    if (s == host_delay_name(d)) return d;
  }
  return std::nullopt;
}

std::string_view traffic_kind_name(TrafficKind k) {
  switch (k) {
    case TrafficKind::kPairwise: return "pairwise";
    case TrafficKind::kIncast: return "incast";
    case TrafficKind::kShuffle: return "shuffle";
    case TrafficKind::kPoisson: return "poisson";
    case TrafficKind::kChain: return "chain";
    case TrafficKind::kOnOff: return "onoff";
  }
  return "?";
}

std::optional<TrafficKind> parse_traffic_kind(std::string_view s) {
  for (TrafficKind k :
       {TrafficKind::kPairwise, TrafficKind::kIncast, TrafficKind::kShuffle,
        TrafficKind::kPoisson, TrafficKind::kChain, TrafficKind::kOnOff}) {
    if (s == traffic_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::string_view workload_kind_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kDataMining: return "datamining";
    case WorkloadKind::kWebSearch: return "websearch";
    case WorkloadKind::kCacheFollower: return "cachefollower";
    case WorkloadKind::kWebServer: return "webserver";
  }
  return "?";
}

std::optional<WorkloadKind> parse_workload_kind(std::string_view s) {
  for (WorkloadKind k :
       {WorkloadKind::kDataMining, WorkloadKind::kWebSearch,
        WorkloadKind::kCacheFollower, WorkloadKind::kWebServer}) {
    if (s == workload_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::string_view stop_kind_name(StopKind k) {
  switch (k) {
    case StopKind::kRunFor: return "run_for";
    case StopKind::kWindow: return "window";
    case StopKind::kCompletion: return "completion";
  }
  return "?";
}

std::optional<StopKind> parse_stop_kind(std::string_view s) {
  for (StopKind k :
       {StopKind::kRunFor, StopKind::kWindow, StopKind::kCompletion}) {
    if (s == stop_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::string_view fail_mode_name(net::LinkFailMode m) {
  return m == net::LinkFailMode::kDrain ? "drain" : "drop";
}

std::optional<net::LinkFailMode> parse_fail_mode(std::string_view s) {
  if (s == "drain") return net::LinkFailMode::kDrain;
  if (s == "drop") return net::LinkFailMode::kDrop;
  return std::nullopt;
}

// --- field helpers --------------------------------------------------------

Json time_json(sim::Time t) {
  // Spec times are nonnegative; exact integer picoseconds round-trip.
  return Json::u64(static_cast<uint64_t>(t.picos()));
}

sim::Time time_from(const Json& obj, const std::string& key, sim::Time dflt) {
  const Json* v = obj.find(key);
  if (v == nullptr) return dflt;
  return sim::Time::ps(static_cast<int64_t>(v->as_u64(0)));
}

// One shared error slot: the first problem wins, later set() calls no-op.
struct ErrorSink {
  std::string* err;
  bool failed = false;
  void set(const std::string& msg) {
    if (!failed && err != nullptr) *err = msg;
    failed = true;
  }
};

template <typename Enum, typename ParseFn>
Enum parse_enum_member(const Json& obj, const std::string& key, Enum dflt,
                       ParseFn&& parse, ErrorSink& sink) {
  const Json* v = obj.find(key);
  if (v == nullptr) return dflt;
  auto parsed = parse(v->as_string());
  if (!parsed) {
    sink.set("unknown " + key + " '" + v->as_string() + "'");
    return dflt;
  }
  return *parsed;
}

// --- traffic (shared by spec.traffic and flow_groups[i].traffic) ----------

Json traffic_json(const runner::TrafficSpec& tr) {
  Json traffic = Json::object();
  traffic.set("kind", Json::str(std::string(traffic_kind_name(tr.kind))));
  traffic.set("flows", Json::u64(tr.flows));
  traffic.set("bytes", Json::u64(tr.bytes));
  traffic.set("start_spread_sec", Json::number(tr.start_spread_sec));
  traffic.set("tasks_per_host", Json::u64(tr.tasks_per_host));
  traffic.set("workload",
              Json::str(std::string(workload_kind_name(tr.workload))));
  traffic.set("load", Json::number(tr.load));
  if (tr.capacity_bps) {
    traffic.set("capacity_bps", Json::number(*tr.capacity_bps));
  }
  // On/off parameters only for on/off traffic: every pre-existing canonical
  // document (and campaign cache key) must stay byte-identical.
  if (tr.kind == TrafficKind::kOnOff) {
    traffic.set("on_period_sec", Json::number(tr.on_period_sec));
    traffic.set("on_duty", Json::number(tr.on_duty));
  }
  traffic.set("flow_id_salt", Json::u64(tr.flow_id_salt));
  return traffic;
}

void traffic_from(const Json& t, runner::TrafficSpec& tr, ErrorSink& sink) {
  tr.kind = parse_enum_member(t, "kind", tr.kind, parse_traffic_kind, sink);
  tr.flows = static_cast<size_t>(t.get_u64("flows", tr.flows));
  tr.bytes = t.get_u64("bytes", tr.bytes);
  tr.start_spread_sec = t.get_double("start_spread_sec", tr.start_spread_sec);
  tr.tasks_per_host =
      static_cast<size_t>(t.get_u64("tasks_per_host", tr.tasks_per_host));
  tr.workload = parse_enum_member(t, "workload", tr.workload,
                                  parse_workload_kind, sink);
  tr.load = t.get_double("load", tr.load);
  if (const Json* v = t.find("capacity_bps")) {
    tr.capacity_bps = v->as_double(0.0);
  }
  tr.on_period_sec = t.get_double("on_period_sec", tr.on_period_sec);
  tr.on_duty = t.get_double("on_duty", tr.on_duty);
  tr.flow_id_salt =
      static_cast<uint32_t>(t.get_u64("flow_id_salt", tr.flow_id_salt));
}

}  // namespace

Json spec_to_json_doc(const ScenarioSpec& spec) {
  Json doc = Json::object();
  doc.set("schema", Json::str(std::string(kSpecSchema)));
  doc.set("name", Json::str(spec.name));
  doc.set("seed", Json::u64(spec.seed));
  doc.set("protocol",
          Json::str(std::string(runner::protocol_name(spec.protocol))));
  doc.set("base_rtt_ps", time_json(spec.base_rtt));

  Json topo = Json::object();
  const runner::TopologySpec& ts = spec.topology;
  topo.set("kind", Json::str(std::string(topology_kind_name(ts.kind))));
  topo.set("scale", Json::u64(ts.scale));
  topo.set("fat_tree_k", Json::u64(ts.fat_tree_k));
  Json clos = Json::object();
  clos.set("n_core", Json::u64(ts.clos.n_core));
  clos.set("pods", Json::u64(ts.clos.pods));
  clos.set("aggr_per_pod", Json::u64(ts.clos.aggr_per_pod));
  clos.set("tor_per_pod", Json::u64(ts.clos.tor_per_pod));
  clos.set("hosts_per_tor", Json::u64(ts.clos.hosts_per_tor));
  topo.set("clos", std::move(clos));
  topo.set("host_rate_bps", Json::number(ts.host_rate_bps));
  topo.set("fabric_rate_bps", Json::number(ts.fabric_rate_bps));
  topo.set("host_prop_ps", time_json(ts.host_prop));
  topo.set("fabric_prop_ps", time_json(ts.fabric_prop));
  if (ts.credit_queue_pkts) {
    topo.set("credit_queue_pkts", Json::u64(*ts.credit_queue_pkts));
  }
  if (ts.host_credit_shaper_noise) {
    topo.set("host_credit_shaper_noise",
             Json::number(*ts.host_credit_shaper_noise));
  }
  topo.set("host_delay",
           Json::str(std::string(host_delay_name(ts.host_delay))));
  topo.set("packet_spraying", Json::boolean(ts.packet_spraying));
  // Only when jittered: zero-jitter specs canonicalize byte-identically to
  // their pre-jitter documents.
  if (ts.link_jitter > sim::Time::zero()) {
    topo.set("link_jitter_ps", time_json(ts.link_jitter));
  }
  doc.set("topology", std::move(topo));

  if (spec.xp) {
    const core::ExpressPassConfig& x = *spec.xp;
    Json xp = Json::object();
    xp.set("alpha_init", Json::number(x.alpha_init));
    xp.set("w_init", Json::number(x.w_init));
    xp.set("w_min", Json::number(x.w_min));
    xp.set("w_max", Json::number(x.w_max));
    xp.set("target_loss", Json::number(x.target_loss));
    xp.set("jitter", Json::number(x.jitter));
    xp.set("randomize_credit_size", Json::boolean(x.randomize_credit_size));
    xp.set("naive", Json::boolean(x.naive));
    xp.set("update_period_ps", time_json(x.update_period));
    xp.set("max_rate_bps", Json::number(x.max_rate_bps));
    xp.set("traffic_class", Json::u64(x.traffic_class));
    xp.set("request_timeout_ps", time_json(x.request_timeout));
    xp.set("request_backoff", Json::number(x.request_backoff));
    xp.set("request_timeout_cap_ps", time_json(x.request_timeout_cap));
    xp.set("request_jitter", Json::number(x.request_jitter));
    xp.set("max_dead_retries", Json::u64(x.max_dead_retries));
    xp.set("receiver_dead_periods", Json::u64(x.receiver_dead_periods));
    xp.set("stop_retx_interval_ps", time_json(x.stop_retx_interval));
    doc.set("xp", std::move(xp));
  }

  doc.set("traffic", traffic_json(spec.traffic));

  // Mixed-protocol coexistence groups, only when present: single-group
  // specs canonicalize byte-identically to their pre-coexistence documents.
  if (!spec.flow_groups.empty()) {
    Json groups = Json::array();
    for (const runner::FlowGroupSpec& g : spec.flow_groups) {
      Json entry = Json::object();
      entry.set("protocol",
                Json::str(std::string(runner::protocol_name(g.protocol))));
      entry.set("share", Json::number(g.share));
      entry.set("traffic", traffic_json(g.traffic));
      groups.push(std::move(entry));
    }
    doc.set("flow_groups", std::move(groups));
  }

  Json stop = Json::object();
  stop.set("kind", Json::str(std::string(stop_kind_name(spec.stop.kind))));
  stop.set("horizon_ps", time_json(spec.stop.horizon));
  stop.set("warmup_ps", time_json(spec.stop.warmup));
  stop.set("window_ps", time_json(spec.stop.window));
  doc.set("stop", std::move(stop));

  Json tel = Json::object();
  tel.set("sample_interval_ps", time_json(spec.telemetry.sample_interval));
  tel.set("bottleneck_queue_series",
          Json::boolean(spec.telemetry.bottleneck_queue_series));
  tel.set("per_port_queue_series",
          Json::boolean(spec.telemetry.per_port_queue_series));
  tel.set("flow_rate_series",
          Json::boolean(spec.telemetry.flow_rate_series));
  doc.set("telemetry", std::move(tel));

  if (spec.budget) {
    const sim::RunBudget& b = *spec.budget;
    Json budget = Json::object();
    budget.set("max_events", Json::u64(b.max_events));
    budget.set("max_sim_time_ps", time_json(b.max_sim_time));
    budget.set("max_wall_ms", Json::number(b.max_wall_ms));
    budget.set("max_live_events", Json::u64(b.max_live_events));
    doc.set("budget", std::move(budget));
  }

  // Emitted only when actually sharded: shards 0 and 1 both mean "the
  // serial core" and must canonicalize to the same document (and the same
  // campaign cache key) as every pre-existing spec.
  if (spec.shards > 1) doc.set("shards", Json::u64(spec.shards));

  Json faults = Json::object();
  const runner::FaultScenario& f = spec.faults;
  faults.set("flap_down_ps", time_json(f.flap_down));
  faults.set("flap_up_ps", time_json(f.flap_up));
  faults.set("kill_at_ps", time_json(f.kill_at));
  faults.set("fail_mode", Json::str(std::string(fail_mode_name(f.fail_mode))));
  Json errors = Json::object();
  errors.set("data_drop", Json::number(f.errors.data_drop));
  errors.set("credit_drop", Json::number(f.errors.credit_drop));
  errors.set("data_corrupt", Json::number(f.errors.data_corrupt));
  errors.set("credit_corrupt", Json::number(f.errors.credit_corrupt));
  errors.set("ge_good_to_bad", Json::number(f.errors.ge_good_to_bad));
  errors.set("ge_bad_to_good", Json::number(f.errors.ge_bad_to_good));
  errors.set("ge_drop_good", Json::number(f.errors.ge_drop_good));
  errors.set("ge_drop_bad", Json::number(f.errors.ge_drop_bad));
  faults.set("errors", std::move(errors));
  doc.set("faults", std::move(faults));

  doc.set("fault_seed", Json::u64(spec.fault_seed));
  doc.set("check_invariants", Json::boolean(spec.check_invariants));
  return doc;
}

std::string spec_to_json(const ScenarioSpec& spec) {
  return spec_to_json_doc(spec).dump(2) + "\n";
}

std::optional<ScenarioSpec> spec_from_json_doc(const Json& doc,
                                               std::string* err) {
  ErrorSink sink{err};
  if (doc.type() != Json::Type::kObject) {
    sink.set("spec document is not an object");
    return std::nullopt;
  }
  const std::string schema = doc.get_string("schema", std::string(kSpecSchema));
  if (schema != kSpecSchema) {
    sink.set("unknown schema '" + schema + "'");
    return std::nullopt;
  }

  ScenarioSpec spec;
  spec.name = doc.get_string("name", spec.name);
  spec.seed = doc.get_u64("seed", spec.seed);
  if (const Json* p = doc.find("protocol")) {
    auto parsed = runner::parse_protocol(p->as_string());
    if (!parsed) {
      sink.set("unknown protocol '" + p->as_string() + "'");
      return std::nullopt;
    }
    spec.protocol = *parsed;
  }
  spec.base_rtt = time_from(doc, "base_rtt_ps", spec.base_rtt);

  if (const Json* t = doc.find("topology")) {
    runner::TopologySpec& ts = spec.topology;
    ts.kind = parse_enum_member(*t, "kind", ts.kind, parse_topology_kind,
                                sink);
    ts.scale = static_cast<size_t>(t->get_u64("scale", ts.scale));
    ts.fat_tree_k =
        static_cast<size_t>(t->get_u64("fat_tree_k", ts.fat_tree_k));
    if (const Json* c = t->find("clos")) {
      ts.clos.n_core = static_cast<size_t>(c->get_u64("n_core",
                                                      ts.clos.n_core));
      ts.clos.pods = static_cast<size_t>(c->get_u64("pods", ts.clos.pods));
      ts.clos.aggr_per_pod =
          static_cast<size_t>(c->get_u64("aggr_per_pod", ts.clos.aggr_per_pod));
      ts.clos.tor_per_pod =
          static_cast<size_t>(c->get_u64("tor_per_pod", ts.clos.tor_per_pod));
      ts.clos.hosts_per_tor = static_cast<size_t>(
          c->get_u64("hosts_per_tor", ts.clos.hosts_per_tor));
    }
    ts.host_rate_bps = t->get_double("host_rate_bps", ts.host_rate_bps);
    ts.fabric_rate_bps = t->get_double("fabric_rate_bps", ts.fabric_rate_bps);
    ts.host_prop = time_from(*t, "host_prop_ps", ts.host_prop);
    ts.fabric_prop = time_from(*t, "fabric_prop_ps", ts.fabric_prop);
    if (const Json* v = t->find("credit_queue_pkts")) {
      ts.credit_queue_pkts = static_cast<size_t>(v->as_u64(0));
    }
    if (const Json* v = t->find("host_credit_shaper_noise")) {
      ts.host_credit_shaper_noise = v->as_double(0.0);
    }
    ts.host_delay = parse_enum_member(*t, "host_delay", ts.host_delay,
                                      parse_host_delay, sink);
    ts.packet_spraying = t->get_bool("packet_spraying", ts.packet_spraying);
    ts.link_jitter = time_from(*t, "link_jitter_ps", ts.link_jitter);
  }

  if (const Json* x = doc.find("xp")) {
    core::ExpressPassConfig cfg;
    cfg.alpha_init = x->get_double("alpha_init", cfg.alpha_init);
    cfg.w_init = x->get_double("w_init", cfg.w_init);
    cfg.w_min = x->get_double("w_min", cfg.w_min);
    cfg.w_max = x->get_double("w_max", cfg.w_max);
    cfg.target_loss = x->get_double("target_loss", cfg.target_loss);
    cfg.jitter = x->get_double("jitter", cfg.jitter);
    cfg.randomize_credit_size =
        x->get_bool("randomize_credit_size", cfg.randomize_credit_size);
    cfg.naive = x->get_bool("naive", cfg.naive);
    cfg.update_period = time_from(*x, "update_period_ps", cfg.update_period);
    cfg.max_rate_bps = x->get_double("max_rate_bps", cfg.max_rate_bps);
    cfg.traffic_class =
        static_cast<uint8_t>(x->get_u64("traffic_class", cfg.traffic_class));
    cfg.request_timeout =
        time_from(*x, "request_timeout_ps", cfg.request_timeout);
    cfg.request_backoff = x->get_double("request_backoff", cfg.request_backoff);
    cfg.request_timeout_cap =
        time_from(*x, "request_timeout_cap_ps", cfg.request_timeout_cap);
    cfg.request_jitter = x->get_double("request_jitter", cfg.request_jitter);
    cfg.max_dead_retries = static_cast<uint32_t>(
        x->get_u64("max_dead_retries", cfg.max_dead_retries));
    cfg.receiver_dead_periods = static_cast<uint32_t>(
        x->get_u64("receiver_dead_periods", cfg.receiver_dead_periods));
    cfg.stop_retx_interval =
        time_from(*x, "stop_retx_interval_ps", cfg.stop_retx_interval);
    spec.xp = cfg;
  }

  if (const Json* t = doc.find("traffic")) {
    traffic_from(*t, spec.traffic, sink);
  }

  if (const Json* gs = doc.find("flow_groups")) {
    if (gs->type() != Json::Type::kArray) {
      sink.set("flow_groups is not an array");
      return std::nullopt;
    }
    for (const Json& entry : gs->items()) {
      runner::FlowGroupSpec g;
      if (const Json* p = entry.find("protocol")) {
        auto parsed = runner::parse_protocol(p->as_string());
        if (!parsed) {
          sink.set("unknown flow_groups protocol '" + p->as_string() + "'");
          return std::nullopt;
        }
        g.protocol = *parsed;
      }
      g.share = entry.get_double("share", g.share);
      if (const Json* t = entry.find("traffic")) {
        traffic_from(*t, g.traffic, sink);
      }
      spec.flow_groups.push_back(std::move(g));
    }
  }

  if (const Json* s = doc.find("stop")) {
    spec.stop.kind = parse_enum_member(*s, "kind", spec.stop.kind,
                                       parse_stop_kind, sink);
    spec.stop.horizon = time_from(*s, "horizon_ps", spec.stop.horizon);
    spec.stop.warmup = time_from(*s, "warmup_ps", spec.stop.warmup);
    spec.stop.window = time_from(*s, "window_ps", spec.stop.window);
  }

  if (const Json* t = doc.find("telemetry")) {
    runner::TelemetrySpec& tel = spec.telemetry;
    tel.sample_interval =
        time_from(*t, "sample_interval_ps", tel.sample_interval);
    tel.bottleneck_queue_series =
        t->get_bool("bottleneck_queue_series", tel.bottleneck_queue_series);
    tel.per_port_queue_series =
        t->get_bool("per_port_queue_series", tel.per_port_queue_series);
    tel.flow_rate_series =
        t->get_bool("flow_rate_series", tel.flow_rate_series);
  }

  spec.shards = static_cast<size_t>(doc.get_u64("shards", 0));
  if (const Json* b = doc.find("budget")) {
    sim::RunBudget budget;
    budget.max_events = b->get_u64("max_events", budget.max_events);
    budget.max_sim_time = time_from(*b, "max_sim_time_ps", budget.max_sim_time);
    budget.max_wall_ms = b->get_double("max_wall_ms", budget.max_wall_ms);
    budget.max_live_events = static_cast<size_t>(
        b->get_u64("max_live_events", budget.max_live_events));
    spec.budget = budget;
  }

  if (const Json* f = doc.find("faults")) {
    runner::FaultScenario& fs = spec.faults;
    fs.flap_down = time_from(*f, "flap_down_ps", fs.flap_down);
    fs.flap_up = time_from(*f, "flap_up_ps", fs.flap_up);
    fs.kill_at = time_from(*f, "kill_at_ps", fs.kill_at);
    fs.fail_mode = parse_enum_member(*f, "fail_mode", fs.fail_mode,
                                     parse_fail_mode, sink);
    if (const Json* e = f->find("errors")) {
      net::LinkErrorConfig& ec = fs.errors;
      ec.data_drop = e->get_double("data_drop", ec.data_drop);
      ec.credit_drop = e->get_double("credit_drop", ec.credit_drop);
      ec.data_corrupt = e->get_double("data_corrupt", ec.data_corrupt);
      ec.credit_corrupt = e->get_double("credit_corrupt", ec.credit_corrupt);
      ec.ge_good_to_bad = e->get_double("ge_good_to_bad", ec.ge_good_to_bad);
      ec.ge_bad_to_good = e->get_double("ge_bad_to_good", ec.ge_bad_to_good);
      ec.ge_drop_good = e->get_double("ge_drop_good", ec.ge_drop_good);
      ec.ge_drop_bad = e->get_double("ge_drop_bad", ec.ge_drop_bad);
    }
  }

  spec.fault_seed = doc.get_u64("fault_seed", spec.fault_seed);
  spec.check_invariants =
      doc.get_bool("check_invariants", spec.check_invariants);
  if (sink.failed) return std::nullopt;
  return spec;
}

std::optional<ScenarioSpec> spec_from_json(const std::string& text,
                                           std::string* err) {
  auto doc = Json::parse(text, err);
  if (!doc) return std::nullopt;
  return spec_from_json_doc(*doc, err);
}

}  // namespace xpass::check
