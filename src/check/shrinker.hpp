// Greedy ScenarioSpec shrinker: turn a failing fuzz scenario into the
// smallest spec that still violates the same oracle.
//
// Classic property-testing shrinking, specialized to scenario structure:
// candidate transformations (halve the flow count, shrink the topology,
// drop the fault plan, halve the measurement horizon, strip telemetry, cut
// flow sizes) are tried in a fixed order; a candidate is accepted only when
// the transformed spec still *applies to* and still *fails* the original
// oracle, and the greedy loop restarts until a full pass accepts nothing.
// Every accepted step strictly reduces a size measure (flows, hosts, fault
// events, simulated picoseconds), so termination is structural; max_checks
// bounds the worst case anyway since every candidate costs a simulation.
#pragma once

#include <cstdint>
#include <string>

#include "check/oracles.hpp"
#include "runner/scenario.hpp"

namespace xpass::check {

struct ShrinkOptions {
  // Upper bound on oracle re-checks (each one simulates). The greedy loop
  // almost always fixpoints in well under 40.
  size_t max_checks = 120;
};

struct ShrinkOutcome {
  runner::ScenarioSpec spec;  // the minimal still-failing spec
  std::string details;        // the oracle's message on the minimal spec
  size_t checks = 0;          // oracle evaluations spent
  size_t accepted = 0;        // transformations that stuck
};

// Shrinks `spec`, which must currently fail `oracle` under `suite`/`run`.
// Returns the smallest still-failing spec found (at worst, `spec` itself).
ShrinkOutcome shrink_spec(const runner::ScenarioSpec& spec,
                          const std::string& oracle, const OracleSuite& suite,
                          const RunFn& run, const ShrinkOptions& opts = {});

}  // namespace xpass::check
