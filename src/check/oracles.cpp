#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "calculus/buffer_bounds.hpp"
#include "net/packet.hpp"
#include "transport/maxmin.hpp"

namespace xpass::check {

namespace {

using runner::Protocol;
using runner::ScenarioResult;
using runner::ScenarioSpec;
using runner::StopKind;
using runner::TopologyKind;
using runner::TrafficKind;
using sim::Time;

std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
std::string strf(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

bool is_xp(Protocol p) {
  return p == Protocol::kExpressPass || p == Protocol::kExpressPassNaive;
}

// Mixed-protocol coexistence runs draw all traffic from spec.flow_groups;
// the XP-only and equal-share oracles below do not apply to them.
bool mixed(const ScenarioSpec& s) { return !s.flow_groups.empty(); }

bool long_running(const ScenarioSpec& s) {
  // kOnOff keeps the long-running sentinel in `bytes` but chops sources
  // into duty-cycle bursts — never a steady-state measurement.
  return s.traffic.bytes == transport::kLongRunning &&
         s.traffic.kind != TrafficKind::kOnOff;
}

// Steady-state measurement: long-running flows, a real measurement window
// behind a converged warmup, and nothing killing links mid-run. The 10ms
// warmup floor matters: at 10G with multi-us propagation delays the credit
// feedback loop still carries visible start-up skew at 5ms (empirically
// flow shares sit ~30% apart), which washes out by ~10ms.
bool steady_state(const ScenarioSpec& s) {
  return long_running(s) && !mixed(s) && s.stop.kind == StopKind::kWindow &&
         s.stop.window >= Time::ms(10) && s.stop.warmup >= Time::ms(10) &&
         !s.faults.any();
}

double fabric_rate(const ScenarioSpec& s);

// The implementation's validated convergence envelope. base_rtt is the
// credit feedback update period; when rate x base_rtt grows past the
// paper's 10 Gbps x 100 us operating point (~1 Mbit), per-flow shares
// converge too slowly/coarsely to judge against equal-share references
// (empirically: 40 Gbps @ 100 us sits at Jain ~0.8 for tens of ms, while
// 40 Gbps @ 25 us and 10 Gbps @ 100 us both converge cleanly).
bool within_bdp_envelope(const ScenarioSpec& s) {
  return fabric_rate(s) * s.base_rtt.to_sec() <= 1.25e6;
}

// The fair-share scenario: identical pairwise flows over one bottleneck,
// one flow per host pair. More flows than host pairs stacks flows on a
// shared edge NIC, which is outside the paper's per-flow fairness claims
// (and the repo's validated envelope — every Fig 6/15d experiment gives
// each flow its own hosts).
bool fair_share_scenario(const ScenarioSpec& s) {
  return s.protocol == Protocol::kExpressPass &&
         s.topology.kind == TopologyKind::kDumbbell &&
         s.traffic.kind == TrafficKind::kPairwise && s.traffic.flows >= 2 &&
         s.traffic.flows <= s.topology.scale && steady_state(s) &&
         within_bdp_envelope(s);
}

double fabric_rate(const ScenarioSpec& s) {
  return s.topology.fabric_rate_bps > 0 ? s.topology.fabric_rate_bps
                                        : s.topology.host_rate_bps;
}

// The coexistence scenario: an ExpressPass fabric sharing a dumbbell
// bottleneck with at least one reactive (non-credit) flow group, measured
// over a converged window. The protected ExpressPass group(s) must be
// long-running so their bottleneck share is well-defined; the cross-traffic
// groups may be anything (on/off bursts included — that is the point).
bool coexistence_scenario(const ScenarioSpec& s) {
  if (!is_xp(s.protocol) || s.flow_groups.size() < 2) return false;
  if (s.topology.kind != TopologyKind::kDumbbell) return false;
  if (s.stop.kind != StopKind::kWindow || s.stop.window < Time::ms(10) ||
      s.stop.warmup < Time::ms(10) || s.faults.any()) {
    return false;
  }
  bool has_xp = false;
  bool has_other = false;
  for (const auto& g : s.flow_groups) {
    if (is_xp(g.protocol)) {
      if (g.traffic.bytes != transport::kLongRunning ||
          g.traffic.kind == TrafficKind::kOnOff || g.traffic.flows == 0) {
        return false;
      }
      has_xp = true;
    } else {
      has_other = true;
    }
  }
  return has_xp && has_other;
}

Time fabric_prop(const ScenarioSpec& s) {
  return s.topology.fabric_prop > Time::zero() ? s.topology.fabric_prop
                                               : s.topology.host_prop;
}

// §3.1 bound for the spec's link parameters. The dominant ToR-down-port
// class bounds any single data queue in a credit-scheduled fabric.
double calculus_queue_bound(const ScenarioSpec& s) {
  calculus::CalculusParams cp;
  cp.edge_rate_bps = s.topology.host_rate_bps;
  cp.fabric_rate_bps = fabric_rate(s);
  cp.edge_prop = s.topology.host_prop;
  cp.core_prop = fabric_prop(s);
  cp.credit_queue_pkts = s.topology.credit_queue_pkts.value_or(8);
  // delta_host: keep the testbed default (5.1us) even for HostDelay::kNone
  // — an over-estimate only loosens the bound, and the slack factor covers
  // the hardware model's tail.
  const auto b = calculus::compute_buffer_bounds(cp);
  return std::max(b.tor_down.buffer_bytes, b.tor_up.buffer_bytes);
}

// --- max-min reference problems ------------------------------------------

// Credit-scheduled goodput ceiling: each 1538B data frame is bought by an
// 84B credit on the reverse path, so data occupies 1538/1622 of the wire.
constexpr double kGoodputFraction =
    static_cast<double>(net::kMaxWireBytes) / net::kCreditCycleBytes;

// Returns one goodput entry per flow in ascending flow-id order, or empty
// when the topology/traffic pair has no modeled reference. Parking lot is
// deliberately absent: this implementation (like the paper's Fig 10) only
// validates *link utilization* there — the long flow's share is beaten well
// below max-min by multi-hop credit feedback, which is not a bug signal.
std::vector<double> maxmin_reference(const ScenarioSpec& s) {
  transport::MaxMinProblem p;
  const double edge = s.topology.host_rate_bps;
  const double core = fabric_rate(s);
  auto add_link = [&p](double cap) {
    p.link_capacity.push_back(cap);
    return static_cast<uint32_t>(p.link_capacity.size() - 1);
  };

  if (s.topology.kind == TopologyKind::kDumbbell &&
      s.traffic.kind == TrafficKind::kPairwise &&
      s.traffic.flows <= s.topology.scale) {
    // One flow per host pair only: stacking flows on a shared edge NIC is
    // outside the per-flow max-min envelope this simulator validates (see
    // fair_share_scenario).
    const uint32_t bottleneck = add_link(core);
    for (size_t i = 0; i < s.traffic.flows; ++i) {
      p.flow_links.push_back({add_link(edge), bottleneck, add_link(edge)});
    }
  } else if (s.topology.kind == TopologyKind::kMultiBottleneck &&
             s.traffic.kind == TrafficKind::kChain &&
             s.topology.scale <= 4) {
    // Scale cap mirrors Fig 11b's validated range: beyond N=4 cross flows
    // the feedback loop legitimately parks flow 0 ~2x above max-min.
    // Flow 0 crosses only L1; flows 1..N cross L1, L2, L3.
    const uint32_t l1 = add_link(core);
    const uint32_t l2 = add_link(core);
    const uint32_t l3 = add_link(core);
    p.flow_links.push_back({l1, add_link(edge), add_link(edge)});
    for (size_t i = 0; i < s.topology.scale; ++i) {
      p.flow_links.push_back({l1, l2, l3, add_link(edge), add_link(edge)});
    }
  } else {
    return {};
  }
  std::vector<double> rates = transport::maxmin_rates(p);
  for (double& r : rates) r *= kGoodputFraction;
  return rates;
}

// --- rescale transform ----------------------------------------------------

ScenarioSpec rescale_spec(const ScenarioSpec& s, double f) {
  ScenarioSpec r = s;
  r.name = s.name + "/rescaled";
  r.topology.host_rate_bps *= f;
  if (r.topology.fabric_rate_bps > 0) r.topology.fabric_rate_bps *= f;
  const double inv = 1.0 / f;
  r.topology.host_prop = s.topology.host_prop * inv;
  r.topology.fabric_prop = s.topology.fabric_prop * inv;
  r.base_rtt = s.base_rtt * inv;
  r.stop.horizon = s.stop.horizon * inv;
  r.stop.warmup = s.stop.warmup * inv;
  r.stop.window = s.stop.window * inv;
  r.traffic.start_spread_sec = s.traffic.start_spread_sec * inv;
  r.telemetry.sample_interval = s.telemetry.sample_interval * inv;
  return r;
}

// --- the oracle table -----------------------------------------------------

struct Oracle {
  const char* name;
  bool (*applicable)(const ScenarioSpec&, const OracleOptions&);
  OracleFinding (*eval)(const ScenarioSpec&, const ScenarioResult&,
                        const RunFn&, const OracleOptions&);
};

OracleFinding pass(const char* name) {
  return {name, true, {}};
}
OracleFinding fail(const char* name, std::string details) {
  return {name, false, std::move(details)};
}

const Oracle kOracles[] = {
    {"invariants",
     [](const ScenarioSpec& s, const OracleOptions&) {
       return s.check_invariants;
     },
     [](const ScenarioSpec&, const ScenarioResult& r, const RunFn&,
        const OracleOptions&) {
       if (r.invariant_violations == 0) return pass("invariants");
       std::string details = strf("%llu violation(s) in %llu sweeps",
                                  (unsigned long long)r.invariant_violations,
                                  (unsigned long long)r.invariant_sweeps);
       // A broken run trips the same sweep hundreds of times; the first few
       // messages carry all the diagnostic signal a repro needs.
       constexpr size_t kMaxMessages = 3;
       const size_t n = std::min(r.invariant_messages.size(), kMaxMessages);
       for (size_t i = 0; i < n; ++i) {
         details += "; " + r.invariant_messages[i];
       }
       if (r.invariant_messages.size() > n) {
         details += strf("; (+%zu more)", r.invariant_messages.size() - n);
       }
       return fail("invariants", std::move(details));
     }},

    {"zero-data-loss",
     [](const ScenarioSpec& s, const OracleOptions&) {
       // Mixed fabrics carry reactive cross-traffic that fills drop-tail
       // queues; loss there is the cross-traffic's control signal, not a
       // broken credit schedule.
       return is_xp(s.protocol) && !s.faults.any() && !mixed(s);
     },
     [](const ScenarioSpec&, const ScenarioResult& r, const RunFn&,
        const OracleOptions&) {
       // Queue overflow is the usual loss channel, but the property is
       // end-to-end: error-model drops, frames cut mid-flight, and frames
       // delivered corrupted (discarded at the host) all count. On a
       // declared-healthy run any of them means the execution broke the
       // declared model. (flushed_data is excluded: those frames re-count
       // in the queues' own drop stats.)
       const uint64_t lost = r.data_drops +
                             r.fault_totals.injected_data_drops +
                             r.fault_totals.cut_data +
                             r.fault_totals.corrupted_data;
       if (lost == 0) return pass("zero-data-loss");
       return fail("zero-data-loss",
                   strf("%llu data frame(s) lost on a fault-free "
                        "credit-scheduled run (%llu queue drops, %llu "
                        "injected, %llu cut, %llu corrupted)",
                        (unsigned long long)lost,
                        (unsigned long long)r.data_drops,
                        (unsigned long long)r.fault_totals.injected_data_drops,
                        (unsigned long long)r.fault_totals.cut_data,
                        (unsigned long long)r.fault_totals.corrupted_data));
     }},

    {"queue-bound",
     [](const ScenarioSpec& s, const OracleOptions&) {
       // The §3.1 calculus only bounds credit-scheduled arrivals; reactive
       // cross-traffic on a mixed fabric fills queues by design.
       return is_xp(s.protocol) && !s.faults.any() && !mixed(s);
     },
     [](const ScenarioSpec& s, const ScenarioResult& r, const RunFn&,
        const OracleOptions& o) {
       const double bound = o.queue_bound_slack * calculus_queue_bound(s) +
                            8.0 * net::kMaxWireBytes;
       if (static_cast<double>(r.max_switch_queue_bytes) <= bound) {
         return pass("queue-bound");
       }
       return fail(
           "queue-bound",
           strf("max switch data queue %llu B exceeds calculus bound %.0f B "
                "(slack %.1fx)",
                (unsigned long long)r.max_switch_queue_bytes, bound,
                o.queue_bound_slack));
     }},

    {"fairness",
     [](const ScenarioSpec& s, const OracleOptions&) {
       return fair_share_scenario(s);
     },
     [](const ScenarioSpec&, const ScenarioResult& r, const RunFn&,
        const OracleOptions& o) {
       if (r.jain >= o.jain_floor) return pass("fairness");
       return fail("fairness", strf("Jain index %.4f below floor %.2f over "
                                    "%zu equal flows",
                                    r.jain, o.jain_floor,
                                    r.flow_rates.size()));
     }},

    {"utilization",
     [](const ScenarioSpec& s, const OracleOptions&) {
       return fair_share_scenario(s);
     },
     [](const ScenarioSpec& s, const ScenarioResult& r, const RunFn&,
        const OracleOptions& o) {
       const double cap =
           std::min(static_cast<double>(s.traffic.flows) *
                        s.topology.host_rate_bps,
                    fabric_rate(s));
       if (r.sum_rate_bps >= o.utilization_floor * cap) {
         return pass("utilization");
       }
       return fail("utilization",
                   strf("aggregate goodput %.3f Gbps below %.0f%% of the "
                        "%.1f Gbps bottleneck",
                        r.sum_rate_bps / 1e9, o.utilization_floor * 100,
                        cap / 1e9));
     }},

    {"coexistence",
     [](const ScenarioSpec& s, const OracleOptions&) {
       return coexistence_scenario(s);
     },
     [](const ScenarioSpec& s, const ScenarioResult& r, const RunFn&,
        const OracleOptions& o) {
       // The §4.3 minimum credit-rate reservation is the paper's answer to
       // "can ExpressPass share a fabric with loss-based TCP?": even when
       // reactive cross-traffic keeps the bottleneck saturated, the credit
       // schedule keeps issuing at least w_min of the credit budget, so the
       // ExpressPass groups' aggregate goodput has a hard floor. Judge that
       // floor, plus per-flow survival (no ExpressPass flow starved).
       double xp_goodput = 0;
       size_t xp_starved = 0;
       size_t xp_groups = 0;
       for (const auto& g : r.groups) {
         if (!is_xp(g.protocol)) continue;
         ++xp_groups;
         xp_goodput += g.goodput_bps;
         xp_starved += g.starved;
       }
       if (xp_groups == 0) {
         return fail("coexistence",
                     "spec declares ExpressPass flow groups but the result "
                     "carries none — group extraction is broken");
       }
       if (xp_starved > 0) {
         return fail("coexistence",
                     strf("%zu ExpressPass flow(s) starved under reactive "
                          "cross-traffic despite the minimum credit-rate "
                          "reservation",
                          xp_starved));
       }
       const double floor_bps = o.coexist_share_floor * fabric_rate(s);
       if (xp_goodput < floor_bps) {
         return fail(
             "coexistence",
             strf("ExpressPass aggregate goodput %.3f Gbps below the "
                  "reservation floor %.3f Gbps (%.0f%% of the %.1f Gbps "
                  "bottleneck)",
                  xp_goodput / 1e9, floor_bps / 1e9,
                  o.coexist_share_floor * 100, fabric_rate(s) / 1e9));
       }
       return pass("coexistence");
     }},

    {"maxmin-diff",
     [](const ScenarioSpec& s, const OracleOptions& o) {
       if (!o.differential) return false;
       // On top of steady state, per-flow shares need a long averaging
       // window: the healthy feedback loop can hold a skewed split for
       // tens of ms (start-up synchronization), and 40ms of averaging is
       // what reliably lands converged runs inside the tolerance band.
       if (s.protocol != Protocol::kExpressPass || !steady_state(s) ||
           s.stop.window < Time::ms(40) || !within_bdp_envelope(s)) {
         return false;
       }
       // Lower rate bound: at 1 Gbps a 100us feedback period holds ~8 data
       // packets, so per-flow rate tracking is quantized too coarsely to
       // judge against a 30% band (Jain stays fine; exact shares wander).
       if (fabric_rate(s) * s.base_rtt.to_sec() < 4e5) return false;
       return !maxmin_reference(s).empty();
     },
     [](const ScenarioSpec& s, const ScenarioResult& r, const RunFn&,
        const OracleOptions& o) {
       const std::vector<double> ref = maxmin_reference(s);
       if (r.flow_rates.size() != ref.size()) {
         return fail("maxmin-diff",
                     strf("%zu measured flows vs %zu reference flows",
                          r.flow_rates.size(), ref.size()));
       }
       if (s.topology.kind == TopologyKind::kMultiBottleneck) {
         // Fig 11 envelope: judge flow 0 (the single-bottleneck flow) with
         // an asymmetric band. Healthy feedback tracks ~0.55-1.0x of its
         // max-min share here; the naive scheme's signature failure is
         // over-allocation to ~2.5x (it grabs the whole first link).
         const double got = r.flow_rates[0].second;
         const double want = ref[0];
         if (got > 1.8 * want || got < 0.4 * want) {
           return fail(
               "maxmin-diff",
               strf("multi-bottleneck flow %u rate %.3f Gbps outside "
                    "[0.4, 1.8]x of max-min share %.3f Gbps",
                    r.flow_rates[0].first, got / 1e9, want / 1e9));
         }
         return pass("maxmin-diff");
       }
       // Dumbbell: every flow sits on its own host pair; each one must
       // land within tolerance of its max-min share.
       // flow_rates is ascending-id; reference is built in the same order.
       for (size_t i = 0; i < ref.size(); ++i) {
         const double got = r.flow_rates[i].second;
         const double want = ref[i];
         if (std::abs(got - want) > o.maxmin_rel_tol * want) {
           return fail(
               "maxmin-diff",
               strf("flow %u rate %.3f Gbps vs max-min reference %.3f Gbps "
                    "(tolerance %.0f%%)",
                    r.flow_rates[i].first, got / 1e9, want / 1e9,
                    o.maxmin_rel_tol * 100));
         }
       }
       return pass("maxmin-diff");
     }},

    {"determinism",
     [](const ScenarioSpec&, const OracleOptions& o) {
       return o.metamorphic;
     },
     [](const ScenarioSpec& s, const ScenarioResult& r, const RunFn& run,
        const OracleOptions&) {
       const ScenarioResult again = run(s);
       const std::string a = r.recorder.to_json(s.name);
       const std::string b = again.recorder.to_json(s.name);
       if (a == b && r.end_time == again.end_time &&
           r.sum_rate_bps == again.sum_rate_bps) {
         return pass("determinism");
       }
       return fail("determinism",
                   "same spec, same seed: recorder output differs between "
                   "two runs (hidden nondeterminism)");
     }},

    {"flow-relabel",
     [](const ScenarioSpec& s, const OracleOptions& o) {
       // Single-path topologies only: on ECMP fabrics a flow's id may
       // legitimately steer its path hash.
       return o.metamorphic && !s.topology.packet_spraying &&
              (s.topology.kind == TopologyKind::kDumbbell ||
               s.topology.kind == TopologyKind::kStar);
     },
     [](const ScenarioSpec& s, const ScenarioResult&, const RunFn& run,
        const OracleOptions&) {
       // The host credit shaper draws deterministic per-credit noise from a
       // hash of (flow id, seq) — an intentional id dependence. Pin the
       // noise to zero on BOTH sides of the metamorphic pair so the ids'
       // only remaining legitimate role is identity; this costs a second
       // base run instead of reusing the shared primary result.
       ScenarioSpec base = s;
       base.topology.host_credit_shaper_noise = 0.0;
       ScenarioSpec relabeled = base;
       relabeled.traffic.flow_id_salt += 1000;
       // Mixed specs draw ids from per-group salts (spec.traffic unused);
       // shift every group inside its 2^20-wide id band.
       for (auto& g : relabeled.flow_groups) g.traffic.flow_id_salt += 1000;
       const ScenarioResult r = run(base);
       const ScenarioResult r2 = run(relabeled);
       auto mismatch = [](const char* what) {
         return fail("flow-relabel",
                     strf("flow-id relabeling changed %s — something "
                          "depends on flow ids beyond identity",
                          what));
       };
       if (r2.scheduled != r.scheduled || r2.completed != r.completed ||
           r2.failed != r.failed) {
         return mismatch("flow accounting");
       }
       if (r2.data_drops != r.data_drops ||
           r2.credit_drops != r.credit_drops) {
         return mismatch("drop counters");
       }
       if (r2.sum_rate_bps != r.sum_rate_bps || r2.jain != r.jain) {
         return mismatch("aggregate goodput/fairness");
       }
       if (r2.max_switch_queue_bytes != r.max_switch_queue_bytes) {
         return mismatch("queue occupancy");
       }
       if (r2.flow_rates.size() != r.flow_rates.size()) {
         return mismatch("per-flow rate count");
       }
       for (size_t i = 0; i < r.flow_rates.size(); ++i) {
         if (r2.flow_rates[i].second != r.flow_rates[i].second) {
           return mismatch("per-flow rates");
         }
       }
       return pass("flow-relabel");
     }},

    {"rescale",
     [](const ScenarioSpec& s, const OracleOptions& o) {
       // Needs every time constant in the run to scale with the transform:
       // default ExpressPass config (update period pinned to base_rtt) and
       // no host delay model (those carry absolute latencies).
       return o.metamorphic && fair_share_scenario(s) && !s.xp &&
              s.topology.host_delay == runner::HostDelay::kNone;
     },
     [](const ScenarioSpec& s, const ScenarioResult& r, const RunFn& run,
        const OracleOptions& o) {
       constexpr double f = 2.0;
       const ScenarioResult r2 = run(rescale_spec(s, f));
       if (r.sum_rate_bps <= 0) return pass("rescale");  // nothing to scale
       const double ratio = r2.sum_rate_bps / r.sum_rate_bps;
       if (std::abs(ratio - f) > f * o.rescale_goodput_tol) {
         return fail("rescale",
                     strf("2x link speed + 1/2 time constants scaled goodput "
                          "by %.3f (expected ~%.1f +/- %.0f%%)",
                          ratio, f, o.rescale_goodput_tol * 100));
       }
       // Byte-denominated queue occupancy is rate-invariant under the §3.1
       // calculus (spread shrinks as times do, charge rate doubles).
       const double q1 = static_cast<double>(r.max_switch_queue_bytes);
       const double q2 = static_cast<double>(r2.max_switch_queue_bytes);
       const double floor_b = 4.0 * net::kMaxWireBytes;
       if (q1 > floor_b && q2 > floor_b &&
           (q2 > q1 * o.rescale_queue_factor ||
            q1 > q2 * o.rescale_queue_factor)) {
         return fail("rescale",
                     strf("max queue went %.0f B -> %.0f B under rescale "
                          "(allowed factor %.1f)",
                          q1, q2, o.rescale_queue_factor));
       }
       return pass("rescale");
     }},
};

}  // namespace

std::vector<OracleFinding> OracleSuite::evaluate(const ScenarioSpec& spec,
                                                 const RunFn& run) const {
  const ScenarioResult primary = run(spec);
  std::vector<OracleFinding> out;
  for (const Oracle& o : kOracles) {
    if (!o.applicable(spec, opts_)) continue;
    out.push_back(o.eval(spec, primary, run, opts_));
  }
  return out;
}

std::optional<OracleFinding> OracleSuite::evaluate_one(
    const std::string& oracle, const ScenarioSpec& spec,
    const RunFn& run) const {
  for (const Oracle& o : kOracles) {
    if (oracle != o.name) continue;
    if (!o.applicable(spec, opts_)) return std::nullopt;
    const ScenarioResult primary = run(spec);
    return o.eval(spec, primary, run, opts_);
  }
  return std::nullopt;
}

const std::vector<std::string>& OracleSuite::oracle_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const Oracle& o : kOracles) n.emplace_back(o.name);
    return n;
  }();
  return names;
}

}  // namespace xpass::check
