#include "check/fuzzer.hpp"

#include <cstdarg>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "check/spec_json.hpp"
#include "exec/sweep_runner.hpp"

namespace xpass::check {

namespace {

using runner::ScenarioSpec;

struct Injection {
  std::string_view name;
  std::string_view description;
  void (*apply)(ScenarioSpec&);
};

core::ExpressPassConfig xp_config(const ScenarioSpec& s) {
  return s.xp ? *s.xp : core::ExpressPassConfig{};
}

// Each entry models one "mechanism silently disabled / constant mis-wired"
// bug by mutating the executed spec behind the oracles' backs.
const Injection kInjections[] = {
    {"no-jitter",
     "disable credit pacing jitter and credit-size randomization (the §3.1 "
     "switch-synchronization fixes) — synchronized credit streams make the "
     "fabric drop data; caught by the invariants/maxmin-diff oracles",
     [](ScenarioSpec& s) {
       auto xp = xp_config(s);
       xp.jitter = 0.0;
       xp.randomize_credit_size = false;
       s.xp = xp;
       // The host NIC shaper noise breaks synchronization the same way
       // (Fig 6b); a real no-jitter bug loses both.
       s.topology.host_credit_shaper_noise = 0.0;
     }},
    {"naive-feedback",
     "run the naive max-rate credit scheme while claiming the Algorithm-1 "
     "feedback loop (§2's strawman) — multi-hop shares collapse; caught by "
     "the maxmin-diff differential oracle on chain topologies",
     [](ScenarioSpec& s) {
       auto xp = xp_config(s);
       xp.naive = true;
       s.xp = xp;
     }},
    {"starved-reservation",
     "cap the credit schedule's max rate to ~1% of the host line rate — the "
     "observable effect of losing the §4.3 minimum credit-rate reservation "
     "on a shared fabric: reactive cross-traffic takes the bottleneck and "
     "the ExpressPass groups collapse; caught by the coexistence oracle on "
     "mixed-protocol specs",
     [](ScenarioSpec& s) {
       auto xp = xp_config(s);
       xp.max_rate_bps = 0.01 * s.topology.host_rate_bps;
       s.xp = xp;
     }},
    {"silent-data-loss",
     "a marginal link drops ~1 in 500 data frames while the declared model "
     "says the fabric is healthy — violates the paper's zero-data-loss "
     "property; caught by the zero-data-loss oracle",
     [](ScenarioSpec& s) {
       s.faults.errors.data_drop = 2e-3;
       if (s.fault_seed == 0) {
         // Deterministic but decorrelated from the traffic stream.
         s.fault_seed = s.seed ^ 0x517cc1b727220a95ull;
       }
     }},
};

void log_line(std::FILE* log, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void log_line(std::FILE* log, const char* fmt, ...) {
  if (log == nullptr) return;
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(log, fmt, ap);
  va_end(ap);
  std::fputc('\n', log);
  std::fflush(log);
}

// Journal lines: one single-line JSON verdict per finished scenario, so a
// SIGKILLed campaign can resume past everything it already judged. Only
// complete (newline-terminated) lines count; the torn tail re-runs.
constexpr std::string_view kJournalSchema = "xpass.fuzz.journal.v1";

std::string journal_line(const FuzzOptions& opts, size_t index,
                         const char* verdict, const std::string& oracle) {
  Json doc = Json::object();
  doc.set("schema", Json::str(std::string(kJournalSchema)));
  doc.set("seed", Json::u64(opts.seed));
  doc.set("inject", Json::str(opts.inject));
  doc.set("index", Json::u64(index));
  doc.set("verdict", Json::str(verdict));
  doc.set("oracle", Json::str(oracle));
  return doc.dump();
}

// Indices already journaled *clean* for this exact (seed, inject) stream.
// Failures are deliberately not skipped: re-running them re-produces the
// failure record (and its shrink) deterministically, so a resumed report
// never silently loses a bug.
std::unordered_set<size_t> journaled_clean(const FuzzOptions& opts) {
  std::unordered_set<size_t> done;
  std::ifstream in(opts.journal, std::ios::binary);
  if (!in) return done;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  size_t start = 0;
  for (;;) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;  // drop the torn tail
    const std::string line = content.substr(start, nl - start);
    start = nl + 1;
    auto doc = Json::parse(line, nullptr);
    if (!doc || doc->get_string("schema", "") != kJournalSchema) continue;
    if (doc->get_u64("seed", 0) != opts.seed) continue;
    if (doc->get_string("inject", "") != opts.inject) continue;
    if (doc->get_string("verdict", "") != "clean") continue;
    done.insert(static_cast<size_t>(doc->get_u64("index", 0)));
  }
  return done;
}

std::string write_repro(const FuzzFailure& f, const FuzzOptions& opts) {
  std::error_code ec;
  std::filesystem::create_directories(opts.out_dir, ec);
  const std::string path = opts.out_dir + "/repro_" +
                           std::to_string(f.index) + "_" + f.oracle + ".json";
  const std::string doc = repro_to_json(f, opts.seed, opts.inject);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return {};
  std::fwrite(doc.data(), 1, doc.size(), out);
  std::fclose(out);
  return path;
}

}  // namespace

std::vector<InjectionInfo> injections() {
  std::vector<InjectionInfo> out;
  for (const Injection& i : kInjections) {
    out.push_back({i.name, i.description});
  }
  return out;
}

bool apply_injection(std::string_view name, ScenarioSpec& spec) {
  if (name.empty()) return true;
  for (const Injection& i : kInjections) {
    if (i.name == name) {
      i.apply(spec);
      return true;
    }
  }
  return false;
}

FuzzReport run_fuzz(const FuzzOptions& opts, std::FILE* log) {
  FuzzReport report;
  runner::ScenarioEngine engine;
  const OracleSuite suite(opts.oracles);

  const RunFn run = [&](const ScenarioSpec& declared) {
    ScenarioSpec executed = declared;
    apply_injection(opts.inject, executed);
    ++report.engine_runs;
    return engine.run(executed);
  };

  std::unordered_set<size_t> done;
  if (opts.resume && !opts.journal.empty()) done = journaled_clean(opts);
  std::ofstream journal;
  if (!opts.journal.empty()) {
    journal.open(opts.journal, std::ios::binary | std::ios::app);
  }
  const auto journal_verdict = [&](size_t i, const char* verdict,
                                   const std::string& oracle) {
    if (!journal.is_open()) return;
    journal << journal_line(opts, i, verdict, oracle) << '\n';
    journal.flush();  // a verdict not on disk is a verdict that never was
  };

  for (size_t i = 0; i < opts.count; ++i) {
    if (done.count(i) != 0) {
      ++report.resumed;
      if (opts.verbose) log_line(log, "[%zu] resumed (journaled clean)", i);
      continue;
    }
    sim::Rng rng(exec::task_seed(opts.seed, i));
    const ScenarioSpec spec = generate_spec(rng, i, opts.gen);
    const auto findings = suite.evaluate(spec, run);
    ++report.scenarios;

    const OracleFinding* failed = nullptr;
    for (const OracleFinding& f : findings) {
      if (!f.pass) {
        failed = &f;
        break;
      }
    }
    if (failed == nullptr) {
      if (opts.verbose) {
        log_line(log, "[%zu] %s seed=%llu ok (%zu oracles)", i,
                 spec.name.c_str(), (unsigned long long)spec.seed,
                 findings.size());
      }
      journal_verdict(i, "clean", "");
      continue;
    }
    journal_verdict(i, "fail", failed->oracle);

    log_line(log, "[%zu] %s seed=%llu FAIL oracle=%s: %s", i,
             spec.name.c_str(), (unsigned long long)spec.seed,
             failed->oracle.c_str(), failed->details.c_str());

    FuzzFailure failure;
    failure.index = i;
    failure.oracle = failed->oracle;
    failure.details = failed->details;
    failure.spec = spec;
    failure.flows_before = spec.traffic.flows;
    if (opts.shrink) {
      const ShrinkOutcome sh =
          shrink_spec(spec, failed->oracle, suite, run, opts.shrink_opts);
      failure.spec = sh.spec;
      if (!sh.details.empty()) failure.details = sh.details;
      log_line(log,
               "[%zu]   shrunk: %zu flows -> %zu flows, scale %zu, "
               "%zu steps / %zu checks",
               i, failure.flows_before, failure.spec.traffic.flows,
               failure.spec.topology.scale, sh.accepted, sh.checks);
    }
    if (!opts.out_dir.empty()) {
      failure.repro_path = write_repro(failure, opts);
      if (!failure.repro_path.empty()) {
        log_line(log, "[%zu]   repro: %s", i, failure.repro_path.c_str());
      }
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

std::string repro_to_json(const FuzzFailure& f, uint64_t fuzz_seed,
                          const std::string& inject) {
  Json doc = Json::object();
  doc.set("schema", Json::str(std::string(kReproSchema)));
  doc.set("oracle", Json::str(f.oracle));
  doc.set("details", Json::str(f.details));
  doc.set("inject", Json::str(inject));
  doc.set("fuzz_seed", Json::u64(fuzz_seed));
  doc.set("index", Json::u64(f.index));
  doc.set("cli", Json::str("fuzz_scenarios --repro <this file>"));
  doc.set("spec", spec_to_json_doc(f.spec));
  return doc.dump(2) + "\n";
}

std::optional<ReproCase> repro_from_json(const std::string& text,
                                         std::string* err) {
  auto doc = Json::parse(text, err);
  if (!doc) return std::nullopt;
  ReproCase out;
  const std::string schema = doc->get_string("schema", "");
  if (schema == kReproSchema) {
    const Json* spec = doc->find("spec");
    if (spec == nullptr) {
      if (err != nullptr) *err = "repro document has no \"spec\" member";
      return std::nullopt;
    }
    auto parsed = spec_from_json_doc(*spec, err);
    if (!parsed) return std::nullopt;
    out.spec = std::move(*parsed);
    out.inject = doc->get_string("inject", "");
    out.oracle = doc->get_string("oracle", "");
    return out;
  }
  // Bare scenario document.
  auto parsed = spec_from_json_doc(*doc, err);
  if (!parsed) return std::nullopt;
  out.spec = std::move(*parsed);
  return out;
}

}  // namespace xpass::check
