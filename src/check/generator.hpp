// Seeded random-but-valid ScenarioSpec sampling for the fuzzer.
//
// Every generated spec is small enough to simulate in well under a second
// (flows <= max_flows, horizons of tens of milliseconds) yet ranges over the
// axes the paper's claims quantify across: topology shape and scale, link
// speeds and delays, protocol, traffic mix, and fault plans. Generation is a
// pure function of the Rng stream, so `fuzz_scenarios --seed S` reproduces
// the exact scenario sequence — scenario i is generated from
// exec::task_seed(S, i), independent of every other scenario.
#pragma once

#include "runner/scenario.hpp"
#include "sim/random.hpp"

namespace xpass::check {

struct GenOptions {
  // Cap on traffic.flows (pairwise count / incast fan-in / poisson flows).
  size_t max_flows = 16;
  // Sample fault plans (flaps, kills, per-frame error models) on ~1/4 of
  // the specs. Off: every spec is fault-free (pure-property hunting).
  bool faults = true;
  // Restrict to one protocol (the fuzz CLI's --protocol). Unset: weighted
  // sampling, ExpressPass-heavy — it is the system under test; the
  // comparators mostly exercise engine-level oracles (determinism,
  // relabeling).
  std::optional<runner::Protocol> protocol;
  // Force mixed-protocol coexistence specs (the fuzz CLI's --mixed): every
  // spec is an ExpressPass dumbbell sharing its bottleneck with 1-2
  // reactive cross-traffic flow groups, which arms the coexistence oracle.
  // Unset: ~15% of ExpressPass dumbbell specs sample mixed anyway.
  bool mixed = false;
};

// Samples one spec from `rng`. `name_index` only labels spec.name
// ("fuzz/<index>/<topology>"); it never influences the sampled values.
runner::ScenarioSpec generate_spec(sim::Rng& rng, uint64_t name_index,
                                   const GenOptions& opts = {});

}  // namespace xpass::check
