#include "check/generator.hpp"

#include <algorithm>

namespace xpass::check {

namespace {

using runner::Protocol;
using runner::ScenarioSpec;
using runner::StopSpec;
using runner::TopologyKind;
using runner::TrafficKind;
using sim::Time;

template <typename T>
T pick(sim::Rng& rng, std::initializer_list<T> xs) {
  const auto i = static_cast<size_t>(
      rng.uniform_int(0, static_cast<int64_t>(xs.size()) - 1));
  return *(xs.begin() + i);
}

Protocol sample_protocol(sim::Rng& rng) {
  // ExpressPass-heavy: half the runs exercise the paper's protocol and its
  // property oracles; the rest spread over the comparators so the engine
  // oracles (determinism, relabel) sweep every transport.
  const double r = rng.uniform();
  if (r < 0.50) return Protocol::kExpressPass;
  if (r < 0.58) return Protocol::kExpressPassNaive;
  return pick(rng, {Protocol::kDctcp, Protocol::kRcp, Protocol::kHull,
                    Protocol::kDx, Protocol::kCubic, Protocol::kDcqcn,
                    Protocol::kTimely, Protocol::kSird, Protocol::kBfc,
                    Protocol::kIdeal});
}

std::string_view topo_tag(TopologyKind k) {
  switch (k) {
    case TopologyKind::kDumbbell: return "dumbbell";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kClos: return "clos";
    case TopologyKind::kParkingLot: return "parkinglot";
    case TopologyKind::kMultiBottleneck: return "multibottleneck";
  }
  return "?";
}

}  // namespace

ScenarioSpec generate_spec(sim::Rng& rng, uint64_t name_index,
                           const GenOptions& opts) {
  ScenarioSpec s;
  s.check_invariants = true;

  // --- protocol ----------------------------------------------------------
  s.protocol = opts.protocol ? *opts.protocol : sample_protocol(rng);

  // --- topology ----------------------------------------------------------
  {
    const double r = rng.uniform();
    if (r < 0.40) {
      s.topology.kind = TopologyKind::kDumbbell;
    } else if (r < 0.60) {
      s.topology.kind = TopologyKind::kStar;
    } else if (r < 0.72) {
      s.topology.kind = TopologyKind::kParkingLot;
    } else if (r < 0.84) {
      s.topology.kind = TopologyKind::kMultiBottleneck;
    } else if (r < 0.94) {
      s.topology.kind = TopologyKind::kFatTree;
    } else {
      s.topology.kind = TopologyKind::kClos;
    }
    switch (s.topology.kind) {
      case TopologyKind::kDumbbell:
        s.topology.scale = static_cast<size_t>(rng.uniform_int(2, 8));
        break;
      case TopologyKind::kStar:
        s.topology.scale = static_cast<size_t>(rng.uniform_int(3, 12));
        break;
      case TopologyKind::kParkingLot:
      case TopologyKind::kMultiBottleneck:
        s.topology.scale = static_cast<size_t>(rng.uniform_int(2, 5));
        break;
      case TopologyKind::kFatTree:
        s.topology.fat_tree_k = 4;
        break;
      case TopologyKind::kClos:
        // Micro-Clos: 2 pods x 2 ToRs x 2 hosts = 8 hosts, 2 cores.
        s.topology.clos = {2, 2, 1, 2, 2};
        break;
    }
    const bool chain_topology_kind =
        s.topology.kind == TopologyKind::kParkingLot ||
        s.topology.kind == TopologyKind::kMultiBottleneck;
    s.topology.host_rate_bps = chain_topology_kind
                                   ? pick(rng, {10e9, 40e9})
                                   : pick(rng, {1e9, 10e9, 40e9});
    // Above 10G, usually shrink the credit feedback period with the rate so
    // the scenario stays inside the convergence envelope the steady-state
    // oracles judge (rate x base_rtt <= ~1 Mbit); leave some runs at the
    // default 100us to exercise the slow-feedback regime under the
    // always-on oracles (invariants, zero-loss, queue-bound, determinism).
    // Chain topologies always take the fix-up: they are the maxmin-diff
    // oracle's main hunting ground (Fig 11), and at 1 Gbps or out-of-
    // envelope BDPs that oracle never arms.
    if (s.topology.host_rate_bps > 10e9 &&
        (chain_topology_kind || rng.uniform() < 0.7)) {
      s.base_rtt = Time::us(25);
    }
    // Fabric at host rate (congested core) or 4x (edge-limited).
    s.topology.fabric_rate_bps =
        rng.uniform() < 0.7 ? 0.0 : 4.0 * s.topology.host_rate_bps;
    s.topology.host_prop = Time::us(rng.uniform_int(1, 5));
    if (rng.uniform() < 0.3) {
      s.topology.fabric_prop = s.topology.host_prop * 2.0;
    }
    if (rng.uniform() < 0.2) {
      s.topology.credit_queue_pkts =
          static_cast<size_t>(rng.uniform_int(4, 16));
    }
  }

  // --- traffic -----------------------------------------------------------
  const size_t max_flows = std::max<size_t>(2, opts.max_flows);
  const bool chain_topology =
      s.topology.kind == TopologyKind::kParkingLot ||
      s.topology.kind == TopologyKind::kMultiBottleneck;
  if (chain_topology) {
    s.traffic.kind = TrafficKind::kChain;
    s.traffic.bytes = transport::kLongRunning;
  } else {
    const double r = rng.uniform();
    if (r < 0.50) {
      s.traffic.kind = TrafficKind::kPairwise;
      s.traffic.flows = std::min(
          max_flows, static_cast<size_t>(rng.uniform_int(2, 12)));
      s.traffic.bytes = transport::kLongRunning;
      s.traffic.start_spread_sec = rng.uniform() < 0.5 ? 0.0 : 1e-3;
    } else if (r < 0.78) {
      s.traffic.kind = TrafficKind::kIncast;
      s.traffic.flows = std::min(
          max_flows, static_cast<size_t>(rng.uniform_int(2, 16)));
      s.traffic.bytes = static_cast<uint64_t>(rng.uniform_int(50, 500)) * 1000;
    } else {
      s.traffic.kind = TrafficKind::kPoisson;
      s.traffic.flows = std::min(
          max_flows, static_cast<size_t>(rng.uniform_int(4, 16)));
      s.traffic.workload = pick(
          rng, {workload::WorkloadKind::kWebServer,
                workload::WorkloadKind::kWebSearch,
                workload::WorkloadKind::kCacheFollower,
                workload::WorkloadKind::kDataMining});
      s.traffic.load = rng.uniform(0.3, 0.8);
    }
  }

  // --- stop condition ----------------------------------------------------
  if (s.traffic.bytes == transport::kLongRunning) {
    // Long-running flows: measure a steady-state window after warmup. The
    // warmup floor matches the steady-state oracles' 10ms applicability
    // gate — shares converge by ~10ms across the generated rate/prop range.
    const auto warmup = Time::ms(rng.uniform_int(10, 16));
    // Windows reaching past 40ms arm the maxmin-diff oracle, which needs
    // that much averaging to sit reliably inside its tolerance band. Chain
    // runs always get one: Fig 11's flow-0 band is the only differential
    // reference for multi-bottleneck topologies, so never generate a chain
    // whose window disarms it.
    const auto window = chain_topology ? Time::ms(rng.uniform_int(40, 50))
                                       : Time::ms(rng.uniform_int(15, 50));
    s.stop = StopSpec::measure_window(warmup, window);
  } else {
    s.stop = StopSpec::completion(Time::sec(2));
  }

  // --- faults ------------------------------------------------------------
  if (opts.faults && rng.uniform() < 0.25) {
    const double r = rng.uniform();
    const Time horizon =
        s.stop.kind == runner::StopKind::kWindow
            ? s.stop.warmup + s.stop.window
            : Time::ms(40);  // completion runs: fault early, not at 2s
    if (r < 0.4) {
      s.faults.flap_down = horizon * rng.uniform(0.1, 0.4);
      s.faults.flap_up = s.faults.flap_down + horizon * rng.uniform(0.1, 0.3);
      s.faults.fail_mode = rng.uniform() < 0.5 ? net::LinkFailMode::kDrop
                                               : net::LinkFailMode::kDrain;
    } else if (r < 0.6) {
      s.faults.kill_at = horizon * rng.uniform(0.3, 0.7);
    } else {
      // Per-frame error models, dosed separately per class (§3.2).
      if (rng.uniform() < 0.7) {
        s.faults.errors.credit_drop = rng.uniform(1e-4, 5e-3);
      }
      if (rng.uniform() < 0.5) {
        s.faults.errors.data_drop = rng.uniform(1e-4, 2e-3);
      }
      if (rng.uniform() < 0.3) {
        s.faults.errors.data_corrupt = rng.uniform(1e-4, 1e-3);
      }
      if (!s.faults.errors.enabled()) {
        s.faults.errors.credit_drop = 1e-3;
      }
    }
    s.fault_seed = rng.bits();
  }

  s.seed = rng.bits();
  s.name = "fuzz/" + std::to_string(name_index) + "/" +
           std::string(topo_tag(s.topology.kind));
  return s;
}

}  // namespace xpass::check
