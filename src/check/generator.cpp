#include "check/generator.hpp"

#include <algorithm>

namespace xpass::check {

namespace {

using runner::Protocol;
using runner::ScenarioSpec;
using runner::StopSpec;
using runner::TopologyKind;
using runner::TrafficKind;
using sim::Time;

template <typename T>
T pick(sim::Rng& rng, std::initializer_list<T> xs) {
  const auto i = static_cast<size_t>(
      rng.uniform_int(0, static_cast<int64_t>(xs.size()) - 1));
  return *(xs.begin() + i);
}

Protocol sample_protocol(sim::Rng& rng) {
  // ExpressPass-heavy: half the runs exercise the paper's protocol and its
  // property oracles; the rest spread over the comparators so the engine
  // oracles (determinism, relabel) sweep every transport.
  const double r = rng.uniform();
  if (r < 0.50) return Protocol::kExpressPass;
  if (r < 0.58) return Protocol::kExpressPassNaive;
  return pick(rng, {Protocol::kDctcp, Protocol::kRcp, Protocol::kHull,
                    Protocol::kDx, Protocol::kCubic, Protocol::kBbr,
                    Protocol::kDcqcn, Protocol::kTimely, Protocol::kSird,
                    Protocol::kBfc, Protocol::kIdeal});
}

bool xp_primary(Protocol p) {
  return p == Protocol::kExpressPass || p == Protocol::kExpressPassNaive;
}

// Protocols allowed as cross-traffic on an ExpressPass fabric (the
// drop-tail-compatible reactive set scenario.cpp admits into flow_groups).
Protocol sample_cross_protocol(sim::Rng& rng) {
  return pick(rng, {Protocol::kCubic, Protocol::kDctcp, Protocol::kBbr,
                    Protocol::kTimely, Protocol::kDx, Protocol::kRcp});
}

std::string_view topo_tag(TopologyKind k) {
  switch (k) {
    case TopologyKind::kDumbbell: return "dumbbell";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kClos: return "clos";
    case TopologyKind::kParkingLot: return "parkinglot";
    case TopologyKind::kMultiBottleneck: return "multibottleneck";
  }
  return "?";
}

}  // namespace

ScenarioSpec generate_spec(sim::Rng& rng, uint64_t name_index,
                           const GenOptions& opts) {
  ScenarioSpec s;
  s.check_invariants = true;

  // --- protocol ----------------------------------------------------------
  s.protocol = opts.protocol ? *opts.protocol
               : opts.mixed  ? Protocol::kExpressPass
                             : sample_protocol(rng);

  // --- topology ----------------------------------------------------------
  {
    // Forced-mixed runs pin the coexistence oracle's calibrated scenario:
    // an ExpressPass dumbbell (see coexistence_scenario in oracles.cpp).
    const double r = opts.mixed ? 0.0 : rng.uniform();
    if (r < 0.40) {
      s.topology.kind = TopologyKind::kDumbbell;
    } else if (r < 0.60) {
      s.topology.kind = TopologyKind::kStar;
    } else if (r < 0.72) {
      s.topology.kind = TopologyKind::kParkingLot;
    } else if (r < 0.84) {
      s.topology.kind = TopologyKind::kMultiBottleneck;
    } else if (r < 0.94) {
      s.topology.kind = TopologyKind::kFatTree;
    } else {
      s.topology.kind = TopologyKind::kClos;
    }
    switch (s.topology.kind) {
      case TopologyKind::kDumbbell:
        s.topology.scale = static_cast<size_t>(rng.uniform_int(2, 8));
        break;
      case TopologyKind::kStar:
        s.topology.scale = static_cast<size_t>(rng.uniform_int(3, 12));
        break;
      case TopologyKind::kParkingLot:
      case TopologyKind::kMultiBottleneck:
        s.topology.scale = static_cast<size_t>(rng.uniform_int(2, 5));
        break;
      case TopologyKind::kFatTree:
        s.topology.fat_tree_k = 4;
        break;
      case TopologyKind::kClos:
        // Micro-Clos: 2 pods x 2 ToRs x 2 hosts = 8 hosts, 2 cores.
        s.topology.clos = {2, 2, 1, 2, 2};
        break;
    }
    const bool chain_topology_kind =
        s.topology.kind == TopologyKind::kParkingLot ||
        s.topology.kind == TopologyKind::kMultiBottleneck;
    s.topology.host_rate_bps = chain_topology_kind
                                   ? pick(rng, {10e9, 40e9})
                                   : pick(rng, {1e9, 10e9, 40e9});
    // Above 10G, usually shrink the credit feedback period with the rate so
    // the scenario stays inside the convergence envelope the steady-state
    // oracles judge (rate x base_rtt <= ~1 Mbit); leave some runs at the
    // default 100us to exercise the slow-feedback regime under the
    // always-on oracles (invariants, zero-loss, queue-bound, determinism).
    // Chain topologies always take the fix-up: they are the maxmin-diff
    // oracle's main hunting ground (Fig 11), and at 1 Gbps or out-of-
    // envelope BDPs that oracle never arms.
    if (s.topology.host_rate_bps > 10e9 &&
        (chain_topology_kind || rng.uniform() < 0.7)) {
      s.base_rtt = Time::us(25);
    }
    // Fabric at host rate (congested core) or 4x (edge-limited).
    s.topology.fabric_rate_bps =
        rng.uniform() < 0.7 ? 0.0 : 4.0 * s.topology.host_rate_bps;
    s.topology.host_prop = Time::us(rng.uniform_int(1, 5));
    if (rng.uniform() < 0.3) {
      s.topology.fabric_prop = s.topology.host_prop * 2.0;
    }
    if (rng.uniform() < 0.2) {
      s.topology.credit_queue_pkts =
          static_cast<size_t>(rng.uniform_int(4, 16));
    }
    // A sliver of per-link propagation jitter (1-3us, can reorder packets).
    // Kept small relative to the us-scale props so the queue-bound slack
    // still covers the perturbed dynamics; the always-on oracles hunt for
    // reorder-sensitive state machines.
    if (rng.uniform() < 0.10) {
      s.topology.link_jitter = Time::us(rng.uniform_int(1, 3));
    }
  }

  // --- traffic -----------------------------------------------------------
  const size_t max_flows = std::max<size_t>(2, opts.max_flows);
  const bool chain_topology =
      s.topology.kind == TopologyKind::kParkingLot ||
      s.topology.kind == TopologyKind::kMultiBottleneck;
  const bool want_mixed =
      opts.mixed ||
      (xp_primary(s.protocol) &&
       s.topology.kind == TopologyKind::kDumbbell && rng.uniform() < 0.15);
  if (want_mixed) {
    // Mixed-protocol coexistence: all traffic comes from flow_groups (the
    // engine ignores spec.traffic then, but the long-running sentinel
    // below steers stop sampling onto the measurement-window path the
    // coexistence oracle requires).
    s.traffic.kind = TrafficKind::kPairwise;
    s.traffic.bytes = transport::kLongRunning;
    runner::FlowGroupSpec xp;
    xp.protocol = s.protocol;
    xp.traffic.kind = TrafficKind::kPairwise;
    xp.traffic.bytes = transport::kLongRunning;
    xp.traffic.flows = static_cast<size_t>(rng.uniform_int(2, 4));
    s.flow_groups.push_back(xp);
    const size_t cross = rng.uniform() < 0.3 ? 2 : 1;
    for (size_t i = 0; i < cross; ++i) {
      runner::FlowGroupSpec g;
      g.protocol = sample_cross_protocol(rng);
      g.traffic.bytes = transport::kLongRunning;
      if (rng.uniform() < 0.35) {
        // Real-time-style on/off bursts: the hostile regime for the credit
        // reservation (synchronized reactive bursts hammer the queue).
        g.traffic.kind = TrafficKind::kOnOff;
        g.traffic.on_period_sec = rng.uniform(2e-3, 8e-3);
        g.traffic.on_duty = rng.uniform(0.2, 0.8);
        g.traffic.flows = static_cast<size_t>(rng.uniform_int(2, 4));
      } else {
        g.traffic.kind = TrafficKind::kPairwise;
        g.traffic.flows = static_cast<size_t>(rng.uniform_int(2, 6));
      }
      s.flow_groups.push_back(g);
    }
  } else if (chain_topology) {
    s.traffic.kind = TrafficKind::kChain;
    s.traffic.bytes = transport::kLongRunning;
  } else {
    const double r = rng.uniform();
    if (r < 0.45) {
      s.traffic.kind = TrafficKind::kPairwise;
      s.traffic.flows = std::min(
          max_flows, static_cast<size_t>(rng.uniform_int(2, 12)));
      s.traffic.bytes = transport::kLongRunning;
      s.traffic.start_spread_sec = rng.uniform() < 0.5 ? 0.0 : 1e-3;
    } else if (r < 0.70) {
      s.traffic.kind = TrafficKind::kIncast;
      s.traffic.flows = std::min(
          max_flows, static_cast<size_t>(rng.uniform_int(2, 16)));
      s.traffic.bytes = static_cast<uint64_t>(rng.uniform_int(50, 500)) * 1000;
    } else if (r < 0.90) {
      s.traffic.kind = TrafficKind::kPoisson;
      s.traffic.flows = std::min(
          max_flows, static_cast<size_t>(rng.uniform_int(4, 16)));
      s.traffic.workload = pick(
          rng, {workload::WorkloadKind::kWebServer,
                workload::WorkloadKind::kWebSearch,
                workload::WorkloadKind::kCacheFollower,
                workload::WorkloadKind::kDataMining});
      s.traffic.load = rng.uniform(0.3, 0.8);
    } else {
      // Duty-cycled bursts from long-lived sources: exercises the burst
      // scheduler and the engine oracles under non-stationary load (the
      // steady-state oracles deliberately disarm on kOnOff).
      s.traffic.kind = TrafficKind::kOnOff;
      s.traffic.flows = std::min(
          max_flows, static_cast<size_t>(rng.uniform_int(2, 8)));
      s.traffic.bytes = transport::kLongRunning;
      s.traffic.on_period_sec = rng.uniform(2e-3, 8e-3);
      s.traffic.on_duty = rng.uniform(0.2, 0.8);
    }
  }

  // --- stop condition ----------------------------------------------------
  if (s.traffic.bytes == transport::kLongRunning) {
    // Long-running flows: measure a steady-state window after warmup. The
    // warmup floor matches the steady-state oracles' 10ms applicability
    // gate — shares converge by ~10ms across the generated rate/prop range.
    const auto warmup = Time::ms(rng.uniform_int(10, 16));
    // Windows reaching past 40ms arm the maxmin-diff oracle, which needs
    // that much averaging to sit reliably inside its tolerance band. Chain
    // runs always get one: Fig 11's flow-0 band is the only differential
    // reference for multi-bottleneck topologies, so never generate a chain
    // whose window disarms it.
    const auto window = chain_topology ? Time::ms(rng.uniform_int(40, 50))
                                       : Time::ms(rng.uniform_int(15, 50));
    s.stop = StopSpec::measure_window(warmup, window);
  } else {
    s.stop = StopSpec::completion(Time::sec(2));
  }

  // --- faults ------------------------------------------------------------
  if (opts.faults && rng.uniform() < 0.25) {
    const double r = rng.uniform();
    const Time horizon =
        s.stop.kind == runner::StopKind::kWindow
            ? s.stop.warmup + s.stop.window
            : Time::ms(40);  // completion runs: fault early, not at 2s
    if (r < 0.4) {
      s.faults.flap_down = horizon * rng.uniform(0.1, 0.4);
      s.faults.flap_up = s.faults.flap_down + horizon * rng.uniform(0.1, 0.3);
      s.faults.fail_mode = rng.uniform() < 0.5 ? net::LinkFailMode::kDrop
                                               : net::LinkFailMode::kDrain;
    } else if (r < 0.6) {
      s.faults.kill_at = horizon * rng.uniform(0.3, 0.7);
    } else {
      // Per-frame error models, dosed separately per class (§3.2).
      if (rng.uniform() < 0.7) {
        s.faults.errors.credit_drop = rng.uniform(1e-4, 5e-3);
      }
      if (rng.uniform() < 0.5) {
        s.faults.errors.data_drop = rng.uniform(1e-4, 2e-3);
      }
      if (rng.uniform() < 0.3) {
        s.faults.errors.data_corrupt = rng.uniform(1e-4, 1e-3);
      }
      if (!s.faults.errors.enabled()) {
        s.faults.errors.credit_drop = 1e-3;
      }
    }
    s.fault_seed = rng.bits();
  }

  s.seed = rng.bits();
  s.name = "fuzz/" + std::to_string(name_index) + "/" +
           std::string(topo_tag(s.topology.kind));
  return s;
}

}  // namespace xpass::check
