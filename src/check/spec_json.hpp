// ScenarioSpec <-> JSON: the serialization layer behind fuzzer repros.
//
// spec_to_json emits every field of a runner::ScenarioSpec (times as exact
// integer picoseconds, rates as shortest-round-trip doubles, optionals
// omitted when unset) in a fixed member order; spec_from_json parses it
// back, defaulting absent members to the ScenarioSpec defaults. The pair is
// exact: spec -> JSON -> spec reproduces every field, and JSON -> spec ->
// JSON reproduces the document byte for byte — which is what lets a shrunken
// fuzzer repro reload as precisely the scenario that failed, years of PRs
// later. The round-trip property test fuzzes this over generated specs.
#pragma once

#include <optional>
#include <string>

#include "check/json.hpp"
#include "runner/scenario.hpp"

namespace xpass::check {

inline constexpr std::string_view kSpecSchema = "xpass.scenario.v1";

// The JSON document (schema-tagged object) for a spec, and its text form.
Json spec_to_json_doc(const runner::ScenarioSpec& spec);
std::string spec_to_json(const runner::ScenarioSpec& spec);

// Parses a spec document (or the object spec_to_json_doc produced). Returns
// nullopt and fills `err` on malformed JSON, a wrong schema tag, or an
// unknown enum spelling. Absent members keep their ScenarioSpec defaults.
std::optional<runner::ScenarioSpec> spec_from_json_doc(const Json& doc,
                                                       std::string* err);
std::optional<runner::ScenarioSpec> spec_from_json(const std::string& text,
                                                   std::string* err);

}  // namespace xpass::check
