// Minimal JSON document model for the check subsystem.
//
// Carries ScenarioSpec round-trips (spec_json) and fuzzer repro files
// (fuzzer), so it needs exactly three properties the standard library does
// not give us for free:
//   * exact 64-bit integers — spec seeds are full-width uint64 and must
//     survive spec -> JSON -> spec without drifting through a double;
//   * deterministic emission — objects keep insertion order and doubles use
//     shortest-round-trip formatting, so serializing a parsed document
//     reproduces it byte for byte (the repro/property tests pin this);
//   * no dependencies — the container has no JSON library and must not
//     grow one.
// Parse errors carry a byte offset; the grammar is plain RFC 8259 minus
// \uXXXX surrogate pairs (probe/scenario names are ASCII).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xpass::check {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  static Json boolean(bool b);
  // Numbers: u64 keeps full 64-bit precision through dump/parse; number()
  // is the generic double flavor (emitted shortest-round-trip).
  static Json u64(uint64_t v);
  static Json number(double v);
  static Json str(std::string s);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  // Typed reads. Wrong-type access returns the neutral value (false / 0 /
  // empty); callers that care test type() or use find() + has-checks.
  bool as_bool(bool fallback = false) const;
  double as_double(double fallback = 0.0) const;
  uint64_t as_u64(uint64_t fallback = 0) const;
  const std::string& as_string() const;

  // Arrays.
  void push(Json v);
  const std::vector<Json>& items() const { return items_; }

  // Objects (insertion-ordered; linear find — spec objects are small).
  Json& set(const std::string& key, Json v);
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  // Typed object lookups with fallback for absent/mistyped members.
  bool get_bool(const std::string& key, bool fallback) const;
  double get_double(const std::string& key, double fallback) const;
  uint64_t get_u64(const std::string& key, uint64_t fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  // Emission: `indent` < 0 packs everything on one line; >= 0 pretty-prints
  // with that many leading spaces per level.
  std::string dump(int indent = -1) const;

  // Returns nullopt and fills `err` ("offset N: why") on malformed input.
  static std::optional<Json> parse(std::string_view text, std::string* err);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  uint64_t u64_ = 0;
  bool num_is_u64_ = false;  // emitted as an exact unsigned integer
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace xpass::check
