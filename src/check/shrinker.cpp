#include "check/shrinker.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace xpass::check {

namespace {

using runner::ScenarioSpec;
using runner::StopKind;
using runner::TopologyKind;
using runner::TrafficKind;
using sim::Time;

// A transformation returns true when it changed the spec (the caller then
// re-checks the oracle on the copy). Each one strictly shrinks something.
using Transform = std::function<bool(ScenarioSpec&)>;

bool halve_flows(ScenarioSpec& s) {
  if (s.traffic.kind == TrafficKind::kChain) {
    // Chain flow count is topology-defined (scale).
    return false;
  }
  const size_t target = std::max<size_t>(2, s.traffic.flows / 2);
  if (target >= s.traffic.flows) return false;
  s.traffic.flows = target;
  return true;
}

bool drop_one_flow(ScenarioSpec& s) {
  if (s.traffic.kind == TrafficKind::kChain || s.traffic.flows <= 2) {
    return false;
  }
  --s.traffic.flows;
  return true;
}

bool halve_scale(ScenarioSpec& s) {
  size_t floor = 2;
  if (s.topology.kind == TopologyKind::kParkingLot ||
      s.topology.kind == TopologyKind::kMultiBottleneck) {
    floor = 1;
  }
  const size_t target = std::max(floor, s.topology.scale / 2);
  if (target >= s.topology.scale) return false;
  s.topology.scale = target;
  return true;
}

bool shrink_scale_by_one(ScenarioSpec& s) {
  size_t floor = 2;
  if (s.topology.kind == TopologyKind::kParkingLot ||
      s.topology.kind == TopologyKind::kMultiBottleneck) {
    floor = 1;
  }
  if (s.topology.scale <= floor) return false;
  --s.topology.scale;
  return true;
}

bool drop_faults(ScenarioSpec& s) {
  if (!s.faults.any()) return false;
  s.faults = runner::FaultScenario{};
  return true;
}

bool drop_link_errors(ScenarioSpec& s) {
  if (!s.faults.errors.enabled()) return false;
  s.faults.errors = net::LinkErrorConfig{};
  return true;
}

bool drop_flap(ScenarioSpec& s) {
  if (!s.faults.has_flap() && !s.faults.has_kill()) return false;
  s.faults.flap_down = s.faults.flap_up = s.faults.kill_at = Time::zero();
  return true;
}

bool halve_durations(ScenarioSpec& s) {
  bool changed = false;
  if (s.stop.kind == StopKind::kWindow) {
    // Keep the window above the steady-state oracles' 10ms applicability
    // floor so shrinking cannot silently step out of the property's domain.
    const Time min_window = Time::ms(10);
    if (s.stop.window / 2 >= min_window) {
      s.stop.window = s.stop.window / 2;
      changed = true;
    }
    // Warmup floor matches the steady-state oracles' convergence gate, so
    // shrinking cannot manufacture a start-up-skew "failure".
    if (s.stop.warmup / 2 >= Time::ms(10)) {
      s.stop.warmup = s.stop.warmup / 2;
      changed = true;
    }
  } else if (s.stop.horizon / 2 >= Time::ms(10)) {
    s.stop.horizon = s.stop.horizon / 2;
    changed = true;
  }
  return changed;
}

bool halve_bytes(ScenarioSpec& s) {
  if (s.traffic.bytes == transport::kLongRunning) return false;
  const uint64_t target = std::max<uint64_t>(20'000, s.traffic.bytes / 2);
  if (target >= s.traffic.bytes) return false;
  s.traffic.bytes = target;
  return true;
}

bool strip_telemetry(ScenarioSpec& s) {
  if (s.telemetry.sample_interval == Time::zero() &&
      !s.telemetry.bottleneck_queue_series &&
      !s.telemetry.per_port_queue_series && !s.telemetry.flow_rate_series) {
    return false;
  }
  s.telemetry = runner::TelemetrySpec{};
  return true;
}

bool zero_start_spread(ScenarioSpec& s) {
  if (s.traffic.start_spread_sec == 0.0) return false;
  s.traffic.start_spread_sec = 0.0;
  return true;
}

bool drop_explicit_credit_queue(ScenarioSpec& s) {
  if (!s.topology.credit_queue_pkts && !s.topology.host_credit_shaper_noise) {
    return false;
  }
  s.topology.credit_queue_pkts.reset();
  s.topology.host_credit_shaper_noise.reset();
  return true;
}

}  // namespace

ShrinkOutcome shrink_spec(const ScenarioSpec& spec, const std::string& oracle,
                          const OracleSuite& suite, const RunFn& run,
                          const ShrinkOptions& opts) {
  // Order matters for greed: the big structural cuts (flows, faults, scale)
  // come before the cosmetic ones, so the expensive early checks buy the
  // largest reductions.
  const std::vector<Transform> transforms = {
      halve_flows,       drop_faults,           halve_scale,
      drop_link_errors,  drop_flap,             halve_durations,
      halve_bytes,       strip_telemetry,       zero_start_spread,
      drop_explicit_credit_queue,               drop_one_flow,
      shrink_scale_by_one,
  };

  ShrinkOutcome out;
  out.spec = spec;
  bool progress = true;
  while (progress && out.checks < opts.max_checks) {
    progress = false;
    for (const Transform& t : transforms) {
      if (out.checks >= opts.max_checks) break;
      ScenarioSpec candidate = out.spec;
      if (!t(candidate)) continue;
      ++out.checks;
      const auto finding = suite.evaluate_one(oracle, candidate, run);
      if (finding && !finding->pass) {
        out.spec = std::move(candidate);
        out.details = finding->details;
        ++out.accepted;
        progress = true;
      }
    }
  }
  if (out.details.empty()) {
    // Nothing shrank (or max_checks hit before any acceptance): report the
    // original failure message.
    const auto finding = suite.evaluate_one(oracle, out.spec, run);
    if (finding) out.details = finding->details;
  }
  return out;
}

}  // namespace xpass::check
