// Fuzz driver: generate scenarios, run them under the oracle suite, shrink
// what fails, and persist minimal repros.
//
// Scenario i is generated from exec::task_seed(seed, i), so any single
// failure reproduces from (seed, i) alone — and the emitted repro JSON
// removes even that dependency: it embeds the exact (shrunken) ScenarioSpec
// plus the injection under which it failed, so
//     fuzz_scenarios --repro tests/repros/<file>.json
// replays the verdict forever, independent of generator evolution.
//
// Bug injection: `inject` names a hidden mutation applied to every
// *executed* spec while the oracles keep judging the *declared* spec — the
// harness's model of "the implementation silently diverges from its spec"
// bugs (a disabled mechanism, a mis-wired constant). A healthy tree passes
// with no injection; each registered injection is caught by at least one
// oracle (pinned by tests/check/fuzzer_test.cpp and the tests/repros/
// regression cases).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "check/generator.hpp"
#include "check/oracles.hpp"
#include "check/shrinker.hpp"

namespace xpass::check {

struct InjectionInfo {
  std::string_view name;
  std::string_view description;
};

// Registered hidden-bug mutations (for --list-injections / validation).
std::vector<InjectionInfo> injections();

// Applies `name` to `spec` (the executed side). Returns false for an
// unknown name; "" is the identity and always succeeds.
bool apply_injection(std::string_view name, runner::ScenarioSpec& spec);

struct FuzzOptions {
  uint64_t seed = 1;
  size_t count = 50;
  GenOptions gen;
  OracleOptions oracles;
  ShrinkOptions shrink_opts;
  bool shrink = true;
  std::string inject;   // hidden mutation on every executed spec
  std::string out_dir;  // repro JSON target directory ("" = don't write)
  bool verbose = false;
  // Crash-safe campaigns: `journal` appends one verdict line per finished
  // scenario (schema xpass.fuzz.journal.v1); with `resume`, scenarios whose
  // (seed, inject, index) verdict is already journaled are skipped — a
  // killed campaign re-runs only what it never finished. A torn final line
  // (the SIGKILL artifact) is ignored, so that scenario simply re-runs.
  std::string journal;
  bool resume = false;
};

struct FuzzFailure {
  size_t index = 0;           // scenario index within the campaign
  std::string oracle;         // which property broke
  std::string details;        // the oracle's message on the minimal spec
  runner::ScenarioSpec spec;  // minimal (post-shrink) failing spec
  size_t flows_before = 0;    // pre-shrink flow count (shrink telemetry)
  std::string repro_path;     // written repro file ("" if out_dir unset)
};

struct FuzzReport {
  size_t scenarios = 0;  // scenarios generated and judged
  size_t engine_runs = 0;  // total ScenarioEngine::run calls (incl. shrink)
  size_t resumed = 0;  // scenarios skipped via a journaled verdict
  std::vector<FuzzFailure> failures;
  bool clean() const { return failures.empty(); }
};

// Runs the campaign. Progress and verdicts go to `log` (may be null).
FuzzReport run_fuzz(const FuzzOptions& opts, std::FILE* log);

// Repro files: a schema-tagged document embedding the spec + injection.
inline constexpr std::string_view kReproSchema = "xpass.fuzz.repro.v1";
std::string repro_to_json(const FuzzFailure& f, uint64_t fuzz_seed,
                          const std::string& inject);

struct ReproCase {
  runner::ScenarioSpec spec;
  std::string inject;  // "" when the repro carries no injection
  std::string oracle;  // the oracle that originally failed ("" = unknown)
};
// Accepts a repro document or a bare spec document.
std::optional<ReproCase> repro_from_json(const std::string& text,
                                         std::string* err);

}  // namespace xpass::check
