// Receiver-driven transport framework: the credit/grant primitives that
// were hard-wired into core::ExpressPass, extracted so other proactive
// protocols (SIRD's sender-informed grants, and anything else that paces
// permission-to-send packets from the receiver) can share them.
//
// Three pieces:
//  * CreditScheduler — the receiver-side shaped-emission pump. Paces one
//    credit/grant per data-MTU cycle at a caller-supplied target rate, with
//    multiplicative jitter (the Fig-6a desynchronization fix). The network
//    side of the shaping — the per-port TokenBucket credit meters and the
//    WFQ credit classes — already lives in net::Port and applies to
//    anything the pump emits as a kCredit-class packet; the pump is the
//    endpoint half of that machinery.
//  * GrantLedger — the sender-side accounting of permissions received:
//    every credit/grant that arrives is eventually consumed (answered with
//    data), or wasted/expired (nothing to send). Conservation
//    (granted == consumed + wasted + outstanding) holds by construction;
//    the waste ratio is the Fig-20 metric.
//  * FeedbackController — the generic rate-control interface the pump's
//    rate source typically wraps; core::CreditFeedback (Algorithm 1) is
//    the ExpressPass implementation.
//
// GrantAccounting is the transport-level reporting hook: the scenario
// engine asks any transport that implements it for a per-protocol
// credit/grant-waste scalar ("proactive.waste_ratio" in recorder output).
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace xpass::transport {

// One rate update per period from a measured loss/congestion signal.
// update() returns the new target rate (data bps); rate() reads it back.
class FeedbackController {
 public:
  virtual ~FeedbackController() = default;
  virtual double update(double loss) = 0;
  virtual double rate() const = 0;
};

// Receiver-side credit/grant pacing pump. The caller supplies the current
// target data rate and an emit callback that builds and sends one
// credit/grant packet; the pump owns the timer, the cycle arithmetic, and
// the pacing jitter. Emission draws (the emit callback's own randomization
// first, then the pump's gap jitter) happen in a fixed order per cycle, so
// a protocol ported onto the pump reproduces its pre-extraction RNG stream
// exactly.
class CreditScheduler {
 public:
  struct Config {
    // Pacing jitter as a fraction of the inter-credit gap (Fig 6a).
    double jitter = 0.1;
    // Wire bytes one emission admits: a credit plus the MTU it triggers.
    uint32_t cycle_bytes = net::kCreditCycleBytes;
  };

  // `rate` supplies the current target data rate in bps (never zero while
  // running); `emit` sends one credit/grant, returning false to end the
  // pump (e.g. the flow failed under the timer).
  CreditScheduler(sim::Simulator& sim, Config cfg,
                  std::function<double()> rate, std::function<bool()> emit)
      : sim_(sim),
        cfg_(cfg),
        rate_(std::move(rate)),
        emit_(std::move(emit)) {}
  ~CreditScheduler() { stop(); }
  CreditScheduler(const CreditScheduler&) = delete;
  CreditScheduler& operator=(const CreditScheduler&) = delete;

  // Arms the first emission one (jittered) pacing gap from now.
  void start();
  // Cancels the pending emission; start() re-arms.
  void stop();
  bool running() const { return running_; }
  uint64_t emitted() const { return emitted_; }

  // The pacing law, unit-testable in isolation: one cycle_bytes-sized
  // credit+data exchange per gap at `rate_bps` of data throughput.
  static double gap_sec(double rate_bps, uint32_t cycle_bytes) {
    return static_cast<double>(cycle_bytes) * 8.0 / rate_bps;
  }

 private:
  void fire();
  void schedule_next();

  sim::Simulator& sim_;
  Config cfg_;
  std::function<double()> rate_;
  std::function<bool()> emit_;
  bool running_ = false;
  uint64_t emitted_ = 0;
  sim::TimerId timer_;
};

// Sender-side permission accounting, in caller-chosen units (ExpressPass:
// one unit per credit; SIRD: bytes). consume()/waste() clamp to what is
// outstanding and return what they actually moved, so the conservation
// identity granted == consumed + wasted + outstanding can never break.
class GrantLedger {
 public:
  void grant(uint64_t units = 1) { granted_ += units; }
  uint64_t consume(uint64_t units = 1) {
    const uint64_t n = units < outstanding() ? units : outstanding();
    consumed_ += n;
    return n;
  }
  uint64_t waste(uint64_t units = 1) {
    const uint64_t n = units < outstanding() ? units : outstanding();
    wasted_ += n;
    return n;
  }

  uint64_t granted() const { return granted_; }
  uint64_t consumed() const { return consumed_; }
  uint64_t wasted() const { return wasted_; }
  uint64_t outstanding() const { return granted_ - consumed_ - wasted_; }
  double waste_ratio() const {
    return granted_ > 0
               ? static_cast<double>(wasted_) / static_cast<double>(granted_)
               : 0.0;
  }

 private:
  uint64_t granted_ = 0;
  uint64_t consumed_ = 0;
  uint64_t wasted_ = 0;
};

// Aggregate credit/grant bookkeeping a receiver-driven transport exposes to
// the scenario engine (per-protocol waste scalar in recorder output).
struct GrantWaste {
  uint64_t issued = 0;    // credits/grant-units issued by receivers
  uint64_t consumed = 0;  // units answered with data
  uint64_t wasted = 0;    // units that elicited nothing (incl. expired)
  double waste_ratio() const {
    return issued > 0
               ? static_cast<double>(wasted) / static_cast<double>(issued)
               : 0.0;
  }
};

class GrantAccounting {
 public:
  virtual ~GrantAccounting() = default;
  virtual GrantWaste grant_waste() const = 0;
};

}  // namespace xpass::transport
