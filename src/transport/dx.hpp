// DX (Lee et al., USENIX ATC 2015): latency-based congestion feedback.
//
// Switches stamp per-packet queuing delay (accumulated in
// Packet::queue_delay by DropTailQueue); receivers echo it in ACKs. Once per
// window the sender averages the echoed queuing delays Q and updates
//   W <- W * (1 - Q/(Q+V)) + 1      (V = base RTT)
// i.e. additive increase when the path shows no queuing, proportional
// decrease when it does. This is a documented approximation of DX's
// window-adaptation law; it preserves the property the paper relies on
// (near-zero standing queues, least-aggressive ramping).
#pragma once

#include "transport/window.hpp"

namespace xpass::transport {

struct DxConfig {
  WindowConfig window;
  sim::Time delay_threshold = sim::Time::ns(500);  // noise floor
};

class DxConnection : public WindowConnection {
 public:
  DxConnection(sim::Simulator& sim, const FlowSpec& spec, const DxConfig& cfg)
      : WindowConnection(sim, spec, cfg.window), cfg_(cfg) {}

 protected:
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;

 private:
  DxConfig cfg_;
  uint64_t window_end_ = 0;
  double delay_sum_sec_ = 0.0;
  uint64_t delay_samples_ = 0;
};

class DxTransport : public Transport {
 public:
  explicit DxTransport(sim::Simulator& sim, DxConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<DxConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "DX"; }

 private:
  sim::Simulator& sim_;
  DxConfig cfg_;
};

}  // namespace xpass::transport
