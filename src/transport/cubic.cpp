#include "transport/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace xpass::transport {

void CubicConnection::on_ack_hook(const net::Packet& ack,
                                  uint64_t newly_acked) {
  (void)ack;
  if (in_slow_start()) {
    set_cwnd(cwnd() + static_cast<double>(newly_acked));
    return;
  }
  if (!in_epoch_) {
    in_epoch_ = true;
    epoch_start_ = sim_.now();
    if (w_max_ < cwnd()) w_max_ = cwnd();
  }
  const double t = (sim_.now() - epoch_start_).to_sec();
  const double k = std::cbrt(w_max_ * (1.0 - cfg_.beta) / cfg_.c);
  const double target = cfg_.c * (t - k) * (t - k) * (t - k) + w_max_;
  if (target > cwnd()) {
    set_cwnd(cwnd() + (target - cwnd()) / cwnd() *
                          static_cast<double>(newly_acked));
  } else {
    // TCP-friendly floor: creep up slowly.
    set_cwnd(cwnd() + 0.01 * static_cast<double>(newly_acked) / cwnd());
  }
}

void CubicConnection::on_loss_event(bool timeout) {
  w_max_ = cwnd();
  in_epoch_ = false;
  if (timeout) {
    exit_slow_start();
    set_cwnd(min_cwnd());
  } else {
    exit_slow_start();
    set_cwnd(std::max(cwnd() * cfg_.beta, min_cwnd()));
  }
}

}  // namespace xpass::transport
