#include "transport/bbr.hpp"

#include <algorithm>

namespace xpass::transport {

using sim::Time;

namespace {
// Probe-bw gain cycle: one probing phase, one draining phase, six cruise
// phases. Gains 0/1 come from the config; the rest are 1.0.
constexpr int kCyclePhases = 8;
}  // namespace

BbrConnection::BbrConnection(sim::Simulator& sim, const FlowSpec& spec,
                             const BbrConfig& cfg)
    : WindowConnection(sim, spec, cfg.window),
      cfg_(cfg),
      pacing_gain_(cfg.startup_gain),
      cwnd_gain_(cfg.startup_gain) {
  rtprop_ = cfg_.window.base_rtt;
  rtprop_stamp_ = sim.now();
}

double BbrConnection::btlbw_bps() const {
  double best = 0.0;
  for (const auto& [round, bw] : btlbw_samples_) best = std::max(best, bw);
  return best;
}

double BbrConnection::bdp_pkts() const {
  const double bw = btlbw_bps();
  if (bw <= 0.0 || !have_rtprop_) return 0.0;
  return bw * rtprop_.to_sec() / (config().mss * 8.0);
}

void BbrConnection::on_ack_hook(const net::Packet& ack,
                                uint64_t newly_acked) {
  update_rtprop(sim_.now() - ack.ts);
  update_round(newly_acked);
  advance_machine();
  update_cwnd();
}

void BbrConnection::update_round(uint64_t newly_acked) {
  delivered_pkts_ += newly_acked;
  if (!round_armed_) {
    round_armed_ = true;
    round_end_seq_ = snd_nxt();
    round_start_delivered_ = delivered_pkts_;
    round_start_time_ = sim_.now();
    return;
  }
  if (snd_una() < round_end_seq_) return;

  // Round complete: one delivery-rate sample per round keeps the filter
  // robust against per-ack burstiness.
  const Time span = sim_.now() - round_start_time_;
  const uint64_t pkts = delivered_pkts_ - round_start_delivered_;
  if (span > Time::zero() && pkts > 0) {
    const double bw = static_cast<double>(pkts) * config().mss * 8.0 /
                      span.to_sec();
    ++round_count_;
    btlbw_samples_.emplace_back(round_count_, bw);
    const uint64_t horizon =
        static_cast<uint64_t>(cfg_.btlbw_window_rounds);
    while (!btlbw_samples_.empty() &&
           btlbw_samples_.front().first + horizon <= round_count_) {
      btlbw_samples_.pop_front();
    }
    check_full_pipe();
  }
  round_end_seq_ = snd_nxt();
  round_start_delivered_ = delivered_pkts_;
  round_start_time_ = sim_.now();
}

void BbrConnection::update_rtprop(Time sample) {
  if (sample <= Time::zero()) return;
  // Latch the probe-rtt trigger BEFORE the filter refreshes the stamp
  // (the draft's rtprop_expired): otherwise accepting the replacement
  // sample would forever mask the staleness the state machine keys on.
  rtprop_expired_ = sim_.now() - rtprop_stamp_ > cfg_.probe_rtt_interval;
  const bool filter_expired =
      sim_.now() - rtprop_stamp_ > cfg_.rtprop_window;
  // Strictly-lower samples only: on this deterministic simulator an
  // uncontended path reproduces the minimum exactly on every ack, and the
  // draft's tie-refresh (`<=`) would postpone probe-rtt forever.
  if (!have_rtprop_ || sample < rtprop_ || filter_expired) {
    rtprop_ = sample;
    rtprop_stamp_ = sim_.now();
    have_rtprop_ = true;
  }
}

void BbrConnection::check_full_pipe() {
  if (filled_pipe_) return;
  const double bw = btlbw_bps();
  if (bw >= full_bw_ * cfg_.startup_growth_thresh) {
    full_bw_ = bw;
    full_bw_rounds_ = 0;
    return;
  }
  if (++full_bw_rounds_ >= cfg_.startup_full_bw_rounds) filled_pipe_ = true;
}

void BbrConnection::advance_machine() {
  const Time now = sim_.now();
  const double inflight = static_cast<double>(snd_nxt() - snd_una());

  // Probe-rtt entry dominates every state: a stale RTprop means the model
  // may be tracking its own queue.
  if (state_ != State::kProbeRtt && rtprop_expired_) {
    state_ = State::kProbeRtt;
    probe_rtt_timed_ = false;
    set_gains_for_state();
    return;
  }

  switch (state_) {
    case State::kStartup:
      if (filled_pipe_) {
        state_ = State::kDrain;
        set_gains_for_state();
      }
      break;
    case State::kDrain:
      if (inflight <= std::max(bdp_pkts(), min_cwnd())) enter_probe_bw();
      break;
    case State::kProbeBw:
      if (now - cycle_stamp_ > rtprop_) {
        cycle_index_ = (cycle_index_ + 1) % kCyclePhases;
        cycle_stamp_ = now;
        set_gains_for_state();
      }
      break;
    case State::kProbeRtt:
      // Start the dwell clock only once inflight has actually drained to
      // the probe-rtt floor, then hold for the configured duration.
      if (!probe_rtt_timed_) {
        if (inflight <= cfg_.probe_rtt_cwnd_pkts) {
          probe_rtt_timed_ = true;
          probe_rtt_done_ = now + cfg_.probe_rtt_duration;
        }
      } else if (now >= probe_rtt_done_) {
        rtprop_stamp_ = now;
        rtprop_expired_ = false;
        if (filled_pipe_) {
          enter_probe_bw();
        } else {
          state_ = State::kStartup;
          set_gains_for_state();
        }
      }
      break;
  }
}

void BbrConnection::enter_probe_bw() {
  state_ = State::kProbeBw;
  // Deterministic-by-seed random initial phase, excluding the drain phase
  // (index 1) per the BBR draft.
  const int64_t pick = sim_.rng().uniform_int(0, kCyclePhases - 2);
  cycle_index_ = pick == 0 ? 0 : static_cast<int>(pick) + 1;
  cycle_stamp_ = sim_.now();
  set_gains_for_state();
}

void BbrConnection::set_gains_for_state() {
  switch (state_) {
    case State::kStartup:
      pacing_gain_ = cfg_.startup_gain;
      cwnd_gain_ = cfg_.startup_gain;
      break;
    case State::kDrain:
      pacing_gain_ = 1.0 / cfg_.startup_gain;
      cwnd_gain_ = cfg_.cwnd_gain;
      break;
    case State::kProbeBw:
      if (cycle_index_ == 0) {
        pacing_gain_ = cfg_.probe_gain_up;
      } else if (cycle_index_ == 1) {
        pacing_gain_ = cfg_.probe_gain_down;
      } else {
        pacing_gain_ = 1.0;
      }
      cwnd_gain_ = cfg_.cwnd_gain;
      break;
    case State::kProbeRtt:
      pacing_gain_ = 1.0;
      cwnd_gain_ = 1.0;
      break;
  }
}

void BbrConnection::update_cwnd() {
  if (state_ == State::kProbeRtt) {
    set_cwnd(std::min(cwnd(), cfg_.probe_rtt_cwnd_pkts));
    return;
  }
  const double bdp = bdp_pkts();
  if (bdp <= 0.0) {
    // No model yet: grow exponentially like slow start so the first rounds
    // generate bandwidth samples.
    set_cwnd(cwnd() + 1.0);
    return;
  }
  set_cwnd(std::max(cwnd_gain_ * bdp, min_cwnd()));
}

double BbrConnection::pace_rate_bps() const {
  const double bw = btlbw_bps();
  if (bw <= 0.0) return pacing_gain_ * WindowConnection::pace_rate_bps();
  return pacing_gain_ * bw;
}

void BbrConnection::on_loss_event(bool timeout) {
  // BBR is not loss-driven: fast retransmit repairs the hole without
  // touching the model. A full RTO means the model badly overshot (or the
  // path died) — collapse cwnd conservatively and let the filters rebuild.
  if (timeout) {
    set_cwnd(min_cwnd());
    btlbw_samples_.clear();
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
  }
}

}  // namespace xpass::transport
