// Flow specification shared by every transport.
#pragma once

#include <cstdint>
#include <limits>

#include "net/host.hpp"
#include "sim/time.hpp"

namespace xpass::transport {

// size_bytes == kLongRunning means the flow never completes (microbenchmark
// long flows).
inline constexpr uint64_t kLongRunning =
    std::numeric_limits<uint64_t>::max();

struct FlowSpec {
  net::FlowId id = 0;
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  uint64_t size_bytes = kLongRunning;
  sim::Time start_time;
};

}  // namespace xpass::transport
