#include "transport/dcqcn.hpp"

#include <algorithm>

namespace xpass::transport {

using net::Packet;
using net::PktType;

DcqcnConnection::DcqcnConnection(sim::Simulator& sim, const FlowSpec& spec,
                                 const DcqcnConfig& cfg)
    : WindowConnection(sim, spec, cfg.window),
      cfg_(cfg),
      line_rate_bps_(spec.src->nic().config().rate_bps),
      rc_bps_(line_rate_bps_),  // RoCE NICs start at line rate
      rt_bps_(line_rate_bps_) {
  exit_slow_start();  // rate-driven, not window-driven
  set_cwnd(config().max_cwnd_pkts);
  sync_window();
  rate_timer_id_ = sim_.after(cfg_.rate_timer, [this] { rate_timer_tick(); });
}

DcqcnConnection::~DcqcnConnection() { stop(); }

void DcqcnConnection::stop() {
  sim_.cancel(rate_timer_id_);
  WindowConnection::stop();
}

void DcqcnConnection::sync_window() {
  // Bound the flight to ~2x the rate-delay product so pacing dominates.
  const double bdp_pkts =
      rc_bps_ * std::max(srtt().to_sec(), config().base_rtt.to_sec()) /
      (8.0 * config().mss);
  set_cwnd(std::max(2.0, 2.0 * bdp_pkts));
}

void DcqcnConnection::on_packet(Packet&& p) {
  if (p.type == PktType::kData) {
    // Receiver side: reflect ECN marks as CNPs, at most one per interval.
    if (p.ecn_ce && (!cnp_ever_ ||
                     sim_.now() - last_cnp_sent_ >= cfg_.cnp_interval)) {
      cnp_ever_ = true;
      last_cnp_sent_ = sim_.now();
      Packet cnp = net::make_control(PktType::kCnp, spec().id,
                                     spec().dst->id(), spec().src->id());
      spec().dst->send(std::move(cnp));
    }
  } else if (p.type == PktType::kCnp) {
    on_cnp();
    return;
  }
  WindowConnection::on_packet(std::move(p));
}

void DcqcnConnection::on_cnp() {
  alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
  rt_bps_ = rc_bps_;
  rc_bps_ = std::max(cfg_.min_rate_bps, rc_bps_ * (1.0 - alpha_ / 2.0));
  timer_stage_ = 0;
  sync_window();
}

void DcqcnConnection::rate_timer_tick() {
  // Alpha decays while no CNPs arrive; rate recovers in stages.
  alpha_ = (1.0 - cfg_.g) * alpha_;
  ++timer_stage_;
  if (timer_stage_ <= cfg_.fr_iterations) {
    // Fast recovery: binary approach toward the pre-cut target.
  } else if (timer_stage_ <= 2 * cfg_.fr_iterations) {
    rt_bps_ = std::min(line_rate_bps_, rt_bps_ + cfg_.rai_bps);
  } else {
    rt_bps_ = std::min(line_rate_bps_, rt_bps_ + cfg_.rhai_bps);
  }
  rc_bps_ = std::min(line_rate_bps_, (rt_bps_ + rc_bps_) / 2.0);
  sync_window();
  pump();
  rate_timer_id_ = sim_.after(cfg_.rate_timer, [this] { rate_timer_tick(); });
}

void DcqcnConnection::on_ack_hook(const Packet& ack, uint64_t newly_acked) {
  (void)ack;
  (void)newly_acked;
  // Reliability is the window engine's job; rate control is CNP/timer
  // driven.
}

void DcqcnConnection::on_loss_event(bool timeout) {
  // With PFC underneath, losses are not expected; fall back to a hard cut.
  (void)timeout;
  rt_bps_ = rc_bps_;
  rc_bps_ = std::max(cfg_.min_rate_bps, rc_bps_ / 2.0);
  timer_stage_ = 0;
  sync_window();
}

}  // namespace xpass::transport
