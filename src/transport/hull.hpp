// HULL (Alizadeh et al., NSDI 2012): phantom queues + DCTCP + pacing.
//
// The phantom queue lives in the switch data queues (DropTailQueue::Config
// phantom_* fields — a virtual queue draining at ~95% of line rate that
// marks ECN before any real queue forms). The endpoint is a DCTCP endpoint
// with hardware-style pacing enabled. Use hull_queue_config() when building
// the topology for HULL runs.
#pragma once

#include "net/port.hpp"
#include "transport/dctcp.hpp"

namespace xpass::transport {

struct HullConfig {
  DctcpConfig dctcp;
  double phantom_drain_fraction = 0.95;
  uint64_t phantom_mark_bytes = 2 * net::kMaxWireBytes;

  HullConfig() { dctcp.window.pacing = true; }
};

// Decorates a base data-queue config with HULL's phantom queue for a link of
// `rate_bps`.
net::DropTailQueue::Config hull_queue_config(net::DropTailQueue::Config base,
                                             double rate_bps,
                                             const HullConfig& cfg = {});

class HullTransport : public Transport {
 public:
  explicit HullTransport(sim::Simulator& sim, HullConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<DctcpConnection>(sim_, spec, cfg_.dctcp);
  }
  std::string_view name() const override { return "HULL"; }

 private:
  sim::Simulator& sim_;
  HullConfig cfg_;
};

}  // namespace xpass::transport
