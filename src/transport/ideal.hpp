// The "hypothetically ideal" rate control of §2.
//
// A global oracle knows every active flow's path and instantly assigns
// exact max-min fair rates on every arrival/departure; senders pace
// perfectly at the assigned rate with a random phase. There is no feedback
// delay and no probing — this is strictly better than any real window/rate
// protocol, and Fig 1a shows that *even it* builds unbounded queues under
// bursty many-flow arrivals, motivating credit scheduling.
#pragma once

#include <unordered_map>

#include "net/topology.hpp"
#include "transport/connection.hpp"
#include "transport/maxmin.hpp"

namespace xpass::transport {

class IdealConnection;

class IdealOracle {
 public:
  // `capacity_fraction`: usable share of each link (1.0 = full line rate).
  explicit IdealOracle(net::Topology& topo, double capacity_fraction = 1.0)
      : topo_(topo), fraction_(capacity_fraction) {}

  void add(IdealConnection* c);
  void remove(IdealConnection* c);
  void recompute();

 private:
  net::Topology& topo_;
  double fraction_;
  std::vector<IdealConnection*> conns_;
};

class IdealConnection : public Connection {
 public:
  IdealConnection(sim::Simulator& sim, const FlowSpec& spec,
                  IdealOracle& oracle)
      : Connection(sim, spec), oracle_(oracle) {}
  ~IdealConnection() override { stop(); }

  void start() override;
  void stop() override;

  // Oracle interface.
  void set_rate(double bps) { rate_bps_ = bps; }
  double rate_bps() const { return rate_bps_; }

 private:
  void send_next();

  IdealOracle& oracle_;
  double rate_bps_ = 0.0;
  uint64_t snd_nxt_ = 0;  // bytes
  bool active_ = false;
  bool started_ = false;
  sim::TimerId send_timer_;
};

class IdealTransport : public Transport {
 public:
  IdealTransport(sim::Simulator& sim, net::Topology& topo,
                 double capacity_fraction = 1.0)
      : sim_(sim), oracle_(topo, capacity_fraction) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<IdealConnection>(sim_, spec, oracle_);
  }
  std::string_view name() const override { return "IdealRate"; }
  IdealOracle& oracle() { return oracle_; }

 private:
  sim::Simulator& sim_;
  IdealOracle oracle_;
};

}  // namespace xpass::transport
