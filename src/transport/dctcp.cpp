#include "transport/dctcp.hpp"

namespace xpass::transport {

void DctcpConnection::on_ack_hook(const net::Packet& ack,
                                  uint64_t newly_acked) {
  acked_in_window_ += newly_acked;
  if (ack.ece) marked_in_window_ += newly_acked;

  if (ack.ece) {
    if (in_slow_start()) exit_slow_start();
    if (!cut_this_window_) {
      cut_this_window_ = true;
      set_cwnd(cwnd() * (1.0 - alpha_ / 2.0));
    }
  }

  // Window-boundary bookkeeping: once a full cwnd of data is acknowledged,
  // fold the observed marking fraction into alpha.
  if (snd_una() >= window_end_) {
    if (acked_in_window_ > 0) {
      const double frac = static_cast<double>(marked_in_window_) /
                          static_cast<double>(acked_in_window_);
      alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g * frac;
    }
    acked_in_window_ = 0;
    marked_in_window_ = 0;
    cut_this_window_ = false;
    window_end_ = snd_nxt();
  }

  // Growth: slow start doubles, congestion avoidance adds 1 MSS per RTT.
  if (!ack.ece) {
    if (in_slow_start()) {
      set_cwnd(cwnd() + static_cast<double>(newly_acked));
    } else {
      set_cwnd(cwnd() + static_cast<double>(newly_acked) / cwnd());
    }
  }
}

}  // namespace xpass::transport
