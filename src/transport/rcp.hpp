// RCP — Rate Control Protocol (Dukkipati 2008).
//
// Switch ports (with enable_rcp) maintain an explicit per-flow rate R
// updated every control interval from utilization and queue; forward-path
// packets carry min(R) which receivers echo in ACKs. Senders pace at the
// echoed rate. A new flow probes with a SYN and starts at the advertised
// rate — the behavior that makes RCP drop packets under flow churn in the
// paper's Fig 15.
#pragma once

#include "transport/window.hpp"

namespace xpass::transport {

struct RcpConfig {
  WindowConfig window;
  RcpConfig() {
    window.pacing = true;
    // No slow start: rate is explicit. The window only bounds the flight.
    window.init_cwnd_pkts = 2.0;
    // RCP's own SYN rate probe *is* the handshake.
    window.handshake = false;
  }
};

class RcpConnection : public WindowConnection {
 public:
  RcpConnection(sim::Simulator& sim, const FlowSpec& spec,
                const RcpConfig& cfg)
      : WindowConnection(sim, spec, cfg.window), cfg_(cfg) {}

  double rate_bps() const { return rate_bps_; }

 protected:
  void begin_sending() override;  // SYN handshake to learn the initial rate
  void on_packet(net::Packet&& p) override;
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;
  double pace_rate_bps() const override { return rate_bps_; }

 private:
  void adopt_rate(double bps);

  RcpConfig cfg_;
  double rate_bps_ = 0.0;
};

class RcpTransport : public Transport {
 public:
  explicit RcpTransport(sim::Simulator& sim, RcpConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<RcpConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "RCP"; }

 private:
  sim::Simulator& sim_;
  RcpConfig cfg_;
};

}  // namespace xpass::transport
