#include "transport/maxmin.hpp"

#include <algorithm>
#include <limits>

namespace xpass::transport {

std::vector<double> maxmin_rates(const MaxMinProblem& p) {
  const size_t nf = p.flow_links.size();
  const size_t nl = p.link_capacity.size();
  std::vector<double> rate(nf, 0.0);
  std::vector<bool> fixed(nf, false);
  std::vector<double> remaining = p.link_capacity;
  std::vector<uint32_t> active_on_link(nl, 0);

  for (size_t f = 0; f < nf; ++f) {
    if (p.flow_links[f].empty()) {
      fixed[f] = true;
      rate[f] = std::numeric_limits<double>::infinity();
      continue;
    }
    for (uint32_t l : p.flow_links[f]) ++active_on_link[l];
  }

  size_t unfixed = std::count(fixed.begin(), fixed.end(), false);
  while (unfixed > 0) {
    // Bottleneck link: smallest per-flow fair share among loaded links.
    double best = std::numeric_limits<double>::infinity();
    for (size_t l = 0; l < nl; ++l) {
      if (active_on_link[l] == 0) continue;
      best = std::min(best, remaining[l] / active_on_link[l]);
    }
    if (best == std::numeric_limits<double>::infinity()) break;

    // Fix every flow crossing a link at the bottleneck share.
    bool fixed_any = false;
    for (size_t f = 0; f < nf; ++f) {
      if (fixed[f]) continue;
      bool bottlenecked = false;
      for (uint32_t l : p.flow_links[f]) {
        if (active_on_link[l] > 0 &&
            remaining[l] / active_on_link[l] <= best * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      fixed[f] = true;
      fixed_any = true;
      rate[f] = best;
      --unfixed;
      for (uint32_t l : p.flow_links[f]) {
        remaining[l] -= best;
        if (remaining[l] < 0) remaining[l] = 0;
        --active_on_link[l];
      }
    }
    if (!fixed_any) break;  // numerical safety
  }
  return rate;
}

}  // namespace xpass::transport
