#include "transport/hull.hpp"

namespace xpass::transport {

net::DropTailQueue::Config hull_queue_config(net::DropTailQueue::Config base,
                                             double rate_bps,
                                             const HullConfig& cfg) {
  base.phantom_drain_bps = rate_bps * cfg.phantom_drain_fraction;
  base.phantom_mark_bytes = cfg.phantom_mark_bytes;
  base.ecn_threshold_bytes = 0;  // marking comes from the phantom queue
  return base;
}

}  // namespace xpass::transport
