// DCTCP (Alizadeh et al., SIGCOMM 2010).
//
// Switch side: instantaneous ECN marking at threshold K (configured on the
// topology's data queues). Endpoint side (here): per-window fraction-of-
// marked-bytes estimator alpha <- (1-g)*alpha + g*F and a once-per-window
// multiplicative cut cwnd <- cwnd*(1 - alpha/2) on ECN echo.
#pragma once

#include "transport/window.hpp"

namespace xpass::transport {

struct DctcpConfig {
  WindowConfig window;
  double g = 1.0 / 16.0;  // alpha gain
};

class DctcpConnection : public WindowConnection {
 public:
  DctcpConnection(sim::Simulator& sim, const FlowSpec& spec,
                  const DctcpConfig& cfg)
      : WindowConnection(sim, spec, cfg.window), cfg_(cfg) {}

  double alpha() const { return alpha_; }

 protected:
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;

 private:
  DctcpConfig cfg_;
  double alpha_ = 1.0;  // start conservative, as in the DCTCP paper
  uint64_t window_end_ = 0;
  uint64_t acked_in_window_ = 0;
  uint64_t marked_in_window_ = 0;
  bool cut_this_window_ = false;
};

class DctcpTransport : public Transport {
 public:
  explicit DctcpTransport(sim::Simulator& sim, DctcpConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<DctcpConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "DCTCP"; }

 private:
  sim::Simulator& sim_;
  DctcpConfig cfg_;
};

}  // namespace xpass::transport
