#include "transport/rcp.hpp"

#include <algorithm>

namespace xpass::transport {

using net::Packet;
using net::PktType;

void RcpConnection::begin_sending() {
  exit_slow_start();
  Packet syn = net::make_control(PktType::kSyn, spec().id, spec().src->id(),
                                 spec().dst->id());
  syn.ts = sim_.now();
  spec().src->send(std::move(syn));
}

void RcpConnection::on_packet(Packet&& p) {
  if (p.type == PktType::kSyn) {
    // Receiver: echo the advertised rate collected along the forward path.
    Packet synack = net::make_control(PktType::kSynAck, spec().id,
                                      spec().dst->id(), spec().src->id());
    synack.rcp_rate_bps = p.rcp_rate_bps;
    synack.ts = p.ts;
    spec().dst->send(std::move(synack));
    return;
  }
  if (p.type == PktType::kSynAck) {
    adopt_rate(p.rcp_rate_bps);
    WindowConnection::begin_sending();
    return;
  }
  WindowConnection::on_packet(std::move(p));
}

void RcpConnection::on_ack_hook(const Packet& ack, uint64_t newly_acked) {
  (void)newly_acked;
  if (ack.rcp_rate_bps > 0.0) adopt_rate(ack.rcp_rate_bps);
}

void RcpConnection::adopt_rate(double bps) {
  if (bps <= 0.0) bps = 1e6;  // defensive floor
  rate_bps_ = bps;
  // Flight bound: 2x the rate-delay product so pacing, not the window, is
  // the limiting mechanism.
  const double bdp_pkts =
      rate_bps_ * std::max(srtt().to_sec(), config().base_rtt.to_sec()) /
      (8.0 * config().mss);
  set_cwnd(std::max(2.0, 2.0 * bdp_pkts));
}

}  // namespace xpass::transport
