// TCP Cubic (Ha, Rhee, Xu 2008) — loss-based baseline for Fig 2.
#pragma once

#include "transport/window.hpp"

namespace xpass::transport {

struct CubicConfig {
  WindowConfig window;
  double c = 0.4;     // cubic scaling constant
  double beta = 0.7;  // multiplicative decrease factor
};

class CubicConnection : public WindowConnection {
 public:
  CubicConnection(sim::Simulator& sim, const FlowSpec& spec,
                  const CubicConfig& cfg)
      : WindowConnection(sim, spec, cfg.window), cfg_(cfg) {}

 protected:
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;
  void on_loss_event(bool timeout) override;

 private:
  CubicConfig cfg_;
  double w_max_ = 0.0;
  sim::Time epoch_start_;
  bool in_epoch_ = false;
};

class CubicTransport : public Transport {
 public:
  explicit CubicTransport(sim::Simulator& sim, CubicConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<CubicConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "Cubic"; }

 private:
  sim::Simulator& sim_;
  CubicConfig cfg_;
};

}  // namespace xpass::transport
