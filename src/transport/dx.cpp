#include "transport/dx.hpp"

namespace xpass::transport {

void DxConnection::on_ack_hook(const net::Packet& ack, uint64_t newly_acked) {
  delay_sum_sec_ += ack.queue_delay.to_sec();
  delay_samples_ += newly_acked;

  if (in_slow_start()) {
    if (ack.queue_delay > cfg_.delay_threshold) exit_slow_start();
    set_cwnd(cwnd() + static_cast<double>(newly_acked));
  }

  if (snd_una() < window_end_) return;
  window_end_ = snd_nxt();
  if (delay_samples_ == 0) return;
  const double q = delay_sum_sec_ / static_cast<double>(delay_samples_);
  delay_sum_sec_ = 0.0;
  delay_samples_ = 0;
  if (in_slow_start()) return;

  if (q <= cfg_.delay_threshold.to_sec()) {
    set_cwnd(cwnd() + 1.0);
  } else {
    const double v = cfg_.window.base_rtt.to_sec();
    set_cwnd(cwnd() * (1.0 - q / (q + v)) + 1.0);
  }
}

}  // namespace xpass::transport
