#include "transport/window.hpp"

#include <algorithm>
#include <cassert>

namespace xpass::transport {

using net::Packet;
using net::PktType;
using sim::Time;

WindowConnection::WindowConnection(sim::Simulator& sim, const FlowSpec& spec,
                                   const WindowConfig& cfg)
    : Connection(sim, spec), cfg_(cfg), cwnd_(cfg.init_cwnd_pkts) {
  total_pkts_ = spec.size_bytes == kLongRunning
                    ? kLongRunning
                    : (spec.size_bytes + cfg_.mss - 1) / cfg_.mss;
  srtt_ = cfg_.base_rtt;
  rttvar_ = cfg_.base_rtt / 2;
}

WindowConnection::~WindowConnection() { stop(); }

void WindowConnection::start() {
  if (started_) return;
  started_ = true;
  spec_.src->register_flow(spec_.id, [this](Packet&& p) {
    on_packet(std::move(p));
  });
  spec_.dst->register_flow(spec_.id, [this](Packet&& p) {
    on_packet(std::move(p));
  });
  next_release_ = sim_.now();
  begin_sending();
}

void WindowConnection::begin_sending() {
  if (cfg_.handshake) {
    Packet syn = net::make_control(PktType::kSyn, spec_.id, spec_.src->id(),
                                   spec_.dst->id());
    syn.ts = sim_.now();
    spec_.src->send(std::move(syn));
    arm_rto();  // retry the SYN if it is lost
    return;
  }
  pump();
  arm_rto();
}

void WindowConnection::stop() {
  if (!started_) return;
  started_ = false;
  spec_.src->unregister_flow(spec_.id);
  spec_.dst->unregister_flow(spec_.id);
  sim_.cancel(rto_timer_);
}

void WindowConnection::on_packet(Packet&& p) {
  if (p.type == PktType::kData) {
    handle_data(p);
  } else if (p.type == PktType::kAck) {
    handle_ack(p);
  } else if (p.type == PktType::kSyn) {
    Packet synack = net::make_control(PktType::kSynAck, spec_.id,
                                      spec_.dst->id(), spec_.src->id());
    synack.ts = p.ts;
    spec_.dst->send(std::move(synack));
  } else if (p.type == PktType::kSynAck) {
    if (!handshake_done_) {
      handshake_done_ = true;
      pump();
      arm_rto();
    }
  }
}

void WindowConnection::handle_data(const Packet& p) {
  if (p.seq >= rcv_next_) {
    rcv_ooo_.emplace(p.seq, p.payload_bytes);
    // Advance the cumulative point over everything now contiguous.
    for (auto it = rcv_ooo_.begin();
         it != rcv_ooo_.end() && it->first == rcv_next_;
         it = rcv_ooo_.erase(it)) {
      ++rcv_next_;
      deliver(it->second);
    }
  }
  // Duplicates just re-ACK the cumulative point.
  Packet ack = net::make_control(PktType::kAck, spec_.id, spec_.dst->id(),
                                 spec_.src->id());
  ack.ack = rcv_next_;
  ack.ece = p.ecn_ce;
  ack.ts = p.ts;
  ack.queue_delay = p.queue_delay;
  ack.rcp_rate_bps = p.rcp_rate_bps;
  spec_.dst->send(std::move(ack));
}

void WindowConnection::handle_ack(const Packet& p) {
  // RTT sample from the echoed timestamp.
  const Time sample = sim_.now() - p.ts;
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_ = true;
  } else {
    const Time err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = rttvar_ * 0.75 + err * 0.25;
    srtt_ = srtt_ * 0.875 + sample * 0.125;
  }

  if (p.ack > snd_una_) {
    const uint64_t newly = p.ack - snd_una_;
    snd_una_ = p.ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    dup_acks_ = 0;
    rto_backoff_ = 0;
    on_ack_hook(p, newly);
    if (total_pkts_ != kLongRunning && snd_una_ >= total_pkts_) {
      sender_done_ = true;
      sim_.cancel(rto_timer_);
      return;
    }
    arm_rto();
    pump();
  } else {
    ++dup_acks_;
    if (dup_acks_ == 3) {
      dup_acks_ = 0;
      snd_nxt_ = snd_una_;  // go-back-N
      ++retransmits_;
      on_loss_event(/*timeout=*/false);
      arm_rto();
      pump();
    }
  }
}

double WindowConnection::pace_rate_bps() const {
  const double rtt_sec = std::max(srtt_.to_sec(), 1e-9);
  return cwnd_ * cfg_.mss * 8.0 / rtt_sec;
}

void WindowConnection::pump() {
  if (sender_done_) return;
  if (cfg_.handshake && !handshake_done_) return;
  while (!send_scheduled_) {
    const uint64_t limit =
        snd_una_ + static_cast<uint64_t>(std::max(1.0, cwnd_));
    if (snd_nxt_ >= total_pkts_ || snd_nxt_ >= limit) return;
    if (cfg_.pacing) {
      const Time now = sim_.now();
      if (next_release_ > now) {
        send_scheduled_ = true;
        sim_.after(next_release_ - now, [this] {
          send_scheduled_ = false;
          pump();
        });
        return;
      }
      const Time gap =
          Time::seconds((cfg_.mss + net::kHeaderOverhead) * 8.0 /
                        pace_rate_bps());
      next_release_ = std::max(now, next_release_) + gap;
    }
    transmit(snd_nxt_++);
  }
}

void WindowConnection::transmit(uint64_t pkt_idx) {
  const uint64_t offset = pkt_idx * cfg_.mss;
  const uint32_t payload = static_cast<uint32_t>(
      spec_.size_bytes == kLongRunning
          ? cfg_.mss
          : std::min<uint64_t>(cfg_.mss, spec_.size_bytes - offset));
  Packet p = net::make_data(spec_.id, spec_.src->id(), spec_.dst->id(),
                            pkt_idx, payload);
  p.ts = sim_.now();
  spec_.src->send(std::move(p));
}

void WindowConnection::arm_rto() {
  sim_.cancel(rto_timer_);
  Time rto = std::max(cfg_.rto_min, srtt_ + rttvar_ * 4);
  for (uint32_t i = 0; i < rto_backoff_; ++i) rto = rto * 2;
  rto_timer_ = sim_.after(rto, [this] { on_rto(); });
}

void WindowConnection::on_rto() {
  if (cfg_.handshake && !handshake_done_) {
    begin_sending();  // SYN (or the SYN-ACK) was lost: retry
    return;
  }
  if (sender_done_ || snd_una_ >= snd_nxt_) {
    // Nothing in flight; idle. Re-arm lazily on next send.
    if (!sender_done_ && snd_nxt_ < total_pkts_) {
      pump();
      arm_rto();
    }
    return;
  }
  ++timeouts_;
  ++retransmits_;
  if (rto_backoff_ < 10) ++rto_backoff_;
  snd_nxt_ = snd_una_;
  dup_acks_ = 0;
  on_loss_event(/*timeout=*/true);
  arm_rto();
  pump();
}

void WindowConnection::on_loss_event(bool timeout) {
  if (timeout) {
    ssthresh_ = std::max(cwnd_ / 2.0, min_cwnd());
    set_cwnd(min_cwnd());
  } else {
    ssthresh_ = std::max(cwnd_ / 2.0, min_cwnd());
    set_cwnd(ssthresh_);
  }
}

void WindowConnection::set_cwnd(double w) {
  cwnd_ = std::clamp(w, cfg_.min_cwnd_pkts, cfg_.max_cwnd_pkts);
}

}  // namespace xpass::transport
