#include "transport/timely.hpp"

#include <algorithm>

namespace xpass::transport {

TimelyConnection::TimelyConnection(sim::Simulator& sim, const FlowSpec& spec,
                                   const TimelyConfig& cfg)
    : WindowConnection(sim, spec, cfg.window),
      cfg_(cfg),
      line_rate_bps_(spec.src->nic().config().rate_bps),
      rate_bps_(line_rate_bps_ / 10.0),
      prev_rtt_(cfg.window.base_rtt),
      min_rtt_(cfg.window.base_rtt) {
  exit_slow_start();
  set_cwnd(config().max_cwnd_pkts);
}

void TimelyConnection::on_ack_hook(const net::Packet& ack,
                                   uint64_t newly_acked) {
  (void)newly_acked;
  const sim::Time rtt = sim_.now() - ack.ts;
  if (rtt < min_rtt_) min_rtt_ = rtt;
  const double new_grad =
      (rtt - prev_rtt_).to_sec() / std::max(min_rtt_.to_sec(), 1e-9);
  gradient_ = (1.0 - cfg_.ewma) * gradient_ + cfg_.ewma * new_grad;
  prev_rtt_ = rtt;

  if (rtt < cfg_.t_low) {
    ++neg_streak_;
    rate_bps_ += cfg_.add_step_bps;
  } else if (rtt > cfg_.t_high) {
    neg_streak_ = 0;
    rate_bps_ *= 1.0 - cfg_.beta * (1.0 - cfg_.t_high.to_sec() /
                                              rtt.to_sec());
  } else if (gradient_ <= 0.0) {
    ++neg_streak_;
    const double n = neg_streak_ >= cfg_.hai_streak ? 5.0 : 1.0;
    rate_bps_ += n * cfg_.add_step_bps;
  } else {
    neg_streak_ = 0;
    rate_bps_ *= 1.0 - cfg_.beta * gradient_;
  }
  rate_bps_ = std::clamp(rate_bps_, cfg_.min_rate_bps, line_rate_bps_);

  // Flight bound follows the rate.
  const double bdp_pkts =
      rate_bps_ * std::max(srtt().to_sec(), config().base_rtt.to_sec()) /
      (8.0 * config().mss);
  set_cwnd(std::max(2.0, 2.0 * bdp_pkts));
}

}  // namespace xpass::transport
