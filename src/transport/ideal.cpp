#include "transport/ideal.hpp"

#include <algorithm>

namespace xpass::transport {

using net::Packet;
using net::PktType;

void IdealOracle::add(IdealConnection* c) {
  conns_.push_back(c);
  recompute();
}

void IdealOracle::remove(IdealConnection* c) {
  conns_.erase(std::remove(conns_.begin(), conns_.end(), c), conns_.end());
  recompute();
}

void IdealOracle::recompute() {
  MaxMinProblem prob;
  std::unordered_map<net::Port*, uint32_t> link_index;
  prob.flow_links.reserve(conns_.size());
  for (IdealConnection* c : conns_) {
    const auto& s = c->spec();
    auto path = topo_.trace_path(s.src->id(), s.dst->id(), s.id);
    std::vector<uint32_t> links;
    links.reserve(path.size());
    for (net::Port* p : path) {
      auto [it, inserted] =
          link_index.try_emplace(p, static_cast<uint32_t>(link_index.size()));
      if (inserted) {
        prob.link_capacity.push_back(p->config().rate_bps * fraction_);
      }
      links.push_back(it->second);
    }
    prob.flow_links.push_back(std::move(links));
  }
  const auto rates = maxmin_rates(prob);
  for (size_t i = 0; i < conns_.size(); ++i) conns_[i]->set_rate(rates[i]);
}

void IdealConnection::start() {
  if (started_) return;
  started_ = true;
  active_ = true;
  spec_.dst->register_flow(spec_.id, [this](Packet&& p) {
    if (p.type == PktType::kData) deliver(p.payload_bytes);
  });
  oracle_.add(this);
  // Random phase: flows are perfectly paced but mutually unsynchronized —
  // exactly the §2 setup whose burst coincidences build the queue.
  const double interval =
      rate_bps_ > 0.0 ? net::kMaxWireBytes * 8.0 / rate_bps_ : 10e-6;
  send_timer_ = sim_.after(
      sim::Time::seconds(sim_.rng().uniform() * interval),
      [this] { send_next(); });
}

void IdealConnection::stop() {
  if (!started_) return;
  if (active_) {
    active_ = false;
    oracle_.remove(this);
  }
  started_ = false;
  sim_.cancel(send_timer_);
  spec_.dst->unregister_flow(spec_.id);
}

void IdealConnection::send_next() {
  if (!active_) return;
  if (spec_.size_bytes != kLongRunning && snd_nxt_ >= spec_.size_bytes) {
    active_ = false;
    oracle_.remove(this);
    return;
  }
  const uint32_t payload = static_cast<uint32_t>(
      spec_.size_bytes == kLongRunning
          ? net::kMssBytes
          : std::min<uint64_t>(net::kMssBytes, spec_.size_bytes - snd_nxt_));
  Packet p = net::make_data(spec_.id, spec_.src->id(), spec_.dst->id(),
                            snd_nxt_, payload);
  p.ts = sim_.now();
  spec_.src->send(std::move(p));
  snd_nxt_ += payload;
  if (rate_bps_ <= 0.0) {
    // No capacity assigned yet; retry shortly.
    send_timer_ = sim_.after(sim::Time::us(10), [this] { send_next(); });
    return;
  }
  const sim::Time gap = sim::Time::seconds(
      static_cast<double>(payload + net::kHeaderOverhead) * 8.0 / rate_bps_);
  send_timer_ = sim_.after(gap, [this] { send_next(); });
}

}  // namespace xpass::transport
