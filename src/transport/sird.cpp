#include "transport/sird.hpp"

#include <algorithm>

#include "net/packet_pool.hpp"

namespace xpass::transport {

using net::Packet;
using net::PktType;

// ----- Allocator ------------------------------------------------------------

namespace {
CreditScheduler::Config alloc_sched_config(const SirdConfig& cfg) {
  CreditScheduler::Config c;
  c.jitter = cfg.jitter;
  c.cycle_bytes = net::kCreditCycleBytes;
  return c;
}
}  // namespace

SirdAllocator::SirdAllocator(net::Host& host, const SirdConfig& cfg,
                             SirdStats& stats)
    : host_(host),
      cfg_(cfg),
      stats_(stats),
      sched_(
          host.simulator(), alloc_sched_config(cfg),
          // Grants share the host's full NIC rate: one grant per
          // credit+MTU cycle admits exactly line rate of data across
          // however many flows the rotation holds.
          [this] { return host_.nic().config().rate_bps; },
          [this] { return emit_grant(); }) {}

void SirdAllocator::activate(SirdConnection* c) {
  if (!c->in_rotation_) {
    rotation_.push_back(c);
    c->in_rotation_ = true;
  }
  if (!sched_.running()) sched_.start();
}

void SirdAllocator::remove(SirdConnection* c) {
  if (!c->in_rotation_) return;
  rotation_.erase(std::remove(rotation_.begin(), rotation_.end(), c),
                  rotation_.end());
  c->in_rotation_ = false;
}

bool SirdAllocator::emit_grant() {
  // Serve the first grantable flow in rotation order; flows whose demand is
  // met (or whose solicitation window is full) fall out lazily and are
  // re-activated by their own demand/progress events. Returning false when
  // nobody wants bandwidth stops the pump — idle receivers cost nothing.
  while (!rotation_.empty()) {
    SirdConnection* c = rotation_.front();
    rotation_.pop_front();
    if (!c->grantable()) {
      c->in_rotation_ = false;
      continue;
    }
    c->send_grant();
    ++stats_.grants_issued;
    if (c->grantable()) {
      rotation_.push_back(c);  // back of the rotation: round-robin fairness
    } else {
      c->in_rotation_ = false;
    }
    return true;
  }
  return false;
}

// ----- Connection -----------------------------------------------------------

SirdConnection::SirdConnection(sim::Simulator& sim, const FlowSpec& spec,
                               const SirdConfig& cfg, SirdStats& stats,
                               SirdAllocator& alloc)
    : Connection(sim, spec), cfg_(cfg), stats_(stats), alloc_(&alloc) {}

SirdConnection::~SirdConnection() { stop(); }

void SirdConnection::start() {
  if (started_) return;
  started_ = true;
  spec_.src->register_flow(spec_.id, [this](Packet&& p) {
    sender_on_packet(std::move(p));
  });
  spec_.dst->register_flow(spec_.id, [this](Packet&& p) {
    receiver_on_packet(std::move(p));
  });
  host_release_ = sim_.now();
  cur_request_timeout_ = cfg_.request_timeout;
  send_request();
  arm_watchdog();
}

void SirdConnection::stop() {
  if (!started_) return;
  started_ = false;
  spec_.src->unregister_flow(spec_.id);
  spec_.dst->unregister_flow(spec_.id);
  sim_.cancel(request_timer_);
  rsim_.cancel(probe_timer_);
  while (!release_timers_.empty()) sim_.cancel(release_timers_.pop_front());
  if (alloc_ != nullptr) alloc_->remove(this);
}

// ----- Sender half ----------------------------------------------------------

void SirdConnection::send_request() {
  // Demand advertisement, piggybacked on SYN: seq carries the flow's total
  // size (kLongRunning for open-ended flows). Idempotent — the receiver
  // takes the max, so watchdog re-requests are safe.
  Packet syn = net::make_control(PktType::kSyn, spec_.id, spec_.src->id(),
                                 spec_.dst->id());
  syn.seq = spec_.size_bytes;
  spec_.src->send(std::move(syn));
}

void SirdConnection::arm_watchdog() {
  sim_.cancel(request_timer_);
  double t_sec = cur_request_timeout_.to_sec();
  if (cfg_.request_jitter > 0.0 && dead_retries_ > 0) {
    // Same desynchronization rationale as ExpressPass: only backed-off
    // retries draw jitter, so healthy runs leave the RNG stream untouched.
    t_sec *= 1.0 + cfg_.request_jitter * sim_.rng().uniform(-1.0, 1.0);
  }
  request_timer_ =
      sim_.after(sim::Time::seconds(t_sec), [this] { on_watchdog(); });
}

void SirdConnection::on_watchdog() {
  if (completed() || failed()) return;
  const uint64_t size = spec_.size_bytes;
  if (size != kLongRunning && snd_nxt_ >= size) return;  // tail is in flight
  if (ledger_.granted() > grants_at_last_watchdog_) {
    grants_at_last_watchdog_ = ledger_.granted();
    dead_retries_ = 0;
    cur_request_timeout_ = cfg_.request_timeout;
    arm_watchdog();
    return;
  }
  ++dead_retries_;
  if (dead_retries_ > cfg_.max_dead_retries) {
    abort_flow("sird sender: no grants after " +
               std::to_string(cfg_.max_dead_retries) + " request retries");
    return;
  }
  send_request();
  cur_request_timeout_ = std::min(
      sim::Time::seconds(cur_request_timeout_.to_sec() * cfg_.request_backoff),
      cfg_.request_timeout_cap);
  arm_watchdog();
}

void SirdConnection::sender_on_packet(Packet&& p) {
  if (p.type != PktType::kCredit || failed()) return;
  ledger_.grant();

  const uint64_t size = spec_.size_bytes;
  // Grant cum-acks double as the loss-recovery signal, exactly like
  // ExpressPass credits: if everything was sent a while ago and the
  // receiver still reports a hole, rewind to its cumulative point. The time
  // guard rejects grants that were in flight when the tail went out.
  if (size != kLongRunning && snd_nxt_ >= size && p.ack < size &&
      sim_.now() - last_data_sent_ > cfg_.request_timeout) {
    snd_nxt_ = p.ack;
  }

  if (size != kLongRunning && snd_nxt_ >= size) {
    // Demand already covered: the grant was in flight past the tail. This
    // is SIRD's (bounded) waste — see GrantAccounting.
    ledger_.waste();
    ++stats_.grants_wasted;
    if (p.ack >= size &&
        (!stop_sent_ ||
         sim_.now() - last_stop_time_ >= cfg_.stop_retx_interval)) {
      send_grant_stop();
    }
    return;
  }

  const uint32_t payload = static_cast<uint32_t>(
      size == kLongRunning ? net::kMssBytes
                           : std::min<uint64_t>(net::kMssBytes,
                                                size - snd_nxt_));
  ledger_.consume();
  ++stats_.grants_consumed;
  Packet data = net::make_data(spec_.id, spec_.src->id(), spec_.dst->id(),
                               snd_nxt_, payload);
  data.ts = sim_.now();
  snd_nxt_ += payload;
  if (size != kLongRunning && snd_nxt_ >= size) data.fin = true;

  // Host grant-processing delay, released in FIFO order (same model as
  // ExpressPass credit processing — the NIC answers one permission packet
  // at a time).
  last_data_sent_ = sim_.now();
  const sim::Time release =
      std::max(host_release_, sim_.now() + spec_.src->sample_credit_delay());
  host_release_ = release;
  release_timers_.push_back(
      sim_.at(release, [this, d = net::PacketRef(std::move(data))]() mutable {
        release_timers_.pop_front();
        spec_.src->send(std::move(*d));
      }));
}

void SirdConnection::send_grant_stop() {
  stop_sent_ = true;
  last_stop_time_ = sim_.now();
  Packet stop = net::make_control(PktType::kCreditStop, spec_.id,
                                  spec_.src->id(), spec_.dst->id());
  spec_.src->send(std::move(stop));
}

// ----- Receiver half --------------------------------------------------------

bool SirdConnection::grantable() const {
  if (done_ || failed()) return false;
  if (granted_bytes_ >= advertised_end_) return false;  // demand covered
  return outstanding_grant_bytes() < cfg_.solicitation_bytes;
}

void SirdConnection::send_grant() {
  Packet g = net::make_control(PktType::kCredit, spec_.id, spec_.dst->id(),
                               spec_.src->id());
  g.seq = grant_seq_++;
  g.ack = rcv_next_;
  // One grant authorizes one MSS; clamp the budget at the advertised end so
  // a short tail doesn't trigger a surplus grant.
  granted_bytes_ = std::min<uint64_t>(granted_bytes_ + net::kMssBytes,
                                      advertised_end_);
  spec_.dst->send(std::move(g));
}

void SirdConnection::receiver_on_packet(Packet&& p) {
  if (failed()) return;
  switch (p.type) {
    case PktType::kSyn:
    case PktType::kCreditRequest:
      if (done_) return;  // late/duplicate request for a finished flow
      advertised_end_ = std::max(advertised_end_, p.seq);
      if (!probe_armed_) {
        probe_armed_ = true;
        arm_probe();
      }
      if (grantable()) alloc_->activate(this);
      return;
    case PktType::kCreditStop:
      done_ = true;
      rsim_.cancel(probe_timer_);
      return;
    case PktType::kData: {
      received_bytes_ += p.payload_bytes;
      if (p.fin) fin_end_ = p.seq + p.payload_bytes;
      if (p.seq == rcv_next_) {
        rcv_next_ += p.payload_bytes;
        deliver(p.payload_bytes);
        auto it = rcv_ooo_.begin();
        while (it != rcv_ooo_.end() && it->first <= rcv_next_) {
          const uint64_t end = it->first + it->second;
          if (end > rcv_next_) {
            deliver(end - rcv_next_);
            rcv_next_ = end;
          }
          it = rcv_ooo_.erase(it);
        }
      } else if (p.seq > rcv_next_) {
        if (spec_.size_bytes == kLongRunning) {
          // No retransmission toward an end that doesn't exist; account
          // goodput across the hole.
          rcv_next_ = p.seq + p.payload_bytes;
          deliver(p.payload_bytes);
        } else {
          rcv_ooo_.emplace(p.seq, p.payload_bytes);
        }
      }
      if (fin_end_ > 0 && rcv_next_ >= fin_end_) {
        done_ = true;
        rsim_.cancel(probe_timer_);
        return;
      }
      // Data progress reopens the solicitation window.
      if (grantable()) alloc_->activate(this);
      return;
    }
    default:
      return;
  }
}

void SirdConnection::arm_probe() {
  probe_timer_ = rsim_.after(cfg_.probe_period, [this] { on_probe(); });
}

void SirdConnection::on_probe() {
  if (done_ || failed()) return;
  if (received_bytes_ > progress_at_probe_) {
    progress_at_probe_ = received_bytes_;
    dead_periods_ = 0;
  } else if (granted_bytes_ > rcv_next_) {
    // Grants outstanding, nothing arriving: either the grants or the data
    // they solicited were lost. Forgive the budget down to the in-order
    // edge so the allocator re-solicits the missing range (the grant's
    // cum-ack makes the sender rewind to the same point), and count the
    // silent period toward the dead verdict.
    ++dead_periods_;
    if (dead_periods_ >= cfg_.receiver_dead_periods) {
      abort_flow("sird receiver: grants paced but no data for " +
                 std::to_string(dead_periods_) + " probe periods");
      return;
    }
    granted_bytes_ = rcv_next_;
    if (grantable()) alloc_->activate(this);
  }
  arm_probe();
}

void SirdConnection::abort_flow(const std::string& why) {
  // SIRD is serial-only (the parallel envelope rejects it): one thread owns
  // both halves and the shared allocator, so teardown is atomic.
  sim_.cancel(request_timer_);
  rsim_.cancel(probe_timer_);
  done_ = true;
  if (alloc_ != nullptr) alloc_->remove(this);
  fail_flow(why);
}

// ----- Transport ------------------------------------------------------------

SirdAllocator& SirdTransport::allocator_for(net::Host& dst) {
  auto it = allocators_.find(dst.id());
  if (it == allocators_.end()) {
    it = allocators_
             .emplace(dst.id(),
                      std::make_unique<SirdAllocator>(dst, cfg_, stats_))
             .first;
  }
  return *it->second;
}

std::unique_ptr<Connection> SirdTransport::create(const FlowSpec& spec) {
  return std::make_unique<SirdConnection>(sim_, spec, cfg_, stats_,
                                          allocator_for(*spec.dst));
}

}  // namespace xpass::transport
