#include "transport/credit_sched.hpp"

namespace xpass::transport {

void CreditScheduler::start() {
  running_ = true;
  schedule_next();
}

void CreditScheduler::stop() {
  sim_.cancel(timer_);
  running_ = false;
}

void CreditScheduler::fire() {
  if (!running_) return;
  // The emit callback may refuse (flow settled under the timer, or a shared
  // allocator ran out of grantable flows): the pump does not re-arm and
  // reports !running(), so a later start() can revive it. The no-re-arm part
  // is exactly the pre-extraction ExpressPass behavior, where a failed
  // flow's credit timer chain ended without touching other state.
  if (!emit_()) {
    running_ = false;
    return;
  }
  ++emitted_;
  schedule_next();
}

void CreditScheduler::schedule_next() {
  // Draw order per cycle is fixed: the emit callback's own randomization
  // (credit size) happened first, then this gap jitter — byte-identity with
  // the pre-extraction ExpressPass stream depends on it.
  double gap = gap_sec(rate_(), cfg_.cycle_bytes);
  if (cfg_.jitter > 0.0) {
    gap *= 1.0 + cfg_.jitter * sim_.rng().uniform(-1.0, 1.0);
  }
  timer_ = sim_.after(sim::Time::seconds(gap), [this] { fire(); });
}

}  // namespace xpass::transport
