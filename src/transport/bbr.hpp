// BBR (Cardwell et al., ACM Queue 2016) — model-based baseline.
//
// Estimates the bottleneck bandwidth (windowed-max filter over per-round
// delivery-rate samples) and the round-trip propagation delay (windowed-min
// filter over raw RTT samples), then paces at pacing_gain * BtlBw with
// cwnd = cwnd_gain * BDP. The classic four-state machine drives the gains:
//
//   kStartup  — pacing_gain 2/ln2 until BtlBw stops growing (three rounds
//               under +25%), doubling the sending rate each RTT.
//   kDrain    — inverse gain until inflight <= BDP, draining the queue the
//               startup overshoot built.
//   kProbeBw  — eight-phase gain cycle [1.25, 0.75, 1 x6], one phase per
//               RTprop, sustaining full utilization while periodically
//               probing for more bandwidth and yielding what it found.
//   kProbeRtt — every probe_rtt_interval without a new RTprop low, cwnd is
//               clamped to probe_rtt_cwnd_pkts for probe_rtt_duration so the
//               queue empties and RTprop can be re-measured.
//
// Filter windows are configurable so unit tests can shrink them from the
// 10 s wall-clock defaults to simulation-friendly spans.
#pragma once

#include <deque>

#include "transport/window.hpp"

namespace xpass::transport {

struct BbrConfig {
  WindowConfig window;
  double startup_gain = 2.885;        // 2/ln2
  double cwnd_gain = 2.0;
  double probe_gain_up = 1.25;        // probe-bw phase 0
  double probe_gain_down = 0.75;      // probe-bw phase 1
  double startup_growth_thresh = 1.25;  // full-pipe: <25% growth ...
  int startup_full_bw_rounds = 3;       // ... for this many rounds
  int btlbw_window_rounds = 10;         // max-filter span (rounds)
  sim::Time rtprop_window = sim::Time::sec(10);    // min-filter span
  sim::Time probe_rtt_interval = sim::Time::sec(10);
  sim::Time probe_rtt_duration = sim::Time::ms(200);
  double probe_rtt_cwnd_pkts = 4.0;
};

class BbrConnection : public WindowConnection {
 public:
  enum class State { kStartup, kDrain, kProbeBw, kProbeRtt };

  BbrConnection(sim::Simulator& sim, const FlowSpec& spec,
                const BbrConfig& cfg);

  State state() const { return state_; }
  double btlbw_bps() const;
  sim::Time rtprop() const { return rtprop_; }
  double pacing_gain() const { return pacing_gain_; }

 protected:
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;
  void on_loss_event(bool timeout) override;
  double pace_rate_bps() const override;

 private:
  double bdp_pkts() const;
  void update_round(uint64_t newly_acked);
  void update_rtprop(sim::Time sample);
  void check_full_pipe();
  void advance_machine();
  void enter_probe_bw();
  void set_gains_for_state();
  void update_cwnd();

  BbrConfig cfg_;
  State state_ = State::kStartup;
  double pacing_gain_;
  double cwnd_gain_;

  // Delivery-rate rounds: a round ends when snd_una passes the snd_nxt
  // recorded at the round's start; the sample is delivered-bytes / span.
  uint64_t delivered_pkts_ = 0;
  uint64_t round_end_seq_ = 0;
  uint64_t round_start_delivered_ = 0;
  sim::Time round_start_time_;
  bool round_armed_ = false;
  uint64_t round_count_ = 0;

  // Windowed max-filter of bandwidth samples, keyed by round.
  std::deque<std::pair<uint64_t, double>> btlbw_samples_;

  // Windowed min-filter of RTT samples (value + stamp of current min).
  sim::Time rtprop_;
  sim::Time rtprop_stamp_;
  bool have_rtprop_ = false;
  // probe_rtt_interval elapsed without a new low, latched pre-refresh (the
  // draft's rtprop_expired) — the kProbeRtt entry trigger.
  bool rtprop_expired_ = false;

  // Startup full-pipe detection.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  bool filled_pipe_ = false;

  // Probe-bw gain cycling.
  int cycle_index_ = 0;
  sim::Time cycle_stamp_;

  // Probe-rtt bookkeeping.
  sim::Time probe_rtt_done_;
  bool probe_rtt_timed_ = false;
};

class BbrTransport : public Transport {
 public:
  explicit BbrTransport(sim::Simulator& sim, BbrConfig cfg = {})
      : sim_(sim), cfg_(cfg) {
    cfg_.window.pacing = true;  // BBR is defined by its pacing
  }
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<BbrConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "BBR"; }

 private:
  sim::Simulator& sim_;
  BbrConfig cfg_;
};

}  // namespace xpass::transport
