// DCQCN (Zhu et al., SIGCOMM 2015) — the ECN-based rate control deployed
// with RoCEv2. Not part of the paper's head-to-head evaluation, but it is
// the RDMA status quo the introduction argues against (PFC for losslessness
// + reactive rate control), so we provide it as an extension comparator.
//
// Mechanism: switches mark ECN (threshold Kmin ~ like DCTCP); the receiver
// reflects marks as CNPs at most once per cnp_interval; the sender keeps a
// DCTCP-style EWMA alpha and on each CNP cuts Rc <- Rc*(1 - alpha/2),
// remembering the target Rt. Timer-driven recovery alternates fast
// recovery (binary approach to Rt), additive increase (Rt += Rai), and
// hyper increase. Deploy together with PFC-enabled links for the authentic
// lossless-RDMA setup (see runner::protocol_link_config for kDcqcn).
#pragma once

#include "transport/window.hpp"

namespace xpass::transport {

struct DcqcnConfig {
  WindowConfig window;
  double g = 1.0 / 256.0;              // alpha gain
  sim::Time cnp_interval = sim::Time::us(50);
  sim::Time rate_timer = sim::Time::us(55);
  double rai_bps = 40e6;               // additive increase step
  double rhai_bps = 400e6;             // hyper increase step
  uint32_t fr_iterations = 5;          // fast-recovery rounds before AI
  double min_rate_bps = 10e6;

  DcqcnConfig() { window.pacing = true; }
};

class DcqcnConnection : public WindowConnection {
 public:
  DcqcnConnection(sim::Simulator& sim, const FlowSpec& spec,
                  const DcqcnConfig& cfg);
  ~DcqcnConnection() override;

  void stop() override;
  double rate_bps() const { return rc_bps_; }
  double alpha() const { return alpha_; }

 protected:
  void on_packet(net::Packet&& p) override;
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;
  void on_loss_event(bool timeout) override;
  double pace_rate_bps() const override { return rc_bps_; }

 private:
  void on_cnp();
  void rate_timer_tick();
  void sync_window();

  DcqcnConfig cfg_;
  double line_rate_bps_;
  double rc_bps_;       // current rate
  double rt_bps_;       // target rate (pre-cut)
  double alpha_ = 1.0;
  uint32_t timer_stage_ = 0;  // rounds since last cut
  sim::Time last_cnp_sent_;   // receiver-side CNP throttle
  bool cnp_ever_ = false;
  sim::TimerId rate_timer_id_;
};

class DcqcnTransport : public Transport {
 public:
  explicit DcqcnTransport(sim::Simulator& sim, DcqcnConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<DcqcnConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "DCQCN"; }

 private:
  sim::Simulator& sim_;
  DcqcnConfig cfg_;
};

}  // namespace xpass::transport
