#include "transport/bfc.hpp"

namespace xpass::transport {

void BfcConnection::on_ack_hook(const net::Packet& ack,
                                uint64_t newly_acked) {
  (void)ack;
  (void)newly_acked;
}

void BfcConnection::on_loss_event(bool timeout) {
  // Keep the window fixed. The fabric's per-flow backpressure absorbs
  // congestion losslessly; losses only happen under injected faults, where
  // the base engine's go-back-N/RTO machinery (which still runs) recovers
  // the bytes. Collapsing the window too would just slow the recovery.
  (void)timeout;
}

}  // namespace xpass::transport
