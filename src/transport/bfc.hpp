// BFC (Backpressure Flow Control, Goyal et al., NSDI 2022 — arXiv:1909.09923).
//
// The congestion control lives in the fabric, not the endpoint: every link
// runs LinkConfig::hop_backpressure (per-flow queues served round-robin,
// with flow-granular pause/resume one hop upstream), so a congested egress
// parks exactly the offending flows' packets one hop back instead of
// dropping them or pausing whole links. The endpoint is deliberately dumb —
// a fixed window of a few BDPs that neither slow-starts nor reacts to
// congestion signals; it exists only to bound per-flow in-network state and
// to recover the rare losses faults inject. Contrast both with PFC (pause
// the whole ingress: HOL blocking, see pfc_test) and with the proactive
// schemes (ExpressPass/SIRD) that keep queues empty by admission instead of
// by pushback.
#pragma once

#include "transport/credit_sched.hpp"
#include "transport/window.hpp"

namespace xpass::transport {

struct BfcConfig {
  WindowConfig window;
  // Fixed sending window in BDPs (runner::make_transport converts to
  // packets from the fabric's base RTT and link rate). The paper sizes
  // per-hop flow state for roughly one BDP per active flow; a small
  // multiple keeps the pipe full across pause/resume cycles.
  double bdp_multiplier = 2.0;
};

class BfcConnection : public WindowConnection {
 public:
  BfcConnection(sim::Simulator& sim, const FlowSpec& spec,
                const BfcConfig& cfg)
      : WindowConnection(sim, spec, cfg.window) {}

 protected:
  // No endpoint congestion control: the window is a constant.
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;
  void on_loss_event(bool timeout) override;
};

class BfcTransport : public Transport, public GrantAccounting {
 public:
  explicit BfcTransport(sim::Simulator& sim, BfcConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<BfcConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "BFC"; }
  const BfcConfig& config() const { return cfg_; }
  // BFC issues no credits/grants; its waste scalar is identically zero —
  // reported anyway so the three-way shootout prints one column per
  // protocol.
  GrantWaste grant_waste() const override { return GrantWaste{}; }

 private:
  sim::Simulator& sim_;
  BfcConfig cfg_;
};

}  // namespace xpass::transport
