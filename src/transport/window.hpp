// Window-based reliable transport engine.
//
// Implements the machinery every reactive baseline shares — MSS
// segmentation, cumulative ACKs (one per data packet, with precise per-packet
// ECN echo as DCTCP requires), go-back-N retransmission via 3-dupACK fast
// retransmit and an RTO timer, slow start, EWMA RTT estimation, and optional
// pacing (HULL). Protocol-specific congestion avoidance lives in subclasses
// via the on_ack_hook / on_loss_event hooks.
#pragma once

#include <map>

#include "net/packet.hpp"
#include "transport/connection.hpp"

namespace xpass::transport {

struct WindowConfig {
  double init_cwnd_pkts = 2.0;
  double min_cwnd_pkts = 2.0;   // DCTCP cannot go below 2 (paper §6.1)
  double max_cwnd_pkts = 1e9;
  sim::Time base_rtt = sim::Time::us(100);  // initial RTO / pacing seed
  sim::Time rto_min = sim::Time::ms(10);    // ns-2-era datacenter default
  bool pacing = false;
  // 3-way-handshake cost before data, like the paper's TCP stacks (and
  // like ExpressPass's credit request): SYN out, SYN-ACK back, then send.
  bool handshake = true;
  uint32_t mss = net::kMssBytes;
};

class WindowConnection : public Connection {
 public:
  WindowConnection(sim::Simulator& sim, const FlowSpec& spec,
                   const WindowConfig& cfg);
  ~WindowConnection() override;

  void start() override;
  void stop() override;

  double cwnd() const { return cwnd_; }
  sim::Time srtt() const { return srtt_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t timeouts() const { return timeouts_; }

 protected:
  // Called once per ACK that advances snd_una by `newly_acked` packets.
  virtual void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) = 0;
  // Loss reaction; default: halve on fast-rtx, collapse to min on timeout.
  virtual void on_loss_event(bool timeout);
  // Packet demux; default handles kData/kAck. Subclasses may intercept
  // other types (e.g. RCP's SYN rate probe) and forward the rest here.
  virtual void on_packet(net::Packet&& p);
  // First transmission after handlers are registered; default starts the
  // window pump. RCP overrides to run a rate-probing handshake first.
  virtual void begin_sending();
  // Pacing rate when cfg.pacing is set; default cwnd/srtt.
  virtual double pace_rate_bps() const;
  void pump();  // send while window (and pacer) allow
  void arm_rto();

  void set_cwnd(double w);
  double min_cwnd() const { return cfg_.min_cwnd_pkts; }
  const WindowConfig& config() const { return cfg_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  void exit_slow_start() { ssthresh_ = cwnd_; }
  uint64_t snd_una() const { return snd_una_; }
  uint64_t snd_nxt() const { return snd_nxt_; }
  uint64_t total_pkts() const { return total_pkts_; }

 private:
  void handle_data(const net::Packet& p);
  void handle_ack(const net::Packet& p);
  void transmit(uint64_t pkt_idx);
  void on_rto();

  WindowConfig cfg_;

  // Sender state (packet-index space).
  uint64_t total_pkts_ = 0;
  uint64_t snd_nxt_ = 0;
  uint64_t snd_una_ = 0;
  double cwnd_;
  double ssthresh_ = 1e9;
  uint32_t dup_acks_ = 0;
  bool started_ = false;
  bool sender_done_ = false;
  bool handshake_done_ = false;

  // Pacing.
  sim::Time next_release_;
  bool send_scheduled_ = false;

  // RTT / RTO.
  sim::Time srtt_;
  sim::Time rttvar_;
  bool have_rtt_ = false;
  sim::TimerId rto_timer_;
  uint32_t rto_backoff_ = 0;

  // Receiver state: cumulative point plus an out-of-order reassembly
  // buffer (seq -> payload bytes), so go-back-N retransmissions only
  // resend actual holes.
  uint64_t rcv_next_ = 0;
  std::map<uint64_t, uint32_t> rcv_ooo_;

  // Counters.
  uint64_t retransmits_ = 0;
  uint64_t timeouts_ = 0;
};

}  // namespace xpass::transport
