// Max-min fair rate allocation by progressive water-filling.
//
// Used by the "hypothetically ideal" rate control of §2 (Fig 1a) and as the
// reference line in Fig 11.
#pragma once

#include <cstdint>
#include <vector>

namespace xpass::transport {

struct MaxMinProblem {
  std::vector<double> link_capacity;             // capacity per link index
  std::vector<std::vector<uint32_t>> flow_links; // links each flow crosses
};

// Returns one rate per flow. Flows crossing no links get +inf capacity
// treatment (rate 0 is never returned for a flow with links unless a link
// has zero capacity).
std::vector<double> maxmin_rates(const MaxMinProblem& p);

}  // namespace xpass::transport
