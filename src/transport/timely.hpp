// TIMELY (Mittal et al., SIGCOMM 2015) — RTT-gradient rate control for
// RDMA datacenters; like DCQCN it leans on PFC for losslessness. Extension
// comparator (cited as [41] in the paper).
//
// Per RTT sample: normalized gradient = (rtt - prev_rtt) / min_rtt, EWMA
// smoothed. If rtt < t_low: additive increase. If rtt > t_high:
// multiplicative decrease proportional to (1 - t_high/rtt). Otherwise
// gradient-based: negative gradient -> additive increase (xN when in a
// streak), positive -> multiplicative decrease by beta * gradient.
#pragma once

#include "transport/window.hpp"

namespace xpass::transport {

struct TimelyConfig {
  WindowConfig window;
  sim::Time t_low = sim::Time::us(50);
  sim::Time t_high = sim::Time::us(500);
  double add_step_bps = 10e6;
  double beta = 0.8;
  double ewma = 0.3;
  uint32_t hai_streak = 5;  // negative-gradient streak for hyper increase
  double min_rate_bps = 10e6;

  TimelyConfig() { window.pacing = true; }
};

class TimelyConnection : public WindowConnection {
 public:
  TimelyConnection(sim::Simulator& sim, const FlowSpec& spec,
                   const TimelyConfig& cfg);

  double rate_bps() const { return rate_bps_; }

 protected:
  void on_ack_hook(const net::Packet& ack, uint64_t newly_acked) override;
  double pace_rate_bps() const override { return rate_bps_; }

 private:
  TimelyConfig cfg_;
  double line_rate_bps_;
  double rate_bps_;
  double gradient_ = 0.0;
  sim::Time prev_rtt_;
  sim::Time min_rtt_;
  uint32_t neg_streak_ = 0;
};

class TimelyTransport : public Transport {
 public:
  explicit TimelyTransport(sim::Simulator& sim, TimelyConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}
  std::unique_ptr<Connection> create(const FlowSpec& spec) override {
    return std::make_unique<TimelyConnection>(sim_, spec, cfg_);
  }
  std::string_view name() const override { return "TIMELY"; }

 private:
  sim::Simulator& sim_;
  TimelyConfig cfg_;
};

}  // namespace xpass::transport
