// SIRD (Sender-Informed Receiver-Driven transport, arXiv:2312.15403).
//
// Like ExpressPass, the receiver paces permission-to-send packets; unlike
// it, the allocation is *informed*: senders advertise their demand (the
// flow's remaining bytes, carried in the request), and each receiver runs
// one grant allocator per host that round-robins its NIC's bandwidth over
// exactly the flows with unmet demand. Two consequences distinguish the
// protocols in the shootout:
//  * Incast: N flows into one host share one allocator pacing at the NIC
//    rate, so aggregate grants never oversubscribe the last hop — there is
//    no per-flow feedback loop that must converge (ExpressPass Algorithm 1)
//    and no credit-drop signal to wait for.
//  * Waste: grants stop the moment advertised demand is covered, so the
//    overcommit waste of blind crediting (Fig 8b / Fig 20) shrinks to the
//    grants already in flight when the tail arrives, plus a bounded
//    solicitation window per flow.
//
// Reuses the extracted framework: CreditScheduler paces the allocator's
// grant emissions (grants are kCredit-class on the wire, so the per-port
// credit shapers and WFQ classes apply unchanged), and GrantLedger tracks
// consume/waste on the sender side, surfaced through GrantAccounting.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/ring_buffer.hpp"
#include "transport/connection.hpp"
#include "transport/credit_sched.hpp"

namespace xpass::transport {

struct SirdConfig {
  // Grant pacing jitter, same role as ExpressPass's credit jitter (Fig 6a).
  double jitter = 0.1;
  // Receiver-side solicitation window: grant-bytes in flight (granted but
  // not yet answered by data) per flow. Bounds queue buildup at the
  // granting NIC exactly like SIRD's solicitation cap; the runner sizes it
  // to ~1 BDP of the fabric.
  uint64_t solicitation_bytes = 16 * net::kMssBytes;
  // Receiver liveness/tail-recovery timer: each period without data
  // progress while grants are outstanding forgives those grants (so the
  // allocator re-solicits the missing range) and counts toward the dead
  // verdict. The runner sets this to the fabric base RTT.
  sim::Time probe_period = sim::Time::us(100);
  uint32_t receiver_dead_periods = 600;
  // Sender request watchdog, identical in role (and defaults) to
  // ExpressPass's: re-advertise demand with backoff while no grants arrive,
  // abort after max_dead_retries consecutive silent periods.
  sim::Time request_timeout = sim::Time::us(400);
  double request_backoff = 2.0;
  sim::Time request_timeout_cap = sim::Time::ms(25);
  double request_jitter = 0.2;
  uint32_t max_dead_retries = 12;
  sim::Time stop_retx_interval = sim::Time::us(400);
};

// Transport-wide grant accounting (all receivers + senders of one run).
struct SirdStats {
  uint64_t grants_issued = 0;
  uint64_t grants_consumed = 0;
  uint64_t grants_wasted = 0;
};

class SirdConnection;

// One per destination host: owns the grant pump pacing that host's NIC
// rate and the round-robin rotation over flows with unmet demand. The
// rotation is kept in *activation order* (first demand first), never keyed
// by flow id — scheduling decisions must survive flow relabeling.
class SirdAllocator {
 public:
  SirdAllocator(net::Host& host, const SirdConfig& cfg, SirdStats& stats);

  // Ensure `c` is in the rotation and the pump is running. Idempotent;
  // called on demand arrival and whenever data progress reopens a flow's
  // solicitation window.
  void activate(SirdConnection* c);
  // Physically drop `c` from the rotation (connection teardown — the
  // pointer is about to dangle).
  void remove(SirdConnection* c);

  size_t rotation_size() const { return rotation_.size(); }
  bool pumping() const { return sched_.running(); }

 private:
  bool emit_grant();

  net::Host& host_;
  const SirdConfig& cfg_;
  SirdStats& stats_;
  CreditScheduler sched_;
  std::deque<SirdConnection*> rotation_;
};

class SirdConnection : public Connection {
 public:
  SirdConnection(sim::Simulator& sim, const FlowSpec& spec,
                 const SirdConfig& cfg, SirdStats& stats,
                 SirdAllocator& alloc);
  ~SirdConnection() override;

  void start() override;
  void stop() override;

  // Receiver-side: does this flow want a grant right now? (Unmet advertised
  // demand and an open solicitation window.)
  bool grantable() const;
  // Emit one MSS-worth grant (allocator only).
  void send_grant();

  const GrantLedger& ledger() const { return ledger_; }
  uint64_t grants_sent() const { return grant_seq_; }

 private:
  friend class SirdAllocator;

  void sender_on_packet(net::Packet&& p);
  void receiver_on_packet(net::Packet&& p);
  void send_request();
  void send_grant_stop();
  void arm_watchdog();
  void on_watchdog();
  void arm_probe();
  void on_probe();
  void abort_flow(const std::string& why);
  uint64_t outstanding_grant_bytes() const {
    return granted_bytes_ - std::min(granted_bytes_, received_bytes_);
  }

  const SirdConfig& cfg_;
  SirdStats& stats_;
  SirdAllocator* alloc_;
  bool started_ = false;

  // Sender half.
  uint64_t snd_nxt_ = 0;
  GrantLedger ledger_;
  sim::Time last_data_sent_;
  sim::Time host_release_;
  net::RingBuffer<sim::TimerId> release_timers_;
  sim::TimerId request_timer_;
  sim::Time cur_request_timeout_;
  uint32_t dead_retries_ = 0;
  uint64_t grants_at_last_watchdog_ = 0;
  bool stop_sent_ = false;
  sim::Time last_stop_time_;

  // Receiver half.
  uint64_t advertised_end_ = 0;   // sender-informed demand (bytes)
  uint64_t granted_bytes_ = 0;    // grant budget issued so far
  uint64_t received_bytes_ = 0;   // payload bytes arrived (any order)
  uint64_t rcv_next_ = 0;         // in-order delivery edge
  std::map<uint64_t, uint32_t> rcv_ooo_;
  uint64_t fin_end_ = 0;
  uint64_t grant_seq_ = 0;
  bool in_rotation_ = false;
  bool done_ = false;
  bool probe_armed_ = false;
  sim::TimerId probe_timer_;
  uint64_t progress_at_probe_ = 0;
  uint32_t dead_periods_ = 0;
};

class SirdTransport : public Transport, public GrantAccounting {
 public:
  explicit SirdTransport(sim::Simulator& sim, SirdConfig cfg = {})
      : sim_(sim), cfg_(cfg) {}

  std::unique_ptr<Connection> create(const FlowSpec& spec) override;
  std::string_view name() const override { return "SIRD"; }
  const SirdConfig& config() const { return cfg_; }

  GrantWaste grant_waste() const override {
    return GrantWaste{stats_.grants_issued, stats_.grants_consumed,
                      stats_.grants_wasted};
  }

 private:
  SirdAllocator& allocator_for(net::Host& dst);

  sim::Simulator& sim_;
  SirdConfig cfg_;
  SirdStats stats_;
  // One allocator per destination host, created on first flow toward it.
  // NOTE: connections hold a pointer to their allocator and deregister in
  // stop(); the transport must outlive its connections (FlowDriver holds
  // the transport by reference, so the owner's declaration order already
  // guarantees this).
  std::unordered_map<net::NodeId, std::unique_ptr<SirdAllocator>> allocators_;
};

}  // namespace xpass::transport
