// Connection: one flow's sender+receiver endpoint pair, created by a
// Transport factory. Subclasses implement the protocol; the base tracks
// delivery, completion, and goodput.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "sim/simulator.hpp"
#include "stats/rate_tracker.hpp"
#include "transport/flow.hpp"

namespace xpass::transport {

class Connection {
 public:
  Connection(sim::Simulator& sim, const FlowSpec& spec)
      : sim_(sim), spec_(spec) {}
  virtual ~Connection() = default;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Begins the flow (handshake / first transmission). Called at
  // spec.start_time by the flow driver.
  virtual void start() = 0;
  // Tears down timers/handlers; called on simulation teardown.
  virtual void stop() {}

  const FlowSpec& spec() const { return spec_; }
  uint64_t delivered_bytes() const { return delivered_; }
  bool completed() const { return completed_; }
  sim::Time completion_time() const { return completion_time_; }
  sim::Time fct() const { return completion_time_ - spec_.start_time; }

  // True once the protocol gave up on the flow (endpoint unreachable past
  // its retry budget). A failed flow is settled: it will make no further
  // progress, but it never "completes".
  bool failed() const { return failed_; }
  const std::string& fail_reason() const { return fail_reason_; }

  void set_on_complete(std::function<void(Connection&)> cb) {
    on_complete_ = std::move(cb);
  }
  void set_on_fail(std::function<void(Connection&)> cb) {
    on_fail_ = std::move(cb);
  }
  void set_rate_tracker(stats::RateTracker* rt) { tracker_ = rt; }

 protected:
  // Receiver-side: `bytes` of new in-order payload arrived.
  void deliver(uint64_t bytes) {
    delivered_ += bytes;
    if (tracker_ != nullptr) tracker_->add(spec_.id, bytes);
    if (!completed_ && spec_.size_bytes != kLongRunning &&
        delivered_ >= spec_.size_bytes) {
      completed_ = true;
      completion_time_ = sim_.now();
      if (on_complete_) on_complete_(*this);
    }
  }

  // Protocol-side: give up on the flow (graceful abort after exhausting
  // retries against a dead path). Idempotent; completed flows cannot fail.
  void fail_flow(std::string reason) {
    if (completed_ || failed_) return;
    failed_ = true;
    fail_reason_ = std::move(reason);
    if (on_fail_) on_fail_(*this);
  }

  sim::Simulator& sim_;
  FlowSpec spec_;

 private:
  uint64_t delivered_ = 0;
  bool completed_ = false;
  bool failed_ = false;
  std::string fail_reason_;
  sim::Time completion_time_;
  std::function<void(Connection&)> on_complete_;
  std::function<void(Connection&)> on_fail_;
  stats::RateTracker* tracker_ = nullptr;
};

// Protocol factory.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::unique_ptr<Connection> create(const FlowSpec& spec) = 0;
  virtual std::string_view name() const = 0;
};

}  // namespace xpass::transport
