// Connection: one flow's sender+receiver endpoint pair, created by a
// Transport factory. Subclasses implement the protocol; the base tracks
// delivery, completion, and goodput.
//
// Sharded runs split a connection across two threads: the sender half runs
// on the source host's shard, the receiver half on the destination's. The
// base is built for that split:
//   - sim_ is the *sender-side* simulator (the source host's, which is the
//     shard simulator after Topology partitioning rebinds nodes), rsim_ the
//     receiver side's. Serial runs see one object behind both references.
//   - settlement (completed/failed) is a single atomic CAS, because the
//     halves race to settle: the receiver completes in deliver() on the
//     destination thread while the sender may concurrently give up in
//     fail_flow() on the source thread. Exactly one wins; a settled flow is
//     final either way.
// Everything else (delivered_, completion_time_, fail_reason_) is written
// only by the settling thread before its settlement callback, and read by
// other threads only after the run's final barrier (thread-join ordering).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "stats/rate_tracker.hpp"
#include "transport/flow.hpp"

namespace xpass::transport {

class Connection {
 public:
  // `sim` is the scenario simulator; endpoints that have been rebound onto
  // shard simulators override it per half via their owning host.
  Connection(sim::Simulator& sim, const FlowSpec& spec)
      : sim_(spec.src != nullptr ? spec.src->simulator() : sim),
        rsim_(spec.dst != nullptr ? spec.dst->simulator() : sim),
        spec_(spec) {}
  virtual ~Connection() = default;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // Begins the flow (handshake / first transmission). Called at
  // spec.start_time by the flow driver.
  virtual void start() = 0;
  // Tears down timers/handlers; called on simulation teardown.
  virtual void stop() {}

  const FlowSpec& spec() const { return spec_; }
  uint64_t delivered_bytes() const { return delivered_; }
  bool completed() const {
    return settled_.load(std::memory_order_acquire) == kCompleted;
  }
  sim::Time completion_time() const { return completion_time_; }
  sim::Time fct() const { return completion_time_ - spec_.start_time; }

  // True once the protocol gave up on the flow (endpoint unreachable past
  // its retry budget). A failed flow is settled: it will make no further
  // progress, but it never "completes".
  bool failed() const {
    return settled_.load(std::memory_order_acquire) == kFailed;
  }
  const std::string& fail_reason() const { return fail_reason_; }

  void set_on_complete(std::function<void(Connection&)> cb) {
    on_complete_ = std::move(cb);
  }
  void set_on_fail(std::function<void(Connection&)> cb) {
    on_fail_ = std::move(cb);
  }
  void set_rate_tracker(stats::RateTracker* rt) { tracker_ = rt; }

 protected:
  // Receiver-side: `bytes` of new in-order payload arrived. Runs on the
  // receiver half's thread; completion is stamped with the receiver clock.
  void deliver(uint64_t bytes) {
    delivered_ += bytes;
    if (tracker_ != nullptr) tracker_->add(spec_.id, bytes);
    if (spec_.size_bytes != kLongRunning && delivered_ >= spec_.size_bytes) {
      uint8_t open = kOpen;
      if (settled_.compare_exchange_strong(open, kCompleted,
                                           std::memory_order_acq_rel)) {
        completion_time_ = rsim_.now();
        if (on_complete_) on_complete_(*this);
      }
    }
  }

  // Protocol-side: give up on the flow (graceful abort after exhausting
  // retries against a dead path). Idempotent; completed flows cannot fail.
  // May be called from either half's thread.
  void fail_flow(std::string reason) {
    uint8_t open = kOpen;
    if (!settled_.compare_exchange_strong(open, kFailed,
                                          std::memory_order_acq_rel)) {
      return;
    }
    fail_reason_ = std::move(reason);
    if (on_fail_) on_fail_(*this);
  }

  // Sender-side simulator (named sim_ so the half that owns most protocol
  // timers reads naturally) and receiver-side simulator. The same object in
  // serial runs.
  sim::Simulator& sim_;
  sim::Simulator& rsim_;
  FlowSpec spec_;

 private:
  enum : uint8_t { kOpen = 0, kCompleted = 1, kFailed = 2 };

  uint64_t delivered_ = 0;
  std::atomic<uint8_t> settled_{kOpen};
  std::string fail_reason_;
  sim::Time completion_time_;
  std::function<void(Connection&)> on_complete_;
  std::function<void(Connection&)> on_fail_;
  stats::RateTracker* tracker_ = nullptr;
};

// Protocol factory.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::unique_ptr<Connection> create(const FlowSpec& spec) = 0;
  virtual std::string_view name() const = 0;
};

}  // namespace xpass::transport
