// Protocol registry: per-protocol link/queue configuration and transport
// factories with the paper's recommended parameters, so examples and benches
// can sweep protocols uniformly.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "core/expresspass.hpp"
#include "net/topology.hpp"
#include "transport/connection.hpp"

namespace xpass::runner {

enum class Protocol {
  kExpressPass,
  kExpressPassNaive,
  kDctcp,
  kRcp,
  kHull,
  kDx,
  kCubic,
  kBbr,  // model-based (BtlBw x RTprop) baseline for coexistence studies
  // Extension comparators: the PFC-based RDMA status quo (§1's motivation).
  kDcqcn,   // ECN + CNP rate control over PFC-protected links
  kTimely,  // RTT-gradient rate control over PFC-protected links
  // Proactive/backpressure comparators for the three-way shootout:
  kSird,    // sender-informed receiver-driven grant allocation
  kBfc,     // per-hop per-flow backpressure, fixed endpoint window
  // Fig 1's oracle: exact max-min fair shares with perfect pacing.
  kIdeal,
};

std::string_view protocol_name(Protocol p);
std::optional<Protocol> parse_protocol(std::string_view name);

// The paper states every buffer/threshold constant at its 10Gbps testbed
// speed; faster links scale them linearly (same number of MTU-times of
// buffering). Every such constant must go through this one helper — the
// queue capacity and the DCTCP K used to each scale independently and could
// drift apart.
double scale_for_rate(double value_at_10g, double rate_bps);
// Switch/NIC data-queue capacity at `rate_bps`, scaled from the paper's
// 384.5KB (250 MTUs) at 10Gbps.
uint64_t default_queue_capacity(double rate_bps);
// DCTCP marking threshold K, scaled from K=65 packets at 10Gbps.
uint64_t dctcp_k_bytes(double rate_bps);

// Link config appropriate for `p` on a link of `rate_bps`: ECN threshold for
// DCTCP, phantom queue for HULL, plain drop-tail otherwise.
net::LinkConfig protocol_link_config(Protocol p, double rate_bps,
                                     sim::Time prop);

// Transport factory. For RCP this also enables per-port RCP state on the
// (already built) topology. `base_rtt` seeds RTOs, RCP's control interval,
// and ExpressPass's feedback update period. `xp` overrides the ExpressPass
// config (naive mode is forced for kExpressPassNaive).
std::unique_ptr<transport::Transport> make_transport(
    Protocol p, sim::Simulator& sim, net::Topology& topo, sim::Time base_rtt,
    const core::ExpressPassConfig* xp = nullptr);

}  // namespace xpass::runner
