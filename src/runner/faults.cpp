#include "runner/faults.hpp"

#include <memory>
#include <string>

#include "core/expresspass.hpp"

namespace xpass::runner {

void apply_fault_scenario(const FaultScenario& sc, net::FaultInjector& inj,
                          net::Node& a, net::Node& b) {
  if (sc.has_flap()) {
    inj.schedule_flap(a, b, sc.flap_down, sc.flap_up, sc.fail_mode);
  }
  if (sc.has_kill()) inj.schedule_death(a, b, sc.kill_at, sc.fail_mode);
  if (sc.errors.enabled()) {
    inj.schedule_error_window(a, b, sc.errors, sim::Time::zero(),
                              sim::Time::max());
  }
}

namespace {

// Everywhere a credit can end up other than the sender's handler. Each
// disposition is counted exactly once (flushed queue frames are already in
// the queues' drop stats), so the sum can exceed sent only through a bug.
uint64_t credits_disposed(const net::Topology& topo) {
  uint64_t n = topo.credit_drops() + topo.stray_credits();
  for (const net::Host* h : topo.hosts()) n += h->corrupt_credit_drops();
  for (const net::Switch* sw : topo.switches()) n += sw->unroutable_credits();
  for (const net::Topology::LinkRec& l : topo.links()) {
    for (const net::Port* p : {l.pa, l.pb}) {
      n += p->fault_stats().injected_credit_drops;
      n += p->fault_stats().cut_credits;
    }
  }
  return n;
}

}  // namespace

void register_network_invariants(sim::InvariantChecker& chk,
                                 net::Topology& topo,
                                 const FlowDriver& driver,
                                 const sim::FaultPlan* plan,
                                 const NetInvariantOptions& opts) {
  chk.add_check("credit-conservation", [&topo, &driver] {
    uint64_t sent = 0;
    uint64_t received = 0;
    bool any_xp = false;
    for (const auto& c : driver.connections()) {
      const auto* xp =
          dynamic_cast<const core::ExpressPassConnection*>(c.get());
      if (xp == nullptr) continue;
      any_xp = true;
      sent += xp->credits_sent();
      received += xp->credits_received();
    }
    if (!any_xp) return std::string();
    const uint64_t disposed = received + credits_disposed(topo);
    if (disposed > sent) {
      return "credits disposed (" + std::to_string(disposed) +
             ") exceed credits sent (" + std::to_string(sent) +
             "): some credit was counted twice or conjured";
    }
    return std::string();
  });

  if (opts.data_queue_bound_bytes > 0) {
    const uint64_t bound = opts.data_queue_bound_bytes;
    chk.add_check("data-queue-bound", [&topo, plan, bound] {
      if (plan != nullptr && plan->any_fault_active()) return std::string();
      for (const net::Switch* sw : topo.switches()) {
        for (size_t i = 0; i < sw->num_ports(); ++i) {
          const uint64_t occ = sw->port(i).data_queue().bytes();
          if (occ > bound) {
            return "switch '" + sw->name() + "' port " + std::to_string(i) +
                   " data queue at " + std::to_string(occ) +
                   "B exceeds the zero-loss bound " + std::to_string(bound) +
                   "B with no fault active";
          }
        }
      }
      return std::string();
    });
  }

  if (opts.expect_zero_data_loss) {
    // Drops during a fault window are legitimate (flushed queues, brute
    // loss); the baseline moves past them whenever fault state changed
    // since the last sweep, and only drops accrued across two consecutive
    // healthy sweeps violate.
    struct LossState {
      uint64_t baseline = 0;
      uint64_t last_fired = 0;
      bool primed = false;
    };
    auto st = std::make_shared<LossState>();
    chk.add_check("no-data-drops", [&topo, plan, st] {
      const uint64_t drops = topo.data_drops();
      const bool active = plan != nullptr && plan->any_fault_active();
      const uint64_t fired = plan != nullptr ? plan->fired() : 0;
      const bool churned = active || fired != st->last_fired;
      st->last_fired = fired;
      if (churned || !st->primed) {
        st->baseline = drops;
        st->primed = true;
        return std::string();
      }
      if (drops > st->baseline) {
        const uint64_t fresh = drops - st->baseline;
        st->baseline = drops;
        return std::to_string(fresh) +
               " data packet(s) dropped with no fault active "
               "(ExpressPass guarantees zero data loss)";
      }
      return std::string();
    });
  }

  chk.add_check("delivery-bounded", [&driver] {
    for (const auto& c : driver.connections()) {
      const uint64_t size = c->spec().size_bytes;
      if (size == transport::kLongRunning) continue;
      if (c->delivered_bytes() > size) {
        return "flow " + std::to_string(c->spec().id) + " delivered " +
               std::to_string(c->delivered_bytes()) + "B of a " +
               std::to_string(size) + "B flow";
      }
    }
    return std::string();
  });
}

}  // namespace xpass::runner
