// Args: the one flag parser every bench / example / CLI shares.
//
// Replaces the per-binary hand-rolled loops (full_mode, jobs_arg, the
// --runs/--seed scans) that each accepted a slightly different syntax and
// silently swallowed malformed values (`--jobs garbage` used to fall back
// to the default). Args accepts both `--name=value` and `--name value` for
// every flag, validates numeric values strictly, and collects errors so
// callers can print usage and exit (die_on_error) or assert in tests.
//
// Usage:
//   runner::Args args(argc, argv);
//   const bool full = args.flag("full");           // --full
//   const size_t jobs = args.jobs();               // --jobs N / --jobs=N
//   const uint64_t seed = args.u64("seed", 1);
//   args.die_on_error(usage_text);                 // malformed or unknown
//
// Every query marks its flag as known; die_on_error / error() also reports
// flags that were present but never queried ("unknown flag"). Positional
// (non --prefixed) arguments are collected in positional().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xpass::runner {

class Args {
 public:
  Args(int argc, char** argv);

  // Boolean switch: present (with no value) -> true.
  bool flag(std::string_view name);

  // Valued flags: `--name=value` or `--name value`. A present flag with a
  // malformed value records an error and returns the fallback.
  uint64_t u64(std::string_view name, uint64_t fallback);
  double f64(std::string_view name, double fallback);
  std::optional<std::string> str(std::string_view name);

  // `--jobs N` / `--jobs=N`: strictly positive worker count; 0 = "use the
  // SweepRunner default" and is what absent returns.
  size_t jobs();
  // `--runs M`: >= 1 seed replications.
  size_t runs();
  // `--shards N`: sharded parallel event core. 0 (the absent default) and 1
  // both mean the serial core; N >= 2 partitions the topology across N
  // worker threads (see sim::ParallelSimulator).
  size_t shards();

  // Campaign flags (see exec::CampaignOptions).
  // `--timeout-ms T`: per-run wall-clock budget, >= 0 ms; absent returns 0
  // (no budget). Negative / non-numeric values are errors.
  double timeout_ms();
  // `--cache-dir DIR`: campaign result-store directory; nullopt if absent.
  std::optional<std::string> cache_dir();
  // `--resume`: serve cached results instead of re-running.
  bool resume();
  // `--retries N`: extra attempts for tasks that throw; absent returns 0.
  size_t retries();

  // True once any error (malformed value, or — after checked() — an
  // unqueried flag) has been recorded.
  bool ok() const { return errors_.empty(); }
  // All recorded errors, including unconsumed flags, one message per line.
  std::string error();
  // Prints errors + usage to stderr and exits(2) if anything is wrong.
  // `usage` may be null.
  void die_on_error(const char* usage);

  // Non-flag arguments, plus any `--switch value` trailing token that a
  // boolean flag() query released. Call after all flag queries.
  const std::vector<std::string>& positional();

 private:
  struct Entry {
    std::string name;           // without leading --
    std::optional<std::string> value;  // from =value or the next argv
    bool value_is_next = false;  // value came from the following argv slot
    bool consumed = false;
    bool value_consumed = false;
  };

  Entry* find(std::string_view name);
  void fail(std::string_view name, std::string_view why);
  void finalize();

  std::vector<Entry> entries_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
  bool finalized_ = false;
};

}  // namespace xpass::runner
