#include "runner/flow_driver.hpp"

#include <algorithm>

namespace xpass::runner {

void FlowDriver::set_parallel(sim::ParallelSimulator& psim,
                              const std::vector<uint32_t>& shard_of) {
  shard_of_ = &shard_of;
  sinks_.clear();
  for (size_t i = 0; i < psim.shard_count(); ++i) {
    sinks_.push_back(std::make_unique<ShardSink>());
  }
}

transport::Connection& FlowDriver::add(const transport::FlowSpec& spec) {
  ++scheduled_;
  auto conn = transport_.create(spec);
  if (sinks_.empty()) {
    conn->set_rate_tracker(&rates_);
    conn->set_on_complete([this](transport::Connection& c) {
      fcts_.record(c.spec().size_bytes, c.fct());
    });
  } else {
    // The receiver half — the only caller of deliver()/on_complete — runs
    // on the destination host's shard thread; give it that shard's sink.
    ShardSink& sink = *sinks_[(*shard_of_)[spec.dst->id()]];
    conn->set_rate_tracker(&sink.rates);
    conn->set_on_complete([&sink](transport::Connection& c) {
      sink.completions.push_back({c.completion_time(), c.spec().id,
                                  c.spec().size_bytes, c.fct()});
    });
  }
  conn->set_on_fail([this](transport::Connection&) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  });
  transport::Connection* raw = conn.get();
  conns_.push_back(std::move(conn));
  sim_.at(spec.start_time, [raw] { raw->start(); });
  return *raw;
}

transport::Connection& FlowDriver::add_grouped(const transport::FlowSpec& spec,
                                               transport::Transport& t,
                                               size_t group) {
  while (groups_.size() <= group) {
    groups_.push_back(std::make_unique<GroupStats>());
  }
  GroupStats& gs = *groups_[group];
  ++gs.scheduled;
  ++scheduled_;
  auto conn = t.create(spec);
  conn->set_rate_tracker(&rates_);
  conn->set_on_complete([this, &gs](transport::Connection& c) {
    fcts_.record(c.spec().size_bytes, c.fct());
    gs.fcts.record(c.spec().size_bytes, c.fct());
  });
  conn->set_on_fail([this, &gs](transport::Connection&) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    gs.failed.fetch_add(1, std::memory_order_relaxed);
  });
  flow_group_.emplace_back(spec.id, group);
  std::sort(flow_group_.begin(), flow_group_.end());
  transport::Connection* raw = conn.get();
  conns_.push_back(std::move(conn));
  sim_.at(spec.start_time, [raw] { raw->start(); });
  return *raw;
}

bool FlowDriver::run_to_completion(sim::Time deadline) {
  const sim::Time chunk = sim::Time::ms(1);
  while (sim_.now() < deadline) {
    if (completed() + failed() >= scheduled_) break;
    sim::Time next = sim_.now() + chunk;
    if (next > deadline) next = deadline;
    sim_.run_until(next);
    // A budget abort turns run_until into a no-op: now() stops advancing,
    // so without this break the settle loop would spin forever.
    if (sim_.aborted()) break;
  }
  return completed() >= scheduled_;
}

void FlowDriver::sync_rates() {
  for (auto& s : sinks_) s->rates.drain_into(rates_);
}

void FlowDriver::finish_parallel() {
  if (sinks_.empty()) return;
  sync_rates();
  std::vector<Completion> all;
  for (auto& s : sinks_) {
    all.insert(all.end(), s->completions.begin(), s->completions.end());
    s->completions.clear();
  }
  std::sort(all.begin(), all.end(), [](const Completion& a,
                                       const Completion& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.id < b.id;
  });
  for (const Completion& c : all) fcts_.record(c.bytes, c.fct);
}

void FlowDriver::stop_all() {
  for (auto& c : conns_) c->stop();
}

}  // namespace xpass::runner
