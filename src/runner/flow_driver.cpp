#include "runner/flow_driver.hpp"

namespace xpass::runner {

transport::Connection& FlowDriver::add(const transport::FlowSpec& spec) {
  ++scheduled_;
  auto conn = transport_.create(spec);
  conn->set_rate_tracker(&rates_);
  conn->set_on_complete([this](transport::Connection& c) {
    fcts_.record(c.spec().size_bytes, c.fct());
  });
  conn->set_on_fail([this](transport::Connection&) { ++failed_; });
  transport::Connection* raw = conn.get();
  conns_.push_back(std::move(conn));
  sim_.at(spec.start_time, [raw] { raw->start(); });
  return *raw;
}

bool FlowDriver::run_to_completion(sim::Time deadline) {
  const sim::Time chunk = sim::Time::ms(1);
  while (sim_.now() < deadline) {
    if (completed() + failed_ >= scheduled_) break;
    sim::Time next = sim_.now() + chunk;
    if (next > deadline) next = deadline;
    sim_.run_until(next);
    // A budget abort turns run_until into a no-op: now() stops advancing,
    // so without this break the settle loop would spin forever.
    if (sim_.aborted()) break;
  }
  return completed() >= scheduled_;
}

void FlowDriver::stop_all() {
  for (auto& c : conns_) c->stop();
}

}  // namespace xpass::runner
