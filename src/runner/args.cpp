#include "runner/args.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xpass::runner {

namespace {

// Strict numeric parses: the whole token must be consumed and in range.
std::optional<uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s[0] == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == s.c_str() || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(v);
}

std::optional<double> parse_f64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') return std::nullopt;
  // strtod accepts "nan"/"inf" spellings; no knob means those, so treat
  // them as malformed rather than letting them poison downstream math.
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg == "--") {
      positional_.emplace_back(arg);
      continue;
    }
    Entry e;
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      e.name = std::string(arg.substr(2, eq - 2));
      e.value = std::string(arg.substr(eq + 1));
    } else {
      e.name = std::string(arg.substr(2));
      // A following non-flag token is the candidate `--name value` value;
      // it is only *consumed* if the flag is queried as a valued flag.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        e.value = std::string(argv[i + 1]);
        e.value_is_next = true;
        ++i;
      }
    }
    entries_.push_back(std::move(e));
  }
}

Args::Entry* Args::find(std::string_view name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

void Args::fail(std::string_view name, std::string_view why) {
  std::string msg = "--";
  msg += name;
  msg += ": ";
  msg += why;
  errors_.push_back(std::move(msg));
}

bool Args::flag(std::string_view name) {
  Entry* e = find(name);
  if (e == nullptr) return false;
  e->consumed = true;
  if (e->value && !e->value_is_next) {
    fail(name, "takes no value");
  } else if (e->value && e->value_is_next) {
    // `--full foo`: foo belongs to someone else (a positional).
    e->value_consumed = false;
  }
  return true;
}

std::optional<std::string> Args::str(std::string_view name) {
  Entry* e = find(name);
  if (e == nullptr) return std::nullopt;
  e->consumed = true;
  if (!e->value) {
    fail(name, "expects a value");
    return std::nullopt;
  }
  e->value_consumed = true;
  return e->value;
}

uint64_t Args::u64(std::string_view name, uint64_t fallback) {
  Entry* e = find(name);
  if (e == nullptr) return fallback;
  e->consumed = true;
  if (!e->value) {
    fail(name, "expects an integer");
    return fallback;
  }
  e->value_consumed = true;
  auto v = parse_u64(*e->value);
  if (!v) {
    fail(name, "malformed integer '" + *e->value + "'");
    return fallback;
  }
  return *v;
}

double Args::f64(std::string_view name, double fallback) {
  Entry* e = find(name);
  if (e == nullptr) return fallback;
  e->consumed = true;
  if (!e->value) {
    fail(name, "expects a number");
    return fallback;
  }
  e->value_consumed = true;
  auto v = parse_f64(*e->value);
  if (!v) {
    fail(name, "malformed number '" + *e->value + "'");
    return fallback;
  }
  return *v;
}

size_t Args::jobs() {
  const uint64_t v = u64("jobs", 0);
  if (v == 0 && find("jobs") != nullptr && ok()) {
    fail("jobs", "must be >= 1");
  }
  return static_cast<size_t>(v);
}

size_t Args::runs() {
  const uint64_t v = u64("runs", 1);
  if (v == 0) {
    fail("runs", "must be >= 1");
    return 1;
  }
  return static_cast<size_t>(v);
}

size_t Args::shards() { return static_cast<size_t>(u64("shards", 0)); }

double Args::timeout_ms() {
  const double v = f64("timeout-ms", 0);
  if (v < 0) {
    fail("timeout-ms", "must be >= 0");
    return 0;
  }
  return v;
}

std::optional<std::string> Args::cache_dir() {
  auto v = str("cache-dir");
  if (v && v->empty()) {
    fail("cache-dir", "expects a directory path");
    return std::nullopt;
  }
  return v;
}

bool Args::resume() { return flag("resume"); }

size_t Args::retries() { return static_cast<size_t>(u64("retries", 0)); }

// Queried boolean switches written as `--switch value` captured a trailing
// token speculatively; once all queries have run, give unconsumed ones back
// to the positional list (in their original relative order at the tail).
void Args::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (Entry& e : entries_) {
    if (e.consumed && e.value_is_next && e.value && !e.value_consumed) {
      positional_.push_back(*e.value);
      e.value.reset();
    }
  }
}

const std::vector<std::string>& Args::positional() {
  finalize();
  return positional_;
}

std::string Args::error() {
  finalize();
  std::string out;
  for (const std::string& e : errors_) {
    out += e;
    out += '\n';
  }
  for (const Entry& e : entries_) {
    if (!e.consumed) {
      out += "unknown flag: --" + e.name + "\n";
    }
  }
  return out;
}

void Args::die_on_error(const char* usage) {
  const std::string err = error();
  if (err.empty()) return;
  std::fputs(err.c_str(), stderr);
  if (usage != nullptr) std::fputs(usage, stderr);
  std::exit(2);
}

}  // namespace xpass::runner
