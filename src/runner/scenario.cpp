#include "runner/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/credit_telemetry.hpp"
#include "exec/sweep_runner.hpp"
#include "net/fault_injector.hpp"
#include "net/packet_pool.hpp"
#include "net/partition.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariants.hpp"
#include "sim/parallel.hpp"
#include "stats/fairness.hpp"
#include "transport/credit_sched.hpp"
#include "workload/generators.hpp"

namespace xpass::runner {

namespace {

// The concrete network a TopologySpec resolved to: the host pools the
// traffic generators draw from, the canonical observation port, and the
// topology-defined flow list for kChain traffic.
struct Built {
  std::vector<net::Host*> hosts;  // senders / the poisson + shuffle pool
  std::vector<net::Host*> peers;  // pairwise receivers (dumbbell only)
  std::vector<net::Port*> tor_uplinks;  // Clos only: the load-defining links
  net::Port* bottleneck = nullptr;
  std::vector<std::pair<net::Host*, net::Host*>> chain;
};

Built build_network(const ScenarioSpec& spec, net::Topology& topo,
                    double fabric_rate_bps, sim::Time fabric_prop) {
  const TopologySpec& ts = spec.topology;
  const Protocol proto = spec.protocol;
  net::LinkConfig host_cfg =
      protocol_link_config(proto, ts.host_rate_bps, ts.host_prop);
  net::LinkConfig fabric_cfg =
      protocol_link_config(proto, fabric_rate_bps, fabric_prop);
  // Coexistence: a kDctcp group needs marking on the shared queues even
  // when the primary protocol's fabric has none.
  bool want_ecn = false;
  for (const FlowGroupSpec& g : spec.flow_groups) {
    want_ecn = want_ecn || g.protocol == Protocol::kDctcp;
  }
  const double rates[] = {ts.host_rate_bps, fabric_rate_bps};
  size_t i = 0;
  for (net::LinkConfig* cfg : {&host_cfg, &fabric_cfg}) {
    if (ts.credit_queue_pkts) cfg->credit_queue_pkts = *ts.credit_queue_pkts;
    if (ts.host_credit_shaper_noise) {
      cfg->host_credit_shaper_noise = *ts.host_credit_shaper_noise;
    }
    if (ts.link_jitter > sim::Time::zero()) {
      cfg->prop_jitter = ts.link_jitter;
    }
    if (want_ecn && cfg->data_queue.ecn_threshold_bytes == 0) {
      cfg->data_queue.ecn_threshold_bytes = dctcp_k_bytes(rates[i]);
    }
    ++i;
  }

  Built b;
  switch (ts.kind) {
    case TopologyKind::kDumbbell: {
      auto d = net::build_dumbbell(topo, ts.scale, host_cfg, fabric_cfg);
      b.hosts = d.senders;
      b.peers = d.receivers;
      b.bottleneck = d.bottleneck;
      break;
    }
    case TopologyKind::kStar: {
      auto s = net::build_star(topo, ts.scale, host_cfg);
      b.hosts = s.hosts;
      b.bottleneck = b.hosts[0]->nic().peer();
      break;
    }
    case TopologyKind::kFatTree: {
      auto ft = net::build_fat_tree(topo, ts.fat_tree_k, host_cfg, fabric_cfg);
      b.hosts = ft.hosts;
      b.bottleneck = b.hosts[0]->nic().peer();
      break;
    }
    case TopologyKind::kClos: {
      auto cl = net::build_clos(topo, ts.clos.n_core, ts.clos.pods,
                                ts.clos.aggr_per_pod, ts.clos.tor_per_pod,
                                ts.clos.hosts_per_tor, host_cfg, fabric_cfg);
      b.hosts = cl.hosts;
      b.tor_uplinks = cl.tor_uplinks;
      break;
    }
    case TopologyKind::kParkingLot: {
      auto p = net::build_parking_lot(topo, ts.scale, host_cfg, fabric_cfg);
      b.hosts = {p.long_src};
      b.bottleneck = p.data_links[0];
      b.chain.emplace_back(p.long_src, p.long_dst);
      for (size_t i = 0; i < p.cross_srcs.size(); ++i) {
        b.chain.emplace_back(p.cross_srcs[i], p.cross_dsts[i]);
      }
      break;
    }
    case TopologyKind::kMultiBottleneck: {
      auto m = net::build_multi_bottleneck(topo, ts.scale, host_cfg,
                                           fabric_cfg);
      b.hosts = {m.flow0_src};
      b.bottleneck = m.link1_data;
      b.chain.emplace_back(m.flow0_src, m.flow0_dst);
      for (size_t i = 0; i < m.srcs.size(); ++i) {
        b.chain.emplace_back(m.srcs[i], m.dsts[i]);
      }
      break;
    }
  }

  if (ts.host_delay != HostDelay::kNone) {
    const net::HostDelayModel model = ts.host_delay == HostDelay::kTestbed
                                          ? net::HostDelayModel::testbed()
                                          : net::HostDelayModel::hardware();
    for (net::Host* h : topo.hosts()) h->set_delay_model(model);
  }
  if (ts.packet_spraying) {
    for (net::Switch* sw : topo.switches()) sw->set_packet_spraying(true);
  }
  return b;
}

// Adds `tr`'s flows. With `group_t` null this is the classic single-protocol
// path (driver.add, primary transport) — its RNG draw order is golden-pinned.
// With `group_t` set, flows are created through that group's transport and
// tagged with `group` for per-group result extraction.
void add_traffic(const ScenarioSpec& spec, const TrafficSpec& tr,
                 const Built& b, sim::Simulator& sim, FlowDriver& driver,
                 double fabric_rate_bps, transport::Transport* group_t,
                 size_t group) {
  const auto add_one = [&](const transport::FlowSpec& s) {
    if (group_t != nullptr) {
      driver.add_grouped(s, *group_t, group);
    } else {
      driver.add(s);
    }
  };
  const auto add_many = [&](const std::vector<transport::FlowSpec>& specs) {
    for (const auto& s : specs) add_one(s);
  };
  switch (tr.kind) {
    case TrafficKind::kPairwise: {
      for (size_t i = 0; i < tr.flows; ++i) {
        transport::FlowSpec s;
        s.id = tr.flow_id_salt + static_cast<uint32_t>(i + 1);
        s.src = b.hosts[i % b.hosts.size()];
        s.dst = b.peers.empty()
                    ? b.hosts[(i + 1 + b.hosts.size() / 2) % b.hosts.size()]
                    : b.peers[i % b.peers.size()];
        if (s.dst == s.src) s.dst = b.hosts[(i + 1) % b.hosts.size()];
        s.size_bytes = tr.bytes;
        // One RNG draw per flow, in flow order, only when spreading — the
        // stream position must match the hand-wired benches exactly.
        if (tr.start_spread_sec > 0) {
          s.start_time =
              sim::Time::seconds(sim.rng().uniform(0.0, tr.start_spread_sec));
        }
        add_one(s);
      }
      break;
    }
    case TrafficKind::kIncast: {
      std::vector<net::Host*> workers(b.hosts.begin() + 1, b.hosts.end());
      add_many(workload::incast_flows(workers, b.hosts[0], tr.bytes,
                                      tr.flows, sim::Time::zero(),
                                      tr.flow_id_salt + 1));
      break;
    }
    case TrafficKind::kShuffle: {
      add_many(workload::shuffle_flows(b.hosts, tr.tasks_per_host,
                                       tr.bytes, sim::Time::zero(),
                                       tr.flow_id_salt + 1));
      break;
    }
    case TrafficKind::kPoisson: {
      auto dist = workload::FlowSizeDist::make(tr.workload);
      std::vector<net::Host*> pool = b.hosts;
      pool.insert(pool.end(), b.peers.begin(), b.peers.end());
      // Load is defined on the ToR up-links for the Clos fabric (§6.3);
      // generic topologies fall back to the CLI's aggregate-host-rate/3
      // heuristic.
      const double capacity =
          tr.capacity_bps
              ? *tr.capacity_bps
              : !b.tor_uplinks.empty()
                    ? static_cast<double>(b.tor_uplinks.size()) *
                          fabric_rate_bps
                    : static_cast<double>(pool.size()) *
                          spec.topology.host_rate_bps / 3.0;
      const double lambda =
          workload::lambda_for_load(tr.load, capacity, dist.mean());
      add_many(workload::poisson_flows(sim.rng(), pool, dist, lambda,
                                       tr.flows, sim::Time::zero(),
                                       tr.flow_id_salt + 1));
      break;
    }
    case TrafficKind::kChain: {
      uint32_t id = tr.flow_id_salt + 1;
      for (const auto& [src, dst] : b.chain) {
        transport::FlowSpec s;
        s.id = id++;
        s.src = src;
        s.dst = dst;
        s.size_bytes = tr.bytes;
        add_one(s);
      }
      break;
    }
    case TrafficKind::kOnOff: {
      // Media-style on/off sources: each source emits one refresh burst per
      // cycle, phase-shifted by a per-source U(0, period) draw (one draw
      // per source, in source order). The cycle schedule covers the stop
      // horizon; bursts that would start past it are not scheduled.
      const double period = tr.on_period_sec > 0 ? tr.on_period_sec : 0.01;
      const double duty = std::clamp(tr.on_duty, 0.01, 1.0);
      const sim::Time horizon = spec.stop.kind == StopKind::kWindow
                                    ? spec.stop.warmup + spec.stop.window
                                    : spec.stop.horizon;
      size_t cycles =
          static_cast<size_t>(horizon.to_sec() / period) + 1;
      cycles = std::min<size_t>(cycles, 1024);  // runaway-spec backstop
      const uint64_t burst =
          tr.bytes != transport::kLongRunning
              ? tr.bytes
              : std::max<uint64_t>(
                    net::kMssBytes,
                    static_cast<uint64_t>(duty * period *
                                          spec.topology.host_rate_bps / 8.0));
      uint32_t id = tr.flow_id_salt + 1;
      for (size_t i = 0; i < tr.flows; ++i) {
        net::Host* src = b.hosts[i % b.hosts.size()];
        net::Host* dst =
            b.peers.empty()
                ? b.hosts[(i + 1 + b.hosts.size() / 2) % b.hosts.size()]
                : b.peers[i % b.peers.size()];
        if (dst == src) dst = b.hosts[(i + 1) % b.hosts.size()];
        const double phase = sim.rng().uniform(0.0, period);
        for (size_t k = 0; k < cycles; ++k) {
          const sim::Time start =
              sim::Time::seconds(phase + static_cast<double>(k) * period);
          if (start >= horizon) break;
          transport::FlowSpec s;
          s.id = id++;
          s.src = src;
          s.dst = dst;
          s.size_bytes = burst;
          s.start_time = start;
          add_one(s);
        }
      }
      break;
    }
  }
}

void add_traffic(const ScenarioSpec& spec, const Built& b,
                 sim::Simulator& sim, FlowDriver& driver,
                 double fabric_rate_bps) {
  add_traffic(spec, spec.traffic, b, sim, driver, fabric_rate_bps,
              /*group_t=*/nullptr, /*group=*/0);
}

bool is_expresspass(Protocol p) {
  return p == Protocol::kExpressPass || p == Protocol::kExpressPassNaive;
}

// Mixed-fabric admission: a group either shares the primary protocol (and
// its transport) or must be one of the drop-tail-compatible reactive stacks
// that can run on whatever fabric the primary configured. Everything else
// needs link machinery (credit shapers, PFC, per-flow pause, a central
// oracle) the shared fabric does not provide per-group.
void validate_flow_groups(const ScenarioSpec& spec) {
  for (const FlowGroupSpec& g : spec.flow_groups) {
    if (g.share <= 0) {
      throw std::invalid_argument(
          "ScenarioSpec.flow_groups: share must be > 0");
    }
    if (g.protocol == spec.protocol) continue;
    if (is_expresspass(g.protocol) && is_expresspass(spec.protocol)) {
      continue;  // naive/feedback variants share the credit fabric
    }
    const bool groupable = g.protocol == Protocol::kDctcp ||
                           g.protocol == Protocol::kRcp ||
                           g.protocol == Protocol::kDx ||
                           g.protocol == Protocol::kCubic ||
                           g.protocol == Protocol::kTimely ||
                           g.protocol == Protocol::kBbr;
    if (!groupable) {
      throw std::invalid_argument(
          std::string("ScenarioSpec.flow_groups: protocol ") +
          std::string(protocol_name(g.protocol)) +
          " cannot join a mixed fabric (it needs link machinery the primary "
          "protocol's fabric does not provide)");
    }
  }
}

// Per-group flow-id salt stride: keeps group id spaces disjoint while
// preserving the per-group flow-relabel invariant (shifting a group's salt
// relabels only that group).
constexpr uint32_t kGroupSaltStride = 1u << 20;

// Everything after the run loop: final sweeps, scalar extraction, recorder
// mirroring, teardown. Shared verbatim by the serial and sharded paths —
// by the time it runs, a sharded driver has already merged its shard sinks,
// so both paths read the same collectors the same way.
ScenarioResult finish_run(const ScenarioSpec& spec, sim::Simulator& sim,
                          net::Topology& topo, const Built& b,
                          FlowDriver& driver, sim::InvariantChecker& checker,
                          net::FaultInjector& injector, sim::FaultPlan& plan,
                          bool has_faults, stats::Recorder& rec,
                          std::vector<std::pair<uint32_t, double>> rate_pairs,
                          uint64_t tx_before, bool completion_result) {
  ScenarioResult res;
  res.name = spec.name;
  res.seed = spec.seed;

  if (spec.stop.kind != StopKind::kWindow) {
    rate_pairs = driver.rates().snapshot_rates_ordered(sim.now());
  }
  // A truncated run stops mid-flight by construction — packets are on the
  // wire, credits are outstanding. The final invariant sweep judges "did
  // the run end in a sane state", which is only meaningful for runs that
  // actually ended; gate it off so a budget abort never false-fires it.
  // Periodic sweeps that ran before the abort still count and still report.
  if (spec.check_invariants && !sim.aborted()) checker.run_checks();

  res.aborted = sim.aborted();
  if (res.aborted) {
    res.abort_reason = std::string(sim::abort_reason_name(sim.abort_reason()));
    rec.set_abort(res.abort_reason);
  }
  res.scheduled = driver.scheduled();
  res.completed = driver.completed();
  res.failed = driver.failed();
  res.all_completed = spec.stop.kind == StopKind::kCompletion
                          ? completion_result
                          : res.scheduled > 0 && res.completed == res.scheduled;
  res.end_time = sim.now();
  res.data_drops = topo.data_drops();
  res.credit_drops = topo.credit_drops();
  res.stray_credits = topo.stray_credits();
  res.max_switch_queue_bytes = topo.max_switch_data_queue_bytes();
  {
    double sum = 0;
    auto ports = topo.switch_ports();
    for (net::Port* p : ports) {
      sum += p->data_queue().stats().avg_bytes(sim.now());
    }
    res.avg_switch_queue_bytes =
        ports.empty() ? 0 : sum / static_cast<double>(ports.size());
  }
  if (b.bottleneck != nullptr) {
    const auto& qs = b.bottleneck->data_queue().stats();
    res.bottleneck_max_queue_bytes = qs.max_bytes;
    res.bottleneck_queue_drops = qs.dropped;
    res.bottleneck_tx_data_bytes = b.bottleneck->tx_data_bytes() - tx_before;
  }

  // Sum and Jain fold over the tracker's traversal order — bit-identical to
  // the snapshot_rates() path the hand-wired benches used — then sort by
  // flow id for stable per-flow access.
  {
    std::vector<double> vals;
    vals.reserve(rate_pairs.size());
    for (const auto& [id, r] : rate_pairs) {
      (void)id;
      vals.push_back(r);
    }
    double sum = 0;
    for (double v : vals) sum += v;
    res.sum_rate_bps = sum;
    res.jain = stats::jain_index(vals);
    std::sort(rate_pairs.begin(), rate_pairs.end());
    res.flow_rates = std::move(rate_pairs);
  }

  res.fcts = driver.fcts();

  // Per-group coexistence extraction. A group flow counts as starved when
  // it neither completed nor sustained >= 5% of the all-flow mean goodput —
  // the quantitative answer to "does the 5% credit reservation protect
  // ExpressPass, or does cross-traffic starve it?".
  if (driver.group_count() > 0) {
    const double mean_rate =
        res.flow_rates.empty()
            ? 0.0
            : res.sum_rate_bps / static_cast<double>(res.flow_rates.size());
    const double starve_floor = 0.05 * mean_rate;
    res.groups.resize(driver.group_count());
    std::vector<size_t> ok_flows(res.groups.size(), 0);
    for (const auto& [id, r] : res.flow_rates) {
      const size_t g = driver.group_of(id);
      if (g >= res.groups.size()) continue;
      res.groups[g].goodput_bps += r;
      if (r >= starve_floor && r > 0.0) ++ok_flows[g];
    }
    for (size_t g = 0; g < res.groups.size(); ++g) {
      ScenarioResult::GroupResult& gr = res.groups[g];
      gr.protocol = g < spec.flow_groups.size() ? spec.flow_groups[g].protocol
                                                : spec.protocol;
      gr.scheduled = driver.group_scheduled(g);
      gr.completed = driver.group_completed(g);
      gr.failed = driver.group_failed(g);
      const size_t settled = gr.completed + gr.failed + ok_flows[g];
      gr.starved = gr.scheduled > settled ? gr.scheduled - settled : 0;
      gr.goodput_share =
          res.sum_rate_bps > 0 ? gr.goodput_bps / res.sum_rate_bps : 0.0;
      const auto& f = driver.group_fcts(g);
      if (f.completed() > 0) {
        gr.fct_avg_sec = f.all().mean();
        gr.fct_p99_sec = f.all().percentile(0.99);
      }
      const std::string pre = "group." + std::to_string(g) + ".";
      rec.set(pre + "goodput_bps", gr.goodput_bps);
      rec.set(pre + "goodput_share", gr.goodput_share);
      rec.set(pre + "flows", static_cast<double>(gr.scheduled));
      rec.set(pre + "completed", static_cast<double>(gr.completed));
      rec.set(pre + "failed", static_cast<double>(gr.failed));
      rec.set(pre + "starved", static_cast<double>(gr.starved));
      if (f.completed() > 0) {
        rec.set(pre + "fct.avg_sec", gr.fct_avg_sec);
        rec.set(pre + "fct.p99_sec", gr.fct_p99_sec);
      }
    }
  }

  if (is_expresspass(spec.protocol)) {
    const core::CreditLedger ledger =
        core::credit_ledger(topo, driver.connections());
    res.credits_received = ledger.received;
    res.credits_wasted = ledger.wasted;
    res.credit_waste_ratio = ledger.waste_ratio();
  } else if (auto* acct = dynamic_cast<const transport::GrantAccounting*>(
                 &driver.transport())) {
    // Proactive comparators (SIRD; BFC reports zeros) expose their
    // grant/credit waste through the framework's accounting hook. Distinct
    // recorder keys from ExpressPass's xp.* gauges: those count what
    // *arrived* at senders (credit_telemetry), these count what receivers
    // *issued* — the Fig-20 comparison normalizes each protocol by its own
    // denominator.
    const transport::GrantWaste gw = acct->grant_waste();
    res.credits_received = gw.issued;
    res.credits_wasted = gw.wasted;
    res.credit_waste_ratio = gw.waste_ratio();
    rec.set("proactive.grants_issued", static_cast<double>(gw.issued));
    rec.set("proactive.grants_consumed", static_cast<double>(gw.consumed));
    rec.set("proactive.grants_wasted", static_cast<double>(gw.wasted));
    rec.set("proactive.waste_ratio", gw.waste_ratio());
  }
  if (has_faults) {
    res.fault_totals = injector.totals();
    res.faults_fired = plan.fired();
  }
  if (spec.check_invariants) {
    res.invariant_sweeps = checker.sweeps();
    res.invariant_violations = checker.violations();
    res.invariant_messages = checker.messages();
  }

  // Mirror every standard scalar into the recorder so JSON/CSV emission is
  // uniform across scenarios, then freeze it for return.
  rec.set("time.end_sec", res.end_time.to_sec());
  rec.set("goodput.sum_bps", res.sum_rate_bps);
  rec.set("fairness.jain", res.jain);
  rec.set("queue.bottleneck.max_bytes",
          static_cast<double>(res.bottleneck_max_queue_bytes));
  rec.set("queue.bottleneck.tx_bytes",
          static_cast<double>(res.bottleneck_tx_data_bytes));
  if (res.fcts.completed() > 0) {
    const auto& f = res.fcts.all();
    rec.set("fct.count", static_cast<double>(res.fcts.completed()));
    rec.set("fct.avg_sec", f.mean());
    rec.set("fct.p50_sec", f.percentile(0.5));
    rec.set("fct.p99_sec", f.percentile(0.99));
  }
  if (has_faults) {
    rec.set("faults.fired", static_cast<double>(res.faults_fired));
    rec.set("faults.failures", static_cast<double>(res.fault_totals.failures));
    rec.set("faults.recoveries",
            static_cast<double>(res.fault_totals.recoveries));
  }
  if (spec.check_invariants) {
    rec.set("invariants.sweeps", static_cast<double>(res.invariant_sweeps));
    rec.set("invariants.violations",
            static_cast<double>(res.invariant_violations));
  }
  rec.detach();  // evaluate gauges, drop callbacks into the dying network
  res.recorder = std::move(rec);

  driver.stop_all();
  return res;
}

// Specs the conservative window protocol cannot shard: couplings that flow
// through anything other than the per-link packet streams (PFC pause frames
// reach into the upstream port's state, delivery trains batch across the
// cut, kIdeal's oracle and the PFC protocols' control loops are global).
void validate_parallel(const ScenarioSpec& spec, const net::Topology& topo) {
  if (!spec.flow_groups.empty()) {
    throw std::invalid_argument(
        "ScenarioSpec.shards: mixed-protocol flow_groups cannot run sharded "
        "(per-group transports and result extraction are serial-engine "
        "machinery)");
  }
  const char* why = nullptr;
  if (spec.protocol == Protocol::kIdeal) {
    why = "kIdeal's central max-min oracle is global state";
  } else if (spec.protocol == Protocol::kDcqcn ||
             spec.protocol == Protocol::kTimely) {
    why = "PFC-based protocols backpressure across link boundaries";
  } else if (spec.protocol == Protocol::kSird) {
    why = "SIRD's per-receiver grant allocator is cross-flow shared state";
  } else if (spec.protocol == Protocol::kBfc) {
    why = "BFC's per-hop flow backpressure mutates upstream ports across "
          "the cut";
  }
  if (why != nullptr) {
    throw std::invalid_argument(std::string("ScenarioSpec.shards: protocol ") +
                                std::string(protocol_name(spec.protocol)) +
                                " cannot run sharded (" + why + ")");
  }
  for (const auto& l : topo.links()) {
    for (const net::Port* p : {l.pa, l.pb}) {
      if (p->config().pfc) {
        throw std::invalid_argument(
            "ScenarioSpec.shards: PFC links cannot run sharded (pause frames "
            "mutate the upstream port across the cut)");
      }
      if (p->config().hop_backpressure) {
        throw std::invalid_argument(
            "ScenarioSpec.shards: hop-backpressure links cannot run sharded "
            "(flow pause/resume mutates the upstream port across the cut)");
      }
      if (p->config().train_window > sim::Time::zero()) {
        throw std::invalid_argument(
            "ScenarioSpec.shards: delivery trains cannot run sharded (train "
            "batching is not modeled across the cut)");
      }
      if (p->config().prop_jitter > sim::Time::zero()) {
        throw std::invalid_argument(
            "ScenarioSpec.shards: jittered links cannot run sharded "
            "(per-delivery RNG draws would come from the wrong shard's "
            "stream, and jittered arrivals can land inside the lookahead "
            "window)");
      }
    }
  }
}

// The sharded twin of ScenarioEngine::run(): identical construction order
// and measurement, with the simulation clock driven by a ParallelSimulator
// over a partitioned topology. Deterministic in (spec.seed, spec) — which
// includes spec.shards; different shard counts are different (individually
// reproducible) experiments.
ScenarioResult run_parallel_scenario(const ScenarioSpec& spec,
                                     const RunOverrides& overrides) {
  sim::ParallelSimulator psim(spec.seed, spec.shards,
                              spec.heap_only_events
                                  ? sim::EventQueue::Backend::kHeapOnly
                                  : sim::EventQueue::Backend::kHybrid);
  sim::Simulator& sim = psim.control();
  {
    sim::RunBudget budget = spec.budget.value_or(sim::RunBudget{});
    if (overrides.wall_clock_ms > 0 && (budget.max_wall_ms <= 0 ||
                                        overrides.wall_clock_ms <
                                            budget.max_wall_ms)) {
      budget.max_wall_ms = overrides.wall_clock_ms;
    }
    if (budget.any()) psim.set_budget(budget);
  }
  net::Topology topo(sim);

  const TopologySpec& ts = spec.topology;
  const double fabric_rate =
      ts.fabric_rate_bps > 0 ? ts.fabric_rate_bps : ts.host_rate_bps;
  const sim::Time fabric_prop =
      ts.fabric_prop > sim::Time::zero() ? ts.fabric_prop : ts.host_prop;
  Built b = build_network(spec, topo, fabric_rate, fabric_prop);
  validate_parallel(spec, topo);

  const net::Partition part = net::partition_topology(topo, spec.shards);
  psim.set_lookahead(part.lookahead);

  // Per-shard packet pools, intentionally leaked: freelist nodes migrate
  // between pools whenever the control thread acquires a packet a worker
  // later releases (or vice versa at teardown), so no pool that ever served
  // this run may free its slabs (see PacketPool's file comment).
  std::vector<net::PacketPool*> pools;
  pools.reserve(psim.shard_count());
  for (size_t i = 0; i < psim.shard_count(); ++i) {
    pools.push_back(new net::PacketPool());
  }
  psim.set_worker_init(
      [pools](size_t shard) { net::PacketPool::bind(pools[shard]); });

  // Re-point every node (and its ports) at its shard's simulator, then give
  // the cut ports their cross-shard egress route. Must precede
  // make_transport(): connections and per-port protocol state (RCP) bind to
  // whichever simulator the endpoints hold.
  for (size_t id = 0; id < topo.num_nodes(); ++id) {
    topo.node(id).rebind_simulator(psim.shard(part.shard_of[id]));
  }
  for (const auto& l : topo.links()) {
    const uint32_t sa = part.shard_of[l.a];
    const uint32_t sb = part.shard_of[l.b];
    if (sa == sb) continue;
    l.pa->set_remote_route(&psim, sa, sb);
    l.pb->set_remote_route(&psim, sb, sa);
  }

  auto transport = make_transport(spec.protocol, sim, topo, spec.base_rtt,
                                  spec.xp ? &*spec.xp : nullptr);
  FlowDriver driver(sim, *transport);
  driver.set_parallel(psim, part.shard_of);
  // Traffic draws come from the control RNG — the same stream, in the same
  // order, as a serial run of this spec.
  add_traffic(spec, b, sim, driver, fabric_rate);

  // Faults, invariant sweeps, and telemetry all run as control events: they
  // fire at window barriers while the workers are parked, which is exactly
  // when cross-shard reads and port fail/recover mutations are safe.
  sim::FaultPlan plan(spec.fault_seed);
  net::FaultInjector injector(topo, plan);
  const bool has_faults = spec.faults.any();
  if (has_faults) {
    const net::Topology::LinkRec* target = nullptr;
    for (const auto& l : topo.links()) {
      if (topo.node(l.a).kind() == net::Node::Kind::kSwitch &&
          topo.node(l.b).kind() == net::Node::Kind::kSwitch) {
        target = &l;
        break;
      }
    }
    if (target == nullptr && !topo.links().empty()) {
      target = &topo.links().front();
    }
    if (target != nullptr) {
      apply_fault_scenario(spec.faults, injector, topo.node(target->a),
                           topo.node(target->b));
      plan.arm(sim);
    }
  }

  sim::InvariantChecker checker(sim);
  if (spec.check_invariants) {
    NetInvariantOptions iopts;
    iopts.expect_zero_data_loss = is_expresspass(spec.protocol);
    register_network_invariants(checker, topo, driver,
                                has_faults ? &plan : nullptr, iopts);
    checker.start(sim::Time::us(100));
  }

  stats::Recorder rec;
  topo.register_telemetry(rec, spec.telemetry.per_port_queue_series);
  driver.register_telemetry(rec, spec.telemetry.flow_rate_series);
  if (is_expresspass(spec.protocol)) {
    core::register_credit_telemetry(rec, topo, driver.connections());
  }
  if (spec.telemetry.bottleneck_queue_series && b.bottleneck != nullptr) {
    net::Port* p = b.bottleneck;
    rec.series_gauge("queue.bottleneck.bytes", [p] {
      return static_cast<double>(p->data_queue().bytes());
    });
  }

  // Stepped sampling: each step ends at a window barrier, the shard rate
  // sinks are drained, and only then do the gauges sample — so a sampled
  // sharded run reads consistent global state without ever interrupting a
  // window.
  const sim::Time interval = spec.telemetry.sample_interval;
  auto run_until = [&](sim::Time until) {
    if (interval > sim::Time::zero()) {
      sim::Time t = sim.now();
      while (t < until) {
        t = std::min(t + interval, until);
        psim.run_until(t);
        if (sim.aborted()) break;  // drop the partial sample point
        driver.sync_rates();
        rec.sample_all(t.to_sec());
      }
    } else {
      psim.run_until(until);
    }
  };

  std::vector<std::pair<uint32_t, double>> rate_pairs;
  uint64_t tx_before = 0;
  bool completion_result = false;
  switch (spec.stop.kind) {
    case StopKind::kRunFor:
      run_until(spec.stop.horizon);
      break;
    case StopKind::kWindow:
      run_until(spec.stop.warmup);
      driver.sync_rates();
      if (b.bottleneck != nullptr) tx_before = b.bottleneck->tx_data_bytes();
      driver.rates().snapshot_rates_ordered(spec.stop.warmup);  // reset
      run_until(spec.stop.warmup + spec.stop.window);
      driver.sync_rates();
      rate_pairs = driver.rates().snapshot_rates_ordered(spec.stop.window);
      break;
    case StopKind::kCompletion: {
      const sim::Time chunk =
          interval > sim::Time::zero() ? interval : sim::Time::ms(1);
      sim::Time t = sim.now();
      while (t < spec.stop.horizon && !sim.aborted() &&
             driver.completed() + driver.failed() < driver.scheduled()) {
        t = std::min(t + chunk, spec.stop.horizon);
        psim.run_until(t);
        if (sim.aborted()) break;
        if (interval > sim::Time::zero()) {
          driver.sync_rates();
          rec.sample_all(t.to_sec());
        }
      }
      completion_result = driver.completed() == driver.scheduled();
      break;
    }
  }
  driver.finish_parallel();

  return finish_run(spec, sim, topo, b, driver, checker, injector, plan,
                    has_faults, rec, std::move(rate_pairs), tx_before,
                    completion_result);
}

}  // namespace

ScenarioResult ScenarioEngine::run(const ScenarioSpec& spec,
                                   const RunOverrides& overrides) const {
  if (spec.shards > 1) return run_parallel_scenario(spec, overrides);
  sim::Simulator sim(spec.seed, spec.heap_only_events
                                    ? sim::EventQueue::Backend::kHeapOnly
                                    : sim::EventQueue::Backend::kHybrid);
  // Merge the spec's budget with caller-side enforcement: the override's
  // wall-clock leash tightens (never loosens) whatever the spec declares.
  {
    sim::RunBudget budget = spec.budget.value_or(sim::RunBudget{});
    if (overrides.wall_clock_ms > 0 && (budget.max_wall_ms <= 0 ||
                                        overrides.wall_clock_ms <
                                            budget.max_wall_ms)) {
      budget.max_wall_ms = overrides.wall_clock_ms;
    }
    if (budget.any()) sim.set_budget(budget);
  }
  net::Topology topo(sim);

  const TopologySpec& ts = spec.topology;
  const double fabric_rate =
      ts.fabric_rate_bps > 0 ? ts.fabric_rate_bps : ts.host_rate_bps;
  const sim::Time fabric_prop =
      ts.fabric_prop > sim::Time::zero() ? ts.fabric_prop : ts.host_prop;
  Built b = build_network(spec, topo, fabric_rate, fabric_prop);

  auto transport = make_transport(spec.protocol, sim, topo, spec.base_rtt,
                                  spec.xp ? &*spec.xp : nullptr);
  FlowDriver driver(sim, *transport);
  // Group transports must outlive the driver's connections; declared after
  // `transport` so they tear down first (connections are stopped explicitly
  // in finish_run before anything is destroyed).
  std::vector<std::unique_ptr<transport::Transport>> group_transports;
  if (spec.flow_groups.empty()) {
    add_traffic(spec, b, sim, driver, fabric_rate);
  } else {
    validate_flow_groups(spec);
    for (size_t g = 0; g < spec.flow_groups.size(); ++g) {
      const FlowGroupSpec& fg = spec.flow_groups[g];
      transport::Transport* t = transport.get();
      if (fg.protocol != spec.protocol) {
        group_transports.push_back(make_transport(
            fg.protocol, sim, topo, spec.base_rtt,
            is_expresspass(fg.protocol) && spec.xp ? &*spec.xp : nullptr));
        t = group_transports.back().get();
      }
      TrafficSpec tr = fg.traffic;
      tr.flow_id_salt += static_cast<uint32_t>(g) * kGroupSaltStride;
      add_traffic(spec, tr, b, sim, driver, fabric_rate, t, g);
    }
  }

  // Faults target the first switch--switch link, falling back to the first
  // link for single-switch topologies.
  sim::FaultPlan plan(spec.fault_seed);
  net::FaultInjector injector(topo, plan);
  const bool has_faults = spec.faults.any();
  if (has_faults) {
    const net::Topology::LinkRec* target = nullptr;
    for (const auto& l : topo.links()) {
      if (topo.node(l.a).kind() == net::Node::Kind::kSwitch &&
          topo.node(l.b).kind() == net::Node::Kind::kSwitch) {
        target = &l;
        break;
      }
    }
    if (target == nullptr && !topo.links().empty()) {
      target = &topo.links().front();
    }
    if (target != nullptr) {
      apply_fault_scenario(spec.faults, injector, topo.node(target->a),
                           topo.node(target->b));
      plan.arm(sim);
    }
  }

  sim::InvariantChecker checker(sim);
  if (spec.check_invariants) {
    NetInvariantOptions iopts;
    // Zero-data-loss holds only when *every* flow is credit-scheduled: one
    // reactive cross-traffic group probes the queues by filling them.
    bool all_xp = is_expresspass(spec.protocol);
    for (const FlowGroupSpec& g : spec.flow_groups) {
      all_xp = all_xp && is_expresspass(g.protocol);
    }
    iopts.expect_zero_data_loss = all_xp;
    register_network_invariants(checker, topo, driver,
                                has_faults ? &plan : nullptr, iopts);
    checker.start(sim::Time::us(100));
  }

  stats::Recorder rec;
  topo.register_telemetry(rec, spec.telemetry.per_port_queue_series);
  driver.register_telemetry(rec, spec.telemetry.flow_rate_series);
  if (is_expresspass(spec.protocol)) {
    core::register_credit_telemetry(rec, topo, driver.connections());
  }
  if (spec.telemetry.bottleneck_queue_series && b.bottleneck != nullptr) {
    net::Port* p = b.bottleneck;
    rec.series_gauge("queue.bottleneck.bytes", [p] {
      return static_cast<double>(p->data_queue().bytes());
    });
  }

  // Sampling steps run_until; the event stream a stepped run processes is
  // identical to one uninterrupted run, so sampling can never perturb a
  // golden output. An aborted sim makes run_until a no-op, so every stepped
  // loop must break on aborted() or it would spin to its horizon.
  const sim::Time interval = spec.telemetry.sample_interval;
  auto run_until = [&](sim::Time until) {
    if (interval > sim::Time::zero()) {
      sim::Time t = sim.now();
      while (t < until) {
        t = std::min(t + interval, until);
        sim.run_until(t);
        if (sim.aborted()) break;  // drop the partial sample point
        rec.sample_all(t.to_sec());
      }
    } else {
      sim.run_until(until);
    }
  };

  std::vector<std::pair<uint32_t, double>> rate_pairs;
  uint64_t tx_before = 0;
  bool completion_result = false;
  switch (spec.stop.kind) {
    case StopKind::kRunFor:
      run_until(spec.stop.horizon);
      break;
    case StopKind::kWindow:
      run_until(spec.stop.warmup);
      if (b.bottleneck != nullptr) tx_before = b.bottleneck->tx_data_bytes();
      driver.rates().snapshot_rates_ordered(spec.stop.warmup);  // reset
      run_until(spec.stop.warmup + spec.stop.window);
      rate_pairs = driver.rates().snapshot_rates_ordered(spec.stop.window);
      break;
    case StopKind::kCompletion:
      if (interval > sim::Time::zero()) {
        // run_to_completion's 1ms settle checks, at sample granularity.
        sim::Time t = sim.now();
        while (t < spec.stop.horizon && !sim.aborted() &&
               driver.completed() + driver.failed() < driver.scheduled()) {
          t = std::min(t + interval, spec.stop.horizon);
          sim.run_until(t);
          if (sim.aborted()) break;
          rec.sample_all(t.to_sec());
        }
        completion_result = driver.completed() == driver.scheduled();
      } else {
        completion_result = driver.run_to_completion(spec.stop.horizon);
      }
      break;
  }
  return finish_run(spec, sim, topo, b, driver, checker, injector, plan,
                    has_faults, rec, std::move(rate_pairs), tx_before,
                    completion_result);
}

std::vector<ScenarioResult> ScenarioEngine::run_grid(
    const std::vector<ScenarioSpec>& grid, size_t jobs) const {
  // Nested-parallelism budget: a sharded spec already occupies `shards`
  // threads, so scale the sweep's worker count down by the widest spec in
  // the grid — a grid of 8-shard runs on a 16-core box gets 2 sweep workers,
  // not 16x8 threads fighting the scheduler.
  size_t max_shards = 1;
  for (const ScenarioSpec& s : grid) {
    max_shards = std::max(max_shards, std::max<size_t>(s.shards, 1));
  }
  if (max_shards > 1) {
    if (jobs == 0) jobs = exec::default_jobs();
    jobs = std::max<size_t>(1, jobs / max_shards);
  }
  exec::SweepRunner pool(jobs);
  return pool.map(grid.size(), [&](size_t i) { return run(grid[i]); });
}

}  // namespace xpass::runner
