// FlowDriver: schedules flows on a Transport, collects FCTs and goodput.
//
// This is the top of the public API: build a Topology, pick a Transport,
// hand the driver a list of FlowSpecs (from workload/ generators or by
// hand), run the simulator, read the collectors.
#pragma once

#include <memory>
#include <vector>

#include "stats/fct.hpp"
#include "stats/rate_tracker.hpp"
#include "stats/recorder.hpp"
#include "transport/connection.hpp"

namespace xpass::runner {

class FlowDriver {
 public:
  FlowDriver(sim::Simulator& sim, transport::Transport& transport)
      : sim_(sim), transport_(transport) {}

  // Schedules creation + start of the flow at spec.start_time. Returns the
  // connection (owned by the driver) so callers may re-hook callbacks or
  // inspect protocol state.
  transport::Connection& add(const transport::FlowSpec& spec);
  void add_all(const std::vector<transport::FlowSpec>& specs) {
    for (const auto& s : specs) add(s);
  }

  // Runs until every scheduled flow is settled (completed or failed) or
  // `deadline` passes. Returns true iff everything *completed* — aborted
  // flows end the wait but still count as a false result.
  bool run_to_completion(sim::Time deadline);

  size_t scheduled() const { return scheduled_; }
  size_t completed() const { return fcts_.completed(); }
  // Flows the protocol gave up on (endpoint unreachable past the retry
  // budget). completed() + failed() == scheduled() once everything settled.
  size_t failed() const { return failed_; }
  stats::FctCollector& fcts() { return fcts_; }
  stats::RateTracker& rates() { return rates_; }

  const std::vector<std::unique_ptr<transport::Connection>>& connections()
      const {
    return conns_;
  }
  // Stops every connection (cancels timers, unregisters handlers).
  void stop_all();

  // Telemetry hook: registers the scheduling counters as pull probes
  // ("flows.scheduled", "flows.completed", "flows.failed") and, when
  // `per_flow_series` is set, one "flow.<id>.bytes" series gauge per
  // already-added flow (cumulative delivered bytes — sampling never resets
  // the goodput windows).
  void register_telemetry(stats::Recorder& r, bool per_flow_series = false) {
    r.gauge("flows.scheduled",
            [this] { return static_cast<double>(scheduled()); });
    r.gauge("flows.completed",
            [this] { return static_cast<double>(completed()); });
    r.gauge("flows.failed", [this] { return static_cast<double>(failed()); });
    if (per_flow_series) {
      for (const auto& c : conns_) {
        const uint32_t id = c->spec().id;
        r.series_gauge("flow." + std::to_string(id) + ".bytes", [this, id] {
          return static_cast<double>(rates_.cumulative_bytes(id));
        });
      }
    }
  }

 private:
  sim::Simulator& sim_;
  transport::Transport& transport_;
  std::vector<std::unique_ptr<transport::Connection>> conns_;
  stats::FctCollector fcts_;
  stats::RateTracker rates_;
  size_t scheduled_ = 0;
  size_t failed_ = 0;
};

}  // namespace xpass::runner
