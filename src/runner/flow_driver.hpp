// FlowDriver: schedules flows on a Transport, collects FCTs and goodput.
//
// This is the top of the public API: build a Topology, pick a Transport,
// hand the driver a list of FlowSpecs (from workload/ generators or by
// hand), run the simulator, read the collectors.
//
// Sharded runs (set_parallel) split collection: completion callbacks fire on
// the destination host's shard thread, so each shard gets its own sink (a
// RateTracker plus a completion log) and the driver's scenario-facing
// collectors (fcts(), rates()) are filled by canonical merges that run on
// the barrier/main thread only — sync_rates() at window barriers,
// finish_parallel() once after the run. Failure settlement can come from
// either half of a connection, so failed_ is a plain atomic counter.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "sim/parallel.hpp"
#include "stats/fct.hpp"
#include "stats/rate_tracker.hpp"
#include "stats/recorder.hpp"
#include "transport/connection.hpp"

namespace xpass::runner {

class FlowDriver {
 public:
  FlowDriver(sim::Simulator& sim, transport::Transport& transport)
      : sim_(sim), transport_(transport) {}

  // Sharded collection: one sink per shard, flows indexed by their
  // destination host's shard (`shard_of` by node id — the partitioner's
  // map, which must outlive the driver). Call before any add().
  void set_parallel(sim::ParallelSimulator& psim,
                    const std::vector<uint32_t>& shard_of);

  // The transport all flows are created through (scalar extraction probes
  // it for optional capabilities, e.g. transport::GrantAccounting).
  transport::Transport& transport() const { return transport_; }

  // Schedules creation + start of the flow at spec.start_time. Returns the
  // connection (owned by the driver) so callers may re-hook callbacks or
  // inspect protocol state.
  transport::Connection& add(const transport::FlowSpec& spec);
  void add_all(const std::vector<transport::FlowSpec>& specs) {
    for (const auto& s : specs) add(s);
  }

  // Mixed-protocol (coexistence) flows: create through `t` instead of the
  // primary transport and tag the flow with a group index for per-group
  // result extraction. Serial runs only (the parallel envelope rejects
  // mixed-protocol specs). The global collectors (fcts(), rates(),
  // scheduled()/completed()/failed()) still see every grouped flow.
  transport::Connection& add_grouped(const transport::FlowSpec& spec,
                                     transport::Transport& t, size_t group);

  // Per-group collectors (empty unless add_grouped was used).
  size_t group_count() const { return groups_.size(); }
  size_t group_scheduled(size_t g) const { return groups_[g]->scheduled; }
  size_t group_completed(size_t g) const {
    return groups_[g]->fcts.completed();
  }
  size_t group_failed(size_t g) const {
    return groups_[g]->failed.load(std::memory_order_relaxed);
  }
  const stats::FctCollector& group_fcts(size_t g) const {
    return groups_[g]->fcts;
  }
  // Group index of a flow id, or SIZE_MAX for ungrouped flows.
  size_t group_of(uint32_t flow_id) const {
    auto it = std::lower_bound(
        flow_group_.begin(), flow_group_.end(), flow_id,
        [](const auto& e, uint32_t id) { return e.first < id; });
    return it != flow_group_.end() && it->first == flow_id ? it->second
                                                          : SIZE_MAX;
  }

  // Runs until every scheduled flow is settled (completed or failed) or
  // `deadline` passes. Returns true iff everything *completed* — aborted
  // flows end the wait but still count as a false result. Serial runs only.
  bool run_to_completion(sim::Time deadline);

  // Drains every shard sink's goodput into rates() in shard order (no-op in
  // serial runs). Call only at window barriers / after the run, when the
  // worker threads are parked.
  void sync_rates();
  // Canonical merge of the shard completion logs into fcts(): completions
  // sort by (completion time, flow id) — a total order independent of which
  // shard observed them — then record in that order. Call once, after the
  // run. Includes a final sync_rates(). No-op in serial runs.
  void finish_parallel();

  size_t scheduled() const { return scheduled_; }
  size_t completed() const {
    size_t n = fcts_.completed();
    for (const auto& s : sinks_) n += s->completions.size();
    return n;
  }
  // Flows the protocol gave up on (endpoint unreachable past the retry
  // budget). completed() + failed() == scheduled() once everything settled.
  size_t failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  stats::FctCollector& fcts() { return fcts_; }
  stats::RateTracker& rates() { return rates_; }

  const std::vector<std::unique_ptr<transport::Connection>>& connections()
      const {
    return conns_;
  }
  // Stops every connection (cancels timers, unregisters handlers).
  void stop_all();

  // Telemetry hook: registers the scheduling counters as pull probes
  // ("flows.scheduled", "flows.completed", "flows.failed") and, when
  // `per_flow_series` is set, one "flow.<id>.bytes" series gauge per
  // already-added flow (cumulative delivered bytes — sampling never resets
  // the goodput windows). Sharded runs sample at barriers, where the shard
  // sinks are quiescent and rates() has been synced.
  void register_telemetry(stats::Recorder& r, bool per_flow_series = false) {
    r.gauge("flows.scheduled",
            [this] { return static_cast<double>(scheduled()); });
    r.gauge("flows.completed",
            [this] { return static_cast<double>(completed()); });
    r.gauge("flows.failed", [this] { return static_cast<double>(failed()); });
    if (per_flow_series) {
      for (const auto& c : conns_) {
        const uint32_t id = c->spec().id;
        r.series_gauge("flow." + std::to_string(id) + ".bytes", [this, id] {
          return static_cast<double>(rates_.cumulative_bytes(id));
        });
      }
    }
  }

 private:
  // One flow's settlement record, written by its destination shard's thread.
  struct Completion {
    sim::Time t;  // completion time (receiver clock)
    uint32_t id;
    uint64_t bytes;
    sim::Time fct;
  };
  struct ShardSink {
    stats::RateTracker rates;
    std::vector<Completion> completions;
  };
  // Per-group sinks for coexistence runs (serial only, so plain counters
  // would do — failed stays atomic for symmetry with failed_).
  struct GroupStats {
    size_t scheduled = 0;
    std::atomic<size_t> failed{0};
    stats::FctCollector fcts;
  };

  sim::Simulator& sim_;
  transport::Transport& transport_;
  std::vector<std::unique_ptr<transport::Connection>> conns_;
  stats::FctCollector fcts_;
  stats::RateTracker rates_;
  std::vector<std::unique_ptr<ShardSink>> sinks_;  // empty = serial
  const std::vector<uint32_t>* shard_of_ = nullptr;
  std::vector<std::unique_ptr<GroupStats>> groups_;   // empty = ungrouped
  std::vector<std::pair<uint32_t, size_t>> flow_group_;  // sorted by flow id
  size_t scheduled_ = 0;
  std::atomic<size_t> failed_{0};
};

}  // namespace xpass::runner
