// ScenarioSpec -> ScenarioEngine: the declarative experiment layer.
//
// A ScenarioSpec names everything a paper figure/table cell needs — the
// topology kind and scale, the protocol (plus ExpressPass overrides), the
// traffic pattern, the fault plan, the stop condition, and the telemetry to
// record — and ScenarioEngine::run() builds the network, drives the
// simulation, and returns a ScenarioResult with every standard measurement
// plus a stats::Recorder of named probes. Grids of specs (sweep axes) run
// through run_grid() on an exec::SweepRunner with deterministic,
// jobs-independent results.
//
// The engine reproduces the exact construction order of the hand-wired
// benches it replaced (simulator, topology, transport, flows — including
// the RNG draws for randomized start times), so a ported bench's default
// output is byte-identical to its pre-spec version. The golden tests in
// tests/golden/ pin that property.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/expresspass.hpp"
#include "net/topology.hpp"
#include "runner/faults.hpp"
#include "runner/protocols.hpp"
#include "sim/run_budget.hpp"
#include "stats/fct.hpp"
#include "stats/recorder.hpp"
#include "workload/flow_size_dist.hpp"

namespace xpass::runner {

// --- Shared experiment constants (single source of truth) -----------------
// §6.3 Clos fabric scale: 8 cores / 16 aggrs / 32 ToRs / 192 hosts at full
// (paper) scale, 3:1 oversubscribed at the ToR layer; quarter scale for the
// fast default runs. Consumed by the spec layer, bench/workload_runner.hpp,
// and the CLI — previously each had its own copy.
struct ClosScale {
  size_t n_core = 4;
  size_t pods = 4;
  size_t aggr_per_pod = 2;
  size_t tor_per_pod = 2;
  size_t hosts_per_tor = 6;
};
constexpr ClosScale clos_scale(bool full_scale) {
  return full_scale ? ClosScale{8, 8, 2, 4, 6} : ClosScale{4, 4, 2, 2, 6};
}
// Default seeds: the CLI / generic scenarios, and the §6.3 workload runs.
inline constexpr uint64_t kDefaultSeed = 1;
inline constexpr uint64_t kWorkloadSeed = 101;
inline constexpr uint64_t kDefaultFaultSeed = 0xfa17;

// --- Topology -------------------------------------------------------------
enum class TopologyKind {
  kDumbbell,         // `scale` sender/receiver pairs around one bottleneck
  kStar,             // `scale` hosts under one ToR
  kFatTree,          // k-ary fat tree (fat_tree_k)
  kClos,             // 3-tier oversubscribed Clos (clos scale)
  kParkingLot,       // chain with `scale` bottleneck links (Fig 10)
  kMultiBottleneck,  // 4-switch chain, `scale` 3-hop flows (Fig 11)
};

enum class HostDelay { kNone, kTestbed, kHardware };

struct TopologySpec {
  TopologyKind kind = TopologyKind::kDumbbell;
  size_t scale = 2;
  size_t fat_tree_k = 4;
  ClosScale clos = clos_scale(false);
  double host_rate_bps = 10e9;
  double fabric_rate_bps = 0;  // 0 = host rate
  sim::Time host_prop = sim::Time::us(1);
  sim::Time fabric_prop;  // zero = host_prop
  // Per-protocol queue/link parameters come from protocol_link_config();
  // these override individual knobs on top of it.
  std::optional<size_t> credit_queue_pkts;
  std::optional<double> host_credit_shaper_noise;
  HostDelay host_delay = HostDelay::kNone;
  bool packet_spraying = false;
  // Per-packet propagation jitter applied to every link (host and fabric):
  // each exact-mode delivery adds U(0, link_jitter) to the propagation
  // delay. Models variable last hops for the real-time scenarios; zero
  // (default) draws nothing, so legacy runs stay byte-identical. Serial
  // engine only — the parallel envelope rejects jittered links.
  sim::Time link_jitter;
};

// --- Traffic --------------------------------------------------------------
enum class TrafficKind {
  kPairwise,  // flow i: sender i -> receiver i (cycled); `flows` flows
  kIncast,    // hosts[1..] -> hosts[0], fan-in `flows`
  kShuffle,   // all-to-all between tasks_per_host tasks on every host
  kPoisson,   // poisson arrivals from a Table-2 size distribution @ `load`
  kChain,     // the topology-defined flows of parking-lot/multi-bottleneck
  kOnOff,     // media-style on/off sources: periodic refresh bursts
};

struct TrafficSpec {
  TrafficKind kind = TrafficKind::kPairwise;
  size_t flows = 2;  // pairwise count / incast fan-in / poisson flow count
  uint64_t bytes = transport::kLongRunning;
  // Pairwise: each flow starts at U(0, start_spread_sec), drawn in flow
  // order from the scenario RNG (0 = all start at t=0).
  double start_spread_sec = 0;
  size_t tasks_per_host = 4;  // shuffle
  workload::WorkloadKind workload = workload::WorkloadKind::kWebServer;
  double load = 0.6;  // poisson: target load on the ToR uplinks
  // Poisson load base override (bps). Unset: Clos uses the aggregate ToR
  // up-link capacity (§6.3), other topologies aggregate-host-rate / 3.
  std::optional<double> capacity_bps;
  // kOnOff: each of `flows` sources emits one refresh burst per cycle of
  // `on_period_sec`, phase-shifted by a per-source U(0, period) draw (one
  // draw per source, in source order, from the scenario RNG). The burst is
  // `bytes` when set; kLongRunning (the default) sizes it so the source
  // averages `on_duty` of its line rate — an application-limited pattern no
  // other TrafficKind can produce. Cycles cover the stop horizon.
  double on_period_sec = 0.01;
  double on_duty = 0.5;
  // Added to every flow id (flow i gets id salt + i + 1). Pure relabeling:
  // nothing else in the run may depend on it — the check::flow-relabel
  // metamorphic oracle pins that aggregate results are salt-invariant.
  uint32_t flow_id_salt = 0;
};

// --- Mixed-protocol flow groups -------------------------------------------
// Heterogeneous coexistence: when ScenarioSpec::flow_groups is non-empty,
// *all* traffic comes from the groups (spec.traffic is unused) and each
// group's flows are created through its own protocol's transport on the one
// shared fabric. The fabric's link configuration still comes from
// spec.protocol (the "primary" — put ExpressPass there so credit shapers
// exist); a kDctcp group additionally merges its ECN marking threshold into
// the shared queues. Group flow ids are salted apart (group g adds g<<20),
// preserving the flow-relabel invariant per group.
struct FlowGroupSpec {
  Protocol protocol = Protocol::kCubic;
  TrafficSpec traffic;
  // Informational entitlement weight used by the coexistence oracle and the
  // ext_coexistence bench (goodput share is normalized against it); the
  // engine itself does not enforce shares.
  double share = 1.0;
};

// --- Stop condition -------------------------------------------------------
enum class StopKind {
  kRunFor,      // run_until(horizon)
  kWindow,      // run warmup, snapshot, run window; rates are per-window
  kCompletion,  // run until every flow settles or `horizon` (deadline)
};

struct StopSpec {
  StopKind kind = StopKind::kRunFor;
  sim::Time horizon = sim::Time::ms(100);  // kRunFor / kCompletion deadline
  sim::Time warmup;  // kWindow
  sim::Time window;  // kWindow

  static StopSpec run_for(sim::Time horizon) {
    return {StopKind::kRunFor, horizon, {}, {}};
  }
  static StopSpec measure_window(sim::Time warmup, sim::Time window) {
    return {StopKind::kWindow, {}, warmup, window};
  }
  static StopSpec completion(sim::Time deadline) {
    return {StopKind::kCompletion, deadline, {}, {}};
  }
};

// --- Telemetry ------------------------------------------------------------
struct TelemetrySpec {
  // Zero = scalars only. Otherwise the engine samples every registered
  // series probe at this interval (stepping run_until, so sampling never
  // perturbs event order).
  sim::Time sample_interval;
  bool bottleneck_queue_series = false;  // "queue.bottleneck.bytes"
  bool per_port_queue_series = false;    // "queue.<switch>-><peer>.bytes"
  bool flow_rate_series = false;         // "flow.<id>.bytes" (cumulative)
};

// --- The spec -------------------------------------------------------------
struct ScenarioSpec {
  std::string name = "scenario";
  uint64_t seed = kDefaultSeed;
  TopologySpec topology;
  Protocol protocol = Protocol::kExpressPass;
  // ExpressPass parameter overrides (alpha, w_init, jitter, naive, ...).
  // make_transport() still pins update_period to base_rtt.
  std::optional<core::ExpressPassConfig> xp;
  sim::Time base_rtt = sim::Time::us(100);
  TrafficSpec traffic;
  // Mixed-protocol coexistence groups (see FlowGroupSpec). Empty = the
  // classic single-protocol path, byte-identical to every pre-existing run.
  // Serial engine only; the parallel envelope rejects mixed specs.
  std::vector<FlowGroupSpec> flow_groups;
  StopSpec stop;
  TelemetrySpec telemetry;
  // Faults target the first switch--switch link (or the first link when
  // the topology has none), exactly like the CLI always did.
  FaultScenario faults;
  uint64_t fault_seed = kDefaultFaultSeed;
  bool check_invariants = false;
  // Event-queue backend selector. The default hybrid queue routes near-term
  // events through the timing wheel; heap-only forces the pure 4-ary heap.
  // The two must produce byte-identical recorder output (the wheel is a
  // scheduling-structure swap, not a semantic change) — tests flip this to
  // prove it.
  bool heap_only_events = false;
  // Optional run budget (event / sim-time / wall-clock / live-event caps).
  // Exceeding a cap truncates the run gracefully: the result is still fully
  // measured and emitted, flagged aborted with the tripped budget's name.
  // Part of the spec — it round-trips through spec_json and participates in
  // campaign content addressing (a budgeted run IS a different experiment).
  std::optional<sim::RunBudget> budget;
  // Sharded parallel execution (sim::ParallelSimulator): the topology is
  // partitioned into this many shards, each running on its own thread with
  // conservative time-window synchronization. 0 or 1 = the serial core,
  // byte-identical to every pre-existing run. Shard count is part of the
  // experiment's identity: a sharded run is deterministic and reproducible
  // at a *fixed* shard count, but different counts produce different (all
  // individually valid) event interleavings. spec_json emits the field only
  // when > 1, so serial cache keys are unchanged. Not every spec can shard:
  // PFC links, delivery trains, and the kIdeal/kDcqcn/kTimely protocols
  // couple shards outside the credit/data packet streams and are rejected.
  size_t shards = 0;
};

// Per-invocation enforcement knobs that are NOT part of the experiment's
// identity: a campaign's --timeout-ms applies a wall-clock leash to every
// task without changing any spec (or its cache key — wall-clock truncations
// are machine-dependent and never cached anyway).
struct RunOverrides {
  double wall_clock_ms = 0;  // 0 = no override
};

// --- The result -----------------------------------------------------------
struct ScenarioResult {
  std::string name;
  uint64_t seed = 0;

  size_t scheduled = 0;
  size_t completed = 0;
  size_t failed = 0;
  bool all_completed = false;
  sim::Time end_time;

  uint64_t data_drops = 0;
  uint64_t credit_drops = 0;
  uint64_t stray_credits = 0;

  // Observation ("bottleneck") port: the dumbbell bottleneck, the incast
  // sink's downlink, parking-lot link 1, multi-bottleneck link 1. Zero for
  // topologies without a canonical bottleneck (Clos).
  uint64_t bottleneck_max_queue_bytes = 0;
  uint64_t bottleneck_queue_drops = 0;
  // tx_data_bytes across the measurement window (kWindow) / the whole run.
  uint64_t bottleneck_tx_data_bytes = 0;

  uint64_t max_switch_queue_bytes = 0;
  double avg_switch_queue_bytes = 0;  // time-weighted, over switch ports

  // Per-flow goodput (bits/sec) over the measurement window (kWindow) or
  // the whole run, ascending flow id. sum/jain are over the same values.
  std::vector<std::pair<uint32_t, double>> flow_rates;
  double sum_rate_bps = 0;
  double jain = 1.0;
  double rate_of(uint32_t flow) const {
    for (const auto& [id, r] : flow_rates) {
      if (id == flow) return r;
    }
    return 0.0;
  }

  stats::FctCollector fcts;

  // Per-group coexistence results (empty unless spec.flow_groups was set),
  // indexed like spec.flow_groups. goodput_share is this group's fraction
  // of sum_rate_bps; starved counts measured flows whose goodput fell under
  // 5% of the all-flow mean (the starvation criterion the coexistence
  // oracle and ext_coexistence bench both use).
  struct GroupResult {
    Protocol protocol = Protocol::kCubic;
    size_t scheduled = 0;
    size_t completed = 0;
    size_t failed = 0;
    size_t starved = 0;
    double goodput_bps = 0;
    double goodput_share = 0;
    double fct_avg_sec = 0;
    double fct_p99_sec = 0;
  };
  std::vector<GroupResult> groups;

  // ExpressPass only: wasted / received credits at senders, strays counted
  // in both (the Fig 20 metric).
  double credit_waste_ratio = 0;
  uint64_t credits_received = 0;  // incl. strays
  uint64_t credits_wasted = 0;    // incl. strays

  // Faults / invariants (zero / empty when not enabled).
  net::FaultStats fault_totals;
  uint64_t faults_fired = 0;
  uint64_t invariant_sweeps = 0;
  uint64_t invariant_violations = 0;
  std::vector<std::string> invariant_messages;

  // Budget truncation (RunBudget / RunOverrides). An aborted result is a
  // valid measurement of a shorter run: every scalar above is still filled,
  // but final invariant sweeps are skipped (a truncated network is mid-
  // flight by construction, not broken) and kWindow/kCompletion semantics
  // cover only the simulated portion.
  bool aborted = false;
  std::string abort_reason;  // sim::abort_reason_name spelling

  // Every scalar above plus any registered probe, for uniform JSON/CSV
  // emission (gauges are detached — safe to keep past the run).
  stats::Recorder recorder;
};

// --- The engine -----------------------------------------------------------
class ScenarioEngine {
 public:
  // Builds, runs, measures, tears down. Deterministic in (spec.seed, spec).
  ScenarioResult run(const ScenarioSpec& spec) const {
    return run(spec, RunOverrides{});
  }
  // Same, with caller-side enforcement overrides merged into the budget.
  ScenarioResult run(const ScenarioSpec& spec,
                     const RunOverrides& overrides) const;

  // Runs every spec of a sweep grid on an exec::SweepRunner (jobs == 0:
  // XPASS_JOBS / hardware concurrency). Results are index-ordered and
  // byte-identical for any worker count.
  std::vector<ScenarioResult> run_grid(const std::vector<ScenarioSpec>& grid,
                                       size_t jobs = 0) const;
};

// Sweep-axis expansion: one grid = base specs x axis values. apply(spec,
// value) mutates the copied spec; name_suffix values land in spec.name.
template <typename T, typename Fn>
std::vector<ScenarioSpec> expand_axis(const std::vector<ScenarioSpec>& base,
                                      const std::vector<T>& axis, Fn&& apply) {
  std::vector<ScenarioSpec> out;
  out.reserve(base.size() * axis.size());
  for (const ScenarioSpec& b : base) {
    for (const T& v : axis) {
      ScenarioSpec s = b;
      apply(s, v);
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace xpass::runner
