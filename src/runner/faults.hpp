// Scenario-level fault wiring: a declarative FaultScenario that runner
// configs / the CLI can fill in and apply to a topology's bottleneck link,
// plus registration of the cross-cutting network invariants (credit
// conservation, §3.1 data-queue bound, zero data loss) on an
// InvariantChecker.
#pragma once

#include <cstdint>

#include "net/fault_injector.hpp"
#include "net/topology.hpp"
#include "runner/flow_driver.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariants.hpp"

namespace xpass::runner {

// Declarative fault description for one target link. Zero times / empty
// error config mean "that fault disabled"; apply_fault_scenario turns the
// active parts into FaultPlan events via a FaultInjector.
struct FaultScenario {
  // Link flap: both directions down at `flap_down`, back up at `flap_up`.
  sim::Time flap_down;
  sim::Time flap_up;
  // Permanent link death at `kill_at` (never recovers).
  sim::Time kill_at;
  // What failing does to queued/in-flight frames.
  net::LinkFailMode fail_mode = net::LinkFailMode::kDrop;
  // Per-frame error model, active from t=0 for the whole run (opens a
  // permanent fault window: error injection counts as an active fault).
  net::LinkErrorConfig errors;

  bool has_flap() const {
    return flap_up > flap_down && flap_up > sim::Time::zero();
  }
  bool has_kill() const { return kill_at > sim::Time::zero(); }
  bool any() const { return has_flap() || has_kill() || errors.enabled(); }
};

// Adds the scenario's events to the injector's plan, all targeting the
// a--b link. Caller arms the plan afterwards.
void apply_fault_scenario(const FaultScenario& sc, net::FaultInjector& inj,
                          net::Node& a, net::Node& b);

struct NetInvariantOptions {
  // §3.1 zero-loss bound on any single switch data queue, enforced only
  // while no fault window is open. 0 disables the check.
  uint64_t data_queue_bound_bytes = 0;
  // Enforce "ExpressPass drops no data" while the network is healthy
  // (rebaselined across fault windows).
  bool expect_zero_data_loss = true;
};

// Registers the network-wide invariants on `chk`:
//   credit-conservation  — credits a network disposes of (delivered, stray,
//                          FCS-discarded, queue-dropped, error-dropped, cut
//                          in flight, unroutable) never exceed credits sent;
//   data-queue-bound     — switch data queues respect the §3.1 bound while
//                          no fault is active;
//   no-data-drops        — no new data-queue drops while healthy;
//   delivery-bounded     — no finite flow delivers more than its size.
// `plan` may be null (no faults: every check is unconditional).
void register_network_invariants(sim::InvariantChecker& chk,
                                 net::Topology& topo,
                                 const FlowDriver& driver,
                                 const sim::FaultPlan* plan,
                                 const NetInvariantOptions& opts = {});

}  // namespace xpass::runner
