#include "runner/protocols.hpp"

#include <algorithm>

#include "transport/bbr.hpp"
#include "transport/bfc.hpp"
#include "transport/cubic.hpp"
#include "transport/dcqcn.hpp"
#include "transport/dctcp.hpp"
#include "transport/dx.hpp"
#include "transport/hull.hpp"
#include "transport/ideal.hpp"
#include "transport/rcp.hpp"
#include "transport/sird.hpp"
#include "transport/timely.hpp"

namespace xpass::runner {

std::string_view protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kExpressPass: return "ExpressPass";
    case Protocol::kExpressPassNaive: return "ExpressPass-naive";
    case Protocol::kDctcp: return "DCTCP";
    case Protocol::kRcp: return "RCP";
    case Protocol::kHull: return "HULL";
    case Protocol::kDx: return "DX";
    case Protocol::kCubic: return "Cubic";
    case Protocol::kBbr: return "BBR";
    case Protocol::kDcqcn: return "DCQCN";
    case Protocol::kTimely: return "TIMELY";
    case Protocol::kSird: return "SIRD";
    case Protocol::kBfc: return "BFC";
    case Protocol::kIdeal: return "Ideal";
  }
  return "?";
}

std::optional<Protocol> parse_protocol(std::string_view name) {
  if (name == "expresspass" || name == "ExpressPass") {
    return Protocol::kExpressPass;
  }
  if (name == "naive" || name == "ExpressPass-naive") {
    return Protocol::kExpressPassNaive;
  }
  if (name == "dctcp" || name == "DCTCP") return Protocol::kDctcp;
  if (name == "rcp" || name == "RCP") return Protocol::kRcp;
  if (name == "hull" || name == "HULL") return Protocol::kHull;
  if (name == "dx" || name == "DX") return Protocol::kDx;
  if (name == "cubic" || name == "Cubic") return Protocol::kCubic;
  if (name == "bbr" || name == "BBR") return Protocol::kBbr;
  if (name == "dcqcn" || name == "DCQCN") return Protocol::kDcqcn;
  if (name == "timely" || name == "TIMELY") return Protocol::kTimely;
  if (name == "sird" || name == "SIRD") return Protocol::kSird;
  if (name == "bfc" || name == "BFC") return Protocol::kBfc;
  if (name == "ideal" || name == "Ideal") return Protocol::kIdeal;
  return std::nullopt;
}

double scale_for_rate(double value_at_10g, double rate_bps) {
  return value_at_10g * rate_bps / 10e9;
}

uint64_t default_queue_capacity(double rate_bps) {
  // 384.5KB = 250 x 1538B MTUs.
  return static_cast<uint64_t>(scale_for_rate(384'500.0, rate_bps));
}

uint64_t dctcp_k_bytes(double rate_bps) {
  return static_cast<uint64_t>(
      scale_for_rate(65.0 * net::kMaxWireBytes, rate_bps));
}

net::LinkConfig protocol_link_config(Protocol p, double rate_bps,
                                     sim::Time prop) {
  net::LinkConfig cfg;
  cfg.rate_bps = rate_bps;
  cfg.prop_delay = prop;
  cfg.data_queue.capacity_bytes = default_queue_capacity(rate_bps);
  switch (p) {
    case Protocol::kDctcp:
      cfg.data_queue.ecn_threshold_bytes = dctcp_k_bytes(rate_bps);
      break;
    case Protocol::kHull:
      cfg.data_queue =
          transport::hull_queue_config(cfg.data_queue, rate_bps);
      break;
    case Protocol::kDcqcn:
      // ECN marking plus PFC: RoCE-style lossless fabric.
      cfg.data_queue.ecn_threshold_bytes = dctcp_k_bytes(rate_bps);
      cfg.pfc = true;
      cfg.pfc_pause_bytes = cfg.data_queue.capacity_bytes / 2;
      cfg.pfc_resume_bytes = cfg.data_queue.capacity_bytes / 4;
      break;
    case Protocol::kTimely:
      cfg.pfc = true;
      cfg.pfc_pause_bytes = cfg.data_queue.capacity_bytes / 2;
      cfg.pfc_resume_bytes = cfg.data_queue.capacity_bytes / 4;
      break;
    case Protocol::kBfc:
      // The congestion control *is* the fabric: per-flow queues with
      // flow-granular pause one hop upstream (defaults in net::LinkConfig).
      cfg.hop_backpressure = true;
      break;
    default:
      break;
  }
  return cfg;
}

std::unique_ptr<transport::Transport> make_transport(
    Protocol p, sim::Simulator& sim, net::Topology& topo, sim::Time base_rtt,
    const core::ExpressPassConfig* xp) {
  switch (p) {
    case Protocol::kExpressPass:
    case Protocol::kExpressPassNaive: {
      core::ExpressPassConfig cfg = xp != nullptr ? *xp
                                                  : core::ExpressPassConfig{};
      cfg.update_period = base_rtt;
      if (p == Protocol::kExpressPassNaive) cfg.naive = true;
      return std::make_unique<core::ExpressPassTransport>(sim, cfg);
    }
    case Protocol::kDctcp: {
      transport::DctcpConfig cfg;
      cfg.window.base_rtt = base_rtt;
      return std::make_unique<transport::DctcpTransport>(sim, cfg);
    }
    case Protocol::kRcp: {
      topo.enable_rcp(base_rtt);
      transport::RcpConfig cfg;
      cfg.window.base_rtt = base_rtt;
      return std::make_unique<transport::RcpTransport>(sim, cfg);
    }
    case Protocol::kHull: {
      transport::HullConfig cfg;
      cfg.dctcp.window.base_rtt = base_rtt;
      cfg.dctcp.window.pacing = true;
      return std::make_unique<transport::HullTransport>(sim, cfg);
    }
    case Protocol::kDx: {
      transport::DxConfig cfg;
      cfg.window.base_rtt = base_rtt;
      return std::make_unique<transport::DxTransport>(sim, cfg);
    }
    case Protocol::kCubic: {
      transport::CubicConfig cfg;
      cfg.window.base_rtt = base_rtt;
      return std::make_unique<transport::CubicTransport>(sim, cfg);
    }
    case Protocol::kBbr: {
      transport::BbrConfig cfg;
      cfg.window.base_rtt = base_rtt;
      return std::make_unique<transport::BbrTransport>(sim, cfg);
    }
    case Protocol::kDcqcn: {
      transport::DcqcnConfig cfg;
      cfg.window.base_rtt = base_rtt;
      return std::make_unique<transport::DcqcnTransport>(sim, cfg);
    }
    case Protocol::kTimely: {
      transport::TimelyConfig cfg;
      cfg.window.base_rtt = base_rtt;
      // Scale the delay thresholds to the fabric's base RTT.
      cfg.t_low = base_rtt * 1.1;
      cfg.t_high = base_rtt * 3.0;
      return std::make_unique<transport::TimelyTransport>(sim, cfg);
    }
    case Protocol::kSird: {
      transport::SirdConfig cfg;
      const double rate = topo.hosts().empty()
                              ? 10e9
                              : topo.hosts().front()->nic().config().rate_bps;
      // Solicitation window ~1 fabric BDP, liveness probe one base RTT —
      // the same period granularity ExpressPass's feedback loop uses.
      const double bdp_bytes = rate * base_rtt.to_sec() / 8.0;
      cfg.solicitation_bytes = std::max<uint64_t>(
          4 * net::kMssBytes, static_cast<uint64_t>(bdp_bytes));
      cfg.probe_period = base_rtt;
      return std::make_unique<transport::SirdTransport>(sim, cfg);
    }
    case Protocol::kBfc: {
      transport::BfcConfig cfg;
      cfg.window.base_rtt = base_rtt;
      const double rate = topo.hosts().empty()
                              ? 10e9
                              : topo.hosts().front()->nic().config().rate_bps;
      const double bdp_pkts =
          rate * base_rtt.to_sec() / 8.0 / net::kMaxWireBytes;
      const uint32_t w = std::max(
          1u, static_cast<uint32_t>(cfg.bdp_multiplier * bdp_pkts));
      // Fixed window: no slow start, no congestion response.
      cfg.window.init_cwnd_pkts = w;
      cfg.window.min_cwnd_pkts = w;
      cfg.window.max_cwnd_pkts = w;
      return std::make_unique<transport::BfcTransport>(sim, cfg);
    }
    case Protocol::kIdeal:
      return std::make_unique<transport::IdealTransport>(sim, topo, 1.0);
  }
  return nullptr;
}

}  // namespace xpass::runner
