#include "net/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

#include "net/port.hpp"
#include "net/topology.hpp"

namespace xpass::net {

namespace {
constexpr uint32_t kUnassigned = std::numeric_limits<uint32_t>::max();
}  // namespace

Partition partition_topology(const Topology& topo, size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("partition: shards must be >= 1");
  }
  const size_t n = topo.num_nodes();
  Partition part;
  part.shards = shards;
  part.shard_of.assign(n, 0);
  if (shards == 1 || n == 0) return part;

  std::vector<char> is_host(n, 0);
  for (const Host* h : topo.hosts()) is_host[h->id()] = 1;

  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& l : topo.links()) {
    adj[l.a].push_back(l.b);
    adj[l.b].push_back(l.a);
  }

  // 1. Group hosts by first-hop switch (hosts have one NIC, enforced by
  // finalize()); a host whose single peer is another host leads its own
  // group. std::map keeps groups ordered by leader id.
  std::map<NodeId, std::vector<NodeId>> groups;
  for (const Host* h : topo.hosts()) {
    const NodeId id = h->id();
    NodeId key = id;
    if (!adj[id].empty() && !is_host[adj[id][0]]) key = adj[id][0];
    groups[key].push_back(id);
  }

  // 2. Deal groups out as contiguous runs balanced by host count: each
  // shard takes groups until it holds its fair share of the hosts still
  // unplaced (recomputed greedily so earlier rounding doesn't starve the
  // last shards).
  std::vector<uint32_t> shard(n, kUnassigned);
  size_t remaining_hosts = topo.hosts().size();
  size_t s = 0;
  size_t in_shard = 0;
  for (auto& [key, members] : groups) {
    const size_t shards_left = shards - s;
    const size_t target = (remaining_hosts + shards_left - 1) / shards_left;
    for (NodeId m : members) shard[m] = static_cast<uint32_t>(s);
    if (!is_host[key]) shard[key] = static_cast<uint32_t>(s);
    in_shard += members.size();
    if (in_shard >= target && s + 1 < shards) {
      remaining_hosts -= in_shard;
      ++s;
      in_shard = 0;
    }
  }

  // 3. Propagate to the rest of the fabric: a switch whose assigned
  // neighbors have a *unique* majority shard joins it; recompute each round
  // from the previous round's snapshot so intra-round order can't matter.
  // In a fat tree this pins every aggregation switch to its pod's shard in
  // one round, while core switches (which straddle all pods evenly) tie
  // and fall through to round-robin below.
  for (bool changed = true; changed;) {
    changed = false;
    std::vector<std::pair<NodeId, uint32_t>> newly;
    for (NodeId v = 0; v < n; ++v) {
      if (shard[v] != kUnassigned || is_host[v]) continue;
      std::vector<size_t> votes(shards, 0);
      bool any = false;
      for (NodeId u : adj[v]) {
        if (shard[u] != kUnassigned) {
          ++votes[shard[u]];
          any = true;
        }
      }
      if (!any) continue;
      size_t best = 0;
      bool unique = true;
      for (size_t i = 1; i < shards; ++i) {
        if (votes[i] > votes[best]) {
          best = i;
          unique = true;
        } else if (votes[i] == votes[best]) {
          unique = false;
        }
      }
      if (unique) newly.emplace_back(v, static_cast<uint32_t>(best));
    }
    for (auto& [v, sh] : newly) {
      shard[v] = sh;
      changed = true;
    }
  }

  // 4. Round-robin whatever is left (cores, isolated nodes) by node id.
  size_t rr = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (shard[v] == kUnassigned) {
      shard[v] = static_cast<uint32_t>(rr++ % shards);
    }
  }

  // Cut census and conservative lookahead.
  for (const auto& l : topo.links()) {
    if (shard[l.a] == shard[l.b]) continue;
    ++part.cut_links;
    const sim::Time d = l.pa->config().prop_delay;
    if (d <= sim::Time::zero()) {
      throw std::invalid_argument(
          "partition: cut link " + std::to_string(l.a) + "<->" +
          std::to_string(l.b) +
          " has zero propagation delay (no conservative lookahead)");
    }
    part.lookahead = std::min(part.lookahead, d);
  }

  part.shard_of = std::move(shard);
  return part;
}

}  // namespace xpass::net
