#include "net/queue.hpp"

#include <algorithm>

namespace xpass::net {

void DropTailQueue::account(sim::Time now) {
  stats_.byte_seconds +=
      static_cast<double>(bytes_) * (now - stats_.last_change).to_sec();
  stats_.last_change = now;
}

bool DropTailQueue::enqueue(Packet&& p, sim::Time now) {
  // Phantom queue sees every arrival regardless of acceptance: it models a
  // virtual link slower than the real one.
  if (cfg_.phantom_drain_bps > 0.0) {
    const double drained =
        (now - phantom_last_).to_sec() * cfg_.phantom_drain_bps / 8.0;
    phantom_bytes_ = std::max(0.0, phantom_bytes_ - drained);
    phantom_last_ = now;
    phantom_bytes_ += p.wire_bytes;
    if (phantom_bytes_ >
        static_cast<double>(cfg_.phantom_mark_bytes)) {
      p.ecn_ce = true;
      ++stats_.ecn_marked;
    }
  }
  if (bytes_ + p.wire_bytes > cfg_.capacity_bytes) {
    ++stats_.dropped;
    return false;
  }
  // DCTCP instantaneous marking: mark the arriving packet when the queue it
  // joins already exceeds K.
  if (cfg_.ecn_threshold_bytes > 0 && bytes_ >= cfg_.ecn_threshold_bytes) {
    if (!p.ecn_ce) ++stats_.ecn_marked;
    p.ecn_ce = true;
  }
  account(now);
  bytes_ += p.wire_bytes;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.wire_bytes;
  stats_.max_bytes = std::max(stats_.max_bytes, bytes_);
  if (cfg_.per_flow) {
    const FlowId flow = p.flow;
    auto [it, fresh] = flow_ix_.try_emplace(flow, flowqs_.size());
    if (fresh) flowqs_.push_back(std::make_unique<FlowQ>());
    FlowQ& fq = *flowqs_[it->second];
    fq.bytes += p.wire_bytes;
    fq.items.push_back(Item{std::move(p), now});
    ++pkts_;
    if (!fq.paused) {
      ++serviceable_pkts_;
      if (!fq.in_active) {
        fq.in_active = true;
        active_.push_back(size_t(it->second));
      }
    }
    stats_.max_packets = std::max(stats_.max_packets, pkts_);
  } else {
    items_.push_back(Item{std::move(p), now});
    stats_.max_packets = std::max(stats_.max_packets, items_.size());
  }
  return true;
}

Packet DropTailQueue::dequeue(sim::Time now) {
  account(now);
  if (cfg_.per_flow) {
    // Round-robin over serviceable flows; entries that went stale (paused
    // or drained) while queued in the rotation are discarded here.
    for (;;) {
      const size_t ix = active_.pop_front();
      FlowQ& fq = *flowqs_[ix];
      if (fq.paused || fq.items.empty()) {
        fq.in_active = false;
        continue;
      }
      Item it = fq.items.pop_front();
      fq.bytes -= it.pkt.wire_bytes;
      bytes_ -= it.pkt.wire_bytes;
      --pkts_;
      --serviceable_pkts_;
      if (fq.items.empty()) {
        fq.in_active = false;
      } else {
        active_.push_back(size_t(ix));  // back of the rotation
      }
      it.pkt.queue_delay += now - it.enq_time;
      return std::move(it.pkt);
    }
  }
  Item it = items_.pop_front();
  bytes_ -= it.pkt.wire_bytes;
  it.pkt.queue_delay += now - it.enq_time;
  return std::move(it.pkt);
}

DropTailQueue::FlowQ* DropTailQueue::flow_q(FlowId flow) {
  auto it = flow_ix_.find(flow);
  return it == flow_ix_.end() ? nullptr : flowqs_[it->second].get();
}

const DropTailQueue::FlowQ* DropTailQueue::flow_q(FlowId flow) const {
  auto it = flow_ix_.find(flow);
  return it == flow_ix_.end() ? nullptr : flowqs_[it->second].get();
}

void DropTailQueue::pause_flow(FlowId flow) {
  if (!cfg_.per_flow) return;
  // First-touch pause: a pause can arrive before the flow's first packet
  // does (the signal races the data it throttles), so create the flow
  // queue on demand rather than dropping the pause.
  auto [it, fresh] = flow_ix_.try_emplace(flow, flowqs_.size());
  if (fresh) flowqs_.push_back(std::make_unique<FlowQ>());
  FlowQ& fq = *flowqs_[it->second];
  if (fq.paused) return;
  fq.paused = true;
  serviceable_pkts_ -= fq.items.size();
}

void DropTailQueue::resume_flow(FlowId flow) {
  if (!cfg_.per_flow) return;
  FlowQ* fq = flow_q(flow);
  if (fq == nullptr || !fq->paused) return;
  fq->paused = false;
  serviceable_pkts_ += fq->items.size();
  if (!fq->items.empty() && !fq->in_active) {
    fq->in_active = true;
    active_.push_back(size_t(flow_ix_.find(flow)->second));
  }
}

bool DropTailQueue::flow_paused(FlowId flow) const {
  const FlowQ* fq = flow_q(flow);
  return fq != nullptr && fq->paused;
}

uint64_t DropTailQueue::flow_bytes(FlowId flow) const {
  const FlowQ* fq = flow_q(flow);
  return fq == nullptr ? 0 : fq->bytes;
}

size_t DropTailQueue::paused_flows() const {
  size_t n = 0;
  for (const auto& fq : flowqs_) n += fq->paused ? 1 : 0;
  return n;
}

bool CreditQueue::enqueue(Packet&& p, sim::Time now) {
  (void)now;
  if (items_.size() >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.wire_bytes;
  items_.push_back(std::move(p));
  stats_.max_packets = std::max(stats_.max_packets, items_.size());
  return true;
}

Packet CreditQueue::dequeue(sim::Time now) {
  (void)now;
  return items_.pop_front();
}

size_t DropTailQueue::clear(sim::Time now) {
  account(now);
  if (cfg_.per_flow) {
    const size_t n = pkts_;
    stats_.dropped += n;
    for (auto& fq : flowqs_) {
      fq->items.clear();
      fq->bytes = 0;
      fq->paused = false;  // a flushed link holds nothing back
      fq->in_active = false;
    }
    active_.clear();
    pkts_ = 0;
    serviceable_pkts_ = 0;
    bytes_ = 0;
    return n;
  }
  const size_t n = items_.size();
  stats_.dropped += n;
  items_.clear();
  bytes_ = 0;
  return n;
}

size_t CreditQueue::clear(sim::Time now) {
  (void)now;
  const size_t n = items_.size();
  stats_.dropped += n;
  items_.clear();
  return n;
}

}  // namespace xpass::net
