#include "net/queue.hpp"

#include <algorithm>

namespace xpass::net {

void DropTailQueue::account(sim::Time now) {
  stats_.byte_seconds +=
      static_cast<double>(bytes_) * (now - stats_.last_change).to_sec();
  stats_.last_change = now;
}

bool DropTailQueue::enqueue(Packet&& p, sim::Time now) {
  // Phantom queue sees every arrival regardless of acceptance: it models a
  // virtual link slower than the real one.
  if (cfg_.phantom_drain_bps > 0.0) {
    const double drained =
        (now - phantom_last_).to_sec() * cfg_.phantom_drain_bps / 8.0;
    phantom_bytes_ = std::max(0.0, phantom_bytes_ - drained);
    phantom_last_ = now;
    phantom_bytes_ += p.wire_bytes;
    if (phantom_bytes_ >
        static_cast<double>(cfg_.phantom_mark_bytes)) {
      p.ecn_ce = true;
      ++stats_.ecn_marked;
    }
  }
  if (bytes_ + p.wire_bytes > cfg_.capacity_bytes) {
    ++stats_.dropped;
    return false;
  }
  // DCTCP instantaneous marking: mark the arriving packet when the queue it
  // joins already exceeds K.
  if (cfg_.ecn_threshold_bytes > 0 && bytes_ >= cfg_.ecn_threshold_bytes) {
    if (!p.ecn_ce) ++stats_.ecn_marked;
    p.ecn_ce = true;
  }
  account(now);
  bytes_ += p.wire_bytes;
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.wire_bytes;
  stats_.max_bytes = std::max(stats_.max_bytes, bytes_);
  items_.push_back(Item{std::move(p), now});
  stats_.max_packets = std::max(stats_.max_packets, items_.size());
  return true;
}

Packet DropTailQueue::dequeue(sim::Time now) {
  account(now);
  Item it = items_.pop_front();
  bytes_ -= it.pkt.wire_bytes;
  it.pkt.queue_delay += now - it.enq_time;
  return std::move(it.pkt);
}

bool CreditQueue::enqueue(Packet&& p, sim::Time now) {
  (void)now;
  if (items_.size() >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  ++stats_.enqueued;
  stats_.bytes_enqueued += p.wire_bytes;
  items_.push_back(std::move(p));
  stats_.max_packets = std::max(stats_.max_packets, items_.size());
  return true;
}

Packet CreditQueue::dequeue(sim::Time now) {
  (void)now;
  return items_.pop_front();
}

size_t DropTailQueue::clear(sim::Time now) {
  account(now);
  const size_t n = items_.size();
  stats_.dropped += n;
  items_.clear();
  bytes_ = 0;
  return n;
}

size_t CreditQueue::clear(sim::Time now) {
  (void)now;
  const size_t n = items_.size();
  stats_.dropped += n;
  items_.clear();
  return n;
}

}  // namespace xpass::net
