#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace xpass::net {

Host& Topology::add_host(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "host" + std::to_string(id);
  auto h = std::make_unique<Host>(sim_, id, std::move(name));
  Host* raw = h.get();
  raw->set_liveness_epoch(&liveness_epoch_);
  nodes_.push_back(std::move(h));
  hosts_.push_back(raw);
  return *raw;
}

Switch& Topology::add_switch(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "sw" + std::to_string(id);
  auto s = std::make_unique<Switch>(sim_, id, std::move(name));
  Switch* raw = s.get();
  raw->set_liveness_epoch(&liveness_epoch_);
  nodes_.push_back(std::move(s));
  switches_.push_back(raw);
  return *raw;
}

std::pair<Port&, Port&> Topology::connect(Node& a, Node& b,
                                          const LinkConfig& cfg) {
  assert(!finalized_ && "connect() after finalize()");
  if (a.id() == b.id()) {
    throw std::invalid_argument("Topology::connect: self-loop on node '" +
                                a.name() + "'");
  }
  const uint64_t key =
      (static_cast<uint64_t>(std::min(a.id(), b.id())) << 32) |
      std::max(a.id(), b.id());
  if (!link_keys_.insert(key).second) {
    throw std::invalid_argument("Topology::connect: duplicate link between '" +
                                a.name() + "' and '" + b.name() +
                                "' (parallel links are not supported; "
                                "raise the link rate instead)");
  }
  Port& pa = a.add_port(cfg);
  Port& pb = b.add_port(cfg);
  pa.set_peer(&pb);
  pb.set_peer(&pa);
  links_.push_back(LinkRec{a.id(), b.id(), &pa, &pb});
  return {pa, pb};
}

void Topology::finalize() {
  assert(!finalized_);
  // A node with zero links is almost always a construction bug (a host that
  // never gets traffic, or a switch BFS silently routes around); likewise a
  // host with several NICs — Host::nic()/send() assume port 0 is the NIC.
  for (const auto& node : nodes_) {
    if (node->num_ports() == 0) {
      throw std::invalid_argument("Topology::finalize: node '" +
                                  node->name() +
                                  "' is dangling (no links connected)");
    }
    if (node->kind() == Node::Kind::kHost && node->num_ports() > 1) {
      throw std::invalid_argument(
          "Topology::finalize: host '" + node->name() + "' has " +
          std::to_string(node->num_ports()) +
          " links; hosts are single-NIC (port 0)");
    }
  }
  finalized_ = true;
  recompute_routes();
}

void Topology::recompute_routes() {
  assert(finalized_ && "recompute_routes() before finalize()");
  ++liveness_epoch_;  // new tables, new live-candidate caches
  const size_t n = nodes_.size();

  // Adjacency over live links only: a failed direction takes the whole
  // full-duplex link out of the control plane (credits and data must stay
  // path-symmetric, §3.1). Per node, (egress port, neighbor id), sorted by
  // neighbor id for deterministic ECMP ordering.
  std::vector<std::vector<std::pair<Port*, NodeId>>> adj(n);
  for (const LinkRec& l : links_) {
    if (!l.pa->is_up() || !l.pb->is_up()) continue;
    adj[l.a].push_back({l.pa, l.b});
    adj[l.b].push_back({l.pb, l.a});
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end(),
              [](const auto& x, const auto& y) { return x.second < y.second; });
  }

  // Per-switch route tables, destinations = hosts (the only endpoints).
  // Built directly in CSR form: candidates append to one flat array per
  // switch while counts accumulate in offsets[dst + 1]; a prefix sum at the
  // end turns counts into ranges. This relies on hosts_ being sorted by
  // node id (add_host assigns monotonically increasing ids), so candidates
  // arrive in destination order. The previous nested layout allocated one
  // inner vector per (switch, destination) pair — ~430k tiny vectors on a
  // k=16 fat tree — and that allocator churn dominated construction; the
  // CSR build does O(#switches) allocations total.
  const size_t ns = switches_.size();
  std::vector<RouteTable> tables(ns);
  for (RouteTable& t : tables) {
    t.offsets.assign(n + 1, 0);
    t.dist.assign(n, 0);
  }

  constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> dist(n);
  std::vector<NodeId> queue;
  queue.reserve(n);
  for (Host* dst : hosts_) {
    std::fill(dist.begin(), dist.end(), kInf);
    dist[dst->id()] = 0;
    queue.clear();
    queue.push_back(dst->id());
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId v = queue[head];
      for (const auto& [port, u] : adj[v]) {
        (void)port;
        if (dist[u] == kInf) {
          dist[u] = dist[v] + 1;
          queue.push_back(u);
        }
      }
    }
    for (size_t i = 0; i < ns; ++i) {
      const NodeId v = switches_[i]->id();
      if (dist[v] == kInf || dist[v] == 0) continue;
      RouteTable& t = tables[i];
      uint32_t count = 0;
      for (const auto& [port, u] : adj[v]) {
        if (dist[u] + 1 == dist[v]) {
          t.ports.push_back(port);
          ++count;
        }
      }
      t.offsets[dst->id() + 1] = count;
      t.dist[dst->id()] = dist[v];
    }
  }
  for (size_t i = 0; i < ns; ++i) {
    std::vector<uint32_t>& off = tables[i].offsets;
    for (size_t d = 1; d < off.size(); ++d) off[d] += off[d - 1];
    switches_[i]->set_routes(std::move(tables[i]));
  }
}

Port* Topology::port_between(const Node& a, const Node& b) {
  for (const LinkRec& l : links_) {
    if (l.a == a.id() && l.b == b.id()) return l.pa;
    if (l.b == a.id() && l.a == b.id()) return l.pb;
  }
  return nullptr;
}

std::vector<Port*> Topology::trace_path(NodeId src, NodeId dst, FlowId flow) {
  std::vector<Port*> path;
  Node* cur = nodes_[src].get();
  // First hop: host NIC.
  path.push_back(&cur->port(0));
  cur = &path.back()->peer()->owner();
  while (cur->id() != dst) {
    auto* sw = static_cast<Switch*>(cur);
    Port* out = sw->route(src, dst, flow);
    if (out == nullptr) return {};  // unroutable
    path.push_back(out);
    cur = &out->peer()->owner();
  }
  return path;
}

std::vector<Port*> Topology::switch_ports() {
  std::vector<Port*> out;
  for (Switch* sw : switches_) {
    for (size_t i = 0; i < sw->num_ports(); ++i) out.push_back(&sw->port(i));
  }
  return out;
}

void Topology::enable_rcp(sim::Time d0) {
  for (Port* p : switch_ports()) p->enable_rcp(d0);
  for (Host* h : hosts_) h->nic().enable_rcp(d0);
}

uint64_t Topology::data_drops() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    for (size_t i = 0; i < node->num_ports(); ++i) {
      total += node->port(i).data_queue().stats().dropped;
    }
  }
  return total;
}

uint64_t Topology::credit_drops() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    for (size_t i = 0; i < node->num_ports(); ++i) {
      Port& port = node->port(i);
      for (size_t c = 0; c < port.num_credit_classes(); ++c) {
        total += port.credit_queue(c).stats().dropped;
      }
    }
  }
  return total;
}

uint64_t Topology::max_switch_data_queue_bytes() const {
  uint64_t m = 0;
  for (const Switch* sw : switches_) {
    for (size_t i = 0; i < sw->num_ports(); ++i) {
      m = std::max(m, sw->port(i).data_queue().stats().max_bytes);
    }
  }
  return m;
}

uint64_t Topology::stray_credits() const {
  uint64_t total = 0;
  for (const Host* h : hosts_) total += h->stray_credits();
  return total;
}

}  // namespace xpass::net
