#include "net/token_bucket.hpp"

#include <algorithm>

namespace xpass::net {

void TokenBucket::refill(sim::Time now) {
  if (now <= last_) return;
  const double dt = (now - last_).to_sec();
  tokens_ = std::min(burst_, tokens_ + dt * rate_);
  last_ = now;
}

bool TokenBucket::try_consume(double bytes, sim::Time now) {
  refill(now);
  if (tokens_ + 1e-9 < bytes) return false;
  tokens_ -= bytes;
  return true;
}

sim::Time TokenBucket::time_until(double bytes, sim::Time now) {
  refill(now);
  if (tokens_ + 1e-9 >= bytes) return sim::Time::zero();
  const double deficit = bytes - tokens_;
  if (rate_ <= 0.0) return kNever;
  const double wait_sec = deficit / rate_;
  if (wait_sec > kMaxWaitSec) return kNever;
  // Never round down to zero: a 0-wait answer to a failed try_consume would
  // spin the caller's retry loop at the same timestamp forever.
  return std::max(sim::Time::seconds(wait_sec), sim::Time::ps(1));
}

}  // namespace xpass::net
