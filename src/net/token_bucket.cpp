#include "net/token_bucket.hpp"

#include <algorithm>
#include <cmath>

namespace xpass::net {

void TokenBucket::refill(sim::Time now) {
  if (now <= last_) return;
  const double dt = (now - last_).to_sec();
  tokens_ = std::min(burst_, tokens_ + dt * rate_);
  last_ = now;
}

bool TokenBucket::try_consume(double bytes, sim::Time now) {
  refill(now);
  if (tokens_ + 1e-9 < bytes) return false;
  tokens_ -= bytes;
  return true;
}

sim::Time TokenBucket::time_until(double bytes, sim::Time now) {
  refill(now);
  if (tokens_ + 1e-9 >= bytes) return sim::Time::zero();
  const double deficit = bytes - tokens_;
  if (rate_ <= 0.0) return kNever;
  const double wait_sec = deficit / rate_;
  if (wait_sec > kMaxWaitSec) return kNever;
  // Round the wait UP to the next picosecond. Time::seconds() rounds to
  // nearest, so a wakeup computed from deficit/rate could land 1 ps before
  // the tokens actually suffice; the rescheduled try_consume then fails and
  // the shaper burns a spurious retry event for every credit it emits.
  // (The 1 ps floor also keeps a failed try_consume from retrying at the
  // same timestamp forever.)
  sim::Time wait = std::max(
      sim::Time::ps(static_cast<int64_t>(std::ceil(wait_sec * 1e12))),
      sim::Time::ps(1));
  // ceil() in double can still be a hair early once wait_sec itself was
  // rounded; verify against the same arithmetic try_consume will use and
  // nudge forward until the retry is guaranteed to succeed.
  while (tokens_ + wait.to_sec() * rate_ + 1e-9 < bytes &&
         wait < sim::Time::seconds(kMaxWaitSec)) {
    wait += sim::Time::ps(1);
  }
  return wait;
}

}  // namespace xpass::net
