#include "net/host.hpp"

#include <algorithm>
#include <cmath>

namespace xpass::net {

sim::Time HostDelayModel::sample(sim::Rng& rng) const {
  switch (kind) {
    case Kind::kNone:
      return sim::Time::zero();
    case Kind::kUniform:
      return sim::Time::seconds(
          rng.uniform(min.to_sec(), max.to_sec()));
    case Kind::kLogNormal: {
      const double mu = std::log(lognorm_median_us * 1e-6);
      const double v = rng.lognormal(mu, lognorm_sigma);
      return std::clamp(sim::Time::seconds(v), min, max);
    }
  }
  return sim::Time::zero();
}

void Host::receive(Packet&& p, Port& in) {
  (void)in;
  // Bad FCS: the NIC verifies the frame checksum and silently discards
  // corrupted frames — the transport only ever sees the resulting silence
  // (a credit-sequence gap, or a data hole the receiver keeps crediting
  // for). Switches, being cut-through, forwarded it anyway.
  if (p.corrupted) {
    if (is_credit_class(p.type)) {
      ++corrupt_credit_drops_;
    } else {
      ++corrupt_data_drops_;
    }
    return;
  }
  auto it = handlers_.find(p.flow);
  if (it == handlers_.end()) {
    if (p.type == PktType::kCredit) ++stray_credits_;
    return;
  }
  it->second(std::move(p));
}

}  // namespace xpass::net
