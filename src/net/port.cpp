#include "net/port.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "net/node.hpp"
#include "net/packet_pool.hpp"

namespace xpass::net {

namespace {
// splitmix64 finalizer (same mixer as the ECMP hash).
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

DropTailQueue::Config data_queue_config(const LinkConfig& cfg) {
  DropTailQueue::Config q = cfg.data_queue;
  q.per_flow = cfg.hop_backpressure;  // flow-level pause needs flow queues
  return q;
}
}  // namespace

Port::Port(sim::Simulator& sim, Node& owner, LinkConfig cfg)
    : sim_(&sim),
      owner_(owner),
      cfg_(cfg),
      shape_credits_(owner.kind() == Node::Kind::kSwitch ||
                     cfg.host_shapes_credits),
      shaper_noise_(owner.kind() == Node::Kind::kHost
                        ? cfg.host_credit_shaper_noise
                        : 0.0),
      data_q_(data_queue_config(cfg)),
      class_weights_(cfg.credit_class_weights.empty()
                         ? std::vector<double>{1.0}
                         : cfg.credit_class_weights),
      class_served_(class_weights_.size(), 0.0),
      credit_shaper_(cfg.rate_bps / 8.0 * cfg.credit_rate_fraction,
                     cfg.credit_burst_bytes) {
  if (cfg_.prop_jitter > sim::Time::zero() &&
      cfg_.train_window > sim::Time::zero()) {
    throw std::invalid_argument(
        "LinkConfig: prop_jitter is incompatible with train_window (the "
        "train FIFO assumes monotonic wire arrivals)");
  }
  for (size_t i = 0; i < class_weights_.size(); ++i) {
    credit_qs_.emplace_back(cfg.credit_queue_pkts);
  }
}

void Port::enqueue(Packet&& p) {
  const sim::Time now = sim_->now();
  if (is_credit_class(p.type)) {
    const size_t cls =
        std::min<size_t>(p.credit_class, credit_qs_.size() - 1);
    if (credit_qs_[cls].empty()) rebaseline_credit_class(cls);
    credit_qs_[cls].enqueue(std::move(p), now);
  } else {
    // RCP stamps forward-path packets (data and the SYN rate probe) with the
    // min of the per-port advertised rates.
    if (rcp_ && (p.type == PktType::kData || p.type == PktType::kSyn)) {
      if (p.type == PktType::kData) rcp_->bytes_in += p.wire_bytes;
      if (p.rcp_rate_bps == 0.0 || rcp_->rate_bps < p.rcp_rate_bps) {
        p.rcp_rate_bps = rcp_->rate_bps;
      }
    }
    const FlowId flow = p.flow;
    data_q_.enqueue(std::move(p), now);
    check_pfc();
    if (cfg_.hop_backpressure) check_flow_bp(flow);
  }
  if (up_ && now < free_at_) {
    // Serializer busy: the queues are non-empty (even a drop-on-full leaves
    // the full queue behind), so skip try_transmit's rescan and just make
    // sure the service wakeup is armed.
    schedule_kick();
    return;
  }
  try_transmit();
}

void Port::check_pfc() {
  if (!cfg_.pfc || owner_.kind() != Node::Kind::kSwitch) return;
  if (!pause_sent_ && data_q_.bytes() > cfg_.pfc_pause_bytes) {
    pause_sent_ = true;
    signal_pfc(true);
  } else if (pause_sent_ && data_q_.bytes() < cfg_.pfc_resume_bytes) {
    pause_sent_ = false;
    signal_pfc(false);
  }
}

void Port::signal_pfc(bool pause) {
  // Coarse PFC: pause every link feeding this switch. PAUSE frames are
  // link-level control, modeled as a direct (propagation-delayed) signal
  // to the upstream transmitter.
  for (size_t i = 0; i < owner_.num_ports(); ++i) {
    Port& ingress = owner_.port(i);
    Port* upstream = ingress.peer();
    if (upstream == nullptr) continue;
    sim_->after(ingress.config().prop_delay, [upstream, pause] {
      if (pause) {
        upstream->pfc_pause();
      } else {
        upstream->pfc_resume();
      }
    });
  }
}

void Port::pfc_resume() {
  if (pause_count_ == 0) return;
  if (--pause_count_ == 0) try_transmit();
}

void Port::note_flow_ingress(FlowId flow, Port* upstream) {
  if (!cfg_.hop_backpressure || upstream == nullptr) return;
  auto [it, fresh] = bp_ix_.try_emplace(flow, bp_entries_.size());
  if (fresh) {
    bp_entries_.push_back(BpEntry{flow, upstream, false, true});
    ++bp_live_;
  } else {
    // A rerouted flow pauses at its latest hop; the stale hop's pause (if
    // any) lifts when this egress drains below the resume threshold.
    bp_entries_[it->second].upstream = upstream;
  }
}

void Port::check_flow_bp(FlowId flow) {
  auto it = bp_ix_.find(flow);
  if (it == bp_ix_.end()) return;  // locally sourced: nothing to pause
  BpEntry& e = bp_entries_[it->second];
  const uint64_t backlog = data_q_.flow_bytes(flow);
  Port* const up = e.upstream;
  if (!e.paused && backlog > cfg_.flow_pause_bytes) {
    e.paused = true;
    ++flow_pause_events_;
    // Pause frames are link-level control riding the reverse direction of
    // the ingress link, modeled as a propagation-delayed signal.
    sim_->after(up->config().prop_delay, [up, flow] { up->flow_pause(flow); });
  } else if (e.paused && backlog < cfg_.flow_resume_bytes) {
    e.paused = false;
    sim_->after(up->config().prop_delay,
                [up, flow] { up->flow_resume(flow); });
  } else if (!e.paused && backlog == 0) {
    // Drained and unpaused: tombstone, keeping the table bounded by the
    // flows actually queued or paused here.
    e.live = false;
    bp_ix_.erase(it);
    --bp_live_;
    if (bp_live_ == 0) {
      bp_entries_.clear();
    } else if (bp_entries_.size() > 2 * bp_live_ + 16) {
      // Compact tombstones, preserving arrival order.
      std::vector<BpEntry> keep;
      keep.reserve(bp_live_);
      for (const BpEntry& b : bp_entries_) {
        if (b.live) keep.push_back(b);
      }
      bp_entries_ = std::move(keep);
      bp_ix_.clear();
      for (size_t i = 0; i < bp_entries_.size(); ++i) {
        bp_ix_.emplace(bp_entries_[i].flow, i);
      }
    }
  }
}

void Port::release_flow_bp() {
  for (const BpEntry& e : bp_entries_) {
    if (!e.live || !e.paused) continue;
    Port* const up = e.upstream;
    const FlowId flow = e.flow;
    sim_->after(up->config().prop_delay, [up, flow] { up->flow_resume(flow); });
  }
  bp_entries_.clear();
  bp_ix_.clear();
  bp_live_ = 0;
}

void Port::flow_pause(FlowId flow) {
  if (!cfg_.hop_backpressure) return;
  data_q_.pause_flow(flow);
}

void Port::flow_resume(FlowId flow) {
  if (!cfg_.hop_backpressure) return;
  data_q_.resume_flow(flow);
  if (up_) try_transmit();
}

bool Port::work_queued() const {
  if (data_q_.serviceable()) return true;
  for (const CreditQueue& q : credit_qs_) {
    if (!q.empty()) return true;
  }
  return false;
}

void Port::schedule_kick() {
  if (kick_pending_) return;
  kick_pending_ = true;
  sim_->at(free_at_, [this] {
    kick_pending_ = false;
    ++kick_events_;
    try_transmit();
  });
}

void Port::try_transmit() {
  if (!up_) return;
  const sim::Time now = sim_->now();
  if (now < free_at_) {
    // Serializer busy. Every caller that can add work lands here; arm the
    // wakeup at serializer-free time once (the legacy path armed it
    // unconditionally at transmission start).
    if (work_queued()) schedule_kick();
    return;
  }

  Packet pkt;
  const size_t cls = pick_credit_class();
  const double cost = cls == SIZE_MAX ? 0.0 : credit_cost(cls);
  if (cls != SIZE_MAX &&
      (!shape_credits_ || credit_shaper_.try_consume(cost, now))) {
    pkt = credit_qs_[cls].dequeue(now);
    class_served_[cls] += pkt.wire_bytes;
    rebase_credit_accumulators();
    ++tx_credits_;
  } else if (data_q_.serviceable() && !data_paused()) {
    pkt = data_q_.dequeue(now);
    tx_data_bytes_ += pkt.wire_bytes;
    check_pfc();
    if (cfg_.hop_backpressure) check_flow_bp(pkt.flow);
  } else if (cls != SIZE_MAX) {
    // Only shaped credits are waiting: wake up when tokens suffice.
    if (!retry_pending_) {
      const sim::Time wait = credit_shaper_.time_until(cost, now);
      // A dead shaper (zero-rate link) never accrues tokens; don't schedule
      // a wakeup at the sentinel — recovery re-kicks transmission.
      if (wait == TokenBucket::kNever) return;
      retry_pending_ = true;
      sim_->after(wait, [this] {
        retry_pending_ = false;
        ++retry_events_;
        try_transmit();
      });
    }
    return;
  } else {
    return;
  }

  ++tx_packets_;
  tx_bytes_ += pkt.wire_bytes;
  const sim::Time tx = sim::tx_time(pkt.wire_bytes, cfg_.rate_bps);
  free_at_ = now + tx;
  assert(peer_ != nullptr && "port not connected");
  if (cfg_.train_window > sim::Time::zero()) {
    // Train mode: park the frame on the wire FIFO; one drain event per
    // train delivers every frame whose arrival falls inside the window.
    wire_fifo_.push_back(WireFrame{free_at_ + cfg_.prop_delay,
                                   PacketRef(std::move(pkt))});
    // Burst service: when no credit is contending for the serializer, the
    // rest of the data backlog transmits in this same event — each frame's
    // wire arrival stays exact (free_at_ advances per frame), but the
    // per-frame serializer-done kicks vanish. Without this, coalescing
    // deliveries just converts delivery events into kick events one-for-one
    // on backlogged ports. (Approximation: a credit arriving mid-burst
    // window waits out the burst instead of preempting between frames.)
    if (pick_credit_class() == SIZE_MAX) {
      while (data_q_.serviceable() && !data_paused()) {
        Packet d = data_q_.dequeue(now);
        ++tx_packets_;
        tx_bytes_ += d.wire_bytes;
        tx_data_bytes_ += d.wire_bytes;
        check_pfc();
        if (cfg_.hop_backpressure) check_flow_bp(d.flow);
        free_at_ = free_at_ + sim::tx_time(d.wire_bytes, cfg_.rate_bps);
        wire_fifo_.push_back(WireFrame{free_at_ + cfg_.prop_delay,
                                       PacketRef(std::move(d))});
      }
    } else if (!data_q_.serviceable()) {
      // Credit-only burst (the reverse path of a chain): serve the whole
      // shaped backlog in this event by computing each credit's exact token
      // departure analytically. Arrivals on the wire are identical to the
      // retry-per-credit schedule — time_until rounds up, so the consume at
      // the computed instant always succeeds — but a backlog of k credits
      // costs one event instead of k retries. WFQ interleaving is preserved
      // (class selection re-runs per credit against the updated deficits).
      sim::Time depart = free_at_;
      size_t bcls;
      while ((bcls = pick_credit_class()) != SIZE_MAX) {
        const double bcost = credit_cost(bcls);
        if (shape_credits_) {
          const sim::Time wait = credit_shaper_.time_until(bcost, depart);
          if (wait == TokenBucket::kNever) break;
          depart = depart + wait;
          if (!credit_shaper_.try_consume(bcost, depart)) break;
        }
        Packet c = credit_qs_[bcls].dequeue(now);
        class_served_[bcls] += c.wire_bytes;
        rebase_credit_accumulators();
        ++tx_credits_;
        ++tx_packets_;
        tx_bytes_ += c.wire_bytes;
        free_at_ = depart + sim::tx_time(c.wire_bytes, cfg_.rate_bps);
        depart = free_at_;
        wire_fifo_.push_back(WireFrame{free_at_ + cfg_.prop_delay,
                                       PacketRef(std::move(c))});
      }
    }
    if (cfg_.legacy_tx_events || work_queued()) schedule_kick();
    schedule_train_drain();
    return;
  }
  // One event per transmission: the delivery at tx+prop. A serializer-done
  // kick is added only when something is already waiting to be served then
  // (scheduled before the delivery, preserving the legacy event order for
  // same-timestamp ties).
  if (cfg_.legacy_tx_events || work_queued()) schedule_kick();
  if (remote_peer()) {
    // The peer lives in another shard: hand the delivery to the barrier's
    // cross-shard channel at the identical arrival instant. The packet
    // crosses by value (64-byte POD) — pool slots are shard-owned and never
    // travel. The lookahead guarantees free_at_ + prop lands at or beyond
    // the current window's end, so the destination thread has not passed it.
    psim_->post(self_shard_, peer_shard_, free_at_ + cfg_.prop_delay,
                [this, p = pkt]() mutable { deliver_to_peer(std::move(p)); });
    return;
  }
  // The packet rides the wire in a pool slot: the capture is [this + one
  // pointer], which stays inside the event queue's inline callback buffer
  // (a by-value Packet capture would spill to the allocator every hop).
  sim::Time prop = cfg_.prop_delay;
  if (cfg_.prop_jitter > sim::Time::zero()) {
    prop = prop + sim::Time::seconds(
                      sim_->rng().uniform(0.0, cfg_.prop_jitter.to_sec()));
  }
  sim_->after(tx + prop,
             [this, r = PacketRef(std::move(pkt))]() mutable {
               deliver_to_peer(std::move(*r));
             });
}

void Port::schedule_train_drain() {
  if (train_pending_ || wire_fifo_.empty()) return;
  train_pending_ = true;
  sim_->at(wire_fifo_.front().arrival + cfg_.train_window,
          [this] { drain_train(); });
}

void Port::drain_train() {
  train_pending_ = false;
  ++train_events_;
  const sim::Time now = sim_->now();
  // Deliver in arrival order, but only frames that have truly reached the
  // peer by now — a train longer than the window leaves its tail for the
  // next drain, so no frame is ever delivered before its wire arrival.
  while (!wire_fifo_.empty() && wire_fifo_.front().arrival <= now) {
    WireFrame f = wire_fifo_.pop_front();
    ++train_frames_;
    deliver_to_peer(std::move(*f.pkt));
  }
  schedule_train_drain();
}

void Port::deliver_to_peer(Packet&& p) {
  // A link cut with drop semantics loses frames already on the wire. (If the
  // link flapped down and back up before the frame's arrival instant, the
  // frame survives — the cut only claims what is in flight while it holds.)
  if (!up_ && fail_mode_ == LinkFailMode::kDrop) {
    if (is_credit_class(p.type)) {
      ++fault_.cut_credits;
    } else {
      ++fault_.cut_data;
    }
    return;
  }
  if (error_) {
    switch (error_->roll(p)) {
      case LinkError::Outcome::kDrop:
        if (is_credit_class(p.type)) {
          ++fault_.injected_credit_drops;
        } else {
          ++fault_.injected_data_drops;
        }
        return;
      case LinkError::Outcome::kCorrupt:
        p.corrupted = true;
        if (is_credit_class(p.type)) {
          ++fault_.corrupted_credits;
        } else {
          ++fault_.corrupted_data;
        }
        break;
      case LinkError::Outcome::kDeliver:
        break;
    }
  }
  peer_->owner().receive(std::move(p), *peer_);
}

void Port::fail(LinkFailMode mode) {
  fail_mode_ = mode;
  if (!up_) return;  // already down; only the (possibly escalated) mode sticks
  up_ = false;
  owner_.bump_liveness_epoch();  // invalidate cached live-candidate tables
  ++fault_.failures;
  if (mode == LinkFailMode::kDrop) {
    const sim::Time now = sim_->now();
    fault_.flushed_data += data_q_.clear(now);
    for (CreditQueue& q : credit_qs_) fault_.flushed_credits += q.clear(now);
  }
  // A failing egress must not leave flows stuck paused at upstream hops:
  // drop the pause table and lift every pause it had asserted.
  if (cfg_.hop_backpressure) release_flow_bp();
}

void Port::recover() {
  if (up_) return;
  up_ = true;
  owner_.bump_liveness_epoch();
  ++fault_.recoveries;
  credit_shaper_.reset(sim_->now());
  try_transmit();
}

void Port::set_error_model(const LinkErrorConfig& cfg, uint64_t seed) {
  error_ = std::make_unique<LinkError>(cfg, seed);
}

void Port::rebaseline_credit_class(size_t cls) {
  // A class returning from idle still carries the served-bytes counter it
  // went idle with, which is stale: the classes that stayed backlogged kept
  // accumulating, so the returning class's key (served/weight) can be
  // arbitrarily far in the past and pick_credit_class would serve it
  // exclusively until it "catches up" — monopolizing the shaped credit
  // bandwidth and starving its peers for as long as it was idle. Classic
  // WFQ restarts an arriving flow at the current virtual time; the
  // equivalent here is clamping the returning class's normalized
  // served-bytes up to the minimum over the currently backlogged classes.
  if (credit_qs_.size() == 1) return;  // no peers to rebaseline against
  double min_key = -1.0;
  for (size_t i = 0; i < credit_qs_.size(); ++i) {
    if (i == cls || credit_qs_[i].empty()) continue;
    const double key = class_served_[i] / class_weights_[i];
    if (min_key < 0.0 || key < min_key) min_key = key;
  }
  if (min_key > 0.0) {
    class_served_[cls] =
        std::max(class_served_[cls], min_key * class_weights_[cls]);
  }
}

void Port::rebase_credit_accumulators() {
  // Keep the served-byte accumulators bounded. The scheduler compares
  // normalized keys served[i]/weight[i], so the only rebase that preserves
  // the scheduling order is a *virtual-time* shift: subtract weight[i] * V
  // from every class, where V is the smallest backlogged normalized key.
  // (Subtracting a common byte count instead would shift each key by a
  // different amount — min/w[i] — and reorder unequal-weight classes.)
  // Without the rebase the accumulators only ever grow; past ~2^53 bytes a
  // double can no longer represent +84-byte increments, the largest (i.e.
  // highest-weight) accumulator freezes first, and its class monopolizes the
  // shaped bandwidth — starving low-weight classes on long campaigns.
  if (class_served_.size() == 1) {
    // Single class: the accumulator is never compared, only displayed.
    if (class_served_[0] > cfg_.wfq_rebase_bytes) class_served_[0] = 0.0;
    return;
  }
  double max_served = class_served_[0];
  for (double v : class_served_) max_served = std::max(max_served, v);
  if (max_served <= cfg_.wfq_rebase_bytes) return;
  double v_min = -1.0;
  for (size_t i = 0; i < credit_qs_.size(); ++i) {
    if (credit_qs_[i].empty()) continue;
    const double key = class_served_[i] / class_weights_[i];
    if (v_min < 0.0 || key < v_min) v_min = key;
  }
  if (v_min < 0.0) {
    // Nothing backlogged (the serve that crossed the threshold emptied the
    // last queue): anchor on the global max so everything rebases to ~0.
    // Idle classes are re-anchored by rebaseline_credit_class on return, so
    // their exact residue is irrelevant.
    for (size_t i = 0; i < class_served_.size(); ++i) {
      v_min = std::max(v_min, class_served_[i] / class_weights_[i]);
    }
  }
  // Backlogged keys sit within one credit of V (WFQ serves the minimum), so
  // their rebased values restart near zero; stale idle classes clamp at 0.
  for (size_t i = 0; i < class_served_.size(); ++i) {
    class_served_[i] =
        std::max(0.0, class_served_[i] - class_weights_[i] * v_min);
  }
}

size_t Port::pick_credit_class() const {
  // Weighted fair selection: among backlogged classes, serve the one whose
  // served-bytes / weight is smallest (deficit-style WFQ over the shaped
  // credit bandwidth).
  if (credit_qs_.size() == 1) return credit_qs_[0].empty() ? SIZE_MAX : 0;
  size_t best = SIZE_MAX;
  double best_key = 0.0;
  for (size_t i = 0; i < credit_qs_.size(); ++i) {
    if (credit_qs_[i].empty()) continue;
    const double key = class_served_[i] / class_weights_[i];
    if (best == SIZE_MAX || key < best_key) {
      best = i;
      best_key = key;
    }
  }
  return best;
}

double Port::credit_cost(size_t cls) const {
  const Packet& front = credit_qs_[cls].front();
  double cost = front.wire_bytes;
  if (shaper_noise_ > 0.0) {
    // Zero-mean noise, deterministic per credit: re-rolling on shaper
    // retries would bias admission toward cheap rolls and silently lift the
    // credit rate above the configured fraction — and the retry wait must
    // be computed against the same cost the consume will use.
    const uint64_t h =
        mix64((static_cast<uint64_t>(front.flow) << 32) ^ front.seq);
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 4503599627370495.5) - 1.0;
    cost *= 1.0 + shaper_noise_ * u;
  }
  return cost;
}

void Port::enable_rcp(sim::Time d0) {
  if (rcp_) return;
  rcp_ = std::make_unique<RcpState>();
  rcp_->d0 = d0;
  rcp_->rate_bps = cfg_.rate_bps;  // flows start at the advertised rate
  sim_->after(d0, [this] { rcp_update(); });
}

void Port::rcp_update() {
  RcpState& s = *rcp_;
  const double capacity = cfg_.rate_bps;
  const double interval = s.d0.to_sec();
  const double y = static_cast<double>(s.bytes_in) * 8.0 / interval;
  const double q_bits = static_cast<double>(data_q_.bytes()) * 8.0;
  const double delta =
      (interval / s.d0.to_sec()) *
      (s.alpha * (capacity - y) - s.beta * q_bits / s.d0.to_sec()) / capacity;
  s.rate_bps = s.rate_bps * (1.0 + delta);
  s.rate_bps = std::clamp(s.rate_bps, capacity * 1e-4, capacity);
  s.bytes_in = 0;
  sim_->after(s.d0, [this] { rcp_update(); });
}

// Node methods that need Port's full definition ---------------------------

Node::~Node() = default;

Port& Node::add_port(const LinkConfig& cfg) {
  ports_.push_back(std::make_unique<Port>(*sim_, *this, cfg));
  return *ports_.back();
}

void Node::rebind_simulator(sim::Simulator& sim) {
  sim_ = &sim;
  for (auto& p : ports_) p->rebind(sim);
}

}  // namespace xpass::net
