#include "net/switch.hpp"

#include <algorithm>

namespace xpass::net {

namespace {
// splitmix64 finalizer: cheap, well-mixed.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

uint64_t Switch::symmetric_hash(NodeId a, NodeId b, FlowId flow) {
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  return mix((lo << 40) ^ (hi << 20) ^ flow);
}

const std::vector<Port*>* Switch::live_candidates(NodeId dst) const {
  // Exclude failed links; requiring both directions up implements §3.1's
  // symmetric exclusion of unidirectionally failed links.
  const std::span<Port* const> cands = candidates(dst);
  const uint64_t* epoch = liveness_epoch();
  if (epoch == nullptr) {
    // Standalone switch (unit tests): no shared epoch, scan every call.
    scan_scratch_.clear();
    for (Port* c : cands) {
      if (c->is_up() && c->peer()->is_up()) scan_scratch_.push_back(c);
    }
    return &scan_scratch_;
  }
  LiveCache& cache = cache_[dst];
  if (cache.epoch != *epoch) {
    cache.live.clear();
    for (Port* c : cands) {
      if (c->is_up() && c->peer()->is_up()) cache.live.push_back(c);
    }
    cache.epoch = *epoch;
  }
  return &cache.live;
}

Port* Switch::route(NodeId src, NodeId dst, FlowId flow) const {
  if (candidates(dst).empty()) return nullptr;
  const std::vector<Port*>& live = *live_candidates(dst);
  // Selecting live[h % n_up] reproduces the pre-cache scan exactly: the
  // cache preserves candidate order, so "the pick-th up candidate" is a
  // direct index.
  if (live.empty()) return nullptr;
  if (live.size() == 1) return live[0];
  const uint64_t h =
      mix(symmetric_hash(src, dst, flow) ^
          (static_cast<uint64_t>(routes_.dist[dst]) * 0xd1342543de82ef95ULL));
  return live[h % live.size()];
}

void Switch::receive(Packet&& p, Port& in) {
  Port* out = nullptr;
  if (spraying_ && candidates(p.dst).size() > 1) {
    const std::vector<Port*>& live = *live_candidates(p.dst);
    if (!live.empty()) out = live[rr_counter_++ % live.size()];
  } else {
    out = route(p.src, p.dst, p.flow);
  }
  if (out == nullptr) {
    if (is_credit_class(p.type)) {
      ++unroutable_credits_;
    } else {
      ++unroutable_data_;
    }
    return;
  }
  // Per-hop backpressure: the egress remembers which upstream transmitter
  // each queued flow arrived from, so a building flow queue can pause just
  // that flow one hop back.
  if (out->config().hop_backpressure && !is_credit_class(p.type)) {
    out->note_flow_ingress(p.flow, in.peer());
  }
  out->enqueue(std::move(p));
}

}  // namespace xpass::net
