#include "net/switch.hpp"

#include <algorithm>

namespace xpass::net {

namespace {
// splitmix64 finalizer: cheap, well-mixed.
uint64_t mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

uint64_t Switch::symmetric_hash(NodeId a, NodeId b, FlowId flow) {
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  return mix((lo << 40) ^ (hi << 20) ^ flow);
}

Port* Switch::route(NodeId src, NodeId dst, FlowId flow) const {
  if (dst >= routes_.size() || routes_[dst].empty()) return nullptr;
  const auto& cands = routes_[dst];
  // Exclude failed links; requiring both directions up implements §3.1's
  // symmetric exclusion of unidirectionally failed links.
  size_t n_up = 0;
  for (Port* c : cands) {
    if (c->is_up() && c->peer()->is_up()) ++n_up;
  }
  if (n_up == 0) return nullptr;
  if (n_up == 1 && cands.size() == 1) return cands[0];
  const uint64_t h =
      mix(symmetric_hash(src, dst, flow) ^
          (static_cast<uint64_t>(dist_[dst]) * 0xd1342543de82ef95ULL));
  size_t pick = h % n_up;
  for (Port* c : cands) {
    if (!c->is_up() || !c->peer()->is_up()) continue;
    if (pick == 0) return c;
    --pick;
  }
  return nullptr;
}

void Switch::receive(Packet&& p, Port& in) {
  (void)in;
  Port* out = nullptr;
  if (spraying_ && p.dst < routes_.size() && routes_[p.dst].size() > 1) {
    const auto& cands = routes_[p.dst];
    for (size_t attempt = 0; attempt < cands.size(); ++attempt) {
      Port* c = cands[rr_counter_++ % cands.size()];
      if (c->is_up() && c->peer()->is_up()) {
        out = c;
        break;
      }
    }
  } else {
    out = route(p.src, p.dst, p.flow);
  }
  if (out == nullptr) {
    if (is_credit_class(p.type)) {
      ++unroutable_credits_;
    } else {
      ++unroutable_data_;
    }
    return;
  }
  out->enqueue(std::move(p));
}

}  // namespace xpass::net
