// FaultInjector: binds a sim::FaultPlan to a concrete Topology.
//
// The plan layer is pure scheduling (when does what labeled action fire);
// this layer knows what the actions *are*: taking both directions of a link
// down, killing a single switch port (forcing the §3.1 symmetric ECMP
// exclusion on the survivors), attaching per-link error models, and rolling
// all of it back on recovery. Convenience schedulers compose the two for
// the common scenarios — a link flap, a lossy window, a permanent death.
#pragma once

#include <cstdint>

#include "net/topology.hpp"
#include "sim/fault_plan.hpp"

namespace xpass::net {

class FaultInjector {
 public:
  FaultInjector(Topology& topo, sim::FaultPlan& plan)
      : topo_(topo), plan_(plan) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Immediate actions (usable directly or from plan callbacks) ----------

  // Takes BOTH directions of the a--b link down. Returns false if the nodes
  // are not adjacent.
  bool fail_link(Node& a, Node& b, LinkFailMode mode = LinkFailMode::kDrop);
  bool recover_link(Node& a, Node& b);

  // Kills only the a->b direction. route() requires both directions up, so
  // a one-way death still excludes the link from ECMP — the paper's
  // symmetric handling of asymmetric failures.
  bool fail_port(Node& a, Node& b, LinkFailMode mode = LinkFailMode::kDrop);

  // Attaches an error model to the a->b direction (or both). Each direction
  // gets an independent Rng stream derived from `seed`.
  bool set_link_error(Node& a, Node& b, const LinkErrorConfig& cfg,
                      uint64_t seed);
  bool set_link_error_bidir(Node& a, Node& b, const LinkErrorConfig& cfg,
                            uint64_t seed);
  bool clear_link_error(Node& a, Node& b);

  // Plan-driven schedules ----------------------------------------------

  // Link goes down at `down` and comes back at `up` (both directions).
  void schedule_flap(Node& a, Node& b, sim::Time down, sim::Time up,
                     LinkFailMode mode = LinkFailMode::kDrop);

  // Link dies at `at` and never recovers.
  void schedule_death(Node& a, Node& b, sim::Time at,
                      LinkFailMode mode = LinkFailMode::kDrop);

  // Error model active on both directions during [from, to); cleared after.
  // to == Time::max() leaves it on for the rest of the run.
  void schedule_error_window(Node& a, Node& b, const LinkErrorConfig& cfg,
                             sim::Time from, sim::Time to);

  // Aggregates -----------------------------------------------------------

  // Sum of every port's FaultStats across the topology.
  FaultStats totals() const;

 private:
  Topology& topo_;
  sim::FaultPlan& plan_;
};

}  // namespace xpass::net
