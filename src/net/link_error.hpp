// Per-link packet error models for fault injection.
//
// Two layers compose, rolled once per frame as it finishes crossing the
// wire: a Gilbert-Elliott two-state chain for bursty loss (the classic model
// for flaky optics / marginal cables), then independent Bernoulli drop and
// bit-corruption rolls split by packet class — the paper's feedback loop
// reacts very differently to credit loss (its congestion signal, §3.2) than
// to data loss (which must be recovered end-to-end), so fault scenarios need
// to dose them separately.
//
// "Corruption" is an FCS-breaking bit flip: the frame is delivered with
// Packet::corrupted set, still consuming link bandwidth and buffer space,
// and the receiving host discards it on checksum. "Drop" loses the frame at
// the link itself (cut cable, overwhelmed SerDes).
//
// Each LinkError owns a private PRNG so fault noise never perturbs the
// simulation's traffic stream: runs with and without an error model on some
// far-away link stay comparable packet-for-packet until a fault actually
// hits.
#pragma once

#include "net/packet.hpp"
#include "sim/random.hpp"

namespace xpass::net {

struct LinkErrorConfig {
  // Independent per-frame probabilities. `data` covers every non-credit
  // frame (data, SYN, CREDIT_STOP, ACKs): they all ride the data queue.
  double data_drop = 0.0;
  double credit_drop = 0.0;
  double data_corrupt = 0.0;
  double credit_corrupt = 0.0;
  // Gilbert-Elliott overlay, applied to every class. Transition
  // probabilities are per frame observed on the link; ge_good_to_bad == 0
  // disables the chain.
  double ge_good_to_bad = 0.0;
  double ge_bad_to_good = 0.2;
  double ge_drop_good = 0.0;
  double ge_drop_bad = 0.5;

  bool enabled() const {
    return data_drop > 0.0 || credit_drop > 0.0 || data_corrupt > 0.0 ||
           credit_corrupt > 0.0 || ge_good_to_bad > 0.0;
  }
};

class LinkError {
 public:
  enum class Outcome { kDeliver, kDrop, kCorrupt };

  LinkError(const LinkErrorConfig& cfg, uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  // Rolls the frame's fate. Does not mutate the packet; the caller applies
  // the outcome (and must not re-roll the same frame).
  Outcome roll(const Packet& p);

  const LinkErrorConfig& config() const { return cfg_; }
  bool in_bad_state() const { return bad_; }

 private:
  LinkErrorConfig cfg_;
  sim::Rng rng_;
  bool bad_ = false;  // Gilbert-Elliott state
};

}  // namespace xpass::net
