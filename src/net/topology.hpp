// Topology: node/link container, shortest-path ECMP route computation, and
// network-wide statistics.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/host.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"
#include "stats/recorder.hpp"

namespace xpass::net {

class Topology {
 public:
  // One full-duplex link: both directional ports plus the endpoint ids, so
  // fault injection can target "the link between a and b" as a unit.
  struct LinkRec {
    NodeId a, b;
    Port* pa;  // on a, toward b
    Port* pb;  // on b, toward a
  };

  explicit Topology(sim::Simulator& sim) : sim_(sim) {}
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  Host& add_host(std::string name = "");
  Switch& add_switch(std::string name = "");

  // Creates a full-duplex link; both directions use `cfg` (rate, delay,
  // queues). Returns {port on a toward b, port on b toward a}.
  // Throws std::invalid_argument on a self-loop or a duplicate link,
  // naming the offending node pair.
  std::pair<Port&, Port&> connect(Node& a, Node& b, const LinkConfig& cfg);

  // Computes all-pairs shortest-path ECMP tables and installs them on every
  // switch. Candidate lists are sorted by neighbor node id (deterministic
  // ECMP). Must be called once, after all connect() calls.
  // Throws std::invalid_argument if a node is dangling (zero links) or a
  // host has more than one NIC port, naming the node.
  void finalize();

  // Rebuilds the ECMP tables over live links only (a link counts as live
  // when both of its ports are up). This is the control plane reconverging
  // after a failure: §3.1 excludes failed links from ECMP hashing, which a
  // switch's local up-check alone cannot do for a dead link several hops
  // away. Convergence is modeled as instantaneous; the window between a
  // failure and the caller invoking this is data-plane blackholing, which
  // the transports' loss recovery absorbs. Requires finalize().
  void recompute_routes();

  sim::Simulator& simulator() { return sim_; }
  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Switch*>& switches() const { return switches_; }
  Node& node(NodeId id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  // The egress port on `a` whose peer is on `b`; null if not adjacent.
  Port* port_between(const Node& a, const Node& b);

  // The sequence of egress ports a packet of `flow` from host `src` to host
  // `dst` traverses, replaying the switches' ECMP decisions. Requires
  // finalize().
  std::vector<Port*> trace_path(NodeId src, NodeId dst, FlowId flow);

  // All switch egress ports (for monitors / RCP enabling).
  std::vector<Port*> switch_ports();
  void enable_rcp(sim::Time d0);

  // All full-duplex links, in connect() order (fault targeting).
  const std::vector<LinkRec>& links() const { return links_; }

  // Network-wide counters ---------------------------------------------
  uint64_t data_drops() const;
  uint64_t credit_drops() const;
  uint64_t max_switch_data_queue_bytes() const;
  uint64_t stray_credits() const;

  // Telemetry hook: registers the network-wide counters as pull probes
  // ("net.data_drops", "net.credit_drops", "net.stray_credits",
  // "net.max_switch_queue_bytes", "net.avg_switch_queue_bytes") and, when
  // `per_port_series` is set, one "queue.<switch>-><peer>.bytes" series
  // gauge per switch egress port (instantaneous data-queue depth). Inline
  // so xpass_net carries no link-time dependency on xpass_stats.
  void register_telemetry(stats::Recorder& r, bool per_port_series = false) {
    r.gauge("net.data_drops",
            [this] { return static_cast<double>(data_drops()); });
    r.gauge("net.credit_drops",
            [this] { return static_cast<double>(credit_drops()); });
    r.gauge("net.stray_credits",
            [this] { return static_cast<double>(stray_credits()); });
    r.gauge("net.max_switch_queue_bytes", [this] {
      return static_cast<double>(max_switch_data_queue_bytes());
    });
    r.gauge("net.avg_switch_queue_bytes", [this] {
      double sum = 0;
      auto ports = switch_ports();
      for (Port* p : ports) {
        sum += p->data_queue().stats().avg_bytes(sim_.now());
      }
      return ports.empty() ? 0.0 : sum / static_cast<double>(ports.size());
    });
    if (per_port_series) {
      for (Port* p : switch_ports()) {
        const std::string peer =
            p->peer() != nullptr ? p->peer()->owner().name() : "?";
        r.series_gauge(
            "queue." + p->owner().name() + "->" + peer + ".bytes",
            [p] { return static_cast<double>(p->data_queue().bytes()); });
      }
    }
  }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::vector<LinkRec> links_;
  // Normalized (min,max) endpoint keys of every link, so connect()'s
  // duplicate check is O(1) instead of a scan over all previous links.
  std::unordered_set<uint64_t> link_keys_;
  // Link-liveness epoch shared by every node (see Node::liveness_epoch):
  // bumped on any port fail/recover and on route recomputation, it keys the
  // switches' live-candidate caches.
  uint64_t liveness_epoch_ = 0;
  bool finalized_ = false;
};

}  // namespace xpass::net
