// Topology: node/link container, shortest-path ECMP route computation, and
// network-wide statistics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

namespace xpass::net {

class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(sim) {}
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  Host& add_host(std::string name = "");
  Switch& add_switch(std::string name = "");

  // Creates a full-duplex link; both directions use `cfg` (rate, delay,
  // queues). Returns {port on a toward b, port on b toward a}.
  std::pair<Port&, Port&> connect(Node& a, Node& b, const LinkConfig& cfg);

  // Computes all-pairs shortest-path ECMP tables and installs them on every
  // switch. Candidate lists are sorted by neighbor node id (deterministic
  // ECMP). Must be called once, after all connect() calls.
  void finalize();

  sim::Simulator& simulator() { return sim_; }
  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Switch*>& switches() const { return switches_; }
  Node& node(NodeId id) { return *nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  // The egress port on `a` whose peer is on `b`; null if not adjacent.
  Port* port_between(const Node& a, const Node& b);

  // The sequence of egress ports a packet of `flow` from host `src` to host
  // `dst` traverses, replaying the switches' ECMP decisions. Requires
  // finalize().
  std::vector<Port*> trace_path(NodeId src, NodeId dst, FlowId flow);

  // All switch egress ports (for monitors / RCP enabling).
  std::vector<Port*> switch_ports();
  void enable_rcp(sim::Time d0);

  // Network-wide counters ---------------------------------------------
  uint64_t data_drops() const;
  uint64_t credit_drops() const;
  uint64_t max_switch_data_queue_bytes() const;
  uint64_t stray_credits() const;

 private:
  struct LinkRec {
    NodeId a, b;
    Port* pa;  // on a, toward b
    Port* pb;  // on b, toward a
  };

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::vector<LinkRec> links_;
  bool finalized_ = false;
};

}  // namespace xpass::net
