// Node base class: anything with ports (hosts and switches).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace xpass::net {

class Port;
struct LinkConfig;

class Node {
 public:
  enum class Kind { kHost, kSwitch };

  Node(sim::Simulator& sim, NodeId id, Kind kind, std::string name)
      : sim_(&sim), id_(id), kind_(kind), name_(std::move(name)) {}
  virtual ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Called when a packet finishes arriving on `in`.
  virtual void receive(Packet&& p, Port& in) = 0;

  Port& add_port(const LinkConfig& cfg);
  Port& port(size_t i) { return *ports_[i]; }
  const Port& port(size_t i) const { return *ports_[i]; }
  size_t num_ports() const { return ports_.size(); }

  sim::Simulator& simulator() { return *sim_; }

  // Sharded runs: re-points this node (and every port it owns) at its
  // shard's simulator. Must happen before any events or transports bind to
  // the node — the Topology partitioner calls it right after finalize().
  void rebind_simulator(sim::Simulator& sim);
  NodeId id() const { return id_; }
  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  // Topology-wide link-liveness epoch, shared by every node of a Topology
  // (null for nodes built standalone). Port::fail()/recover() bump it;
  // Switch::route() caches per-destination live-candidate tables keyed on
  // it, so fault-free runs never rescan liveness per packet.
  void set_liveness_epoch(uint64_t* epoch) { liveness_epoch_ = epoch; }
  const uint64_t* liveness_epoch() const { return liveness_epoch_; }
  void bump_liveness_epoch() {
    if (liveness_epoch_ != nullptr) ++*liveness_epoch_;
  }

 protected:
  // Pointer, not reference: sharded runs rebind nodes onto shard-local
  // simulators after topology construction (rebind_simulator).
  sim::Simulator* sim_;

 private:
  NodeId id_;
  Kind kind_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  uint64_t* liveness_epoch_ = nullptr;
};

}  // namespace xpass::net
