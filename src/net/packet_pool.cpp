#include "net/packet_pool.hpp"

namespace xpass::net {

namespace {
thread_local PacketPool* bound_pool = nullptr;
}  // namespace

PacketPool& PacketPool::local() {
  if (bound_pool != nullptr) return *bound_pool;
  thread_local PacketPool pool;
  return pool;
}

void PacketPool::bind(PacketPool* p) { bound_pool = p; }

void PacketPool::grow() {
  slabs_.push_back(std::make_unique<Node[]>(kSlabPackets));
  Node* slab = slabs_.back().get();
  for (size_t i = 0; i < kSlabPackets; ++i) {
    slab[i].next = free_;
    free_ = &slab[i];
  }
}

}  // namespace xpass::net
