#include "net/packet.hpp"

namespace xpass::net {

std::string_view to_string(PktType t) {
  switch (t) {
    case PktType::kData: return "DATA";
    case PktType::kAck: return "ACK";
    case PktType::kCredit: return "CREDIT";
    case PktType::kCreditRequest: return "CREDIT_REQUEST";
    case PktType::kCreditStop: return "CREDIT_STOP";
    case PktType::kSyn: return "SYN";
    case PktType::kSynAck: return "SYN_ACK";
    case PktType::kFin: return "FIN";
    case PktType::kCnp: return "CNP";
  }
  return "UNKNOWN";
}

}  // namespace xpass::net
