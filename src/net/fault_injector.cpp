#include "net/fault_injector.hpp"

namespace xpass::net {

// Every up/down transition reconverges the control plane: a switch's local
// up-check can only exclude its own dead ports from ECMP, but a remote
// failure (e.g. an aggr--edge link seen from another pod) would otherwise
// keep attracting traffic into a blackhole. recompute_routes() prunes dead
// links network-wide, which also keeps credit/data paths symmetric.
bool FaultInjector::fail_link(Node& a, Node& b, LinkFailMode mode) {
  Port* pa = topo_.port_between(a, b);
  if (pa == nullptr) return false;
  pa->fail(mode);
  pa->peer()->fail(mode);
  topo_.recompute_routes();
  return true;
}

bool FaultInjector::recover_link(Node& a, Node& b) {
  Port* pa = topo_.port_between(a, b);
  if (pa == nullptr) return false;
  pa->recover();
  pa->peer()->recover();
  topo_.recompute_routes();
  return true;
}

bool FaultInjector::fail_port(Node& a, Node& b, LinkFailMode mode) {
  Port* pa = topo_.port_between(a, b);
  if (pa == nullptr) return false;
  pa->fail(mode);
  topo_.recompute_routes();
  return true;
}

bool FaultInjector::set_link_error(Node& a, Node& b,
                                   const LinkErrorConfig& cfg,
                                   uint64_t seed) {
  Port* pa = topo_.port_between(a, b);
  if (pa == nullptr) return false;
  pa->set_error_model(cfg, seed);
  return true;
}

bool FaultInjector::set_link_error_bidir(Node& a, Node& b,
                                         const LinkErrorConfig& cfg,
                                         uint64_t seed) {
  Port* pa = topo_.port_between(a, b);
  if (pa == nullptr) return false;
  // Distinct streams per direction: the reverse wire's bit errors are
  // physically independent of the forward wire's.
  pa->set_error_model(cfg, seed);
  pa->peer()->set_error_model(cfg, seed ^ 0x9e3779b97f4a7c15ULL);
  return true;
}

bool FaultInjector::clear_link_error(Node& a, Node& b) {
  Port* pa = topo_.port_between(a, b);
  if (pa == nullptr) return false;
  pa->clear_error_model();
  pa->peer()->clear_error_model();
  return true;
}

void FaultInjector::schedule_flap(Node& a, Node& b, sim::Time down,
                                  sim::Time up, LinkFailMode mode) {
  plan_.window(
      down, up, "flap " + a.name() + "--" + b.name(),
      [this, &a, &b, mode] { fail_link(a, b, mode); },
      [this, &a, &b] { recover_link(a, b); });
}

void FaultInjector::schedule_death(Node& a, Node& b, sim::Time at,
                                   LinkFailMode mode) {
  plan_.window(at, sim::Time::max(), "kill " + a.name() + "--" + b.name(),
               [this, &a, &b, mode] { fail_link(a, b, mode); }, nullptr);
}

void FaultInjector::schedule_error_window(Node& a, Node& b,
                                          const LinkErrorConfig& cfg,
                                          sim::Time from, sim::Time to) {
  const uint64_t seed = plan_.rng().bits();
  plan_.window(
      from, to, "errors " + a.name() + "--" + b.name(),
      [this, &a, &b, cfg, seed] { set_link_error_bidir(a, b, cfg, seed); },
      [this, &a, &b] { clear_link_error(a, b); });
}

FaultStats FaultInjector::totals() const {
  FaultStats t;
  for (const Topology::LinkRec& l : topo_.links()) {
    for (const Port* p : {l.pa, l.pb}) {
      const FaultStats& s = p->fault_stats();
      t.injected_data_drops += s.injected_data_drops;
      t.injected_credit_drops += s.injected_credit_drops;
      t.corrupted_data += s.corrupted_data;
      t.corrupted_credits += s.corrupted_credits;
      t.cut_data += s.cut_data;
      t.cut_credits += s.cut_credits;
      t.flushed_data += s.flushed_data;
      t.flushed_credits += s.flushed_credits;
      t.failures += s.failures;
      t.recoveries += s.recoveries;
    }
  }
  return t;
}

}  // namespace xpass::net
