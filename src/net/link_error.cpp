#include "net/link_error.hpp"

namespace xpass::net {

LinkError::Outcome LinkError::roll(const Packet& p) {
  // Gilbert-Elliott first: burst loss is a property of the wire's current
  // state, independent of what the frame is.
  if (cfg_.ge_good_to_bad > 0.0) {
    if (bad_) {
      if (rng_.uniform() < cfg_.ge_bad_to_good) bad_ = false;
    } else {
      if (rng_.uniform() < cfg_.ge_good_to_bad) bad_ = true;
    }
    const double p_drop = bad_ ? cfg_.ge_drop_bad : cfg_.ge_drop_good;
    if (p_drop > 0.0 && rng_.uniform() < p_drop) return Outcome::kDrop;
  }
  const bool credit = is_credit_class(p.type);
  const double p_drop = credit ? cfg_.credit_drop : cfg_.data_drop;
  if (p_drop > 0.0 && rng_.uniform() < p_drop) return Outcome::kDrop;
  const double p_corrupt = credit ? cfg_.credit_corrupt : cfg_.data_corrupt;
  // An already-corrupted frame cannot be corrupted "again" into a separate
  // accounting event — it is delivered as-is and discarded downstream.
  if (!p.corrupted && p_corrupt > 0.0 && rng_.uniform() < p_corrupt) {
    return Outcome::kCorrupt;
  }
  return Outcome::kDeliver;
}

}  // namespace xpass::net
