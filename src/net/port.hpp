// Port: one direction of a full-duplex link, with the ExpressPass egress
// discipline.
//
// Each port owns a data drop-tail queue and a tiny credit queue shaped by a
// token bucket at 84/1622 of link capacity (burst: 2 credits). The scheduler
// serves a credit whenever the shaper permits (credits are strictly
// prioritized but can never exceed ~5% of the link); otherwise it serves
// data. This is exactly the commodity-switch configuration of §3.1 — a
// separate metered queue for tagged credit packets, buffer-carved to a few
// packets.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/link_error.hpp"
#include "net/packet_pool.hpp"
#include "net/queue.hpp"
#include "net/ring_buffer.hpp"
#include "net/token_bucket.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

namespace xpass::net {

class Node;

// What happens to queued and in-flight frames when a link fails.
//  kDrain: transmission stops but nothing is lost — queued frames wait for
//          recovery, in-flight frames deliver (admin-down / graceful drain).
//  kDrop:  queued frames are flushed as drops and in-flight frames are cut
//          mid-wire (yanked cable / dead transceiver).
enum class LinkFailMode { kDrain, kDrop };

// Per-port fault accounting, all injected-fault effects in one place so
// invariant checks can close the conservation ledger: every credit the
// network loses shows up in exactly one counter somewhere (queue drop,
// error-model drop, in-flight cut, host FCS discard, or unroutable).
struct FaultStats {
  uint64_t injected_data_drops = 0;    // error-model drops, non-credit
  uint64_t injected_credit_drops = 0;  // error-model drops, credits
  uint64_t corrupted_data = 0;         // frames delivered with bad FCS
  uint64_t corrupted_credits = 0;
  uint64_t cut_data = 0;     // in flight when the link failed (kDrop)
  uint64_t cut_credits = 0;
  uint64_t flushed_data = 0;     // queued at failure time (kDrop); these
  uint64_t flushed_credits = 0;  // also count in the queues' drop stats
  uint64_t failures = 0;
  uint64_t recoveries = 0;
};

struct LinkConfig {
  double rate_bps = 10e9;
  sim::Time prop_delay = sim::Time::us(1);
  DropTailQueue::Config data_queue;
  size_t credit_queue_pkts = 8;
  // Shaper rate as a fraction of link bytes; provisioned at the mean
  // randomized credit size so the admitted credit *count* is exactly one
  // per MTU-cycle (see packet.hpp).
  double credit_rate_fraction =
      static_cast<double>(kCreditMeanWireBytes) / kCreditCycleBytes;
  double credit_burst_bytes = 2.0 * kCreditMeanWireBytes;
  // Hosts rate-limit credits too (§3.1: "the host and switch perform
  // credit rate-limiting at each switch port" — the host limiter protects
  // its own downlink, the incast port). But the host limiter is SoftNIC's
  // *software* rate limiter, which §5 measures at a few microseconds of
  // jitter; re-gridding credits on an exact token clock would resurrect
  // the drop-synchronization problem of Fig 6a. We model the software
  // limiter by randomizing each credit's token cost by +/- this fraction
  // (zero mean, so the long-run rate is exact). Switch metering (Broadcom
  // hardware) stays precise; its drain jitter comes from the randomized
  // credit sizes.
  double host_credit_shaper_noise = 0.6;
  bool host_shapes_credits = true;
  // Multi-class credit scheduling (§7 "Multiple traffic classes"): one
  // credit queue per weight; the shaped credit bandwidth is divided among
  // backlogged classes in proportion to their weights, which translates
  // directly into weighted sharing of the *data* bandwidth the credits
  // admit. Empty = single class. A very large weight approximates strict
  // prioritization.
  std::vector<double> credit_class_weights;
  // Priority flow control (the hop-by-hop backpressure RDMA deployments
  // lean on, and the mechanism ExpressPass makes unnecessary). When an
  // egress data queue exceeds pause_bytes, the switch pauses data on all
  // its ingress links until the queue drains below resume_bytes. Coarse
  // (whole-switch) pause, which exhibits PFC's real HOL-blocking behavior.
  bool pfc = false;
  uint64_t pfc_pause_bytes = 150'000;
  uint64_t pfc_resume_bytes = 75'000;
  // Per-hop flow-level backpressure (BFC). The egress data queue runs in
  // per-flow mode (round-robin service over flows); when one flow's backlog
  // at this egress exceeds flow_pause_bytes, the switch pauses that flow —
  // and only that flow — at the upstream hop it arrived from, resuming once
  // it drains below flow_resume_bytes. Contrast with pfc above, which
  // pauses every ingress link wholesale (the HOL-blocking this fixes).
  // Upstream state is bounded: the pause table tracks only flows currently
  // queued or paused here, in arrival order (flow-relabel invariant).
  // Inert for every existing protocol (plain FIFO, no signaling).
  bool hop_backpressure = false;
  uint64_t flow_pause_bytes = 8 * kMaxWireBytes;
  uint64_t flow_resume_bytes = 4 * kMaxWireBytes;
  // WFQ accumulator rebase threshold. The per-class served-byte
  // accumulators only ever grow; past ~2^53 bytes a double can no longer
  // represent +84-byte increments and low-weight classes starve. When the
  // largest accumulator crosses this many bytes, the current virtual time
  // (minimum served/weight key) is subtracted from every class in weight
  // units — only relative deficits matter for the scheduling order, so the
  // rebase is behavior-neutral while keeping the values far below the
  // quantization cliff. (Tests shrink it to exercise the path.)
  double wfq_rebase_bytes = 1.1e12;  // ~1 TB served, hours of sim time
  // Train delivery coalescing. When > 0, back-to-back frames on this link
  // share delivery events: each frame's wire arrival is queued in a per-port
  // FIFO and a single drain event — scheduled `train_window` after the
  // oldest undelivered arrival — hands every frame that has arrived by then
  // to the peer, in arrival order. A saturated link delivers a whole
  // serializer train per event instead of one frame each, which is what
  // pushes multi-hop scenarios below one event per packet-hop. This is an
  // *approximation*: a frame's delivery is deferred by up to train_window
  // past its true arrival instant (choose it well under the RTT scales that
  // matter — a few frame times). Zero = exact per-frame delivery (default;
  // all golden scenarios run exact).
  sim::Time train_window = sim::Time::zero();
  // Per-packet propagation jitter: each exact-mode delivery adds
  // U(0, prop_jitter) to prop_delay, drawn from the simulator RNG. Models
  // wifi-style variable last hops / late-comer real-time scenarios; note a
  // draw wider than one serialization time can reorder packets on the wire
  // (which is the point — reactive stacks must ride out the dup-ACKs).
  // Zero (default) draws nothing, keeping legacy runs byte-identical.
  // Incompatible with train_window (the train FIFO assumes monotonic
  // arrivals) — the Port constructor rejects the combination.
  sim::Time prop_jitter = sim::Time::zero();
  // Pre-coalescing event pattern: schedule a serializer-done wakeup for
  // every transmission, even when nothing is waiting to follow it. The
  // default self-scheduling path skips that event whenever the port's
  // queues are empty at transmission start (the common case off the
  // bottleneck), halving the event count on those hops. Kept as an option
  // so tests can prove the two paths produce identical traces.
  bool legacy_tx_events = false;
};

// Per-port RCP state (enabled only for RCP runs). Implements the classic
// rate update R += R * (T/d0) * (alpha*(C - y) - beta*q/d0) / C.
struct RcpState {
  double rate_bps = 0.0;  // advertised per-flow rate R
  double alpha = 0.4;
  double beta = 0.2;
  sim::Time d0 = sim::Time::us(100);  // control interval / average RTT
  uint64_t bytes_in = 0;              // data bytes arrived since last update
};

class Port {
 public:
  Port(sim::Simulator& sim, Node& owner, LinkConfig cfg);

  // Wires this port to its peer (the other end of the link). Done by
  // Topology::connect.
  void set_peer(Port* peer) { peer_ = peer; }
  Port* peer() { return peer_; }
  Node& owner() { return owner_; }

  // Sharded runs: re-points the port at its shard's simulator (called via
  // Node::rebind_simulator before any traffic flows).
  void rebind(sim::Simulator& sim) { sim_ = &sim; }
  // Marks the far end of this link as living in a different shard: instead
  // of scheduling the wire delivery on the local queue, try_transmit posts
  // it through the ParallelSimulator's cross-shard channel at the same
  // arrival instant. The delivery callback (deliver_to_peer) then executes
  // on the *destination* shard's thread — safe because the sender-side
  // state it reads (up_/fail_mode_/error_) mutates only at barriers, and
  // for a remote port the error model rolls only on that one thread.
  void set_remote_route(sim::ParallelSimulator* psim, uint32_t self_shard,
                        uint32_t peer_shard) {
    psim_ = psim;
    self_shard_ = self_shard;
    peer_shard_ = peer_shard;
  }
  bool remote_peer() const {
    return psim_ != nullptr && self_shard_ != peer_shard_;
  }

  // Entry point: classify and queue the packet, start transmitting if idle.
  void enqueue(Packet&& p);

  const LinkConfig& config() const { return cfg_; }
  DropTailQueue& data_queue() { return data_q_; }
  const DropTailQueue& data_queue() const { return data_q_; }
  // Class-0 credit queue (the only one in single-class operation).
  CreditQueue& credit_queue() { return credit_qs_[0]; }
  const CreditQueue& credit_queue() const { return credit_qs_[0]; }
  CreditQueue& credit_queue(size_t cls) { return credit_qs_[cls]; }
  size_t num_credit_classes() const { return credit_qs_.size(); }
  // WFQ served-byte accumulators (post-rebase relative values; tests).
  const std::vector<double>& credit_class_served() const {
    return class_served_;
  }

  // RCP support: switches with RCP enabled update/stamp through these.
  void enable_rcp(sim::Time d0);
  RcpState* rcp() { return rcp_.get(); }

  uint64_t tx_packets() const { return tx_packets_; }
  uint64_t tx_bytes() const { return tx_bytes_; }
  uint64_t tx_data_bytes() const { return tx_data_bytes_; }
  uint64_t tx_credits() const { return tx_credits_; }
  // Event-accounting introspection (BENCH_hotpath breakdown columns):
  // serializer-free service wakeups and shaper token-wait retries fired.
  uint64_t kick_events() const { return kick_events_; }
  uint64_t retry_events() const { return retry_events_; }
  // Train-mode drain events fired and frames they delivered (frames per
  // drain is the coalescing factor; zero/zero in exact mode).
  uint64_t train_events() const { return train_events_; }
  uint64_t train_frames() const { return train_frames_; }

  // PFC: pause/unpause *data* transmission out of this port (credits and
  // control packets keep flowing — they are a different priority class).
  // Reference-counted: several congested egresses may pause one link.
  void pfc_pause() {
    ++pause_count_;
    ++pause_events_;
  }
  void pfc_resume();
  bool data_paused() const { return pause_count_ > 0; }
  uint64_t pause_events() const { return pause_events_; }

  // Per-hop flow-level backpressure (LinkConfig::hop_backpressure).
  // note_flow_ingress: the owning switch records, per queued flow, the
  // upstream transmitter the flow last arrived from (the pause target).
  // flow_pause/flow_resume arrive from a downstream hop and gate just that
  // flow's queue on this port. All of it is inert unless the flag is set.
  void note_flow_ingress(FlowId flow, Port* upstream);
  void flow_pause(FlowId flow);
  void flow_resume(FlowId flow);
  uint64_t flow_pause_events() const { return flow_pause_events_; }
  // Flows currently tracked in this egress's pause table (bounded-state
  // introspection for tests).
  size_t bp_tracked_flows() const { return bp_live_; }

  // Link-failure modeling (§3.1 mentions excluding failed links from ECMP;
  // route() excludes a link unless both directions are up). set_up is the
  // legacy admin toggle: down == fail(kDrain), up == recover().
  void set_up(bool up) {
    if (up) {
      recover();
    } else {
      fail(LinkFailMode::kDrain);
    }
  }
  bool is_up() const { return up_; }
  // Takes this direction of the link down. kDrop flushes the queues (counted
  // as drops) and loses frames already on the wire; kDrain preserves both.
  void fail(LinkFailMode mode);
  // Brings the link back: the credit meter restarts empty (a recovering
  // link must not burst out the allowance accrued while dark) and
  // transmission resumes from whatever is queued.
  void recover();

  // Fault injection: per-frame error model on this direction of the link.
  void set_error_model(const LinkErrorConfig& cfg, uint64_t seed);
  void clear_error_model() { error_.reset(); }
  const LinkError* error_model() const { return error_.get(); }
  const FaultStats& fault_stats() const { return fault_; }

 private:
  void try_transmit();
  // Ensures a service wakeup fires when the serializer frees (at
  // free_at_). Idempotent: at most one kick is outstanding per port.
  void schedule_kick();
  // Anything queued that the scheduler could serve next?
  bool work_queued() const;
  // Runs at wire-arrival time: applies link failure / error-model fate,
  // then hands the frame to the peer's owner.
  void deliver_to_peer(Packet&& p);
  // Train mode: arm the single outstanding drain event (at the oldest
  // queued arrival + train_window), and the drain itself.
  void schedule_train_drain();
  void drain_train();
  void rcp_update();
  // PFC threshold checks on this egress queue; pauses/resumes the owning
  // switch's ingress links.
  void check_pfc();
  void signal_pfc(bool pause);
  // Flow-level backpressure thresholds for one flow's backlog on this
  // egress (called after its enqueues/dequeues); signals the flow's
  // recorded upstream hop and tombstones drained entries.
  void check_flow_bp(FlowId flow);
  // Drops the pause table, resuming anything still paused upstream (link
  // failure must not leave a flow stuck paused forever).
  void release_flow_bp();
  // The backlogged credit class next in weighted order; SIZE_MAX if none.
  size_t pick_credit_class() const;
  // Re-anchors an idle class's WFQ deficit as it becomes backlogged, so a
  // long-idle class cannot monopolize the shaped credit bandwidth.
  void rebaseline_credit_class(size_t cls);
  // Keeps the served-byte accumulators bounded (relative deficits only);
  // see LinkConfig::wfq_rebase_bytes.
  void rebase_credit_accumulators();
  // Shaper cost of the head credit of class `cls` (includes the host
  // software-limiter noise, deterministic per credit).
  double credit_cost(size_t cls) const;

  sim::Simulator* sim_;
  Node& owner_;
  // Cross-shard egress indirection (serial runs: psim_ stays null).
  sim::ParallelSimulator* psim_ = nullptr;
  uint32_t self_shard_ = 0;
  uint32_t peer_shard_ = 0;
  LinkConfig cfg_;
  bool shape_credits_;
  double shaper_noise_;
  Port* peer_ = nullptr;

  DropTailQueue data_q_;
  std::vector<CreditQueue> credit_qs_;
  std::vector<double> class_weights_;
  std::vector<double> class_served_;  // credit bytes served per class
  TokenBucket credit_shaper_;
  std::unique_ptr<RcpState> rcp_;

  // Serializer state machine: the port is busy until free_at_. Instead of
  // an unconditional tx-done event per transmission, a single delivery
  // event is scheduled at tx+prop, and a service "kick" at free_at_ only
  // when queued work will actually be waiting there (self-scheduling; see
  // LinkConfig::legacy_tx_events).
  sim::Time free_at_;
  // Train mode: frames on the wire awaiting the coalesced drain event. Each
  // entry records its true wire-arrival instant; the drain only delivers
  // frames whose arrival has passed, so causality holds even when a train
  // outlasts its window.
  struct WireFrame {
    sim::Time arrival;
    PacketRef pkt;
  };
  RingBuffer<WireFrame> wire_fifo_;
  bool train_pending_ = false;
  bool kick_pending_ = false;
  bool retry_pending_ = false;
  uint32_t pause_count_ = 0;
  uint64_t pause_events_ = 0;
  bool pause_sent_ = false;  // this egress has paused its switch's ingresses
  // Flow-level pause table (hop_backpressure): per queued-or-paused flow,
  // its upstream transmitter and whether we paused it there. Kept in
  // arrival order with tombstones + periodic compaction: iteration order
  // never depends on flow-id values (relabel invariance), and the live set
  // is bounded by the flows actually queued here.
  struct BpEntry {
    FlowId flow;
    Port* upstream;
    bool paused;
    bool live;
  };
  std::vector<BpEntry> bp_entries_;
  std::unordered_map<FlowId, size_t> bp_ix_;
  size_t bp_live_ = 0;
  uint64_t flow_pause_events_ = 0;
  bool up_ = true;
  LinkFailMode fail_mode_ = LinkFailMode::kDrain;
  std::unique_ptr<LinkError> error_;
  FaultStats fault_;

  uint64_t tx_packets_ = 0;
  uint64_t tx_bytes_ = 0;
  uint64_t tx_data_bytes_ = 0;
  uint64_t tx_credits_ = 0;
  uint64_t kick_events_ = 0;
  uint64_t retry_events_ = 0;
  uint64_t train_events_ = 0;
  uint64_t train_frames_ = 0;
};

}  // namespace xpass::net
