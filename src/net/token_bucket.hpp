// Token bucket used for credit shaping at switch ports and host NICs.
//
// Models "maximum bandwidth metering" on commodity chipsets (paper §3.1):
// tokens accrue at `rate` bytes/sec up to `burst` bytes; a packet may be
// sent when the bucket holds at least its wire size. The paper sets the
// burst to 2 credit packets so fractional tokens left over by back-to-back
// sub-MTU data frames are not discarded.
#pragma once

#include "sim/time.hpp"

namespace xpass::net {

class TokenBucket {
 public:
  TokenBucket(double rate_bytes_per_sec, double burst_bytes)
      : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {}

  void refill(sim::Time now);
  // Consumes `bytes` if available after refilling to `now`.
  bool try_consume(double bytes, sim::Time now);
  // Time from `now` until `bytes` tokens will be available (zero if already).
  sim::Time time_until(double bytes, sim::Time now);

  double tokens() const { return tokens_; }
  double rate() const { return rate_; }
  double burst() const { return burst_; }
  void set_rate(double rate_bytes_per_sec, sim::Time now) {
    refill(now);
    rate_ = rate_bytes_per_sec;
  }

 private:
  double rate_;
  double burst_;
  double tokens_;
  sim::Time last_;
};

}  // namespace xpass::net
