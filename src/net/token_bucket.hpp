// Token bucket used for credit shaping at switch ports and host NICs.
//
// Models "maximum bandwidth metering" on commodity chipsets (paper §3.1):
// tokens accrue at `rate` bytes/sec up to `burst` bytes; a packet may be
// sent when the bucket holds at least its wire size. The paper sets the
// burst to 2 credit packets so fractional tokens left over by back-to-back
// sub-MTU data frames are not discarded.
#pragma once

#include "sim/time.hpp"

namespace xpass::net {

class TokenBucket {
 public:
  TokenBucket(double rate_bytes_per_sec, double burst_bytes)
      : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {}

  // time_until's "no finite answer" sentinel: the tokens will never accrue
  // at the current rate. Callers must not schedule a wakeup at this time.
  static constexpr sim::Time kNever = sim::Time::max();
  // Waits beyond this are reported as kNever: they exceed any simulated
  // horizon and a finite conversion could overflow Time's picosecond range.
  static constexpr double kMaxWaitSec = 1e5;

  void refill(sim::Time now);
  // Consumes `bytes` if available after refilling to `now`.
  bool try_consume(double bytes, sim::Time now);
  // Time from `now` until `bytes` tokens will be available (zero if
  // already). A zero-rate bucket — a failed or admin-down link — or a wait
  // beyond kMaxWaitSec returns kNever instead of inf/NaN.
  sim::Time time_until(double bytes, sim::Time now);

  double tokens() const { return tokens_; }
  double rate() const { return rate_; }
  double burst() const { return burst_; }
  void set_rate(double rate_bytes_per_sec, sim::Time now) {
    refill(now);
    rate_ = rate_bytes_per_sec;
  }
  // Restarts the meter empty at `now`: a link returning from failure must
  // re-earn its allowance rather than burst out tokens accrued while dark.
  void reset(sim::Time now) {
    tokens_ = 0.0;
    last_ = now;
  }

 private:
  double rate_;
  double burst_;
  double tokens_;
  sim::Time last_;
};

}  // namespace xpass::net
