// Canonical topologies used across the paper's evaluation.
//
// Directionality conventions for the multi-bottleneck scenarios follow §2/§3
// of the paper: credits flow receiver -> sender and are rate-limited on every
// reverse-path link, so where a flow's *receiver* sits determines which
// credit limiters its credits traverse (this is what makes the naive scheme
// unfair — see Fig 4, Fig 10, Fig 11).
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace xpass::net {

// N sender hosts -- SwL ===bottleneck=== SwR -- N receiver hosts.
struct Dumbbell {
  std::vector<Host*> senders;
  std::vector<Host*> receivers;
  Switch* left = nullptr;
  Switch* right = nullptr;
  Port* bottleneck = nullptr;  // SwL egress toward SwR (data direction)
};
Dumbbell build_dumbbell(Topology& topo, size_t pairs, const LinkConfig& edge,
                        const LinkConfig& bottleneck);

// n hosts under one ToR switch (incast / shuffle scenarios).
struct Star {
  std::vector<Host*> hosts;
  Switch* tor = nullptr;
};
Star build_star(Topology& topo, size_t n_hosts, const LinkConfig& link);

// Parking lot (Fig 10): chain S_0 .. S_N with links L_i = (S_{i-1}, S_i).
// Flow 0 crosses all links (src at S_N side, dst at S_0 side); cross-flow i
// crosses only L_i (src at S_i, dst at S_{i-1}).
struct ParkingLot {
  Host* long_src = nullptr;
  Host* long_dst = nullptr;
  std::vector<Host*> cross_srcs;  // cross_srcs[i] for link i+1
  std::vector<Host*> cross_dsts;
  std::vector<Switch*> switches;
  std::vector<Port*> data_links;  // egress ports in the data direction of L_i
};
ParkingLot build_parking_lot(Topology& topo, size_t n_links,
                             const LinkConfig& edge,
                             const LinkConfig& backbone);

// Multi-bottleneck (Fig 11): chain S0 -L1- S1 -L2- S2 -L3- S3. Flow 0
// crosses only L1 (dst host at S1); flows 1..N cross L1,L2,L3 (dst at S3).
struct MultiBottleneck {
  Host* flow0_src = nullptr;
  Host* flow0_dst = nullptr;
  std::vector<Host*> srcs;  // senders of flows 1..N (at S0)
  std::vector<Host*> dsts;  // receivers of flows 1..N (at S3)
  std::vector<Switch*> switches;
  Port* link1_data = nullptr;  // S0 egress toward S1
};
MultiBottleneck build_multi_bottleneck(Topology& topo, size_t n_long_flows,
                                       const LinkConfig& edge,
                                       const LinkConfig& backbone);

// k-ary fat tree: k pods, (k/2)^2 cores, k^3/4 hosts.
struct FatTree {
  std::vector<Host*> hosts;
  std::vector<Switch*> edges;
  std::vector<Switch*> aggrs;
  std::vector<Switch*> cores;
  size_t k = 0;
};
FatTree build_fat_tree(Topology& topo, size_t k, const LinkConfig& host_link,
                       const LinkConfig& fabric_link);

// Parameterized 3-tier Clos: `pods` pods of (aggr_per_pod aggregates,
// tor_per_pod ToRs, hosts_per_tor hosts per ToR); n_core cores striped over
// aggregate positions (core c attaches to aggr position c % aggr_per_pod in
// each pod). With hosts_per_tor * host_rate > uplinks * fabric_rate this is
// the oversubscribed eval fabric of §6.3.
struct Clos {
  std::vector<Host*> hosts;
  std::vector<Switch*> tors;
  std::vector<Switch*> aggrs;
  std::vector<Switch*> cores;
  std::vector<Port*> tor_uplinks;  // ToR egress toward aggregates
};
Clos build_clos(Topology& topo, size_t n_core, size_t pods,
                size_t aggr_per_pod, size_t tor_per_pod, size_t hosts_per_tor,
                const LinkConfig& host_link, const LinkConfig& fabric_link);

}  // namespace xpass::net
