// Reusable FIFO ring buffer, the storage behind the egress queues.
//
// std::deque allocates and frees a map node roughly every 512 bytes of
// traffic that passes through a queue, so a saturated port pays the
// allocator continuously even when its occupancy is tiny. This ring keeps a
// power-of-two slot array that only ever grows: enqueue/dequeue cycles
// recycle the same slots forever, and a drained queue retains its high-water
// capacity for the next burst. Elements must be default-constructible and
// movable (Packet and the queues' Item wrappers are); a popped slot holds a
// moved-from element until it is overwritten, which is free for types that
// own no resources.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace xpass::net {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void push_back(T&& v) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  // Precondition: !empty().
  T pop_front() {
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return out;
  }

  // Drops every element (overwriting lazily); capacity is retained.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  size_t capacity() const { return slots_.size(); }

 private:
  void grow() {
    const size_t cap = slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<T> next(cap);
    for (size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  static constexpr size_t kInitialCapacity = 8;  // power of two

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace xpass::net
