// Deterministic topology partitioner for sharded parallel runs.
//
// Splits a finalized Topology into N shards along locality lines so that
// most packet hops stay shard-local and the conservative lookahead (the
// minimum propagation delay across any cut link) stays as large as the
// fabric allows:
//
//   1. Hosts are grouped by their first-hop switch (the ToR in a fat tree;
//      for host<->host direct links the host is its own group). Groups are
//      ordered by group-leader node id and dealt out as *contiguous runs*
//      balanced by host count — in a fat tree built pod-by-pod this lands
//      whole pods on one shard whenever shards divide the pod count.
//   2. Each first-hop switch joins the shard of its hosts.
//   3. Every other switch that neighbors an assigned switch takes the
//      majority shard among its assigned neighbors (ties break toward the
//      lowest shard id), iterating level by level until fixed point — in a
//      fat tree this pins aggregation switches to their pod's shard.
//   4. Anything still unassigned (core switches, isolated nodes) is dealt
//      round-robin by node id.
//
// The result is a pure function of (topology shape, shard count): no RNG,
// no iteration-order dependence, so a fixed shard count always yields the
// same cut and therefore the same parallel schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace xpass::net {

class Topology;

struct Partition {
  // shard_of[node id] -> shard index, for every node in the topology.
  std::vector<uint32_t> shard_of;
  size_t shards = 1;
  // Conservative lookahead: min prop_delay over links whose endpoints sit
  // on different shards. Time::max() when the cut is empty (every node on
  // one shard) — windows then stretch to the next control event.
  sim::Time lookahead = sim::Time::max();
  // Number of full-duplex links crossing the cut (diagnostics / tests).
  size_t cut_links = 0;
};

// Partitions `topo` into `shards` pieces (shards >= 1). Requires
// Topology::finalize(). Throws std::invalid_argument if shards == 0 or if
// any cut link has zero propagation delay (zero lookahead cannot make
// progress conservatively).
Partition partition_topology(const Topology& topo, size_t shards);

}  // namespace xpass::net
