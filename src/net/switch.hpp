// Output-queued switch with symmetric-hash deterministic ECMP.
//
// Path symmetry (§3.1): credits of a flow and the data they trigger must
// traverse the same physical links in opposite directions. We hash on the
// direction-invariant tuple (min(endpoints), max(endpoints), flow id) and
// keep ECMP candidate lists sorted by neighbor id on every switch, which is
// the paper's "symmetric hashing + deterministic ECMP".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/node.hpp"
#include "net/port.hpp"

namespace xpass::net {

// Per-switch routing table in CSR form: the ECMP candidates for destination
// d are ports[offsets[d] .. offsets[d+1]), candidate order preserved
// (sorted by neighbor id — deterministic ECMP). Flat arrays instead of a
// vector-of-vectors: recompute_routes() builds one of these per switch, and
// on k=16 fat trees the nested form's per-(switch, destination) inner
// vectors dominated construction time with allocator churn.
struct RouteTable {
  std::vector<uint32_t> offsets;  // size = num destinations + 1
  std::vector<Port*> ports;       // flat candidate array
  std::vector<uint32_t> dist;     // hop distance per destination (0 = none)
};

class Switch : public Node {
 public:
  Switch(sim::Simulator& sim, NodeId id, std::string name)
      : Node(sim, id, Kind::kSwitch, std::move(name)) {}

  void receive(Packet&& p, Port& in) override;

  // Routing table: per destination node id, the ECMP candidate egress ports
  // (sorted deterministically by Topology::finalize) and the hop distance
  // to that destination. Installing a table drops the live-candidate caches.
  void set_routes(RouteTable table) {
    routes_ = std::move(table);
    const size_t n = routes_.offsets.empty() ? 0 : routes_.offsets.size() - 1;
    cache_.assign(n, LiveCache{});
  }
  std::span<Port* const> candidates(NodeId dst) const {
    if (dst + 1 >= routes_.offsets.size()) return {};
    return std::span<Port* const>(routes_.ports)
        .subspan(routes_.offsets[dst],
                 routes_.offsets[dst + 1] - routes_.offsets[dst]);
  }

  // ECMP selection for a packet of `flow` between hosts `src` and `dst`
  // (either direction). The flow hash is direction-invariant; the hop
  // distance to the destination is mixed in so successive fabric levels
  // make decorrelated choices (no hash polarization) while remaining
  // symmetric: the forward choice at distance d pairs with the reverse
  // choice made at the same distance on the other side.
  Port* route(NodeId src, NodeId dst, FlowId flow) const;

  // Direction-invariant flow hash (same value for both directions of a flow).
  static uint64_t symmetric_hash(NodeId a, NodeId b, FlowId flow);

  // Packet spraying (§7): round-robin packets over all ECMP candidates
  // instead of per-flow hashing. Spreads load perfectly but breaks path
  // symmetry and introduces reordering (ExpressPass's bounded queues keep
  // it small — this mode lets you measure exactly that).
  void set_packet_spraying(bool on) { spraying_ = on; }
  bool packet_spraying() const { return spraying_; }

  uint64_t unroutable_drops() const {
    return unroutable_data_ + unroutable_credits_;
  }
  // Per-class split so the fault-conservation ledger can account lost
  // credits separately from lost data.
  uint64_t unroutable_data() const { return unroutable_data_; }
  uint64_t unroutable_credits() const { return unroutable_credits_; }

 private:
  // Per-destination cache of the ECMP candidates whose links are live in
  // both directions, in candidate order. Valid while its epoch matches the
  // topology's liveness epoch; fail()/recover()/recompute_routes() bump
  // that counter, so the fault-free forwarding path costs one integer
  // compare instead of an is_up() scan per packet. kNeverBuilt forces the
  // first build even at topology epoch 0.
  struct LiveCache {
    static constexpr uint64_t kNeverBuilt = ~0ull;
    std::vector<Port*> live;
    uint64_t epoch = kNeverBuilt;
  };

  // The live candidates toward dst, refreshed when the epoch moved. Falls
  // back to a per-call scan for switches built outside a Topology (no
  // shared epoch to key the cache on).
  const std::vector<Port*>* live_candidates(NodeId dst) const;

  RouteTable routes_;
  mutable std::vector<LiveCache> cache_;
  mutable std::vector<Port*> scan_scratch_;  // no-epoch fallback storage
  bool spraying_ = false;
  uint64_t rr_counter_ = 0;
  uint64_t unroutable_data_ = 0;
  uint64_t unroutable_credits_ = 0;
};

}  // namespace xpass::net
