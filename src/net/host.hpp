// Host: a server with one NIC port, a per-flow packet demultiplexer, and a
// credit-processing delay model.
//
// The delay model reproduces the host-side variance the paper measures in §5
// (SoftNIC: median 0.38us, 99.99th percentile 6.2us) — the delay between a
// credit arriving and the corresponding data frame leaving the NIC. The
// variance (delay spread, "∆d_host") is what sizes the data buffers in the
// network-calculus bound.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/node.hpp"
#include "net/port.hpp"

namespace xpass::net {

struct HostDelayModel {
  enum class Kind { kNone, kUniform, kLogNormal };
  Kind kind = Kind::kNone;
  sim::Time min;              // lower clamp / uniform low
  sim::Time max;              // upper clamp / uniform high
  double lognorm_median_us = 0.38;
  double lognorm_sigma = 0.9;

  static HostDelayModel none() { return {}; }
  // SoftNIC software implementation measured in the paper's testbed.
  static HostDelayModel testbed() {
    HostDelayModel m;
    m.kind = Kind::kLogNormal;
    m.min = sim::Time::ns(200);
    m.max = sim::Time::ns(6200);
    return m;
  }
  // A NIC-hardware implementation (Fig 5b's 1us delay-spread scenario).
  static HostDelayModel hardware() {
    HostDelayModel m;
    m.kind = Kind::kUniform;
    m.min = sim::Time::zero();
    m.max = sim::Time::us(1);
    return m;
  }

  sim::Time sample(sim::Rng& rng) const;
  // ∆d_host: the worst-case spread, used by the calculus module.
  sim::Time spread() const { return max - min; }
};

class Host : public Node {
 public:
  using Handler = std::function<void(Packet&&)>;

  Host(sim::Simulator& sim, NodeId id, std::string name)
      : Node(sim, id, Kind::kHost, std::move(name)) {}

  Port& nic() { return port(0); }
  void send(Packet&& p) { nic().enqueue(std::move(p)); }

  void register_flow(FlowId f, Handler h) { handlers_[f] = std::move(h); }
  void unregister_flow(FlowId f) { handlers_.erase(f); }

  void receive(Packet&& p, Port& in) override;

  HostDelayModel& delay_model() { return delay_model_; }
  void set_delay_model(HostDelayModel m) { delay_model_ = m; }
  sim::Time sample_credit_delay() { return delay_model_.sample(sim_->rng()); }

  // Credits that arrived for flows no longer registered (e.g. after the
  // sender finished): pure waste, counted for Fig 20.
  uint64_t stray_credits() const { return stray_credits_; }

  // Frames that arrived with a broken FCS (link bit errors): the NIC
  // discards them before the transport sees anything. Per-class counters
  // close the fault-conservation ledger.
  uint64_t corrupt_data_drops() const { return corrupt_data_drops_; }
  uint64_t corrupt_credit_drops() const { return corrupt_credit_drops_; }

 private:
  std::unordered_map<FlowId, Handler> handlers_;
  HostDelayModel delay_model_;
  uint64_t stray_credits_ = 0;
  uint64_t corrupt_data_drops_ = 0;
  uint64_t corrupt_credit_drops_ = 0;
};

}  // namespace xpass::net
