// Slab pool for in-flight packets.
//
// Packets travel the hot path by value (queue slots, event captures), which
// is why Packet is packed to one cache line. The remaining copy that used to
// hurt was the wire-flight capture: every transmission moved a full Packet
// into its delivery callback, and a capture of [this + Packet] no longer
// fits the event queue's small-buffer optimization once that buffer is
// sized for pointers rather than payloads. PacketRef parks the packet in a
// recycled slab slot and captures 8 bytes instead.
//
// The pool is thread-local (PacketPool::local()): a simulation runs
// single-threaded (the sweep executor parallelizes across *scenarios*, one
// thread each), so acquire/release never cross threads and need no locks.
// Slabs are never returned to the allocator; steady state recycles the same
// slots through the intrusive freelist forever — zero mallocs per packet.
//
// Sharded runs (sim::ParallelSimulator) keep the lock-free contract by
// *ownership*, not locking: each shard's worker thread binds its shard's
// pool for its whole lifetime (bind()), so every in-window acquire/release
// stays on one thread. The remaining cross-pool traffic — control events on
// the barrier thread acquiring packets that a worker later releases, or
// teardown releasing worker-acquired packets on the main thread — happens
// only while workers are parked, which makes it single-threaded too; it
// merely migrates freelist nodes between pools. That migration is why shard
// pools must be immortal (see Topology's shard pools): a node may outlive
// the pool whose slab allocated it only if no slab is ever freed.
// outstanding() is exact only when no migration has occurred.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace xpass::net {

class PacketPool {
 public:
  // The calling thread's pool: the bound pool if bind() was called on this
  // thread, else a thread-local default (simulations are single-threaded;
  // see above).
  static PacketPool& local();

  // Redirects this thread's local() to `p` (nullptr restores the default).
  // Shard worker threads bind their shard's pool before processing events.
  static void bind(PacketPool* p);

  Packet* acquire(Packet&& p) {
    if (free_ == nullptr) grow();
    Node* n = free_;
    free_ = n->next;
    ++outstanding_;
    n->pkt = std::move(p);
    return &n->pkt;
  }

  void release(Packet* p) {
    // Packet is trivially destructible and the first member of Node, so the
    // slot is reinterpretable as a freelist node in place.
    Node* n = reinterpret_cast<Node*>(p);
    n->next = free_;
    free_ = n;
    --outstanding_;
  }

  // Introspection: live refs and slab footprint (tests, leak checks).
  size_t outstanding() const { return outstanding_; }
  size_t capacity() const { return slabs_.size() * kSlabPackets; }

 private:
  union Node {
    Packet pkt;
    Node* next;
    Node() : next(nullptr) {}
  };
  static_assert(offsetof(Node, pkt) == 0);

  static constexpr size_t kSlabPackets = 256;

  void grow();

  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_ = nullptr;
  size_t outstanding_ = 0;
};

// Move-only RAII handle to a pooled packet; 8 bytes, releases to the
// thread's pool on destruction.
class PacketRef {
 public:
  PacketRef() = default;
  explicit PacketRef(Packet&& p)
      : p_(PacketPool::local().acquire(std::move(p))) {}
  PacketRef(PacketRef&& o) noexcept : p_(std::exchange(o.p_, nullptr)) {}
  PacketRef& operator=(PacketRef&& o) noexcept {
    if (this != &o) {
      reset();
      p_ = std::exchange(o.p_, nullptr);
    }
    return *this;
  }
  PacketRef(const PacketRef&) = delete;
  PacketRef& operator=(const PacketRef&) = delete;
  ~PacketRef() { reset(); }

  void reset() {
    if (p_ != nullptr) PacketPool::local().release(std::exchange(p_, nullptr));
  }

  explicit operator bool() const { return p_ != nullptr; }
  Packet& operator*() { return *p_; }
  Packet* operator->() { return p_; }
  Packet* get() { return p_; }

 private:
  Packet* p_ = nullptr;
};

}  // namespace xpass::net
