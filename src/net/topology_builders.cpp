#include "net/topology_builders.hpp"

#include <cassert>
#include <string>

namespace xpass::net {

Dumbbell build_dumbbell(Topology& topo, size_t pairs, const LinkConfig& edge,
                        const LinkConfig& bottleneck) {
  Dumbbell d;
  d.left = &topo.add_switch("swL");
  d.right = &topo.add_switch("swR");
  auto [pl, pr] = topo.connect(*d.left, *d.right, bottleneck);
  d.bottleneck = &pl;
  (void)pr;
  for (size_t i = 0; i < pairs; ++i) {
    Host& s = topo.add_host("snd" + std::to_string(i));
    Host& r = topo.add_host("rcv" + std::to_string(i));
    topo.connect(s, *d.left, edge);
    topo.connect(r, *d.right, edge);
    d.senders.push_back(&s);
    d.receivers.push_back(&r);
  }
  topo.finalize();
  return d;
}

Star build_star(Topology& topo, size_t n_hosts, const LinkConfig& link) {
  Star s;
  s.tor = &topo.add_switch("tor");
  for (size_t i = 0; i < n_hosts; ++i) {
    Host& h = topo.add_host();
    topo.connect(h, *s.tor, link);
    s.hosts.push_back(&h);
  }
  topo.finalize();
  return s;
}

ParkingLot build_parking_lot(Topology& topo, size_t n_links,
                             const LinkConfig& edge,
                             const LinkConfig& backbone) {
  assert(n_links >= 1);
  ParkingLot p;
  for (size_t i = 0; i <= n_links; ++i) {
    p.switches.push_back(&topo.add_switch("S" + std::to_string(i)));
  }
  std::vector<std::pair<Port*, Port*>> ports;
  for (size_t i = 1; i <= n_links; ++i) {
    auto [a, b] = topo.connect(*p.switches[i - 1], *p.switches[i], backbone);
    // Data direction of flow 0 is S_N -> S_0, so the data-direction egress
    // of L_i is the port on S_i toward S_{i-1}.
    p.data_links.push_back(&b);
    (void)a;
  }
  p.long_src = &topo.add_host("longsrc");
  p.long_dst = &topo.add_host("longdst");
  topo.connect(*p.long_src, *p.switches[n_links], edge);
  topo.connect(*p.long_dst, *p.switches[0], edge);
  for (size_t i = 1; i <= n_links; ++i) {
    Host& cs = topo.add_host("xsrc" + std::to_string(i));
    Host& cd = topo.add_host("xdst" + std::to_string(i));
    topo.connect(cs, *p.switches[i], edge);
    topo.connect(cd, *p.switches[i - 1], edge);
    p.cross_srcs.push_back(&cs);
    p.cross_dsts.push_back(&cd);
  }
  topo.finalize();
  return p;
}

MultiBottleneck build_multi_bottleneck(Topology& topo, size_t n_long_flows,
                                       const LinkConfig& edge,
                                       const LinkConfig& backbone) {
  MultiBottleneck m;
  for (size_t i = 0; i < 4; ++i) {
    m.switches.push_back(&topo.add_switch("S" + std::to_string(i)));
  }
  auto [l1a, l1b] = topo.connect(*m.switches[0], *m.switches[1], backbone);
  topo.connect(*m.switches[1], *m.switches[2], backbone);
  topo.connect(*m.switches[2], *m.switches[3], backbone);
  m.link1_data = &l1a;
  (void)l1b;

  m.flow0_src = &topo.add_host("f0src");
  m.flow0_dst = &topo.add_host("f0dst");
  topo.connect(*m.flow0_src, *m.switches[0], edge);
  topo.connect(*m.flow0_dst, *m.switches[1], edge);
  for (size_t i = 0; i < n_long_flows; ++i) {
    Host& s = topo.add_host("lsrc" + std::to_string(i));
    Host& d = topo.add_host("ldst" + std::to_string(i));
    topo.connect(s, *m.switches[0], edge);
    topo.connect(d, *m.switches[3], edge);
    m.srcs.push_back(&s);
    m.dsts.push_back(&d);
  }
  topo.finalize();
  return m;
}

FatTree build_fat_tree(Topology& topo, size_t k, const LinkConfig& host_link,
                       const LinkConfig& fabric_link) {
  assert(k % 2 == 0);
  FatTree ft;
  ft.k = k;
  const size_t half = k / 2;

  for (size_t c = 0; c < half * half; ++c) {
    ft.cores.push_back(&topo.add_switch("core" + std::to_string(c)));
  }
  for (size_t p = 0; p < k; ++p) {
    std::vector<Switch*> pod_edges, pod_aggrs;
    for (size_t a = 0; a < half; ++a) {
      Switch& ag = topo.add_switch("aggr" + std::to_string(p) + "_" +
                                   std::to_string(a));
      ft.aggrs.push_back(&ag);
      pod_aggrs.push_back(&ag);
      for (size_t j = 0; j < half; ++j) {
        topo.connect(ag, *ft.cores[a * half + j], fabric_link);
      }
    }
    for (size_t e = 0; e < half; ++e) {
      Switch& ed = topo.add_switch("edge" + std::to_string(p) + "_" +
                                   std::to_string(e));
      ft.edges.push_back(&ed);
      pod_edges.push_back(&ed);
      for (Switch* ag : pod_aggrs) topo.connect(ed, *ag, fabric_link);
      for (size_t h = 0; h < half; ++h) {
        Host& host = topo.add_host();
        topo.connect(host, ed, host_link);
        ft.hosts.push_back(&host);
      }
    }
  }
  topo.finalize();
  return ft;
}

Clos build_clos(Topology& topo, size_t n_core, size_t pods,
                size_t aggr_per_pod, size_t tor_per_pod, size_t hosts_per_tor,
                const LinkConfig& host_link, const LinkConfig& fabric_link) {
  Clos cl;
  for (size_t c = 0; c < n_core; ++c) {
    cl.cores.push_back(&topo.add_switch("core" + std::to_string(c)));
  }
  for (size_t p = 0; p < pods; ++p) {
    std::vector<Switch*> pod_aggrs;
    for (size_t a = 0; a < aggr_per_pod; ++a) {
      Switch& ag =
          topo.add_switch("aggr" + std::to_string(p) + "_" + std::to_string(a));
      cl.aggrs.push_back(&ag);
      pod_aggrs.push_back(&ag);
      for (size_t c = 0; c < n_core; ++c) {
        if (c % aggr_per_pod == a) topo.connect(ag, *cl.cores[c], fabric_link);
      }
    }
    for (size_t t = 0; t < tor_per_pod; ++t) {
      Switch& tor =
          topo.add_switch("tor" + std::to_string(p) + "_" + std::to_string(t));
      cl.tors.push_back(&tor);
      for (Switch* ag : pod_aggrs) {
        auto [up, down] = topo.connect(tor, *ag, fabric_link);
        cl.tor_uplinks.push_back(&up);
        (void)down;
      }
      for (size_t h = 0; h < hosts_per_tor; ++h) {
        Host& host = topo.add_host();
        topo.connect(host, tor, host_link);
        cl.hosts.push_back(&host);
      }
    }
  }
  topo.finalize();
  return cl;
}

}  // namespace xpass::net
