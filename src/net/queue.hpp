// Egress queues.
//
// DropTailQueue: byte-capacity FIFO with optional instantaneous-threshold ECN
// marking (DCTCP), optional phantom queue (HULL: virtual queue draining at a
// fraction of line rate, marking when the virtual backlog exceeds a
// threshold), per-packet queuing-delay stamping (DX feedback), and
// time-weighted occupancy statistics (Table 3).
//
// CreditQueue: tiny packet-count-capacity FIFO for ExpressPass credits; the
// drop-on-overflow here *is* the congestion signal of the whole scheme.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "net/ring_buffer.hpp"
#include "sim/time.hpp"

namespace xpass::net {

struct QueueStats {
  uint64_t enqueued = 0;
  uint64_t dropped = 0;
  uint64_t bytes_enqueued = 0;
  uint64_t max_bytes = 0;
  size_t max_packets = 0;
  uint64_t ecn_marked = 0;
  // Time integral of byte occupancy, for time-weighted average occupancy.
  double byte_seconds = 0.0;
  sim::Time last_change;

  double avg_bytes(sim::Time now) const {
    const double span = now.to_sec();
    return span > 0 ? byte_seconds / span : 0.0;
  }
};

class DropTailQueue {
 public:
  struct Config {
    uint64_t capacity_bytes = 384'500;  // 250 MTUs (paper's 10G setting)
    uint64_t ecn_threshold_bytes = 0;   // 0 = ECN disabled
    // HULL phantom queue: drains at phantom_drain_bps; marks CE when the
    // virtual backlog exceeds phantom_mark_bytes. Disabled when 0.
    double phantom_drain_bps = 0.0;
    uint64_t phantom_mark_bytes = 0;
    // BFC-style flow-level queueing: packets are kept in per-flow FIFOs
    // served round-robin in first-arrival order, and individual flows can
    // be paused/resumed by per-hop backpressure. Admission (capacity, ECN,
    // phantom) and every statistic operate on total occupancy exactly as in
    // FIFO mode. Service order is arrival-order round-robin — never keyed
    // on flow-id values — so runs stay deterministic and flow-relabel
    // invariant.
    bool per_flow = false;
  };

  DropTailQueue() : DropTailQueue(Config()) {}
  explicit DropTailQueue(Config cfg) : cfg_(cfg) {}

  // Returns false and drops if over capacity. May set p.ecn_ce.
  bool enqueue(Packet&& p, sim::Time now);
  bool empty() const { return cfg_.per_flow ? pkts_ == 0 : items_.empty(); }
  // Anything a scheduler may serve right now? FIFO mode: same as !empty();
  // per-flow mode: at least one unpaused flow has packets.
  bool serviceable() const {
    return cfg_.per_flow ? serviceable_pkts_ > 0 : !items_.empty();
  }
  // Precondition: serviceable(). Adds queue residence time to
  // pkt.queue_delay. Per-flow mode serves flows round-robin.
  Packet dequeue(sim::Time now);
  // FIFO mode only (per-flow service order is the scheduler's business).
  const Packet& front() const { return items_.front().pkt; }
  // Discards every queued packet (link failure with drop semantics),
  // counting them as drops; per-flow pause flags reset. Returns the count.
  size_t clear(sim::Time now);

  // Per-flow backpressure (no-ops in FIFO mode). A paused flow's packets
  // stay queued but are skipped by dequeue until resumed.
  void pause_flow(FlowId flow);
  void resume_flow(FlowId flow);
  bool flow_paused(FlowId flow) const;
  uint64_t flow_bytes(FlowId flow) const;
  size_t paused_flows() const;  // introspection (tests)

  uint64_t bytes() const { return bytes_; }
  size_t packets() const { return cfg_.per_flow ? pkts_ : items_.size(); }
  const QueueStats& stats() const { return stats_; }
  const Config& config() const { return cfg_; }

 private:
  void account(sim::Time now);

  struct Item {
    Packet pkt;
    sim::Time enq_time;
  };

  // Per-flow mode: one FIFO per flow, discovered on first arrival.
  struct FlowQ {
    RingBuffer<Item> items;
    uint64_t bytes = 0;
    bool paused = false;
    bool in_active = false;  // queued in the active_ rotation
  };
  FlowQ* flow_q(FlowId flow);
  const FlowQ* flow_q(FlowId flow) const;

  Config cfg_;
  RingBuffer<Item> items_;  // FIFO mode storage
  // Per-flow mode storage. active_ holds the round-robin rotation of flows
  // believed serviceable; stale entries (paused or drained since being
  // queued) are pruned lazily at dequeue.
  std::vector<std::unique_ptr<FlowQ>> flowqs_;
  std::unordered_map<FlowId, size_t> flow_ix_;
  RingBuffer<size_t> active_;
  size_t pkts_ = 0;
  size_t serviceable_pkts_ = 0;  // packets in unpaused flows
  uint64_t bytes_ = 0;
  double phantom_bytes_ = 0.0;
  sim::Time phantom_last_;
  QueueStats stats_;
};

class CreditQueue {
 public:
  explicit CreditQueue(size_t capacity_pkts = 8) : capacity_(capacity_pkts) {}

  bool enqueue(Packet&& p, sim::Time now);
  bool empty() const { return items_.empty(); }
  Packet dequeue(sim::Time now);
  const Packet& front() const { return items_.front(); }
  // Discards every queued credit, counting them as drops (they were lost to
  // the fault, exactly like a rate-limiter overflow). Returns the count.
  size_t clear(sim::Time now);

  size_t packets() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  const QueueStats& stats() const { return stats_; }

 private:
  size_t capacity_;
  RingBuffer<Packet> items_;
  QueueStats stats_;
};

}  // namespace xpass::net
