// Packet model.
//
// Wire sizes include Ethernet preamble + inter-packet gap, matching the
// paper's accounting: a minimum frame occupies 84B on the wire and a
// full-MTU data frame 1538B, so credits rate-limited to 84/(84+1538) ~= 5%
// of a link admit exactly one MTU of data each.
#pragma once

#include <cstdint>
#include <string_view>
#include <type_traits>

#include "sim/time.hpp"

namespace xpass::net {

using NodeId = uint32_t;
using FlowId = uint32_t;

inline constexpr uint32_t kMinWireBytes = 84;     // min Ethernet frame on wire
inline constexpr uint32_t kMaxWireBytes = 1538;   // full MTU frame on wire
inline constexpr uint32_t kHeaderOverhead = 78;   // eth+ip+tcp+fcs+preamble+ipg
inline constexpr uint32_t kMssBytes = kMaxWireBytes - kHeaderOverhead;  // 1460
// Wire cost of one credit + the full frame it admits. Credit sizes are
// randomized over [84, 92]B (§3.1: creates drain-time jitter at switches and
// breaks drop synchronization), so shapers are provisioned for the *mean*
// credit size: that keeps the credit count a link admits exactly one per
// MTU-cycle while the byte-metering of random sizes jitters individual
// drain instants.
inline constexpr uint32_t kCreditWireBytes = kMinWireBytes;
inline constexpr uint32_t kCreditSizeSpread = 8;  // randomized over [84, 92]
inline constexpr uint32_t kCreditMeanWireBytes =
    kMinWireBytes + kCreditSizeSpread / 2;  // 88
inline constexpr uint32_t kCreditCycleBytes = kMinWireBytes + kMaxWireBytes;

enum class PktType : uint8_t {
  kData,
  kAck,            // reactive protocols' feedback
  kCredit,         // ExpressPass credit
  kCreditRequest,  // piggybacked on SYN in practice; explicit packet here
  kCreditStop,
  kSyn,
  kSynAck,
  kFin,
  kCnp,            // DCQCN congestion notification packet
};

std::string_view to_string(PktType t);

inline bool is_credit_class(PktType t) { return t == PktType::kCredit; }

// Packed to exactly one cache line (64B, trivially copyable): packets are
// stored by value in the ring-buffer queues and in event captures, so the
// layout is what every enqueue/dequeue/delivery copies. The flag booleans
// are single-bit fields sharing one byte (field syntax `p.ecn_ce = true`
// unchanged); the old layout padded them to 8 bytes mid-struct.
struct Packet {
  PktType type = PktType::kData;
  // Traffic class for multi-class credit scheduling (§7: QoS is enforced on
  // *credits* — weighting credit classes weights the data they admit).
  uint8_t credit_class = 0;
  bool ecn_ce : 1 = false;  // congestion experienced (set by switch queues)
  bool ece : 1 = false;     // echoed by receiver in ACKs
  bool fin : 1 = false;     // last data packet of the flow
  // FCS-breaking bit error (fault injection). The frame still spends wire
  // time and buffer space; switches forward it (cut-through does not
  // validate FCS) and the receiving host discards it on checksum.
  bool corrupted : 1 = false;
  FlowId flow = 0;
  NodeId src = 0;  // source host of *this packet* (not of the flow)
  NodeId dst = 0;
  uint32_t wire_bytes = kMinWireBytes;
  uint32_t payload_bytes = 0;

  uint64_t seq = 0;  // data: byte offset; credit: credit sequence number
  uint64_t ack = 0;  // ACK: cumulative bytes; data: echoed credit seq
                     // credit: cumulative bytes received (receiver-driven
                     // loss recovery, see core/sender)

  double rcp_rate_bps = 0.0;  // 0 = unset; min of per-port RCP rates on path
  sim::Time ts;               // sender timestamp, echoed for RTT measurement
  sim::Time queue_delay;      // accumulated queuing delay (DX feedback)
};
static_assert(sizeof(Packet) == 64, "Packet must stay one cache line");
static_assert(std::is_trivially_copyable_v<Packet>);

// Convenience constructors ------------------------------------------------

inline Packet make_data(FlowId f, NodeId src, NodeId dst, uint64_t seq,
                        uint32_t payload) {
  Packet p;
  p.type = PktType::kData;
  p.flow = f;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  p.payload_bytes = payload;
  p.wire_bytes = payload + kHeaderOverhead;
  if (p.wire_bytes < kMinWireBytes) p.wire_bytes = kMinWireBytes;
  return p;
}

inline Packet make_control(PktType t, FlowId f, NodeId src, NodeId dst) {
  Packet p;
  p.type = t;
  p.flow = f;
  p.src = src;
  p.dst = dst;
  p.wire_bytes = kMinWireBytes;
  return p;
}

}  // namespace xpass::net
