// Jain's fairness index (Jain, Chiu, Hawe 1984), used throughout the eval.
#pragma once

#include <span>

namespace xpass::stats {

// Returns (sum x)^2 / (n * sum x^2) in [1/n, 1]; 1.0 for empty/all-zero
// input by convention (nothing is being shared unfairly).
double jain_index(std::span<const double> xs);

}  // namespace xpass::stats
