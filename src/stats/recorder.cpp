#include "stats/recorder.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xpass::stats {

namespace {

// Shortest-round-trip double formatting (%.17g is exact but noisy; try
// increasing precision until the value parses back identically). NaN/inf
// are not valid JSON numbers — emit null.
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_array(std::string& out, const std::vector<double>& xs) {
  out += '[';
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    append_double(out, xs[i]);
  }
  out += ']';
}

}  // namespace

std::string Recorder::to_json(const std::string& scenario_name) const {
  std::string out = "{\n  \"schema\": \"";
  out += kSchema;
  out += "\",\n  \"scenario\": ";
  append_quoted(out, scenario_name);
  if (!abort_reason_.empty()) {
    out += ",\n  \"aborted\": true,\n  \"abort_reason\": ";
    append_quoted(out, abort_reason_);
  }
  out += ",\n  \"scalars\": {";
  bool first = true;
  for (const auto& [name, v] : scalars_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": ";
    append_double(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"series\": {";
  first = true;
  for (const auto& [name, s] : series_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, name);
    out += ": {\"t_sec\": ";
    append_array(out, s.t_sec);
    out += ", \"v\": ";
    append_array(out, s.v);
    out += '}';
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string Recorder::series_csv(const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  std::string out = "t_sec,value\n";
  char buf[80];
  for (size_t i = 0; i < it->second.t_sec.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.9f,%.17g\n", it->second.t_sec[i],
                  it->second.v[i]);
    out += buf;
  }
  return out;
}

}  // namespace xpass::stats
