// Sample collector with exact percentiles (sorting on demand).
//
// mean/min/max/stddev are maintained incrementally in add() — O(1) per query
// regardless of sample count — so per-window stat reads in the hot reporting
// path never rescan the sample vector. Percentiles still sort lazily (and
// only re-sort after new samples arrive).
#pragma once

#include <cstddef>
#include <vector>

namespace xpass::stats {

class Samples {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
    sum_ += v;
    // Welford's running second moment: numerically stable for the long
    // (millions of FCT samples) accumulations the workload benches produce.
    const double delta = v - running_mean_;
    running_mean_ += delta / static_cast<double>(values_.size());
    m2_ += delta * (v - running_mean_);
    if (values_.size() == 1) {
      min_ = v;
      max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  // p in [0,1]; nearest-rank interpolation.
  double percentile(double p) const;
  // CDF evaluation points: returns the sorted samples.
  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
  double running_mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace xpass::stats
