// Sample collector with exact percentiles (sorting on demand).
#pragma once

#include <cstddef>
#include <vector>

namespace xpass::stats {

class Samples {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  // p in [0,1]; nearest-rank interpolation.
  double percentile(double p) const;
  // CDF evaluation points: returns the sorted samples.
  const std::vector<double>& sorted() const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace xpass::stats
