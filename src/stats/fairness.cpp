#include "stats/fairness.hpp"

namespace xpass::stats {

double jain_index(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(xs.size());
  return (sum * sum) / (n * sum_sq);
}

}  // namespace xpass::stats
