// Flow-completion-time aggregation by the paper's size bins (Table 2):
//   S: 0-10KB, M: 10-100KB, L: 100KB-1MB, XL: >1MB.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"
#include "stats/percentile.hpp"

namespace xpass::stats {

enum class SizeBin : size_t { kS = 0, kM = 1, kL = 2, kXL = 3 };
inline constexpr size_t kNumBins = 4;

constexpr SizeBin size_bin(uint64_t bytes) {
  if (bytes <= 10'000) return SizeBin::kS;
  if (bytes <= 100'000) return SizeBin::kM;
  if (bytes <= 1'000'000) return SizeBin::kL;
  return SizeBin::kXL;
}

std::string_view bin_name(SizeBin b);

class FctCollector {
 public:
  void record(uint64_t flow_bytes, sim::Time fct) {
    const double sec = fct.to_sec();
    all_.add(sec);
    bins_[static_cast<size_t>(size_bin(flow_bytes))].add(sec);
  }
  const Samples& all() const { return all_; }
  const Samples& bin(SizeBin b) const {
    return bins_[static_cast<size_t>(b)];
  }
  size_t completed() const { return all_.count(); }

 private:
  Samples all_;
  std::array<Samples, kNumBins> bins_;
};

}  // namespace xpass::stats
