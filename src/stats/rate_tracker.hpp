// Per-flow goodput tracking over fixed windows — feeds utilization,
// fairness-index, and convergence-time measurements.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace xpass::stats {

class RateTracker {
 public:
  // Records `bytes` delivered for `flow` (call from receivers).
  void add(uint32_t flow, uint64_t bytes) {
    bytes_[flow] += bytes;
    cumulative_[flow] += bytes;
    total_ += bytes;
  }

  // Rates (bits/sec) accumulated since the last snapshot, then resets.
  // `window` is the elapsed time since the previous snapshot.
  std::vector<double> snapshot_rates(sim::Time window);
  // Same but keyed by flow id.
  std::unordered_map<uint32_t, double> snapshot_rates_by_flow(
      sim::Time window);
  // Same values as snapshot_rates(), tagged with their flow ids and in the
  // identical traversal order — so a sum/fairness fold over the .second
  // fields reproduces snapshot_rates()-based results bit-for-bit.
  std::vector<std::pair<uint32_t, double>> snapshot_rates_ordered(
      sim::Time window);

  // Moves this tracker's windowed byte counts into `dst` in ascending flow
  // id order (dst.add per flow, including zero-byte flows so dst's map
  // insertion history — and therefore its traversal order — depends only on
  // which flows exist, not on which happened to have traffic), then resets
  // this tracker's windows. Sharded runs flush per-shard trackers into the
  // scenario tracker with this at window barriers.
  void drain_into(RateTracker& dst);

  uint64_t total_bytes() const { return total_; }
  // All-time delivered bytes for one flow (never reset by snapshots) — the
  // telemetry series probes sample this.
  uint64_t cumulative_bytes(uint32_t flow) const {
    auto it = cumulative_.find(flow);
    return it == cumulative_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<uint32_t, uint64_t> bytes_;
  std::unordered_map<uint32_t, uint64_t> cumulative_;
  uint64_t total_ = 0;
};

}  // namespace xpass::stats
