#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>

namespace xpass::stats {

double Samples::mean() const {
  // sum_ accumulates in insertion order, matching what a rescan would
  // compute, so callers see the same value as the pre-cache implementation.
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double Samples::min() const { return min_; }

double Samples::max() const { return max_; }

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(values_.size() - 1));
}

const std::vector<double>& Samples::sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  return values_;
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  const auto& v = sorted();
  if (p <= 0.0) return v.front();
  if (p >= 1.0) return v.back();
  const double pos = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

}  // namespace xpass::stats
