// Periodic sampler of a queue's occupancy (Fig 13's queue traces).
#pragma once

#include <vector>

#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace xpass::stats {

class QueueMonitor {
 public:
  QueueMonitor(sim::Simulator& sim, const net::DropTailQueue& q,
               sim::Time interval)
      : sim_(sim), q_(q), interval_(interval) {
    arm();
  }

  struct Sample {
    sim::Time t;
    uint64_t bytes;
  };
  const std::vector<Sample>& samples() const { return samples_; }
  uint64_t max_bytes() const {
    uint64_t m = 0;
    for (const auto& s : samples_) m = std::max(m, s.bytes);
    return m;
  }

 private:
  void arm() {
    sim_.after(interval_, [this] {
      samples_.push_back(Sample{sim_.now(), q_.bytes()});
      arm();
    });
  }

  sim::Simulator& sim_;
  const net::DropTailQueue& q_;
  sim::Time interval_;
  std::vector<Sample> samples_;
};

}  // namespace xpass::stats
