#include "stats/fct.hpp"

namespace xpass::stats {

std::string_view bin_name(SizeBin b) {
  switch (b) {
    case SizeBin::kS: return "S(0-10KB)";
    case SizeBin::kM: return "M(10-100KB)";
    case SizeBin::kL: return "L(100KB-1MB)";
    case SizeBin::kXL: return "XL(>1MB)";
  }
  return "?";
}

}  // namespace xpass::stats
