#include "stats/rate_tracker.hpp"

#include <algorithm>
#include <utility>

namespace xpass::stats {

void RateTracker::drain_into(RateTracker& dst) {
  std::vector<std::pair<uint32_t, uint64_t>> moved(bytes_.begin(),
                                                   bytes_.end());
  std::sort(moved.begin(), moved.end());
  for (const auto& [flow, b] : moved) dst.add(flow, b);
  for (auto& [flow, b] : bytes_) b = 0;
}

std::vector<double> RateTracker::snapshot_rates(sim::Time window) {
  std::vector<double> out;
  out.reserve(bytes_.size());
  const double sec = window.to_sec();
  for (auto& [flow, b] : bytes_) {
    (void)flow;
    out.push_back(sec > 0 ? static_cast<double>(b) * 8.0 / sec : 0.0);
    b = 0;
  }
  return out;
}

std::vector<std::pair<uint32_t, double>> RateTracker::snapshot_rates_ordered(
    sim::Time window) {
  std::vector<std::pair<uint32_t, double>> out;
  out.reserve(bytes_.size());
  const double sec = window.to_sec();
  for (auto& [flow, b] : bytes_) {
    out.emplace_back(flow,
                     sec > 0 ? static_cast<double>(b) * 8.0 / sec : 0.0);
    b = 0;
  }
  return out;
}

std::unordered_map<uint32_t, double> RateTracker::snapshot_rates_by_flow(
    sim::Time window) {
  std::unordered_map<uint32_t, double> out;
  const double sec = window.to_sec();
  for (auto& [flow, b] : bytes_) {
    out[flow] = sec > 0 ? static_cast<double>(b) * 8.0 / sec : 0.0;
    b = 0;
  }
  return out;
}

}  // namespace xpass::stats
