// Recorder: the scenario-wide telemetry sink.
//
// A Recorder holds named *scalar* probes and named *time series*. Layers
// (net::Topology, runner::FlowDriver, core::ExpressPass) register probes via
// their register_telemetry() hooks instead of every bench polling counters
// by hand; the ScenarioEngine drives sampling and finally emits everything
// as schema-tagged JSON (the same flow the BENCH_*.json artifacts use) or
// per-series CSV.
//
// Two probe styles:
//   * push — set(name, v) / sample(name, t, v) record a value immediately;
//   * pull — gauge(name, fn) / series_gauge(name, fn) register a callback
//     that collect() (scalars) or sample_all(t) (series) evaluates.
//
// Probe names are dotted paths ("net.data_drops", "flow.3.goodput_bps").
// Emission order is the lexicographic name order, so JSON output is stable
// across runs and across registration order.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace xpass::stats {

class Recorder {
 public:
  static constexpr std::string_view kSchema = "xpass.recorder.v1";

  struct Series {
    std::vector<double> t_sec;
    std::vector<double> v;
  };

  Recorder() = default;
  Recorder(Recorder&&) = default;
  Recorder& operator=(Recorder&&) = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // --- scalars -----------------------------------------------------------
  // NaN/inf are not measurements (and not JSON numbers): a non-finite push
  // is rejected — the probe keeps its previous value (or stays absent) and
  // rejected() counts the refusal so harnesses can flag the buggy probe.
  void set(const std::string& name, double v) {
    if (!std::isfinite(v)) {
      ++rejected_;
      return;
    }
    scalars_[name] = v;
  }
  // Registers a pull probe; evaluated (and re-evaluated) by collect().
  void gauge(const std::string& name, std::function<double()> fn) {
    gauges_[name] = std::move(fn);
  }
  bool has(const std::string& name) const {
    return scalars_.count(name) != 0;
  }
  // Value of a collected scalar; 0.0 when the probe does not exist.
  double scalar(const std::string& name) const {
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
  }
  const std::map<std::string, double>& scalars() const { return scalars_; }

  // --- time series -------------------------------------------------------
  // Rejects non-finite values/timestamps like set(); the series keeps its
  // t/v vectors aligned by dropping the whole point.
  void sample(const std::string& name, double t_sec, double v) {
    if (!std::isfinite(v) || !std::isfinite(t_sec)) {
      ++rejected_;
      return;
    }
    Series& s = series_[name];
    s.t_sec.push_back(t_sec);
    s.v.push_back(v);
  }
  // Registers a pull series probe; sample_all(t) appends one point each.
  void series_gauge(const std::string& name, std::function<double()> fn) {
    series_gauges_.emplace_back(name, std::move(fn));
  }
  void sample_all(double t_sec) {
    for (const auto& [name, fn] : series_gauges_) {
      sample(name, t_sec, fn());
    }
  }
  const std::map<std::string, Series>& series() const { return series_; }

  // Evaluates every gauge into its scalar slot. Call after the run (and as
  // often as you like — gauges are re-evaluated in place). Non-finite gauge
  // reads are rejected like any other push.
  void collect() {
    for (const auto& [name, fn] : gauges_) set(name, fn());
  }

  // Count of non-finite pushes refused (scalars, samples, gauge reads).
  uint64_t rejected() const { return rejected_; }

  // --- truncation ---------------------------------------------------------
  // Marks this run as truncated by a RunBudget. The emitted JSON then
  // carries "aborted": true plus the machine-readable reason, so consumers
  // (check_recorder_json.py, campaign merges) can tell a clean run from a
  // budget-clipped one — every recorded value is still valid, it just
  // covers a shorter window than the spec asked for.
  void set_abort(std::string reason) { abort_reason_ = std::move(reason); }
  bool aborted() const { return !abort_reason_.empty(); }
  const std::string& abort_reason() const { return abort_reason_; }

  // Drops the registered callbacks (which capture raw pointers into the
  // scenario's network) but keeps every collected value, so a Recorder can
  // safely outlive the Simulator/Topology it observed.
  void detach() {
    collect();
    gauges_.clear();
    series_gauges_.clear();
  }

  // --- emission ----------------------------------------------------------
  // Schema-tagged JSON document (see tools/check_recorder_json.py):
  //   {"schema": "xpass.recorder.v1", "scenario": <name>,
  //    "scalars": {...}, "series": {<name>: {"t_sec": [...], "v": [...]}}}
  // Budget-truncated runs add "aborted": true and "abort_reason": <string>
  // between "scenario" and "scalars"; healthy runs omit both keys.
  std::string to_json(const std::string& scenario_name) const;
  // "t_sec,value\n" rows for one series; empty string if unknown.
  std::string series_csv(const std::string& name) const;

 private:
  uint64_t rejected_ = 0;
  std::string abort_reason_;  // non-empty = run truncated by a budget
  std::map<std::string, double> scalars_;
  std::map<std::string, std::function<double()>> gauges_;
  std::map<std::string, Series> series_;
  std::vector<std::pair<std::string, std::function<double()>>> series_gauges_;
};

}  // namespace xpass::stats
