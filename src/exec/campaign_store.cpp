#include "exec/campaign_store.hpp"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace xpass::exec {

namespace fs = std::filesystem;

namespace {

// FNV-1a, 64-bit. Used both for the entry checksum and (with two distinct
// offset bases) as the two halves of the 128-bit content address. Not
// cryptographic — the store defends against truncation and bit rot, not an
// adversary writing colliding entries into its own cache directory.
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
// Second stream: FNV offset basis XOR a golden-ratio constant, so the two
// halves of the key decorrelate without a second pass algorithm.
constexpr uint64_t kFnvOffsetAlt = kFnvOffset ^ 0x9e3779b97f4a7c15ULL;

uint64_t fnv1a(std::string_view bytes, uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

void append_hex64(std::string& out, uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(v >> shift) & 0xf]);
  }
}

// Entry header: "xpass.campaign.entry.v1 <payload size> <payload fnv64>\n"
// followed by the raw payload bytes. The payload is stored verbatim (no
// JSON escaping layer) so a cache hit is byte-for-byte the original result.
constexpr std::string_view kEntryMagic = "xpass.campaign.entry.v1";

}  // namespace

CampaignStore::CampaignStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "objects", ec);
  if (ec) {
    throw std::runtime_error("CampaignStore: cannot create '" + dir_ +
                             "/objects': " + ec.message());
  }
  fs::create_directories(fs::path(dir_) / "quarantine", ec);
  if (ec) {
    throw std::runtime_error("CampaignStore: cannot create '" + dir_ +
                             "/quarantine': " + ec.message());
  }
}

std::string CampaignStore::key(std::string_view canonical_bytes,
                               std::string_view code_version) {
  // Two independent 64-bit FNV streams over (version || '\0' || bytes); the
  // version separator keeps ("v1", "2spec") and ("v12", "spec") distinct.
  uint64_t lo = fnv1a(code_version, kFnvOffset);
  lo = fnv1a(std::string_view("\0", 1), lo);
  lo = fnv1a(canonical_bytes, lo);
  uint64_t hi = fnv1a(code_version, kFnvOffsetAlt);
  hi = fnv1a(std::string_view("\0", 1), hi);
  hi = fnv1a(canonical_bytes, hi);
  std::string out;
  out.reserve(32);
  append_hex64(out, hi);
  append_hex64(out, lo);
  return out;
}

std::string CampaignStore::object_path(const std::string& key) const {
  return (fs::path(dir_) / "objects" / (key + ".entry")).string();
}

std::string CampaignStore::manifest_path() const {
  return (fs::path(dir_) / "manifest.jsonl").string();
}

std::string CampaignStore::quarantine_dir() const {
  return (fs::path(dir_) / "quarantine").string();
}

bool CampaignStore::store(const std::string& key, std::string_view payload) {
  // Temp file in the objects directory itself so the rename never crosses a
  // filesystem boundary (cross-device rename is copy+delete — not atomic).
  // The name mixes the key and a per-handle sequence so concurrent writers
  // of *different* keys never collide; concurrent writers of the same key
  // write identical content (content addressing), so last-rename-wins is
  // still correct.
  std::ostringstream tmp_name;
  tmp_name << "." << key << "." << ++temp_seq_ << ".tmp";
  const fs::path tmp = fs::path(dir_) / "objects" / tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << kEntryMagic << ' ' << payload.size() << ' ';
    std::string sum;
    append_hex64(sum, fnv1a(payload, kFnvOffset));
    out << sum << '\n' << payload;
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, object_path(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::string> CampaignStore::load(const std::string& key) {
  std::ifstream in(object_path(key), std::ios::binary);
  if (!in) {
    ++misses_;
    return std::nullopt;
  }
  std::string header;
  if (!std::getline(in, header)) {
    ++corrupt_;
    ++misses_;
    return std::nullopt;
  }
  // Parse "<magic> <size> <hex checksum>" strictly; anything else is rot.
  std::istringstream hs(header);
  std::string magic, sum_hex;
  uint64_t size = 0;
  if (!(hs >> magic >> size >> sum_hex) || magic != kEntryMagic ||
      sum_hex.size() != 16) {
    ++corrupt_;
    ++misses_;
    return std::nullopt;
  }
  std::string payload(size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<uint64_t>(in.gcount()) != size || in.get() != EOF) {
    // Short read (truncated entry) or trailing bytes (overlong entry).
    ++corrupt_;
    ++misses_;
    return std::nullopt;
  }
  std::string expect;
  append_hex64(expect, fnv1a(payload, kFnvOffset));
  if (expect != sum_hex) {
    ++corrupt_;
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return payload;
}

bool CampaignStore::append_manifest(std::string_view line) {
  std::ofstream out(manifest_path(), std::ios::binary | std::ios::app);
  if (!out) return false;
  out << line << '\n';
  out.flush();
  return static_cast<bool>(out);
}

std::vector<std::string> CampaignStore::read_manifest() const {
  std::vector<std::string> lines;
  std::ifstream in(manifest_path(), std::ios::binary);
  if (!in) return lines;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  size_t start = 0;
  for (;;) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;  // torn tail (no '\n') is dropped
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace xpass::exec
