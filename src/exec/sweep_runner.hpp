// SweepRunner: a thread pool for embarrassingly parallel parameter sweeps.
//
// A sweep is N independent simulations (protocol x flow-count grids, seed
// replications, fault matrices). Each task builds its own Simulator, so
// tasks share no mutable state and the only coordination is an atomic work
// counter. Two properties make parallel sweeps safe to adopt everywhere:
//
//  * Determinism: results land in a pre-sized vector at their task index,
//    so the reduced output is byte-identical for any worker count — the
//    interleaving only affects wall-clock, never content. Per-task seeds
//    come from task_seed(base, index), a pure function of the pair.
//
//  * Task isolation: run_tasks() catches every task exception where it
//    happens, retries per RetryPolicy (exponential backoff with seeded
//    jitter), and records a per-task TaskOutcome — one crashing task is a
//    quarantinable data point, not a dead campaign. The legacy map()/
//    for_each() keep fail-fast semantics (first exception rethrown on the
//    caller), but cooperatively cancel: once a task has failed, workers
//    stop *scheduling* new tasks instead of burning CPU on a sweep whose
//    result is already doomed.
//
// With jobs == 1 (or a single task) everything runs inline on the caller's
// thread — no pool, no atomics — which is also the mode the determinism
// tests compare against.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace xpass::exec {

// Deterministic per-task seed: splitmix64 of the base seed advanced by the
// task index. Distinct indices give decorrelated streams even for adjacent
// base seeds, and task 0 differs from the base itself (a sweep's task 0 is
// not the same stream as a standalone run with the base seed).
uint64_t task_seed(uint64_t base_seed, uint64_t task_index);

// Worker count when the caller does not choose: the XPASS_JOBS environment
// variable if set (clamped to >= 1), else std::thread::hardware_concurrency.
size_t default_jobs();

// --- task isolation -------------------------------------------------------

enum class TaskStatus : uint8_t {
  kOk,
  kFailed,      // threw on every attempt; `error` holds the exception text
  kTimedOut,    // wall-clock budget tripped (machine-dependent truncation)
  kOverBudget,  // deterministic budget tripped (event / sim-time / live cap)
  kSkipped,     // never started: a fail-fast sibling cancelled the sweep
};
std::string_view task_status_name(TaskStatus s);

struct TaskOutcome {
  TaskStatus status = TaskStatus::kSkipped;
  std::string error;      // exception text for kFailed, else empty
  uint32_t attempts = 0;  // execution attempts made (0 = skipped)
  bool ok() const { return status == TaskStatus::kOk; }
};

// Retry shape for transient task failures (same exponential-backoff+jitter
// family as the PR 2 ExpressPass watchdog, but wall-clock): retry `attempt`
// sleeps backoff_base_ms * 2^(attempt-1), capped, scaled by a seeded jitter
// draw in [0.5, 1.0] so a fleet of failed tasks does not retry in lockstep.
struct RetryPolicy {
  size_t max_attempts = 1;  // total attempts per task (1 = never retry)
  double backoff_base_ms = 25.0;
  double backoff_cap_ms = 2000.0;
  uint64_t jitter_seed = 1;
};

// Pure function of (policy, task, attempt): the delay slept before retry
// `attempt` (1-based) of task `task`. Deterministic for tests.
double backoff_delay_ms(const RetryPolicy& policy, uint64_t task,
                        uint64_t attempt);

class SweepRunner {
 public:
  // jobs == 0 means default_jobs().
  explicit SweepRunner(size_t jobs = 0)
      : jobs_(jobs == 0 ? default_jobs() : jobs) {}

  size_t jobs() const { return jobs_; }

  // Runs fn(i) for every i in [0, n), in parallel, and returns the results
  // ordered by index. R must be default-constructible and movable. The
  // first task exception cancels scheduling of not-yet-started tasks and is
  // rethrown on the calling thread after the pool drains.
  template <typename Fn>
  auto map(size_t n, Fn&& fn) -> std::vector<decltype(fn(size_t{}))> {
    std::vector<decltype(fn(size_t{}))> results(n);
    run_indexed(n, [&](size_t i) { results[i] = fn(i); });
    return results;
  }

  // Runs fn(i) for every i in [0, n); fn writes its own output. Same
  // fail-fast + cancellation semantics as map().
  template <typename Fn>
  void for_each(size_t n, Fn&& fn) {
    run_indexed(n, std::forward<Fn>(fn));
  }

  // Isolated execution: fn(i) returns a TaskStatus (or void, meaning kOk on
  // normal return) and may throw. Every exception is caught in the worker,
  // the task is retried per `policy`, and the final disposition lands in
  // the returned index-ordered outcome vector — the sweep itself never
  // throws. With fail_fast, the first non-ok outcome stops *scheduling*:
  // already-running siblings finish, unstarted tasks stay kSkipped.
  template <typename Fn>
  std::vector<TaskOutcome> run_tasks(size_t n, Fn&& fn,
                                     const RetryPolicy& policy = {},
                                     bool fail_fast = false) {
    std::vector<TaskOutcome> outcomes(n);
    std::atomic<bool> cancelled{false};
    auto body = [&](size_t i) {
      TaskOutcome& out = outcomes[i];
      for (uint32_t attempt = 1;; ++attempt) {
        out.attempts = attempt;
        try {
          if constexpr (std::is_void_v<decltype(fn(size_t{}))>) {
            fn(i);
            out.status = TaskStatus::kOk;
          } else {
            out.status = fn(i);
          }
          out.error.clear();
          break;
        } catch (const std::exception& e) {
          out.status = TaskStatus::kFailed;
          out.error = e.what();
        } catch (...) {
          out.status = TaskStatus::kFailed;
          out.error = "unknown exception";
        }
        if (attempt >= policy.max_attempts) break;
        sleep_ms(backoff_delay_ms(policy, i, attempt));
      }
      if (fail_fast && !out.ok()) cancelled.store(true);
    };
    run_cancellable(n, cancelled, body);
    return outcomes;
  }

 private:
  static void sleep_ms(double ms);

  // Pulls indices until exhausted or `cancelled`; body(i) must not throw.
  template <typename Body>
  void run_cancellable(size_t n, std::atomic<bool>& cancelled, Body&& body) {
    const size_t workers = jobs_ < n ? jobs_ : n;
    if (workers <= 1) {
      for (size_t i = 0; i < n && !cancelled.load(); ++i) body(i);
      return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (;;) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
    worker();  // the calling thread is worker 0
    for (std::thread& t : pool) t.join();
  }

  // Fail-fast core for map()/for_each(): the first exception is captured,
  // cancels further scheduling, and is rethrown after the drain.
  template <typename Body>
  void run_indexed(size_t n, Body&& body) {
    const size_t workers = jobs_ < n ? jobs_ : n;
    if (workers <= 1) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::atomic<bool> cancelled{false};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto guarded = [&](size_t i) {
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        cancelled.store(true);
      }
    };
    run_cancellable(n, cancelled, guarded);
    if (first_error) std::rethrow_exception(first_error);
  }

  size_t jobs_;
};

}  // namespace xpass::exec
