// SweepRunner: a thread pool for embarrassingly parallel parameter sweeps.
//
// A sweep is N independent simulations (protocol x flow-count grids, seed
// replications, fault matrices). Each task builds its own Simulator, so
// tasks share no mutable state and the only coordination is an atomic work
// counter. Two properties make parallel sweeps safe to adopt everywhere:
//
//  * Determinism: results land in a pre-sized vector at their task index,
//    so the reduced output is byte-identical for any worker count — the
//    interleaving only affects wall-clock, never content. Per-task seeds
//    come from task_seed(base, index), a pure function of the pair.
//
//  * Exception transparency: the first exception thrown by any task is
//    captured and rethrown on the calling thread after the pool drains.
//
// With jobs == 1 (or a single task) everything runs inline on the caller's
// thread — no pool, no atomics — which is also the mode the determinism
// tests compare against.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace xpass::exec {

// Deterministic per-task seed: splitmix64 of the base seed advanced by the
// task index. Distinct indices give decorrelated streams even for adjacent
// base seeds, and task 0 differs from the base itself (a sweep's task 0 is
// not the same stream as a standalone run with the base seed).
uint64_t task_seed(uint64_t base_seed, uint64_t task_index);

// Worker count when the caller does not choose: the XPASS_JOBS environment
// variable if set (clamped to >= 1), else std::thread::hardware_concurrency.
size_t default_jobs();

class SweepRunner {
 public:
  // jobs == 0 means default_jobs().
  explicit SweepRunner(size_t jobs = 0)
      : jobs_(jobs == 0 ? default_jobs() : jobs) {}

  size_t jobs() const { return jobs_; }

  // Runs fn(i) for every i in [0, n), in parallel, and returns the results
  // ordered by index. R must be default-constructible and movable.
  template <typename Fn>
  auto map(size_t n, Fn&& fn) -> std::vector<decltype(fn(size_t{}))> {
    std::vector<decltype(fn(size_t{}))> results(n);
    run_indexed(n, [&](size_t i) { results[i] = fn(i); });
    return results;
  }

  // Runs fn(i) for every i in [0, n); fn writes its own output.
  template <typename Fn>
  void for_each(size_t n, Fn&& fn) {
    run_indexed(n, std::forward<Fn>(fn));
  }

 private:
  template <typename Body>
  void run_indexed(size_t n, Body&& body) {
    const size_t workers = jobs_ < n ? jobs_ : n;
    if (workers <= 1) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    auto worker = [&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
    worker();  // the calling thread is worker 0
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  size_t jobs_;
};

}  // namespace xpass::exec
