// CampaignStore: an on-disk, content-addressed cache of campaign results,
// built so that a campaign killed at ANY instant — SIGKILL included — can
// resume and produce output byte-identical to an uninterrupted run.
//
// Addressing. A result is keyed by hash(code version, canonical scenario
// bytes). The canonical bytes are the deterministic `xpass.scenario.v1`
// JSON emission of the ScenarioSpec (which embeds the seed), so two specs
// hash equal exactly when they would simulate identically. kCodeVersion is
// folded into the key and must be bumped whenever a change alters recorder
// output for the same spec — stale entries then simply stop matching; no
// invalidation pass, no format migration.
//
// Durability. Entries are written to a temp file in the same directory and
// published with std::filesystem::rename — atomic on POSIX, so a reader
// (or a resumed campaign) sees either the complete entry or nothing. Each
// entry carries its payload size and a FNV-1a checksum in the header;
// load() re-verifies both and treats any mismatch — truncation, partial
// write, bit rot, garbage — as a cache miss, never an error. A corrupt
// entry therefore costs one re-run, not a crash or (worse) a poisoned
// merge.
//
// Only deterministic results may be stored. Wall-clock-budget truncations
// are machine-dependent and must never enter the cache (the campaign layer
// enforces this); event/sim-time/live-event truncations are pure functions
// of the spec and cache fine.
//
// Layout under the store directory:
//   objects/<32-hex-key>.entry   one result per file (header + raw payload)
//   manifest.jsonl               append-only journal of task dispositions
//   quarantine/<...>.json        repro files for deterministic failures
// The manifest is a human-auditable journal; resume decisions are driven
// by the object files themselves (an entry either verifies or it doesn't),
// so a torn manifest tail — the normal SIGKILL artifact — is harmless.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xpass::exec {

// Folded into every cache key. Bump when a code change alters the recorder
// payload produced for an unchanged spec (new scalar, changed semantics,
// schema rev) so prior entries miss instead of serving stale bytes.
inline constexpr std::string_view kCodeVersion = "xpass-v7";

class CampaignStore {
 public:
  // Opens (creating if needed) a store rooted at `dir`. Throws
  // std::runtime_error if the directory cannot be created.
  explicit CampaignStore(std::string dir);

  const std::string& dir() const { return dir_; }

  // Content address: 32 lowercase hex chars over (code_version, canonical
  // spec bytes). Pure function — usable for key stability tests.
  static std::string key(std::string_view canonical_bytes,
                         std::string_view code_version = kCodeVersion);

  // Publishes `payload` under `key` atomically (temp file + rename).
  // Returns false (leaving any prior entry intact) on I/O failure.
  bool store(const std::string& key, std::string_view payload);

  // Loads and verifies the entry for `key`. Missing, truncated, corrupt or
  // unparseable entries are misses (nullopt) — counted, never thrown.
  std::optional<std::string> load(const std::string& key);

  // True if a verified entry exists (same checks as load, without keeping
  // the payload). Counts as a hit/miss/corrupt observation.
  bool contains(const std::string& key) { return load(key).has_value(); }

  // Appends one line to the manifest journal (a trailing newline is added).
  // Best-effort: returns false on I/O failure.
  bool append_manifest(std::string_view line);

  // All complete manifest lines, in append order. A torn final line (no
  // trailing newline — the SIGKILL artifact) is dropped.
  std::vector<std::string> read_manifest() const;

  std::string object_path(const std::string& key) const;
  std::string manifest_path() const;
  std::string quarantine_dir() const;

  // Observation counters for this store handle (not persisted).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t corrupt() const { return corrupt_; }

 private:
  std::string dir_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t corrupt_ = 0;
  uint64_t temp_seq_ = 0;
};

}  // namespace xpass::exec
