#include "exec/campaign.hpp"

#include <fstream>
#include <mutex>
#include <utility>

#include "check/fuzzer.hpp"
#include "check/json.hpp"
#include "check/spec_json.hpp"

namespace xpass::exec {

namespace {

// Disposition of one freshly executed spec, decided from the simulator's
// abort reason. Only deterministic outcomes may enter the store.
struct FreshVerdict {
  TaskStatus status = TaskStatus::kOk;
  bool cacheable = true;
};

FreshVerdict classify(const runner::ScenarioResult& res) {
  if (!res.aborted) return {TaskStatus::kOk, true};
  if (res.abort_reason == "wall-clock-budget") {
    // Machine-dependent truncation: a usable partial result, but caching it
    // would let one slow machine's truncation masquerade as THE result for
    // this spec everywhere. Always re-run.
    return {TaskStatus::kTimedOut, false};
  }
  // Event / sim-time / live-event budgets are pure functions of the spec:
  // the truncated result is the same on every machine, so it caches.
  return {TaskStatus::kOverBudget, true};
}

std::string manifest_line(size_t index, const runner::ScenarioSpec& spec,
                          const CampaignTaskResult& t) {
  check::Json doc = check::Json::object();
  doc.set("schema", check::Json::str(std::string(kManifestSchema)));
  doc.set("index", check::Json::u64(index));
  doc.set("key", check::Json::str(t.key));
  doc.set("name", check::Json::str(spec.name));
  doc.set("seed", check::Json::u64(spec.seed));
  doc.set("status",
          check::Json::str(std::string(task_status_name(t.outcome.status))));
  doc.set("cache_hit", check::Json::boolean(t.cache_hit));
  doc.set("attempts", check::Json::u64(t.outcome.attempts));
  if (!t.outcome.error.empty()) {
    doc.set("error", check::Json::str(t.outcome.error));
  }
  if (!t.quarantine_path.empty()) {
    doc.set("quarantine", check::Json::str(t.quarantine_path));
  }
  return doc.dump();
}

}  // namespace

CampaignReport run_campaign(const std::vector<runner::ScenarioSpec>& specs,
                            const CampaignOptions& opts, RunSpecFn run_spec) {
  if (!run_spec) {
    run_spec = [](const runner::ScenarioSpec& spec,
                  const runner::RunOverrides& ov) {
      return runner::ScenarioEngine{}.run(spec, ov);
    };
  }
  std::optional<CampaignStore> store;
  if (!opts.cache_dir.empty()) store.emplace(opts.cache_dir);

  const size_t n = specs.size();
  CampaignReport report;
  report.tasks.resize(n);

  // Content addresses first: the canonical bytes double as the identity for
  // resume and (embedded in the repro) for quarantine replay.
  for (size_t i = 0; i < n; ++i) {
    report.tasks[i].key = CampaignStore::key(check::spec_to_json(specs[i]));
  }

  // Resolve cache hits up front so the pool only ever sees real work.
  std::vector<size_t> pending;
  pending.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    CampaignTaskResult& t = report.tasks[i];
    if (store && opts.resume) {
      if (std::optional<std::string> payload = store->load(t.key)) {
        t.cache_hit = true;
        t.payload = std::move(*payload);
        t.outcome.status = TaskStatus::kOk;
        t.outcome.attempts = 0;  // attempts count executions, not loads
        continue;
      }
    }
    pending.push_back(i);
  }

  RetryPolicy policy;
  policy.max_attempts = opts.retries + 1;
  policy.backoff_base_ms = opts.backoff_base_ms;
  policy.jitter_seed = opts.seed;

  // The store handle is not thread-safe (counters, temp-name sequence);
  // publish under a mutex. The simulation itself runs outside the lock.
  std::mutex store_mu;
  std::vector<TaskStatus> fresh_status(pending.size(), TaskStatus::kOk);

  SweepRunner pool(opts.jobs);
  std::vector<TaskOutcome> outcomes = pool.run_tasks(
      pending.size(),
      [&](size_t j) {
        const size_t i = pending[j];
        runner::RunOverrides ov;
        ov.wall_clock_ms = opts.timeout_ms;
        runner::ScenarioResult res = run_spec(specs[i], ov);  // may throw
        const FreshVerdict v = classify(res);
        std::string payload = res.recorder.to_json(res.name);
        const std::lock_guard<std::mutex> lock(store_mu);
        CampaignTaskResult& t = report.tasks[i];
        t.payload = std::move(payload);
        t.result = std::move(res);
        // Publish immediately: the store is the crash-safe ground truth. A
        // SIGKILL one instruction after this line loses nothing.
        if (store && v.cacheable) t.cached = store->store(t.key, t.payload);
        // Truncations are results, not failures: report kOk to the pool so
        // fail_fast only trips on genuine (exception) failures, and keep
        // the real disposition in fresh_status.
        fresh_status[j] = v.status;
      },
      policy, opts.fail_fast);

  for (size_t j = 0; j < pending.size(); ++j) {
    CampaignTaskResult& t = report.tasks[pending[j]];
    t.outcome = outcomes[j];
    if (t.outcome.status == TaskStatus::kOk) {
      t.outcome.status = fresh_status[j];
    }
  }

  // Quarantine: every task that failed all attempts gets a replayable
  // fuzz-format repro embedding the exact spec. Deliberately reuses the
  // fuzzer's schema so `fuzz_scenarios --repro <file>` needs no new mode.
  for (size_t j = 0; j < pending.size(); ++j) {
    const size_t i = pending[j];
    CampaignTaskResult& t = report.tasks[i];
    if (t.outcome.status != TaskStatus::kFailed || !store) continue;
    check::FuzzFailure f;
    f.index = i;
    f.oracle = "exception";
    f.details = t.outcome.error;
    f.spec = specs[i];
    const std::string path = store->quarantine_dir() + "/" + t.key + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out << check::repro_to_json(f, specs[i].seed, "");
      out.flush();
      if (out) t.quarantine_path = path;
    }
  }

  // Journal every disposition in index order — one append per task, after
  // the drain, so a reader sees a consistent prefix of the campaign.
  if (store) {
    for (size_t i = 0; i < n; ++i) {
      store->append_manifest(manifest_line(i, specs[i], report.tasks[i]));
    }
  }

  for (const CampaignTaskResult& t : report.tasks) {
    switch (t.outcome.status) {
      case TaskStatus::kOk:
        t.cache_hit ? ++report.hits : ++report.ran;
        break;
      case TaskStatus::kTimedOut:
        ++report.timed_out;
        ++report.ran;
        break;
      case TaskStatus::kOverBudget:
        ++report.over_budget;
        ++report.ran;
        break;
      case TaskStatus::kFailed:
        ++report.quarantined;
        break;
      case TaskStatus::kSkipped:
        ++report.skipped;
        break;
    }
  }
  return report;
}

}  // namespace xpass::exec
