#include "exec/sweep_runner.hpp"

#include <cstdlib>

namespace xpass::exec {

uint64_t task_seed(uint64_t base_seed, uint64_t task_index) {
  // splitmix64 step: the increment is the golden-gamma times (index + 1) so
  // task 0 is already one step away from the raw base seed.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

size_t default_jobs() {
  if (const char* env = std::getenv("XPASS_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

}  // namespace xpass::exec
