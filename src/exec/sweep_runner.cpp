#include "exec/sweep_runner.hpp"

#include <chrono>
#include <cstdlib>

namespace xpass::exec {

uint64_t task_seed(uint64_t base_seed, uint64_t task_index) {
  // splitmix64 step: the increment is the golden-gamma times (index + 1) so
  // task 0 is already one step away from the raw base seed.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

size_t default_jobs() {
  if (const char* env = std::getenv("XPASS_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

std::string_view task_status_name(TaskStatus s) {
  switch (s) {
    case TaskStatus::kOk: return "ok";
    case TaskStatus::kFailed: return "failed";
    case TaskStatus::kTimedOut: return "timed-out";
    case TaskStatus::kOverBudget: return "over-budget";
    case TaskStatus::kSkipped: return "skipped";
  }
  return "?";
}

double backoff_delay_ms(const RetryPolicy& policy, uint64_t task,
                        uint64_t attempt) {
  if (policy.backoff_base_ms <= 0 || attempt == 0) return 0;
  // Exponential: base * 2^(attempt-1), saturating at the cap before the
  // jitter scale so the cap bounds the *maximum* delay, jitter included.
  double delay = policy.backoff_base_ms;
  for (uint64_t a = 1; a < attempt && delay < policy.backoff_cap_ms; ++a) {
    delay *= 2;
  }
  if (delay > policy.backoff_cap_ms) delay = policy.backoff_cap_ms;
  // Seeded jitter in [0.5, 1.0]: decorrelates retry storms across tasks
  // while staying a pure function of (seed, task, attempt). Reuses the
  // task_seed splitmix so the draw quality matches the per-task RNG seeds.
  const uint64_t draw = task_seed(policy.jitter_seed ^ (attempt * 0x9e3779b9ULL),
                                  task);
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
  return delay * (0.5 + 0.5 * u);
}

void SweepRunner::sleep_ms(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace xpass::exec
