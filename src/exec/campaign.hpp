// Campaign runner: crash-safe execution of a batch of ScenarioSpecs.
//
// A campaign is run_grid() hardened for unattended fleets. Where run_grid
// assumes every spec completes and any exception kills the sweep, a
// campaign assumes the opposite — tasks hang, throw, blow budgets, and the
// process itself gets SIGKILLed mid-flight — and guarantees three things:
//
//  1. Isolation. Each spec runs under SweepRunner::run_tasks: an exception
//     is caught per task, retried with exponential backoff + seeded jitter
//     (covering transient causes: OOM-adjacent allocation failure, flaky
//     filesystem), and — if it fails every attempt — quarantined. The
//     quarantine artifact is a standard `xpass.fuzz.repro.v1` file holding
//     the exact spec, so `fuzz_scenarios --repro <file>` replays the crash
//     with zero extra tooling. The rest of the campaign is unaffected.
//
//  2. Budget discipline. opts.timeout_ms arms a wall-clock RunBudget on
//     every run (on top of any per-spec budget): a hanging spec becomes a
//     kTimedOut outcome with a truncated-but-valid result, not a stuck
//     fleet. Wall-clock truncations are machine-dependent and are NEVER
//     cached; deterministic budget truncations (event / sim-time / live
//     set) are pure functions of the spec and cache like any result.
//
//  3. Resumability. Completed results are published to a CampaignStore
//     (content-addressed, atomic-rename, checksummed) the moment each task
//     finishes — the store, not process memory, is the ground truth. A
//     re-run with resume=true loads verified entries as cache hits and
//     re-executes only missing / corrupt / never-completed specs; the
//     merged output is byte-identical to an uninterrupted campaign because
//     a hit's payload IS the bytes the original run produced. The manifest
//     journal records per-task dispositions for auditability; resume
//     decisions deliberately key off the object entries alone, so a torn
//     manifest tail (the normal SIGKILL artifact) is harmless.
//
// Layering: this sits above runner (it executes specs) and check (it
// canonicalizes specs for addressing and emits repro files), hence the
// separate xpass_campaign target — xpass_exec itself stays below runner.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/campaign_store.hpp"
#include "exec/sweep_runner.hpp"
#include "runner/scenario.hpp"

namespace xpass::exec {

struct CampaignOptions {
  // Result store directory; "" disables caching (every spec always runs,
  // nothing persists — isolation and budgets still apply).
  std::string cache_dir;
  // With a cache_dir: serve verified store entries instead of re-running.
  // Off, the store is write-only (results publish, but every spec runs).
  bool resume = false;
  // Extra attempts for tasks that throw (0 = fail on first exception).
  size_t retries = 0;
  double backoff_base_ms = 25.0;
  // Per-task wall-clock budget in ms (0 = none). Applied as a RunBudget
  // override on top of any spec-level budget.
  double timeout_ms = 0;
  size_t jobs = 0;  // 0 = default_jobs()
  // Stop scheduling new tasks after the first hard failure (timeouts and
  // budget truncations are results, not failures, and do not trip this).
  bool fail_fast = false;
  uint64_t seed = 1;  // retry-jitter stream selector
};

struct CampaignTaskResult {
  std::string key;       // content address of the spec
  TaskOutcome outcome;   // final disposition (kOk for cache hits)
  bool cache_hit = false;   // payload served from the store
  bool cached = false;      // payload published to the store by this run
  std::string payload;      // xpass.recorder.v1 JSON (hit or fresh); "" if
                            // the task failed outright
  std::string quarantine_path;  // repro file for kFailed ("" otherwise)
  // The in-memory result for freshly executed specs; nullopt for cache
  // hits (the payload carries everything the store knows) and failures.
  std::optional<runner::ScenarioResult> result;
};

struct CampaignReport {
  std::vector<CampaignTaskResult> tasks;  // index-aligned with the specs
  size_t hits = 0;
  size_t ran = 0;  // freshly executed to a usable result (ok or truncated)
  size_t quarantined = 0;
  size_t timed_out = 0;
  size_t over_budget = 0;
  size_t skipped = 0;
  bool all_usable() const { return quarantined == 0 && skipped == 0; }
};

inline constexpr std::string_view kManifestSchema =
    "xpass.campaign.manifest.v1";

// Executes a spec under merged budgets and returns its result. Injectable
// so tests can model hangs, crashes and flaky failures without building
// real pathological topologies.
using RunSpecFn = std::function<runner::ScenarioResult(
    const runner::ScenarioSpec&, const runner::RunOverrides&)>;

// Runs the campaign. Never throws for per-task reasons; store-directory
// creation failure (unusable cache_dir) does throw std::runtime_error.
CampaignReport run_campaign(const std::vector<runner::ScenarioSpec>& specs,
                            const CampaignOptions& opts,
                            RunSpecFn run_spec = {});

}  // namespace xpass::exec
