// Network-calculus zero-loss buffer bounds (§3.1, Eq. 1, Table 1, Fig 5).
//
// For each credit-ingress port class p, the delay d_p between a credit
// arriving and the corresponding data packet returning through the same
// physical port is
//     d_p = d_credit + t(p,q) + d_q + d_data(q)
// and the spread
//     ∆d_p = max(d_credit) + max_{q in N(p)} (t + d_q + ∆d_q)
//                          - min_{q in N(p)} (t + d_q)
// bounds the data buffer that port needs for zero loss. We evaluate the
// recursion bottom-up over the port classes of a hierarchical (fat-tree /
// 3-tier Clos) fabric:
//   NIC -> ToR-from-above (ToR up port) -> Aggr-from-above ->
//   Core -> Aggr-from-below -> ToR-from-below (ToR down port).
// Uplink-ingress classes only reach downward (small spread); downlink-
// ingress classes also reach upward through the whole fabric (large spread)
// — hence ToR *down* ports dominate, exactly as Table 1 shows.
//
// Interpretation notes (documented substitutions): the sending host NIC has
// no data queue (a host emits at most one MTU per credit), so d_data(NIC)=0;
// the buffer in bytes charges ∆d at the rate of the link the data enters
// from (host links for ToR port classes, fabric links for aggr/core).
#pragma once

#include "sim/time.hpp"

namespace xpass::calculus {

struct CalculusParams {
  double edge_rate_bps = 10e9;     // host <-> ToR links
  double fabric_rate_bps = 40e9;   // ToR <-> aggr <-> core links
  sim::Time edge_prop = sim::Time::us(1);   // all non-core links
  sim::Time core_prop = sim::Time::us(5);   // aggr <-> core links
  size_t credit_queue_pkts = 8;
  sim::Time delta_host = sim::Time::ns(5100);  // ∆d_host (testbed: 5.1us)
  sim::Time switching_delay = sim::Time::zero();
  size_t ports_per_tor_down = 16;  // k/2 in a k-ary fat tree (switch totals)
  size_t ports_per_tor_up = 16;
};

struct PortBound {
  sim::Time min_d;
  sim::Time max_d;
  sim::Time delta_d;      // max_d - min_d
  double buffer_bytes = 0.0;
};

struct CalculusResult {
  PortBound nic;
  PortBound tor_up;      // credits ingress ToR from aggr
  PortBound aggr_up;     // credits ingress aggr from core
  PortBound core;        // credits ingress core from aggr
  PortBound aggr_down;   // credits ingress aggr from ToR
  PortBound tor_down;    // credits ingress ToR from host (dominant)
  double tor_switch_total_bytes = 0.0;  // Fig 5: whole-ToR max buffer
  // Fig 5 breakdown of the ToR total.
  double contribution_credit_queue = 0.0;
  double contribution_host_spread = 0.0;
  double contribution_path_spread = 0.0;
};

CalculusResult compute_buffer_bounds(const CalculusParams& p);

}  // namespace xpass::calculus
