#include "calculus/buffer_bounds.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace xpass::calculus {

namespace {

using sim::Time;

// Hop cost t(p,q): credit serialization toward the sender plus the returning
// data serialization, plus propagation both ways and switching.
Time hop_cost(double rate_bps, Time prop, Time switching) {
  return sim::tx_time(net::kCreditWireBytes, rate_bps) +
         sim::tx_time(net::kMaxWireBytes, rate_bps) + prop * 2 +
         switching * 2;
}

// Worst-case credit queueing at an egress shaped to the credit rate of a
// link: a full credit queue drains one credit per MTU-cycle.
Time credit_queue_delay(size_t q_pkts, double rate_bps) {
  return sim::tx_time(net::kCreditCycleBytes, rate_bps) *
         static_cast<int64_t>(q_pkts);
}

struct ClassDelay {
  Time min_d;
  Time max_d;
  Time data_q;  // d_data contribution when used as a next hop (= ∆d)
  Time delta() const { return max_d - min_d; }
};

PortBound to_bound(const ClassDelay& c, double charge_rate_bps) {
  PortBound b;
  b.min_d = c.min_d;
  b.max_d = c.max_d;
  b.delta_d = c.delta();
  b.buffer_bytes = b.delta_d.to_sec() * charge_rate_bps / 8.0;
  return b;
}

// Compose a parent ingress class from its next-hop classes.
ClassDelay compose(Time dcredit_max,
                   const std::vector<std::pair<Time, ClassDelay>>& hops) {
  ClassDelay out;
  Time max_term = Time::zero();
  Time min_term = Time::max();
  for (const auto& [t, child] : hops) {
    max_term = std::max(max_term, t + child.max_d + child.data_q);
    min_term = std::min(min_term, t + child.min_d);
  }
  out.max_d = dcredit_max + max_term;
  out.min_d = min_term;
  out.data_q = out.delta();
  return out;
}

// Core recursion without the Fig-5 breakdown (which would recurse forever).
CalculusResult compute_bounds_only(const CalculusParams& p) {
  const Time t_edge = hop_cost(p.edge_rate_bps, p.edge_prop,
                               p.switching_delay);
  const Time t_fabric = hop_cost(p.fabric_rate_bps, p.edge_prop,
                                 p.switching_delay);
  const Time t_core = hop_cost(p.fabric_rate_bps, p.core_prop,
                               p.switching_delay);
  const Time dc_edge = credit_queue_delay(p.credit_queue_pkts,
                                          p.edge_rate_bps);
  const Time dc_fabric = credit_queue_delay(p.credit_queue_pkts,
                                            p.fabric_rate_bps);

  // NIC: host credit-processing delay in [0, ∆d_host]; a host has no data
  // queue (one MTU per credit), so its d_data contribution is zero.
  ClassDelay nic{Time::zero(), p.delta_host, Time::zero()};

  // ToR ingress from above: credits fan down to rack NICs via edge links.
  ClassDelay tor_above = compose(dc_edge, {{t_edge, nic}});
  // Aggregate ingress from above: down to ToRs.
  ClassDelay aggr_above = compose(dc_fabric, {{t_fabric, tor_above}});
  // Core ingress (always from an aggregate): down to aggregates.
  ClassDelay core = compose(dc_fabric, {{t_core, aggr_above}});
  // Aggregate ingress from below: down to sibling ToRs or up through cores.
  ClassDelay aggr_below =
      compose(dc_fabric, {{t_fabric, tor_above}, {t_core, core}});
  // ToR ingress from below (the receiver's downlink — the incast port):
  // down to rack NICs or up through the whole fabric. Credits may egress on
  // the slow edge link, so the worst-case credit queueing uses it.
  ClassDelay tor_below =
      compose(std::max(dc_edge, dc_fabric), {{t_edge, nic},
                                             {t_fabric, aggr_below}});

  CalculusResult r;
  r.nic = to_bound(nic, p.edge_rate_bps);
  r.tor_up = to_bound(tor_above, p.edge_rate_bps);
  r.aggr_up = to_bound(aggr_above, p.fabric_rate_bps);
  r.core = to_bound(core, p.fabric_rate_bps);
  r.aggr_down = to_bound(aggr_below, p.fabric_rate_bps);
  r.tor_down = to_bound(tor_below, p.edge_rate_bps);

  r.tor_switch_total_bytes =
      static_cast<double>(p.ports_per_tor_down) * r.tor_down.buffer_bytes +
      static_cast<double>(p.ports_per_tor_up) * r.tor_up.buffer_bytes;
  return r;
}

}  // namespace

CalculusResult compute_buffer_bounds(const CalculusParams& p) {
  CalculusResult r = compute_bounds_only(p);

  // Fig 5 breakdown: recompute the ToR total with one contributor zeroed at
  // a time; the difference is that contributor's share.
  CalculusParams no_cq = p;
  no_cq.credit_queue_pkts = 0;
  CalculusParams no_host = p;
  no_host.delta_host = Time::zero();
  const double without_cq = compute_bounds_only(no_cq).tor_switch_total_bytes;
  const double without_host =
      compute_bounds_only(no_host).tor_switch_total_bytes;
  r.contribution_credit_queue = r.tor_switch_total_bytes - without_cq;
  r.contribution_host_spread = r.tor_switch_total_bytes - without_host;
  r.contribution_path_spread =
      std::max(0.0, r.tor_switch_total_bytes - r.contribution_credit_queue -
                        r.contribution_host_spread);
  return r;
}

}  // namespace xpass::calculus
