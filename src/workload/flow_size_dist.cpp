#include "workload/flow_size_dist.hpp"

#include <cassert>
#include <cmath>

namespace xpass::workload {

std::string_view workload_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kDataMining: return "DataMining";
    case WorkloadKind::kWebSearch: return "WebSearch";
    case WorkloadKind::kCacheFollower: return "CacheFollower";
    case WorkloadKind::kWebServer: return "WebServer";
  }
  return "?";
}

double FlowSizeDist::bin_mean(const Bin& b) {
  if (b.lo >= b.hi) return b.lo;
  if (b.alpha <= 0.0) {
    // Log-uniform on [lo, hi]: E = (hi - lo) / ln(hi/lo).
    return (b.hi - b.lo) / std::log(b.hi / b.lo);
  }
  const double a = b.alpha;
  const double l = b.lo, h = b.hi;
  const double la = std::pow(l / h, a);
  if (std::abs(a - 1.0) < 1e-9) {
    return l * std::log(h / l) / (1.0 - l / h);
  }
  // Bounded Pareto mean.
  return (a * std::pow(l, a)) / (1.0 - la) *
         (std::pow(l, 1.0 - a) - std::pow(h, 1.0 - a)) / (a - 1.0);
}

double FlowSizeDist::mean() const {
  double m = 0.0;
  for (const Bin& b : bins_) m += b.prob * bin_mean(b);
  return m;
}

uint64_t FlowSizeDist::sample(sim::Rng& rng) const {
  double u = rng.uniform();
  const Bin* chosen = &bins_.back();
  for (const Bin& b : bins_) {
    if (u < b.prob) {
      chosen = &b;
      break;
    }
    u -= b.prob;
  }
  const double v = rng.uniform();
  double x;
  if (chosen->lo >= chosen->hi) {
    x = chosen->lo;
  } else if (chosen->alpha <= 0.0) {
    x = chosen->lo * std::pow(chosen->hi / chosen->lo, v);
  } else {
    const double a = chosen->alpha;
    const double la = std::pow(chosen->lo / chosen->hi, a);
    x = chosen->lo / std::pow(1.0 - v * (1.0 - la), 1.0 / a);
  }
  if (x < 1.0) x = 1.0;
  return static_cast<uint64_t>(x);
}

namespace {

// Solves the tail bin's Pareto shape so the mixture mean hits `target`.
FlowSizeDist calibrate(std::vector<FlowSizeDist::Bin> bins, size_t tail,
                       double target_mean) {
  double base = 0.0;
  for (size_t i = 0; i < bins.size(); ++i) {
    if (i != tail) base += bins[i].prob * FlowSizeDist::bin_mean(bins[i]);
  }
  const double need = (target_mean - base) / bins[tail].prob;
  // Bisection on alpha in [1e-3, 50]; bin mean decreases in alpha.
  double lo = 1e-3, hi = 50.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    bins[tail].alpha = mid;
    if (FlowSizeDist::bin_mean(bins[tail]) > need) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  bins[tail].alpha = 0.5 * (lo + hi);
  return FlowSizeDist(std::move(bins));
}

}  // namespace

FlowSizeDist FlowSizeDist::make(WorkloadKind k) {
  using B = Bin;
  switch (k) {
    case WorkloadKind::kDataMining:
      // 78/5/8/9 %, cap 1GB, average 7.41MB.
      return calibrate({B{100, 1e4, 0.78, 0.0}, B{1e4, 1e5, 0.05, 0.0},
                        B{1e5, 1e6, 0.08, 0.0}, B{1e6, 1e9, 0.09, 0.0}},
                       3, 7.41e6);
    case WorkloadKind::kWebSearch:
      // 49/3/18/30 %, cap 30MB, average 1.6MB.
      return calibrate({B{100, 1e4, 0.49, 0.0}, B{1e4, 1e5, 0.03, 0.0},
                        B{1e5, 1e6, 0.18, 0.0}, B{1e6, 30e6, 0.30, 0.0}},
                       3, 1.6e6);
    case WorkloadKind::kCacheFollower:
      // 50/3/18/29 %, average 701KB.
      return calibrate({B{100, 1e4, 0.50, 0.0}, B{1e4, 1e5, 0.03, 0.0},
                        B{1e5, 1e6, 0.18, 0.0}, B{1e6, 30e6, 0.29, 0.0}},
                       3, 701e3);
    case WorkloadKind::kWebServer:
      // 63/18/19/0 %, average 64KB: the L bin carries the calibrated tail.
      return calibrate({B{100, 1e4, 0.63, 0.0}, B{1e4, 1e5, 0.18, 0.0},
                        B{1e5, 1e6, 0.19, 0.0}},
                       2, 64e3);
  }
  assert(false && "unknown workload");
  return FlowSizeDist({});
}

}  // namespace xpass::workload
