#include "workload/rpc_loop.hpp"

#include <cassert>

namespace xpass::workload {

RpcLoop::RpcLoop(sim::Simulator& sim, runner::FlowDriver& driver,
                 std::vector<net::Host*> workers, net::Host* master,
                 uint64_t response_bytes, size_t fanout,
                 uint32_t first_flow_id)
    : sim_(sim),
      driver_(driver),
      workers_(std::move(workers)),
      master_(master),
      bytes_(response_bytes),
      fanout_(fanout),
      next_id_(first_flow_id) {
  assert(!workers_.empty());
}

void RpcLoop::start(sim::Time t) {
  running_ = true;
  for (size_t task = 0; task < fanout_; ++task) {
    sim_.at(t, [this, task] { issue(task); });
  }
}

void RpcLoop::issue(size_t task) {
  if (!running_) return;
  transport::FlowSpec s;
  s.id = next_id_++;
  net::Host* w = workers_[task % workers_.size()];
  if (w == master_) w = workers_[(task + 1) % workers_.size()];
  s.src = w;
  s.dst = master_;
  s.size_bytes = bytes_;
  s.start_time = sim_.now();
  // Chain the next response to this one's completion (replacing the
  // driver's default callback, so record the FCT ourselves).
  driver_.add(s).set_on_complete([this, task](transport::Connection& c) {
    driver_.fcts().record(c.spec().size_bytes, c.fct());
    ++completed_;
    issue(task);
  });
}

}  // namespace xpass::workload
