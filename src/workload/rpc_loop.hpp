// Closed-loop partition/aggregate driver (§2's Fig-1 workload): a master
// continuously collects fixed-size responses from a set of workers. Each
// worker has one outstanding response at a time; when it completes, the
// next is issued immediately (persistent-connection request/response with
// negligible request cost, as in the paper's ns-2 setup).
//
// Built on FlowDriver's completion callbacks, so it works with every
// transport in the repo.
#pragma once

#include <cstdint>
#include <vector>

#include "runner/flow_driver.hpp"

namespace xpass::workload {

class RpcLoop {
 public:
  // `fanout` workers are drawn from `workers` round-robin (a worker may
  // host several logical tasks, as in Fig 1's 2048-fanout runs).
  RpcLoop(sim::Simulator& sim, runner::FlowDriver& driver,
          std::vector<net::Host*> workers, net::Host* master,
          uint64_t response_bytes, size_t fanout,
          uint32_t first_flow_id = 1'000'000);

  // Starts all loops at `t`.
  void start(sim::Time t);
  // Stops issuing new responses (in-flight ones finish).
  void stop() { running_ = false; }

  uint64_t responses_completed() const { return completed_; }

 private:
  void issue(size_t task);

  sim::Simulator& sim_;
  runner::FlowDriver& driver_;
  std::vector<net::Host*> workers_;
  net::Host* master_;
  uint64_t bytes_;
  size_t fanout_;
  uint32_t next_id_;
  uint64_t completed_ = 0;
  bool running_ = false;
};

}  // namespace xpass::workload
