// Flow-level workload generators for the evaluation scenarios.
#pragma once

#include <vector>

#include "transport/flow.hpp"
#include "workload/flow_size_dist.hpp"

namespace xpass::workload {

// Poisson arrivals with sizes from `dist`, random distinct (src, dst) host
// pairs, targeting `n_flows` flows at aggregate arrival rate `lambda_fps`.
std::vector<transport::FlowSpec> poisson_flows(
    sim::Rng& rng, const std::vector<net::Host*>& hosts,
    const FlowSizeDist& dist, double lambda_fps, size_t n_flows,
    sim::Time start = sim::Time::zero(), uint32_t first_flow_id = 1);

// Aggregate flow arrival rate (flows/sec) for a target load on a set of
// links: load * total_capacity_bps / (8 * mean_flow_size).
double lambda_for_load(double load, double total_capacity_bps,
                       double mean_flow_bytes);

// Incast: `fanout` senders (cycled over `workers`, so fanout may exceed the
// host count as in Fig 1) each send `bytes` to `master`.
std::vector<transport::FlowSpec> incast_flows(
    const std::vector<net::Host*>& workers, net::Host* master, uint64_t bytes,
    size_t fanout, sim::Time start = sim::Time::zero(),
    uint32_t first_flow_id = 1);

// Shuffle (Fig 17): every host runs `tasks_per_host` tasks; every task sends
// `bytes_per_pair` to every task on every *other* host.
std::vector<transport::FlowSpec> shuffle_flows(
    const std::vector<net::Host*>& hosts, size_t tasks_per_host,
    uint64_t bytes_per_pair, sim::Time start = sim::Time::zero(),
    uint32_t first_flow_id = 1);

}  // namespace xpass::workload
