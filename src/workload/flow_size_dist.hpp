// Synthetic flow-size distributions calibrated to Table 2.
//
// The paper samples production traces (Data Mining [VL2], Web Search
// [DCTCP], Cache Follower / Web Server [Facebook]); we only have the
// published bin masses, caps, and averages, so each workload is modeled as a
// mixture over the paper's four size bins: log-uniform within S/M/L and a
// bounded-Pareto tail within the largest occupied bin whose shape is solved
// numerically so the overall mean matches Table 2's average flow size.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/random.hpp"

namespace xpass::workload {

enum class WorkloadKind { kDataMining, kWebSearch, kCacheFollower, kWebServer };

std::string_view workload_name(WorkloadKind k);

class FlowSizeDist {
 public:
  struct Bin {
    double lo;        // bytes, inclusive
    double hi;        // bytes
    double prob;      // mass of this bin
    double alpha;     // 0 => log-uniform; >0 => bounded Pareto shape
  };

  // Builds the calibrated distribution for one of the paper's workloads.
  static FlowSizeDist make(WorkloadKind k);
  // Custom distribution (used in tests).
  explicit FlowSizeDist(std::vector<Bin> bins) : bins_(std::move(bins)) {}

  uint64_t sample(sim::Rng& rng) const;
  double mean() const;
  const std::vector<Bin>& bins() const { return bins_; }

  // Analytic mean of one bin's conditional distribution.
  static double bin_mean(const Bin& b);

 private:
  std::vector<Bin> bins_;
};

}  // namespace xpass::workload
