#include "workload/generators.hpp"

#include <cassert>

namespace xpass::workload {

using transport::FlowSpec;

double lambda_for_load(double load, double total_capacity_bps,
                       double mean_flow_bytes) {
  return load * total_capacity_bps / (8.0 * mean_flow_bytes);
}

std::vector<FlowSpec> poisson_flows(sim::Rng& rng,
                                    const std::vector<net::Host*>& hosts,
                                    const FlowSizeDist& dist,
                                    double lambda_fps, size_t n_flows,
                                    sim::Time start, uint32_t first_flow_id) {
  assert(hosts.size() >= 2);
  std::vector<FlowSpec> specs;
  specs.reserve(n_flows);
  sim::Time t = start;
  for (size_t i = 0; i < n_flows; ++i) {
    t += sim::Time::seconds(rng.exponential(1.0 / lambda_fps));
    FlowSpec s;
    s.id = first_flow_id + static_cast<uint32_t>(i);
    const size_t a = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(hosts.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(hosts.size()) - 2));
    if (b >= a) ++b;
    s.src = hosts[a];
    s.dst = hosts[b];
    s.size_bytes = dist.sample(rng);
    s.start_time = t;
    specs.push_back(s);
  }
  return specs;
}

std::vector<FlowSpec> incast_flows(const std::vector<net::Host*>& workers,
                                   net::Host* master, uint64_t bytes,
                                   size_t fanout, sim::Time start,
                                   uint32_t first_flow_id) {
  std::vector<FlowSpec> specs;
  specs.reserve(fanout);
  size_t w = 0;
  for (size_t i = 0; i < fanout; ++i) {
    // Cycle over workers, skipping the master itself.
    while (workers[w % workers.size()] == master) ++w;
    FlowSpec s;
    s.id = first_flow_id + static_cast<uint32_t>(i);
    s.src = workers[w % workers.size()];
    s.dst = master;
    s.size_bytes = bytes;
    s.start_time = start;
    specs.push_back(s);
    ++w;
  }
  return specs;
}

std::vector<FlowSpec> shuffle_flows(const std::vector<net::Host*>& hosts,
                                    size_t tasks_per_host,
                                    uint64_t bytes_per_pair, sim::Time start,
                                    uint32_t first_flow_id) {
  std::vector<FlowSpec> specs;
  uint32_t id = first_flow_id;
  for (size_t sh = 0; sh < hosts.size(); ++sh) {
    for (size_t dh = 0; dh < hosts.size(); ++dh) {
      if (sh == dh) continue;
      // tasks_per_host^2 task pairs between each host pair.
      for (size_t p = 0; p < tasks_per_host * tasks_per_host; ++p) {
        FlowSpec s;
        s.id = id++;
        s.src = hosts[sh];
        s.dst = hosts[dh];
        s.size_bytes = bytes_per_pair;
        s.start_time = start;
        specs.push_back(s);
      }
    }
  }
  return specs;
}

}  // namespace xpass::workload
