// Simulator: owns the event queue and PRNG; passed by reference to every
// component. Not copyable — all components hold a Simulator&.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace xpass::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1,
                     EventQueue::Backend backend = EventQueue::Backend::kHybrid)
      : events_(backend), rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return events_.now(); }
  TimerId at(Time t, Callback cb) { return events_.schedule(t, std::move(cb)); }
  TimerId after(Time dt, Callback cb) {
    return events_.schedule(now() + dt, std::move(cb));
  }
  void cancel(TimerId id) { events_.cancel(id); }

  void run_until(Time t) { events_.run_until(t); }
  void run() { events_.run(); }

  // Exact count of live (scheduled, not yet fired or cancelled) events.
  size_t pending() const { return events_.pending(); }

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  Rng& rng() { return rng_; }

 private:
  EventQueue events_;
  Rng rng_;
};

}  // namespace xpass::sim
