// Simulator: owns the event queue and PRNG; passed by reference to every
// component. Not copyable — all components hold a Simulator&.
//
// An optional RunBudget (set_budget) turns run()/run_until() into budgeted
// step loops: the run stops cleanly — aborted() flips, now() freezes at the
// last fired event — when any limit trips. Without a budget the unbudgeted
// EventQueue fast paths are used, untouched.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/run_budget.hpp"
#include "sim/time.hpp"

namespace xpass::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1,
                     EventQueue::Backend backend = EventQueue::Backend::kHybrid)
      : events_(backend), rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return events_.now(); }
  TimerId at(Time t, Callback cb) { return events_.schedule(t, std::move(cb)); }
  TimerId after(Time dt, Callback cb) {
    return events_.schedule(now() + dt, std::move(cb));
  }
  void cancel(TimerId id) { events_.cancel(id); }

  void run_until(Time t) {
    if (!budget_armed_) {
      events_.run_until(t);
      return;
    }
    run_budgeted(t, /*bounded=*/true);
  }
  void run() {
    if (!budget_armed_) {
      events_.run();
      return;
    }
    run_budgeted(Time::max(), /*bounded=*/false);
  }

  // Arms `b` from the current simulator state: event and sim-time limits
  // count from here, and the wall clock starts now. A budget with no limits
  // set disarms. Re-arming clears a previous abort.
  void set_budget(const RunBudget& b);

  // True once a budgeted run tripped a limit. Further run()/run_until()
  // calls return immediately without firing events or advancing now(), so
  // stepped harness loops must check aborted() to terminate.
  bool aborted() const { return abort_ != AbortReason::kNone; }
  AbortReason abort_reason() const { return abort_; }
  const RunBudget& budget() const { return budget_; }
  // Events fired since the budget was armed.
  uint64_t budget_events_fired() const { return events_.fired() - armed_fired_; }

  // Timestamp of the earliest pending event (Time::max() if none); used by
  // ParallelSimulator to compute conservative window boundaries.
  Time next_event_time() { return events_.next_time(); }

  // External abort: the ParallelSimulator enforces the run budget itself at
  // barrier granularity (events fire on shard queues, not here) and trips
  // the control simulator's abort state through this so harness loops see
  // the usual aborted()/abort_reason() contract.
  void force_abort(AbortReason r) { abort_ = r; }

  // Exact count of live (scheduled, not yet fired or cancelled) events.
  size_t pending() const { return events_.pending(); }

  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }
  Rng& rng() { return rng_; }

 private:
  // How many events fire between wall-clock reads (a syscall per event would
  // dominate the hot path; 4096 bounds the overshoot to well under a ms of
  // simulated work).
  static constexpr uint64_t kWallCheckPeriod = 4096;

  void run_budgeted(Time t_end, bool bounded);

  EventQueue events_;
  Rng rng_;
  RunBudget budget_;
  bool budget_armed_ = false;
  AbortReason abort_ = AbortReason::kNone;
  Time armed_at_;            // sim time when the budget was armed
  uint64_t armed_fired_ = 0; // events_.fired() when the budget was armed
  int64_t armed_wall_ns_ = 0;  // steady_clock anchor (ns since epoch)
};

}  // namespace xpass::sim
