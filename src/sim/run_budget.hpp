// RunBudget: per-run limits that turn a pathological simulation into a
// graceful truncation instead of a hung process.
//
// A fuzz or sweep campaign is only as robust as its worst spec: one scenario
// whose event loop never drains (a mis-wired retry storm, a fan-out bomb, a
// horizon far beyond what its traffic needs) used to pin a worker thread
// forever. A budget caps the run on four independent axes — events fired,
// simulated time, wall-clock time, and live (pending) events — and tripping
// any of them is a *clean stop*, not an error: the Simulator marks itself
// aborted with a reason, the step loop returns, and the harness still gets a
// well-formed (truncated) result it can emit, cache, or quarantine.
//
// Determinism: the event, sim-time, and live-event budgets count simulator
// state only, so two runs of the same (spec, seed, budget) truncate at the
// same event and produce byte-identical recorder output. The wall-clock
// budget is inherently machine-dependent — it exists to unstick hung runs —
// so wall-clock-aborted results must never be cached or compared (the
// campaign layer enforces this by refusing to store them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace xpass::sim {

// Why a budgeted run stopped early. kNone means the run completed normally.
enum class AbortReason : uint8_t {
  kNone,
  kEventBudget,      // fired-event cap (deterministic)
  kSimTimeBudget,    // simulated-time cap (deterministic)
  kWallClockBudget,  // wall-clock cap (machine-dependent; never cache)
  kLiveEventBudget,  // pending-event cap: the fan-out-bomb guard
};

// Stable spellings, used in recorder JSON ("abort_reason") and manifests.
std::string_view abort_reason_name(AbortReason r);

struct RunBudget {
  // Events fired since the budget was armed. 0 = unlimited.
  uint64_t max_events = 0;
  // Simulated time elapsed since the budget was armed; run_until targets
  // beyond the cap are truncated to it. zero() = unlimited.
  Time max_sim_time;
  // Wall-clock milliseconds since the budget was armed, checked every
  // kWallCheckPeriod fired events (a steady_clock read per event would
  // dominate the hot path). 0 = unlimited.
  double max_wall_ms = 0;
  // Ceiling on simultaneously pending events — the proxy for "live packets"
  // plus timers: a scenario whose every event schedules two more blows this
  // long before it exhausts memory. 0 = unlimited.
  size_t max_live_events = 0;

  bool any() const {
    return max_events != 0 || max_sim_time > Time::zero() ||
           max_wall_ms > 0 || max_live_events != 0;
  }
};

}  // namespace xpass::sim
