#include "sim/simulator.hpp"

#include <chrono>

namespace xpass::sim {

namespace {

int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "";
    case AbortReason::kEventBudget: return "event-budget";
    case AbortReason::kSimTimeBudget: return "sim-time-budget";
    case AbortReason::kWallClockBudget: return "wall-clock-budget";
    case AbortReason::kLiveEventBudget: return "live-event-budget";
  }
  return "?";
}

void Simulator::set_budget(const RunBudget& b) {
  budget_ = b;
  budget_armed_ = b.any();
  abort_ = AbortReason::kNone;
  armed_at_ = now();
  armed_fired_ = events_.fired();
  armed_wall_ns_ = budget_.max_wall_ms > 0 ? wall_now_ns() : 0;
}

void Simulator::run_budgeted(Time t_end, bool bounded) {
  if (aborted()) return;
  Time target = t_end;
  bool sim_capped = false;
  if (budget_.max_sim_time > Time::zero()) {
    const Time cap = armed_at_ + budget_.max_sim_time;
    if (cap < target) {
      target = cap;
      sim_capped = true;
    }
  }
  const int64_t wall_deadline_ns =
      budget_.max_wall_ms > 0
          ? armed_wall_ns_ + static_cast<int64_t>(budget_.max_wall_ms * 1e6)
          : 0;
  uint64_t since_wall_check = 0;
  for (;;) {
    if (budget_.max_events != 0 &&
        events_.fired() - armed_fired_ >= budget_.max_events) {
      abort_ = AbortReason::kEventBudget;
      return;
    }
    if (budget_.max_live_events != 0 &&
        events_.pending() > budget_.max_live_events) {
      abort_ = AbortReason::kLiveEventBudget;
      return;
    }
    if (wall_deadline_ns != 0 && ++since_wall_check >= kWallCheckPeriod) {
      since_wall_check = 0;
      if (wall_now_ns() > wall_deadline_ns) {
        abort_ = AbortReason::kWallClockBudget;
        return;
      }
    }
    if (!events_.step_until(target)) break;
  }
  // Nothing left at or before `target`: settle now() exactly like an
  // unbudgeted run_until would (run() has no horizon to advance to).
  if (bounded) events_.run_until(target);
  if (sim_capped && events_.pending() > 0) {
    // The cap, not the caller's horizon, ended the run while work remained.
    abort_ = AbortReason::kSimTimeBudget;
  }
}

}  // namespace xpass::sim
