// Move-only callable with small-buffer optimization, the event queue's
// callback type.
//
// std::function<void()> costs the hot path twice: it requires copyable
// targets (so captures holding a Packet force a copy constructor into
// existence) and it heap-allocates anything past its tiny SSO buffer —
// which, at libstdc++'s 16 bytes, is every capture larger than two
// pointers. Callback instead reserves enough inline storage for every
// hot-path capture in the simulator — a handful of pointers and timestamps;
// in-flight packets ride in net::PacketPool slots and are captured as one
// pointer — so scheduling a packet hop never touches the allocator.
// Targets that still exceed the buffer (or are not nothrow-movable) fall
// back to the heap transparently.
//
// Move-only targets are supported — a lambda capturing a std::unique_ptr
// or a moved-in Packet schedules directly, no shared_ptr shims.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace xpass::sim {

class Callback {
 public:
  // Six pointer-sized words: fits [this + PacketRef] forwarding captures
  // and every timer capture on the hot path, at a third of the event-slot
  // footprint the old packet-by-value sizing (104B) required.
  static constexpr size_t kInlineCapacity = 48;

  Callback() = default;
  Callback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Callback(Callback&& o) noexcept { move_from(o); }
  Callback& operator=(Callback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

  // Destroys the target (releasing captured resources) without invoking it.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct the target into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* as(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*as<Fn>(p))(); },
      [](void* dst, void* src) {
        Fn* s = as<Fn>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { as<Fn>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**as<Fn*>(p))(); },
      [](void* dst, void* src) { ::new (dst) Fn*(*as<Fn*>(src)); },
      [](void* p) { delete *as<Fn*>(p); },
  };

  void move_from(Callback& o) noexcept {
    if (o.ops_ != nullptr) {
      o.ops_->relocate(buf_, o.buf_);
      ops_ = o.ops_;
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace xpass::sim
