#include "sim/invariants.hpp"

#include <cstdio>
#include <cstdlib>

namespace xpass::sim {

void InvariantChecker::add_check(std::string name, Check fn) {
  checks_.emplace_back(std::move(name), std::move(fn));
}

void InvariantChecker::start(Time period) {
  if (running_) return;
  running_ = true;
  period_ = period;
  schedule_sweep();
}

void InvariantChecker::schedule_sweep() {
  timer_ = sim_.after(period_, [this] {
    run_checks();
    if (running_) schedule_sweep();
  });
}

void InvariantChecker::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(timer_);
}

void InvariantChecker::run_checks() {
  ++sweeps_;
  check_monotonic();
  for (const auto& [name, fn] : checks_) {
    std::string msg = fn();
    if (!msg.empty()) {
      violation("invariant '" + name + "' violated at " + sim_.now().str() +
                ": " + msg);
    }
  }
}

void InvariantChecker::report(std::string_view name,
                              std::string_view details) {
  check_monotonic();
  violation("invariant '" + std::string(name) + "' violated at " +
            sim_.now().str() + ": " + std::string(details));
}

void InvariantChecker::check_monotonic() {
  const Time now = sim_.now();
  if (now < last_seen_now_) {
    violation("event-time monotonicity: now " + now.str() +
              " regressed below previously observed " + last_seen_now_.str());
  }
  last_seen_now_ = now;
}

void InvariantChecker::violation(std::string msg) {
  ++violations_;
  if (messages_.size() < kMaxMessages) messages_.push_back(msg);
  if (mode_ == Mode::kFatal) {
    std::fprintf(stderr, "FATAL %s\n", msg.c_str());
    std::abort();
  }
}

}  // namespace xpass::sim
