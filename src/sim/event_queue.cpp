#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace xpass::sim {

namespace {
constexpr size_t kArity = 4;
}  // namespace

uint32_t EventQueue::acquire_slot() {
  if (free_head_ != TimerId::kInvalidSlot) {
    const uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  // Pool growth only happens when every existing slot is pending, so this
  // check is off the per-event path.
  if (slots_.size() > kSlotMask) {
    throw std::length_error(
        "EventQueue: more than 2^20 concurrently pending events");
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(uint32_t idx) {
  Slot& s = slots_[idx];
  s.cb.reset();
  s.armed = false;
  ++s.gen;  // invalidate every TimerId handed out for this use of the slot
  s.next_free = free_head_;
  free_head_ = idx;
}

TimerId EventQueue::schedule(Time t, Callback cb) {
  if (t < now_) {
    // The documented contract is t >= now(). A past-time event would fire
    // out of order relative to events already fired at now() and break the
    // FIFO-determinism contract, so it is clamped to now() — it still fires
    // after everything already scheduled at now(), in scheduling order.
    // Under the sanitize preset the offending call site is a bug to fix,
    // not to paper over: fail loudly at the source.
#ifdef XPASS_SANITIZE
    std::fprintf(stderr,
                 "EventQueue::schedule: past-time schedule (t=%lld ps < "
                 "now=%lld ps)\n",
                 static_cast<long long>(t.picos()),
                 static_cast<long long>(now_.picos()));
    std::abort();
#else
    t = now_;
#endif
  }
  const uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  s.armed = true;
  const uint64_t key = (next_seq_++ << kSlotBits) | idx;
  // Deferred routing: the entry sits in the unsorted staging buffer until
  // the queue is next stepped, and only then picks wheel vs heap. An event
  // cancelled before that (teardown, RTO reschedule) is dropped at flush
  // without ever paying a wheel insert or a heap sift. Routing at flush
  // time is trace-identical to routing at schedule time: now() and the
  // wheel's tick cursor advance only when an event fires, and every staged
  // entry is flushed before the next fire, so the wheel sees the same
  // acceptance window either way — and fire order is the (t, seq) minimum
  // across both structures regardless of where an entry landed.
  staging_.push_back(Entry{t, key});
  ++live_count_;
  return TimerId{idx, s.gen};
}

void EventQueue::cancel(TimerId id) {
  if (id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.armed) return;  // fired, cancelled, or reused
  s.armed = false;
  s.cb.reset();  // release captured resources now, not at heap drain
  --live_count_;
  ++cancelled_;
  // The slot itself is reclaimed when its heap entry surfaces — except for
  // the common cancel-and-reschedule pattern, where the entry is often the
  // current top and can be reclaimed right away.
  skim_cancelled();
}

void EventQueue::fire_top() {
  // Pop-push fusion: firing leaves a hole at the root instead of eagerly
  // re-heapifying. The fired callback almost always schedules a successor
  // event (the simulation's "hold" pattern), and the successor is usually
  // near-future — the next flush drops it straight into the hole, where its
  // sift_down terminates after a level or two. The eager alternative pays a
  // full-depth sift_down (moving the far-future *last* element down from
  // the root) plus a full-depth sift_up for the new event, every event.
  const Entry e = heap_[0];
  hole_ = true;
  Slot& s = slots_[e.slot()];
  Callback cb = std::move(s.cb);
  release_slot(e.slot());
  now_ = e.t;
  --live_count_;
  ++fired_;
  // No references into slots_/heap_ may be held across the call: the
  // callback can schedule, growing either vector.
  cb();
}

const TimingWheel::Entry* EventQueue::next_wheel() {
  const TimingWheel::Entry* w;
  while ((w = wheel_.peek()) != nullptr &&
         !slots_[static_cast<uint32_t>(w->key) & kSlotMask].armed) {
    // Cancelled while bucketed: reclaim the pool slot as the entry surfaces
    // (the wheel-side analogue of skim_cancelled).
    release_slot(static_cast<uint32_t>(wheel_.pop().key) & kSlotMask);
  }
  return w;
}

void EventQueue::fire_wheel() {
  const TimingWheel::Entry e = wheel_.pop();
  const uint32_t idx = static_cast<uint32_t>(e.key) & kSlotMask;
  Slot& s = slots_[idx];
  Callback cb = std::move(s.cb);
  release_slot(idx);
  now_ = e.t;
  --live_count_;
  ++fired_;
  // No references into slots_ may be held across the call: the callback can
  // schedule, growing the vector.
  cb();
}

Time EventQueue::next_time() {
  if (!staging_.empty()) flush_staging();
  skim_cancelled();
  const TimingWheel::Entry* w = next_wheel();
  const bool heap_has = !heap_.empty();
  if (!w && !heap_has) return Time::max();
  if (!w) return heap_[0].t;
  if (!heap_has) return w->t;
  return earlier(heap_[0], Entry{w->t, w->key}) ? heap_[0].t : w->t;
}

bool EventQueue::step() {
  if (!staging_.empty()) flush_staging();
  skim_cancelled();
  const TimingWheel::Entry* w = next_wheel();
  const bool heap_has = !heap_.empty();
  if (!w && !heap_has) return false;
  if (!w || (heap_has && earlier(heap_[0], Entry{w->t, w->key}))) {
    fire_top();
  } else {
    fire_wheel();
  }
  return true;
}

bool EventQueue::step_until(Time t_end) {
  if (!staging_.empty()) flush_staging();
  skim_cancelled();
  const TimingWheel::Entry* w = next_wheel();
  const bool heap_has = !heap_.empty();
  if (!w && !heap_has) return false;
  const bool use_heap =
      !w || (heap_has && earlier(heap_[0], Entry{w->t, w->key}));
  if ((use_heap ? heap_[0].t : w->t) > t_end) return false;
  if (use_heap) {
    fire_top();
  } else {
    fire_wheel();
  }
  return true;
}

void EventQueue::flush_staging() {
  for (const Entry& e : staging_) {
    if (!slots_[e.slot()].armed) {
      // Cancelled while staged: reclaim without touching wheel or heap.
      release_slot(e.slot());
      continue;
    }
    if (backend_ == Backend::kHybrid) {
      bool wheeled = wheel_.try_schedule(e.t, e.key);
      if (!wheeled && wheel_.empty()) {
        // The wheel idled through a heap-only stretch and its span window
        // fell behind now(); re-anchor it and retry.
        wheel_.sync(now_);
        wheeled = wheel_.try_schedule(e.t, e.key);
      }
      if (wheeled) {
        ++wheel_scheduled_;
        continue;
      }
    }
    ++heap_scheduled_;
    if (hole_) {
      // Fill the fired event's root hole directly (see fire_top).
      hole_ = false;
      heap_[0] = e;
      sift_down(0);
    } else {
      heap_push(e);
    }
  }
  staging_.clear();
}

void EventQueue::fill_hole() {
  // No staged event claimed the root hole: close it the eager way, by
  // sifting the last element down from the root.
  if (!hole_) return;
  hole_ = false;
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
}

void EventQueue::skim_cancelled() {
  fill_hole();
  while (!heap_.empty() && !slots_[heap_[0].slot()].armed) {
    release_slot(heap_pop().slot());
  }
}

void EventQueue::run_until(Time t_end) {
  // One flush + one skim + one pop per fired event; step()'s re-checks are
  // folded in rather than paid twice per iteration.
  for (;;) {
    if (!staging_.empty()) flush_staging();
    skim_cancelled();
    const TimingWheel::Entry* w = next_wheel();
    const bool heap_has = !heap_.empty();
    if (!w && !heap_has) break;
    const bool use_heap =
        !w || (heap_has && earlier(heap_[0], Entry{w->t, w->key}));
    if ((use_heap ? heap_[0].t : w->t) > t_end) break;
    if (use_heap) {
      fire_top();
    } else {
      fire_wheel();
    }
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::heap_push(Entry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

EventQueue::Entry EventQueue::heap_pop() {
  const Entry top = heap_[0];
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
  return top;
}

void EventQueue::sift_up(size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(size_t i) {
  const size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const size_t first = i * kArity + 1;
    if (first >= n) break;
    size_t best = first;
    const size_t lim = std::min(first + kArity, n);
    for (size_t c = first + 1; c < lim; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

}  // namespace xpass::sim
