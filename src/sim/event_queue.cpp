#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace xpass::sim {

TimerId EventQueue::schedule(Time t, Callback cb) {
  assert(t >= now_ && "cannot schedule into the past");
  const uint64_t seq = next_seq_++;
  heap_.push(Entry{t, seq, std::move(cb)});
  ++live_count_;
  return TimerId{seq};
}

void EventQueue::cancel(TimerId id) {
  if (!id.valid()) return;
  if (cancelled_.insert(id.id).second) {
    // May have already fired; live_count_ is corrected lazily in step().
  }
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    auto it = cancelled_.find(e.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      if (live_count_ > 0) --live_count_;
      continue;
    }
    now_ = e.t;
    if (live_count_ > 0) --live_count_;
    e.cb();
    return true;
  }
  return false;
}

void EventQueue::run_until(Time t_end) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (cancelled_.count(top.seq)) {
      cancelled_.erase(top.seq);
      if (live_count_ > 0) --live_count_;
      heap_.pop();
      continue;
    }
    if (top.t > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace xpass::sim
