#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>

namespace xpass::sim {

namespace {

thread_local size_t tl_shard = ParallelSimulator::kNoShard;

int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// splitmix64 finalizer: decorrelates the per-shard PRNG streams from the
// scenario seed and from each other.
uint64_t shard_seed(uint64_t seed, size_t shard) {
  uint64_t z = seed + (shard + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

size_t ParallelSimulator::current_shard() { return tl_shard; }

ParallelSimulator::ParallelSimulator(uint64_t seed, size_t shards,
                                     EventQueue::Backend backend)
    : control_(seed, backend) {
  if (shards < 2) shards = 2;  // shards <= 1 belongs on the serial core
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_seed(seed, i), backend));
  }
  channels_.resize(shards * shards);
  channel_seq_.assign(shards * shards, 0);
  for (auto& c : channels_) c = std::make_unique<SpscQueue<RemoteEvent>>();
}

ParallelSimulator::~ParallelSimulator() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelSimulator::post(size_t src, size_t dst, Time t, Callback fn) {
  const size_t idx = src * shards_.size() + dst;
  channels_[idx]->push(RemoteEvent{t, channel_seq_[idx]++, std::move(fn)});
}

void ParallelSimulator::set_budget(const RunBudget& b) {
  budget_ = b;
  budget_armed_ = b.any();
  control_.force_abort(AbortReason::kNone);
  armed_at_ = control_.now();
  armed_fired_ = events_fired();
  armed_wall_ns_ = wall_ns();
}

uint64_t ParallelSimulator::events_fired() const {
  uint64_t n = control_.events().fired();
  for (const auto& s : shards_) n += s->sim.events().fired();
  return n;
}

size_t ParallelSimulator::pending() const {
  size_t n = control_.pending();
  for (const auto& s : shards_) n += s->sim.pending();
  return n;
}

void ParallelSimulator::start_workers() {
  if (!threads_.empty()) return;
  threads_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

void ParallelSimulator::worker_main(size_t idx) {
  tl_shard = idx;
  if (worker_init_) worker_init_(idx);
  uint64_t seen = 0;
  for (;;) {
    Time target;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      target = window_target_;
    }
    shards_[idx]->sim.run_until(target);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--running_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelSimulator::run_shards_to(Time w) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_target_ = w;
    running_ = shards_.size();
    ++epoch_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return running_ == 0; });
}

void ParallelSimulator::drain_channels() {
  merge_scratch_.clear();
  const size_t n = shards_.size();
  for (size_t src = 0; src < n; ++src) {
    for (size_t dst = 0; dst < n; ++dst) {
      SpscQueue<RemoteEvent>& ch = channel(src, dst);
      if (ch.empty()) continue;
      std::vector<RemoteEvent> batch;
      ch.drain(batch);
      for (RemoteEvent& e : batch) {
        merge_scratch_.push_back(MergedEvent{e.t, static_cast<uint32_t>(src),
                                             static_cast<uint32_t>(dst), e.seq,
                                             std::move(e.fn)});
      }
    }
  }
  if (merge_scratch_.empty()) return;
  // Canonical order: (arrival, source shard, channel sequence) is unique
  // and schedule-independent, so the destination queues' FIFO tie-break
  // sees the same insertion sequence on every run.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const MergedEvent& a, const MergedEvent& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  remote_events_ += merge_scratch_.size();
  for (MergedEvent& e : merge_scratch_) {
    shards_[e.dst]->sim.at(e.t, std::move(e.fn));
  }
  merge_scratch_.clear();
}

void ParallelSimulator::check_budget() {
  AbortReason r = AbortReason::kNone;
  if (budget_.max_events != 0 &&
      events_fired() - armed_fired_ >= budget_.max_events) {
    r = AbortReason::kEventBudget;
  } else if (budget_.max_sim_time > Time::zero() &&
             control_.now() - armed_at_ >= budget_.max_sim_time) {
    r = AbortReason::kSimTimeBudget;
  } else if (budget_.max_live_events != 0 &&
             pending() >= budget_.max_live_events) {
    r = AbortReason::kLiveEventBudget;
  } else if (budget_.max_wall_ms > 0 &&
             static_cast<double>(wall_ns() - armed_wall_ns_) / 1e6 >=
                 budget_.max_wall_ms) {
    r = AbortReason::kWallClockBudget;
  }
  if (r != AbortReason::kNone) control_.force_abort(r);
}

void ParallelSimulator::run_until(Time t_end) {
  if (control_.aborted()) return;
  // Mirror the serial core's sim-time budget semantics: run_until targets
  // beyond the armed cap are truncated to it, so now() freezes at the cap
  // instead of overshooting by up to one window.
  if (budget_armed_ && budget_.max_sim_time > Time::zero()) {
    const Time cap = armed_at_ + budget_.max_sim_time;
    if (cap < t_end) t_end = cap;
  }
  start_workers();
  while (control_.now() < t_end && !control_.aborted()) {
    Time w = t_end;
    const Time ctrl_next = control_.next_event_time();
    if (ctrl_next < w) w = ctrl_next;
    if (lookahead_ != Time::max()) {
      Time shard_next = Time::max();
      for (auto& s : shards_) {
        const Time t = s->sim.next_event_time();
        if (t < shard_next) shard_next = t;
      }
      if (shard_next != Time::max()) {
        const Time horizon = shard_next + lookahead_;
        if (horizon < w) w = horizon;
      }
    }
    run_shards_to(w);
    drain_channels();
    control_.run_until(w);
    ++windows_;
    if (budget_armed_) check_budget();
  }
}

}  // namespace xpass::sim
