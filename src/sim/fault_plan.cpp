#include "sim/fault_plan.hpp"

#include <cassert>

namespace xpass::sim {

void FaultPlan::at(Time when, std::string label,
                   std::function<void()> action) {
  assert(!armed_ && "FaultPlan: at() after arm()");
  events_.push_back(Event{when, std::move(label), std::move(action), 0});
}

void FaultPlan::window(Time from, Time to, std::string label,
                       std::function<void()> enter,
                       std::function<void()> exit) {
  assert(!armed_ && "FaultPlan: window() after arm()");
  assert(to > from && "FaultPlan: window closes before it opens");
  events_.push_back(Event{from, label + ":begin", std::move(enter), +1});
  if (to != Time::max()) {
    events_.push_back(Event{to, label + ":end", std::move(exit), -1});
  }
}

void FaultPlan::arm(Simulator& sim) {
  assert(!armed_ && "FaultPlan: arm() twice");
  armed_ = true;
  timers_.reserve(events_.size());
  // Events hold stable addresses from here on (no additions after arm).
  for (Event& e : events_) {
    Event* ev = &e;
    timers_.push_back(sim.at(ev->when, [this, ev] {
      active_windows_ += ev->window_delta;
      ++fired_;
      if (ev->action) ev->action();
    }));
  }
}

void FaultPlan::disarm(Simulator& sim) {
  for (const TimerId& id : timers_) sim.cancel(id);
  timers_.clear();
}

std::vector<Time> FaultPlan::poisson_times(Time from, Time to,
                                           Time mean_gap) {
  std::vector<Time> out;
  Time t = from + Time::seconds(rng_.exponential(mean_gap.to_sec()));
  while (t < to) {
    out.push_back(t);
    t += Time::seconds(rng_.exponential(mean_gap.to_sec()));
  }
  return out;
}

}  // namespace xpass::sim
