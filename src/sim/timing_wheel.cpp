#include "sim/timing_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstring>

namespace xpass::sim {

TimingWheel::TimingWheel() {
  std::memset(heads_, 0xff, sizeof(heads_));  // all kNil
  std::memset(bitmap_, 0, sizeof(bitmap_));
}

uint32_t TimingWheel::acquire_node(Time t, uint64_t key) {
  uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = nodes_[idx].next;
  } else {
    idx = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[idx].t = t;
  nodes_[idx].key = key;
  return idx;
}

void TimingWheel::link(uint32_t level, uint32_t slot, uint32_t node) {
  nodes_[node].next = heads_[level][slot];
  heads_[level][slot] = node;
  bitmap_[level][slot >> 6] |= 1ull << (slot & 63);
}

void TimingWheel::place(uint32_t node) {
  const uint64_t tick = tick_of(nodes_[node].t);
  assert(tick >= cur_tick_);
  const uint64_t delta = tick - cur_tick_;
  if (delta < kSlots) {
    link(0, tick & kSlotMask, node);
  } else if (delta < (kSlots << kLevelBits)) {
    link(1, (tick >> kLevelBits) & kSlotMask, node);
  } else {
    link(2, (tick >> (2 * kLevelBits)) & kSlotMask, node);
  }
}

bool TimingWheel::try_schedule(Time t, uint64_t key) {
  const uint64_t tick = tick_of(t);
  if (tick < cur_tick_) {
    // Already-drained bucket (a heap-side event fired earlier and scheduled
    // here): merge into the unconsumed tail of the ready run. The entry's t
    // is >= the queue's now(), and its seq exceeds every consumed entry's,
    // so the insertion point always lands at or after the consume cursor.
    const Entry e{t, key};
    ready_.insert(
        std::upper_bound(ready_.begin() + static_cast<ptrdiff_t>(ready_pos_),
                         ready_.end(), e, entry_earlier),
        e);
    ++pending_;
    ++accepted_;
    return true;
  }
  if (tick - cur_tick_ >= kSpanTicks) return false;
  place(acquire_node(t, key));
  ++pending_;
  ++bucketed_;
  ++accepted_;
  return true;
}

void TimingWheel::cascade(uint32_t level, uint32_t slot) {
  uint32_t node = heads_[level][slot];
  heads_[level][slot] = kNil;
  bitmap_[level][slot >> 6] &= ~(1ull << (slot & 63));
  while (node != kNil) {
    const uint32_t next = nodes_[node].next;
    place(node);
    node = next;
  }
}

int TimingWheel::find_occupied(uint32_t level, uint32_t from) const {
  if (from >= kSlots) return -1;
  uint64_t word = bitmap_[level][from >> 6] & (~0ull << (from & 63));
  for (size_t w = from >> 6;;) {
    if (word != 0) {
      return static_cast<int>((w << 6) + std::countr_zero(word));
    }
    if (++w >= kWords) return -1;
    word = bitmap_[level][w];
  }
}

bool TimingWheel::advance_and_drain() {
  while (bucketed_ > 0) {
    // Materialize the cursor's window: crossing an L0-window boundary
    // cascades the upper-level slot the new window maps to (and crossing an
    // L1-window boundary cascades from L2 first). The cursor never skips a
    // non-empty bucket, so every bucketed entry is eventually reached.
    const uint64_t base = cur_tick_ & ~static_cast<uint64_t>(kSlotMask);
    if (base != l0_window_) {
      const uint64_t l1_base =
          cur_tick_ & ~((static_cast<uint64_t>(kSlotMask) << kLevelBits) |
                        kSlotMask);
      if (l1_base != l1_window_) {
        cascade(2, (cur_tick_ >> (2 * kLevelBits)) & kSlotMask);
        l1_window_ = l1_base;
      }
      cascade(1, (cur_tick_ >> kLevelBits) & kSlotMask);
      l0_window_ = base;
    }
    const int s = find_occupied(0, static_cast<uint32_t>(cur_tick_) & kSlotMask);
    if (s < 0) {
      cur_tick_ = base + kSlots;  // L0 window exhausted; enter the next one
      continue;
    }
    // Drain bucket `s` into the ready run, sorted by (t, key).
    const uint32_t slot = static_cast<uint32_t>(s);
    uint32_t node = heads_[0][slot];
    heads_[0][slot] = kNil;
    bitmap_[0][slot >> 6] &= ~(1ull << (slot & 63));
    assert(node != kNil);
    while (node != kNil) {
      ready_.push_back(Entry{nodes_[node].t, nodes_[node].key});
      const uint32_t next = nodes_[node].next;
      nodes_[node].next = free_head_;
      free_head_ = node;
      node = next;
      --bucketed_;
    }
    std::sort(ready_.begin(), ready_.end(), entry_earlier);
    cur_tick_ = base + slot + 1;
    return true;
  }
  return false;
}

void TimingWheel::sync(Time now) {
  // Only legal on an empty wheel: fast-forwards the cursor so the span
  // check in try_schedule() is anchored at the present instead of wherever
  // the last drained bucket left it. Every slot is empty, so the skipped
  // windows are marked materialized without cascading anything.
  assert(pending_ == 0 && bucketed_ == 0);
  const uint64_t tick = tick_of(now);
  if (tick <= cur_tick_) return;
  cur_tick_ = tick;
  l0_window_ = tick & ~static_cast<uint64_t>(kSlotMask);
  l1_window_ =
      tick &
      ~((static_cast<uint64_t>(kSlotMask) << kLevelBits) | kSlotMask);
}

const TimingWheel::Entry* TimingWheel::peek() {
  if (ready_pos_ < ready_.size()) return &ready_[ready_pos_];
  ready_.clear();
  ready_pos_ = 0;
  if (!advance_and_drain()) return nullptr;
  return &ready_[ready_pos_];
}

TimingWheel::Entry TimingWheel::pop() {
  assert(ready_pos_ < ready_.size());
  const Entry e = ready_[ready_pos_++];
  --pending_;
  if (ready_pos_ == ready_.size()) {
    ready_.clear();
    ready_pos_ = 0;
  }
  return e;
}

}  // namespace xpass::sim
