// ParallelSimulator: conservative time-window parallel discrete-event core.
//
// A serial Simulator interleaves every component's events in one queue; the
// parallel core instead gives each topology shard its own Simulator (event
// queue + PRNG) driven by a dedicated worker thread, plus one "control"
// Simulator for global events (flow starts, fault plans, invariant sweeps,
// telemetry), and advances them all in lockstep windows:
//
//   1. The barrier thread computes the window end
//        W = min(next shard event + lookahead, next control event, target)
//      where `lookahead` is the minimum propagation delay over links whose
//      endpoints live in different shards.
//   2. Every worker runs its shard's queue to W concurrently. A packet
//      crossing a shard boundary is not delivered inline: the egress port
//      posts it to the (src, dst) shard pair's SPSC channel with its wire
//      arrival time. Safety: every event fired inside the window has
//      timestamp >= N (the minimum next-event time the window was computed
//      from), so its cross-shard arrival lands at >= N + lookahead >= W —
//      always at or beyond the window end, never in a worker's past.
//   3. At the barrier, channels are drained and merged canonically — sorted
//      by (arrival time, source shard, channel sequence) — onto the
//      destination queues, then control events up to W fire on the barrier
//      thread while every worker is parked. Control events may freely read
//      and mutate any shard's state: the barrier's mutex orders those
//      accesses against the workers on both sides.
//
// Determinism: at a FIXED shard count the run is a pure function of the
// scenario — shard execution between barriers is single-threaded, the
// channel merge order is canonical, and window boundaries are computed from
// deterministic quantities only — so recorder output is byte-identical
// across runs and thread schedules. Results legitimately differ from the
// serial core (and between different shard counts): each shard draws from
// its own PRNG stream. shards <= 1 therefore bypasses this class entirely
// and runs today's serial core unchanged.
//
// Budgets are enforced at barrier granularity: event / sim-time / live
// budgets count summed deterministic state, so truncation points reproduce;
// a trip forwards through the control simulator's aborted() state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/spsc_queue.hpp"

namespace xpass::sim {

class ParallelSimulator {
 public:
  // current_shard() for threads that are not shard workers.
  static constexpr size_t kNoShard = static_cast<size_t>(-1);

  ParallelSimulator(uint64_t seed, size_t shards,
                    EventQueue::Backend backend = EventQueue::Backend::kHybrid);
  ~ParallelSimulator();

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  size_t shard_count() const { return shards_.size(); }
  // The control simulator: global time, global events, budget/abort state.
  // It is seeded exactly like the serial core's Simulator, so scenario
  // setup (traffic generation) draws the same streams either way.
  Simulator& control() { return control_; }
  Simulator& shard(size_t i) { return shards_[i]->sim; }

  // Minimum propagation delay across shard-crossing links; Time::max()
  // (the default) means no cross-shard traffic is possible and windows run
  // straight to the next control event / target. Must be > 0.
  void set_lookahead(Time la) { lookahead_ = la; }
  Time lookahead() const { return lookahead_; }

  // Runs every worker thread calls `fn(shard)` once before its first
  // window — the hook that binds shard-owned resources (net::PacketPool)
  // to the thread. Set before the first run_until().
  void set_worker_init(std::function<void(size_t)> fn) {
    worker_init_ = std::move(fn);
  }

  // Cross-shard handoff: enqueue `fn` to run on shard `dst` at absolute
  // time `t` (the wire arrival; always >= the current window end, by the
  // lookahead argument above). Producer contract: called from shard `src`'s
  // worker thread mid-window, or from the barrier thread while workers are
  // parked — never concurrently for the same (src, dst) pair.
  void post(size_t src, size_t dst, Time t, Callback fn);

  // Barrier-granularity budget (see file comment). Mirrors
  // Simulator::set_budget: arms from current state, re-arming clears a
  // previous abort.
  void set_budget(const RunBudget& b);

  // Advances control + shards to `t_end` in conservative windows. Returns
  // immediately once aborted() (budget trip), leaving now() frozen at the
  // last completed barrier.
  void run_until(Time t_end);

  Time now() const { return control_.now(); }
  bool aborted() const { return control_.aborted(); }
  AbortReason abort_reason() const { return control_.abort_reason(); }

  // The calling thread's shard index (kNoShard on non-worker threads).
  // Shard-indexed sinks (per-shard stats) key off this.
  static size_t current_shard();

  // Introspection for tests, benches, and budget accounting.
  uint64_t windows() const { return windows_; }
  uint64_t remote_events() const { return remote_events_; }
  uint64_t events_fired() const;
  size_t pending() const;

 private:
  struct RemoteEvent {
    Time t;
    uint64_t seq = 0;
    Callback fn;
  };
  struct Shard {
    explicit Shard(uint64_t seed, EventQueue::Backend backend)
        : sim(seed, backend) {}
    Simulator sim;
  };

  SpscQueue<RemoteEvent>& channel(size_t src, size_t dst) {
    return *channels_[src * shards_.size() + dst];
  }

  void start_workers();
  void worker_main(size_t idx);
  void run_shards_to(Time w);
  void drain_channels();
  void check_budget();

  Simulator control_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SpscQueue<RemoteEvent>>> channels_;
  std::vector<uint64_t> channel_seq_;  // producer-owned per-channel counters
  Time lookahead_ = Time::max();
  std::function<void(size_t)> worker_init_;

  // Worker pool: released per window by epoch bump, parked between windows.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  uint64_t epoch_ = 0;
  Time window_target_;
  size_t running_ = 0;
  bool stop_ = false;

  // Scratch for the canonical barrier merge (reused across windows).
  struct MergedEvent {
    Time t;
    uint32_t src = 0;
    uint32_t dst = 0;
    uint64_t seq = 0;
    Callback fn;
  };
  std::vector<MergedEvent> merge_scratch_;

  // Budget accounting (barrier granularity).
  RunBudget budget_;
  bool budget_armed_ = false;
  Time armed_at_;
  uint64_t armed_fired_ = 0;
  int64_t armed_wall_ns_ = 0;

  uint64_t windows_ = 0;
  uint64_t remote_events_ = 0;
};

}  // namespace xpass::sim
