// Discrete-event queue with cancellable timers, built on a generation-tagged
// slot pool, a hierarchical timing wheel for the near future, and a 4-ary
// heap for far-future overflow.
//
// Events with equal timestamps fire in scheduling order (FIFO tie-break via a
// monotonic sequence number) so runs are fully deterministic.
//
// Hybrid wheel/heap split: the hot path (credit pacing gaps, serializer
// kicks, shaper retries, per-hop deliveries) schedules at most microseconds
// ahead — those land in the timing wheel at O(1) per event. Watchdogs, RTOs
// and scenario fault plans beyond the wheel's ~137 ms span go to the heap
// (and stay there; an event never migrates between structures). The next
// event to fire is the (t, seq)-minimum across both, so the firing order is
// identical to a pure heap — EventQueue::Backend::kHeapOnly disables the
// wheel so tests can prove it trace-for-trace.
//
// Design (and why it replaced the priority_queue + tombstone-set original):
//
//  * Every scheduled event owns a slot in a recycled pool; `TimerId` is the
//    pair {slot index, slot generation}. `cancel()` checks the generation and
//    disarms the slot — O(1), no lookup structure. A cancel on an id whose
//    event already fired (or was already cancelled, or whose slot was since
//    reused) sees a stale generation or a disarmed slot and is a no-op. The
//    original kept cancelled ids in an unordered_set that was only cleaned
//    when the id surfaced at the heap top, so cancelling an already-fired
//    timer — which every completed connection does in stop() — left its id
//    in the set forever. Here there is nothing to leak: the slot is
//    reclaimed exactly when its heap entry pops, structurally.
//
//  * The heap stores 16-byte {time, seq<<20|slot} entries in a 4-ary
//    layout: shallower than binary (fewer cache misses per sift), and a
//    sibling group spans at most two cache lines. The packed second word
//    compares identically to the sequence number (seqs are unique, so the
//    slot bits never decide), keeping the FIFO tie-break while halving
//    what a sift moves. Callbacks never move through the heap.
//
//  * Routing is deferred: schedule() appends to an unsorted staging buffer,
//    and the wheel-vs-heap decision happens only when the queue is next
//    stepped. An event cancelled while still staged — the RTO-reschedule
//    and teardown pattern, where most timers never fire — is dropped at
//    flush without ever paying a wheel insert or a heap sift. The deferral
//    is trace-invisible: now() and the wheel cursor move only on fires, and
//    staged entries always flush before the next fire.
//
//  * Pop and push fuse: firing leaves a hole at the root, and the flush
//    drops the fired callback's successor event (the dominant "hold"
//    pattern) straight into it. A near-future successor sifts down a level
//    or two instead of paying the eager full-depth sift_down + sift_up
//    pair. Fire order is unaffected — the minimum is unique, whatever the
//    internal layout.
//
//  * Callbacks are sim::Callback (small-buffer optimized, move-only): the
//    common captures — a `this` pointer, or a Port* plus a Packet — live
//    inline in the slot, so schedule/fire does not touch the allocator.
//
//  * `pending()`/`empty()` are exact: cancel decrements the live count
//    immediately instead of "correcting it lazily" when the tombstone
//    surfaced, so drivers can poll emptiness without phantom events.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"
#include "sim/timing_wheel.hpp"

namespace xpass::sim {

// Opaque handle for cancelling a scheduled event. Value-semantic and cheap;
// safe to cancel any number of times, including after the event fired or the
// slot was reused (the generation tag makes stale handles inert).
struct TimerId {
  static constexpr uint32_t kInvalidSlot = 0xffffffffu;
  uint32_t slot = kInvalidSlot;
  uint32_t gen = 0;
  bool valid() const { return slot != kInvalidSlot; }
};

class EventQueue {
 public:
  // Which structure carries near-future events. kHybrid (the default)
  // routes everything within the timing wheel's ~137 ms span through the
  // wheel and keeps the 4-ary heap as sparse far-future overflow; kHeapOnly
  // routes everything through the heap. Both fire the exact same (t, seq)
  // order — kHeapOnly exists so tests can prove that, trace for trace.
  enum class Backend { kHybrid, kHeapOnly };

  explicit EventQueue(Backend backend = Backend::kHybrid)
      : backend_(backend) {}

  Backend backend() const { return backend_; }

  // Schedules `cb` at absolute time `t` (must be >= now()). A past-time `t`
  // is clamped to now() — enforced, not just documented, because a silently
  // accepted past-time event would fire out of order and break the FIFO
  // determinism contract. Under XPASS_SANITIZE a past-time schedule aborts.
  TimerId schedule(Time t, Callback cb);
  // Cancels a pending event in O(1); no-op if already fired or cancelled.
  void cancel(TimerId id);

  Time now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  // Exact count of scheduled-and-not-yet-fired-or-cancelled events.
  size_t pending() const { return live_count_; }

  // Timestamp of the earliest pending event, or Time::max() if none.
  // Performs the same pre-fire bookkeeping as step() (staging flush,
  // cancelled-entry skim) — trace-invisible, since routing at flush time is
  // fire-order-identical and the wheel cursor only moves on fires. The
  // parallel window barrier uses this to size conservative time windows.
  Time next_time();

  // Fires the next event. Returns false if none remain.
  bool step();
  // Fires the next event only if it is scheduled at or before `t_end`.
  // Returns true iff an event fired; unlike run_until it never advances
  // now() past the last fired event, so budgeted callers can interleave
  // per-event limit checks with the exact same fire order.
  bool step_until(Time t_end);
  // Runs events until the queue is exhausted or the next event is after
  // `t_end`; leaves now() == t_end if exhausted earlier events only.
  void run_until(Time t_end);
  // Runs everything.
  void run();

  // Introspection for tests and benchmarks.
  uint64_t fired() const { return fired_; }
  uint64_t cancelled() const { return cancelled_; }
  // Routing split: events accepted by the wheel vs sent to the heap.
  uint64_t wheel_scheduled() const { return wheel_scheduled_; }
  uint64_t heap_scheduled() const { return heap_scheduled_; }
  size_t wheel_entries() const { return wheel_.pending(); }
  // Total slots ever allocated: bounded by the max number of simultaneously
  // scheduled events, regardless of how many were cancelled over time.
  size_t pool_slots() const { return slots_.size(); }
  size_t heap_entries() const {
    return heap_.size() + staging_.size() - (hole_ ? 1 : 0);
  }

 private:
  struct Slot {
    Callback cb;
    uint32_t gen = 0;  // bumped on release; stale TimerIds stop matching
    uint32_t next_free = TimerId::kInvalidSlot;
    bool armed = false;  // false = empty, cancelled, or already fired
  };
  // Slot indices live in the low bits of the packed key; the pool is hard
  // capped at 2^20 concurrently pending events (enforced on pool growth).
  // The remaining 44 bits of sequence number cover ~1.7e13 scheduled events
  // per queue lifetime.
  static constexpr uint32_t kSlotBits = 20;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  struct Entry {
    Time t;
    uint64_t key;  // (seq << kSlotBits) | slot
    uint32_t slot() const { return static_cast<uint32_t>(key) & kSlotMask; }
  };
  static_assert(sizeof(Entry) == 16);

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;  // == seq order: seqs are unique
  }

  uint32_t acquire_slot();
  void release_slot(uint32_t idx);
  void heap_push(Entry e);
  Entry heap_pop();
  void sift_up(size_t i);
  void sift_down(size_t i);
  // Moves staged events into the heap, dropping already-cancelled ones.
  void flush_staging();
  // Reclaims cancelled entries sitting at the heap top.
  void skim_cancelled();
  // Closes a root hole left by fire_top when no staged event claimed it.
  void fill_hole();
  // Pops the (flushed, armed) top entry and invokes its callback.
  void fire_top();
  // Earliest live wheel entry (cancelled ones reclaimed on the way), or
  // nullptr if the wheel has nothing pending.
  const TimingWheel::Entry* next_wheel();
  // Pops and fires the wheel entry next_wheel() returned.
  void fire_wheel();

  Backend backend_ = Backend::kHybrid;
  TimingWheel wheel_;           // near-future events (kHybrid)
  std::vector<Entry> staging_;  // scheduled, not yet heapified
  std::vector<Entry> heap_;     // 4-ary min-heap on (t, seq)
  std::vector<Slot> slots_;
  uint32_t free_head_ = TimerId::kInvalidSlot;
  // True while heap_[0] is a fired event's stale entry, waiting to be
  // overwritten by the next staged event (pop-push fusion; see fire_top).
  bool hole_ = false;
  Time now_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  uint64_t fired_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t wheel_scheduled_ = 0;
  uint64_t heap_scheduled_ = 0;
};

}  // namespace xpass::sim
