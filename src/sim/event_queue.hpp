// Discrete-event queue with cancellable timers.
//
// Events with equal timestamps fire in scheduling order (FIFO tie-break via a
// monotonic sequence number) so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace xpass::sim {

using Callback = std::function<void()>;

// Opaque handle for cancelling a scheduled event.
struct TimerId {
  uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class EventQueue {
 public:
  // Schedules `cb` at absolute time `t` (must be >= now()).
  TimerId schedule(Time t, Callback cb);
  // Cancels a pending event; no-op if already fired or cancelled.
  void cancel(TimerId id);

  Time now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }

  // Fires the next event. Returns false if none remain.
  bool step();
  // Runs events until the queue is exhausted or the next event is after
  // `t_end`; leaves now() == t_end if exhausted earlier events only.
  void run_until(Time t_end);
  // Runs everything.
  void run();

 private:
  struct Entry {
    Time t;
    uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<uint64_t> cancelled_;
  Time now_;
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
};

}  // namespace xpass::sim
