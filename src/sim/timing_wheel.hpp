// Hierarchical timing wheel: the near-future half of the event queue.
//
// The credit-pacing hot path schedules almost exclusively a few hundred
// nanoseconds to a few microseconds ahead (credit gaps, serializer kicks,
// shaper token waits, per-hop deliveries). A comparison heap pays O(log n)
// sifts for that traffic; a timing wheel pays O(1) bucket pushes and
// amortized-O(1) cursor advances. This wheel covers the near future only —
// the owning EventQueue keeps its 4-ary heap as the sparse far-future
// overflow (RTOs, watchdogs, scenario fault plans) and merges the two
// streams by (time, sequence), so global FIFO determinism is preserved
// bit-for-bit regardless of which side an event lands on.
//
// Layout: 3 levels x 256 slots. Level 0 buckets are 2^13 ps (8.192 ns) wide
// — finer than a minimum-frame serialization time at 100G, so hot events
// rarely share a bucket. Spans: L0 ~2.1 us, L1 ~537 us, L2 ~137 ms; beyond
// that try_schedule() refuses and the caller heaps the event. Entries are
// placed by the absolute bits of their tick (tick = picos >> 13): slot
// index at level L is (tick >> 8L) & 255. An entry bound for the *next*
// window of its level lands behind the cursor, which is safe: the cursor
// only scans forward of itself, and crossing a window boundary cascades the
// next upper-level slot before rescanning.
//
// Draining: the cursor jumps (via per-level occupancy bitmaps) to the next
// non-empty L0 slot, unlinks its chain, and sorts the entries by (t, key)
// into a `ready_` run consumed through a cursor. A schedule() that lands at
// or before the drained boundary — possible when a heap-side event fires
// earlier and schedules into an already-drained bucket — is merge-inserted
// into the unconsumed tail of the run, which keeps the pop order exact
// without ever rewinding the wheel.
//
// Nodes live in a recycled pool with an intrusive freelist; steady-state
// operation allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace xpass::sim {

class TimingWheel {
 public:
  TimingWheel();

  struct Entry {
    Time t;
    uint64_t key;  // EventQueue's packed (seq << kSlotBits) | slot
  };

  static constexpr uint32_t kTickBits = 13;  // 8.192 ns buckets
  static constexpr uint32_t kLevelBits = 8;  // 256 slots per level
  static constexpr uint32_t kLevels = 3;
  static constexpr uint32_t kSlots = 1u << kLevelBits;
  // Ticks covered before overflow: 2^24 ticks = ~137 ms.
  static constexpr uint64_t kSpanTicks = 1ull << (kLevels * kLevelBits);

  // Accepts `t` if it lies within the wheel's span of the drain cursor;
  // returns false for far-future events (the caller's heap handles those).
  // `t` may be at or before the drained boundary (see file comment); it
  // must not be before the owning queue's now().
  bool try_schedule(Time t, uint64_t key);

  // Earliest pending entry, or nullptr if the wheel is empty. Advances the
  // cursor and drains buckets as needed (mutating, amortized O(1)).
  const Entry* peek();
  // Removes the entry peek() just returned. Only valid after a non-null
  // peek() with no intervening try_schedule.
  Entry pop();

  // Fast-forwards an *empty* wheel's cursor to `now`, re-anchoring the span
  // window after a stretch of purely heap-side activity.
  void sync(Time now);

  size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  // Introspection for tests and benchmarks.
  uint64_t accepted() const { return accepted_; }
  size_t node_pool_size() const { return nodes_.size(); }

 private:
  struct Node {
    Time t;
    uint64_t key;
    uint32_t next;
  };
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint32_t kSlotMask = kSlots - 1;
  static constexpr size_t kWords = kSlots / 64;

  static bool entry_earlier(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;
  }
  static uint64_t tick_of(Time t) {
    return static_cast<uint64_t>(t.picos()) >> kTickBits;
  }

  uint32_t acquire_node(Time t, uint64_t key);
  void link(uint32_t level, uint32_t slot, uint32_t node);
  // Re-buckets every node of an upper-level slot after a window crossing.
  void cascade(uint32_t level, uint32_t slot);
  // Places a node by its tick relative to cur_tick_ (never "late": cascade
  // and insert call this only with tick >= cur_tick_).
  void place(uint32_t node);
  // Moves the cursor to the next occupied L0 bucket and drains it into
  // ready_. Returns false if no bucketed entries remain.
  bool advance_and_drain();
  // First occupied slot index >= from at `level`, or -1.
  int find_occupied(uint32_t level, uint32_t from) const;

  std::vector<Node> nodes_;
  uint32_t free_head_ = kNil;
  uint32_t heads_[kLevels][kSlots];
  uint64_t bitmap_[kLevels][kWords];

  // All ticks < cur_tick_ are drained; bucketed entries sit at >= cur_tick_.
  uint64_t cur_tick_ = 0;
  // Window bases (in ticks) whose upper-level cascades have been applied.
  uint64_t l0_window_ = 0;
  uint64_t l1_window_ = 0;

  // Sorted run of drained (and late-inserted) entries; consumed via cursor.
  std::vector<Entry> ready_;
  size_t ready_pos_ = 0;

  size_t pending_ = 0;    // ready tail + bucketed
  size_t bucketed_ = 0;   // entries currently linked in slots
  uint64_t accepted_ = 0;
};

}  // namespace xpass::sim
