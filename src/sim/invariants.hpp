// InvariantChecker: cross-cutting runtime assertions over a live simulation.
//
// Scenario harnesses register named checks (credit conservation, queue
// bounds, ...); the checker sweeps them on a fixed period, and instrumented
// code paths can report() a violation directly. Event-time monotonicity is
// verified built-in on every sweep and report.
//
// Always compiled in. Under XPASS_SANITIZE (the asan preset) a violation is
// fatal — the message goes to stderr and the process aborts, so CI catches
// the first broken invariant at its source. In release builds violations are
// counted and the first few messages retained for inspection, costing one
// periodic sweep and nothing on the fast path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace xpass::sim {

class InvariantChecker {
 public:
  enum class Mode { kCounting, kFatal };

  static Mode default_mode() {
#ifdef XPASS_SANITIZE
    return Mode::kFatal;
#else
    return Mode::kCounting;
#endif
  }

  explicit InvariantChecker(Simulator& sim, Mode mode = default_mode())
      : sim_(sim), mode_(mode) {}
  ~InvariantChecker() { stop(); }
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // A check returns an empty string when the invariant holds, else a
  // description of the violation.
  using Check = std::function<std::string()>;
  void add_check(std::string name, Check fn);

  // Begins periodic sweeps every `period` (first sweep one period from now).
  void start(Time period);
  void stop();
  // One sweep, immediately. Safe to call whether or not started.
  void run_checks();

  // Immediate violation entry point for instrumented code paths.
  void report(std::string_view name, std::string_view details);

  uint64_t violations() const { return violations_; }
  uint64_t sweeps() const { return sweeps_; }
  size_t num_checks() const { return checks_.size(); }
  // First kMaxMessages violation messages, for diagnostics.
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  void violation(std::string msg);
  void check_monotonic();
  void schedule_sweep();

  static constexpr size_t kMaxMessages = 32;

  Simulator& sim_;
  Mode mode_;
  std::vector<std::pair<std::string, Check>> checks_;
  TimerId timer_;
  Time period_;
  bool running_ = false;
  Time last_seen_now_;  // event-time monotonicity guard
  uint64_t violations_ = 0;
  uint64_t sweeps_ = 0;
  std::vector<std::string> messages_;
};

}  // namespace xpass::sim
