// FaultPlan: a deterministic, seeded schedule of timed fault events.
//
// A plan is built offline from absolute times and opaque actions, then armed
// on a Simulator, which schedules every event through the ordinary event
// queue — faults are just events, so a run remains bit-reproducible for a
// given (traffic seed, plan seed) pair. The plan carries its own PRNG so
// randomized fault schedules (Poisson flap times, sampled outage lengths)
// never perturb the traffic seed's stream.
//
// Windowed faults (link down .. up) maintain an active-window refcount that
// the InvariantChecker uses to gate "healthy network only" assertions such
// as the §3.1 queue-occupancy bound.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace xpass::sim {

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0xfa17ull) : rng_(seed) {}
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // One-shot action at absolute time `when`; does not open a fault window.
  void at(Time when, std::string label, std::function<void()> action);

  // Windowed fault: `enter` runs at `from` (opening the window), `exit` at
  // `to` (closing it). `to == Time::max()` makes the fault permanent: `exit`
  // is discarded and the window never closes.
  void window(Time from, Time to, std::string label,
              std::function<void()> enter, std::function<void()> exit);

  // Schedules every event on `sim`. Call once, after all at()/window()
  // additions (adding to an armed plan is a programming error).
  void arm(Simulator& sim);
  // Cancels every not-yet-fired event; already-open windows stay counted.
  void disarm(Simulator& sim);

  size_t size() const { return events_.size(); }
  bool armed() const { return armed_; }
  uint64_t fired() const { return fired_; }
  // Number of currently open fault windows.
  int active_windows() const { return active_windows_; }
  bool any_fault_active() const { return active_windows_ > 0; }
  // True once any fault event has fired; invariant baselines reset on this.
  bool any_fault_fired() const { return fired_ > 0; }

  Rng& rng() { return rng_; }
  // Sorted Poisson arrival times in [from, to) with the given mean gap,
  // drawn from the plan's PRNG. Deterministic for a given seed and call
  // sequence.
  std::vector<Time> poisson_times(Time from, Time to, Time mean_gap);

 private:
  struct Event {
    Time when;
    std::string label;
    std::function<void()> action;
    int window_delta = 0;  // +1 opens a window, -1 closes it, 0 instant
  };

  Rng rng_;
  std::vector<Event> events_;
  std::vector<TimerId> timers_;
  bool armed_ = false;
  int active_windows_ = 0;
  uint64_t fired_ = 0;
};

}  // namespace xpass::sim
