// Bounded single-producer single-consumer ring for cross-shard handoff.
//
// Each ordered shard pair (src, dst) in a ParallelSimulator owns one
// channel: the src shard's worker thread pushes remote deliveries during a
// window, and the barrier thread drains them while every worker is parked.
// The ring is the lock-free fast path — a power-of-two slot array with
// acquire/release head/tail counters, so a push never takes a lock and a
// drain never blocks a producer. When a burst outruns the ring, pushes spill
// into an unbounded overflow vector instead of blocking: the overflow is
// touched only by the producer mid-window and only by the consumer at the
// barrier, and the barrier's own synchronization orders those accesses, so
// the spill path needs no lock either. Capacity is therefore a performance
// knob, never a correctness limit.
//
// Determinism: entries carry a producer-side sequence number assigned in
// push order. Shard execution within a window is single-threaded and
// deterministic, so the (seq) order of a channel — and with it the barrier's
// canonical (time, src shard, seq) merge — is a pure function of the
// scenario, independent of thread scheduling.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace xpass::sim {

template <typename T>
class SpscQueue {
 public:
  // `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t capacity = 1024) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Never blocks: a full ring spills into the overflow
  // vector (see file comment for why that is safe without a lock).
  void push(T&& v) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail - head <= mask_) {
      ring_[tail & mask_] = std::move(v);
      tail_.store(tail + 1, std::memory_order_release);
    } else {
      overflow_.push_back(std::move(v));
    }
  }

  // Consumer side: pops one ring entry. Does not see overflow entries —
  // those are only visible through drain(), at a barrier.
  bool try_pop(T& out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Barrier-only consumer call (producer parked): moves every entry — ring
  // first, then the overflow spill, i.e. exactly push order — into `out`.
  void drain(std::vector<T>& out) {
    T v;
    while (try_pop(v)) out.push_back(std::move(v));
    for (T& o : overflow_) out.push_back(std::move(o));
    overflow_.clear();
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire) &&
           overflow_.empty();
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> ring_;
  size_t mask_ = 0;
  // Producer-only between barriers; consumer-only at barriers.
  std::vector<T> overflow_;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace xpass::sim
