// Deterministic PRNG wrapper used everywhere in the simulator.
//
// One seeded generator per Simulator keeps runs reproducible. The engine is
// xoshiro256++ (seeded through splitmix64) with every distribution spelled
// out explicitly, for two reasons:
//
//  * The hot path draws twice per credit (randomized credit size, pacing
//    jitter); mt19937_64's 2.5 KB state and bulk-refill step showed up at
//    ~7% of scenario runtime, while xoshiro256++ is four 64-bit words and a
//    handful of cycles per draw.
//  * std::uniform_int_distribution and friends are implementation-defined:
//    the same seed produces different streams on different standard
//    libraries. Hand-rolled conversions make a seed's trajectory identical
//    on every toolchain, which the cross-thread determinism tests (and any
//    cross-machine baseline comparison) rely on.
#pragma once

#include <cmath>
#include <cstdint>

namespace xpass::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) { this->seed(seed); }

  void seed(uint64_t s) {
    // splitmix64 stream: decorrelates nearby seeds and guarantees a nonzero
    // xoshiro state for every input, including 0.
    for (auto& word : state_) {
      s += 0x9e3779b97f4a7c15ULL;
      uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  // xoshiro256++ (Blackman & Vigna): full-period 2^256-1, passes BigCrush.
  uint64_t bits() {
    const uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // [0, 1), 53-bit resolution.
  double uniform() { return static_cast<double>(bits() >> 11) * 0x1.0p-53; }
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Inclusive integer range, exactly uniform (Lemire multiply-shift with
  // rejection).
  int64_t uniform_int(int64_t lo, int64_t hi) {
    const uint64_t span =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    if (span == 0) return static_cast<int64_t>(bits());  // full 2^64 range
    unsigned __int128 m = static_cast<unsigned __int128>(bits()) * span;
    uint64_t frac = static_cast<uint64_t>(m);
    if (frac < span) {
      const uint64_t reject_below = (0 - span) % span;
      while (frac < reject_below) {
        m = static_cast<unsigned __int128>(bits()) * span;
        frac = static_cast<uint64_t>(m);
      }
    }
    return static_cast<int64_t>(static_cast<uint64_t>(lo) +
                                static_cast<uint64_t>(m >> 64));
  }

  double exponential(double mean) { return -mean * std::log(1.0 - uniform()); }

  // Box-Muller; uses two uniforms per draw (no cached spare, so the stream
  // position is a pure function of call count).
  double normal(double mean, double stddev) {
    const double u1 = 1.0 - uniform();  // (0, 1]: keeps the log finite
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace xpass::sim
