// Deterministic PRNG wrapper used everywhere in the simulator.
//
// A single seeded mt19937_64 per Simulator keeps runs reproducible; helpers
// cover the distributions the experiments need.
#pragma once

#include <cstdint>
#include <random>

namespace xpass::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) : eng_(seed) {}

  void seed(uint64_t s) { eng_.seed(s); }

  double uniform() { return uni_(eng_); }  // [0, 1)
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  // Inclusive integer range.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(eng_);
  }
  double exponential(double mean) {
    return -mean * std::log(1.0 - uniform());
  }
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(eng_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(eng_);
  }
  uint64_t bits() { return eng_(); }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
};

}  // namespace xpass::sim
