#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace xpass::sim {

std::string Time::str() const {
  char buf[64];
  const double abs_ps = std::abs(static_cast<double>(ps_));
  if (abs_ps >= 1e12) {
    std::snprintf(buf, sizeof buf, "%.6gs", to_sec());
  } else if (abs_ps >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.6gms", to_ms());
  } else if (abs_ps >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.6gus", to_us());
  } else if (abs_ps >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.6gns", to_ns());
  } else {
    std::snprintf(buf, sizeof buf, "%lldps", static_cast<long long>(ps_));
  }
  return buf;
}

}  // namespace xpass::sim
