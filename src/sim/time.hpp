// Simulation time: signed 64-bit picoseconds.
//
// Picosecond resolution is needed because at 100 Gbps an 84-byte credit
// frame serializes in 6.72 ns; nanosecond rounding would accumulate into
// visible pacing drift over a multi-second run. int64 picoseconds cover
// +/- ~106 days, far beyond any simulated interval.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace xpass::sim {

class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(int64_t v) { return Time(v); }
  static constexpr Time ns(int64_t v) { return Time(v * 1'000); }
  static constexpr Time us(int64_t v) { return Time(v * 1'000'000); }
  static constexpr Time ms(int64_t v) { return Time(v * 1'000'000'000); }
  static constexpr Time sec(int64_t v) { return Time(v * 1'000'000'000'000); }
  // Fractional constructor; rounds to nearest picosecond.
  static constexpr Time seconds(double v) {
    return Time(static_cast<int64_t>(v * 1e12 + (v >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t picos() const { return ps_; }
  constexpr double to_sec() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double to_ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double to_us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double to_ns() const { return static_cast<double>(ps_) * 1e-3; }

  constexpr Time operator+(Time o) const { return Time(ps_ + o.ps_); }
  constexpr Time operator-(Time o) const { return Time(ps_ - o.ps_); }
  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  constexpr Time& operator-=(Time o) { ps_ -= o.ps_; return *this; }
  constexpr Time operator*(double k) const {
    return Time(static_cast<int64_t>(static_cast<double>(ps_) * k + 0.5));
  }
  constexpr Time operator/(int64_t k) const { return Time(ps_ / k); }
  constexpr double operator/(Time o) const {
    return static_cast<double>(ps_) / static_cast<double>(o.ps_);
  }
  constexpr auto operator<=>(const Time&) const = default;

  std::string str() const;  // human readable, e.g. "12.5us"

 private:
  explicit constexpr Time(int64_t ps) : ps_(ps) {}
  int64_t ps_ = 0;
};

// Serialization time of `bytes` on a link of `bits_per_sec`.
constexpr Time tx_time(uint64_t bytes, double bits_per_sec) {
  return Time::seconds(static_cast<double>(bytes) * 8.0 / bits_per_sec);
}

}  // namespace xpass::sim
