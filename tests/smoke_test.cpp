// End-to-end smoke test: two ExpressPass flows share a dumbbell bottleneck,
// complete, and never drop a data packet.
#include <gtest/gtest.h>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"

namespace {

using namespace xpass;

TEST(Smoke, TwoExpressPassFlowsComplete) {
  sim::Simulator sim(42);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, sim::Time::us(1));
  auto d = net::build_dumbbell(topo, 2, link, link);

  auto transport = runner::make_transport(runner::Protocol::kExpressPass, sim,
                                          topo, sim::Time::us(20));
  runner::FlowDriver driver(sim, *transport);
  for (uint32_t i = 0; i < 2; ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = 1'000'000;
    s.start_time = sim::Time::us(10 * i);
    driver.add(s);
  }
  ASSERT_TRUE(driver.run_to_completion(sim::Time::ms(100)));
  EXPECT_EQ(driver.completed(), 2u);
  EXPECT_EQ(topo.data_drops(), 0u);
  EXPECT_GT(topo.credit_drops(), 0u);  // feedback had something to react to
}

}  // namespace
