// SIRD and BFC behavioral tests: each comparator exhibits its defining
// mechanism (sender-informed grant allocation; fabric backpressure with a
// fixed endpoint window) on a live simulated path, and SIRD's grant
// accounting feeds the Fig-20-style waste scalar.
#include <gtest/gtest.h>

#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "transport/bfc.hpp"
#include "transport/sird.hpp"

namespace {

using namespace xpass;
using sim::Time;

struct Env {
  sim::Simulator sim{21};
  net::Topology topo{sim};
  net::Dumbbell d;
  std::unique_ptr<transport::Transport> t;

  Env(runner::Protocol p, size_t pairs = 2) {
    const auto link = runner::protocol_link_config(p, 10e9, Time::us(1));
    d = net::build_dumbbell(topo, pairs, link, link);
    t = runner::make_transport(p, sim, topo, Time::us(100));
  }

  runner::FlowDriver make_driver() { return runner::FlowDriver(sim, *t); }

  transport::FlowSpec spec(uint32_t id, uint64_t bytes, size_t src,
                           size_t dst, Time start = Time::zero()) {
    transport::FlowSpec s;
    s.id = id;
    s.src = d.senders[src];
    s.dst = d.receivers[dst];
    s.size_bytes = bytes;
    s.start_time = start;
    return s;
  }
};

uint64_t grants_for(uint64_t bytes) {
  return (bytes + net::kMssBytes - 1) / net::kMssBytes;
}

// --- SIRD ----------------------------------------------------------------

// Demand-informed granting is exact: a healthy run issues precisely one
// grant per MSS of advertised demand, every grant is answered with data,
// and nothing is wasted — the structural contrast with ExpressPass's blind
// crediting (Fig 8b / Fig 20).
TEST(Sird, GrantsMatchDemandExactlyWithZeroWaste) {
  Env env(runner::Protocol::kSird);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 10'000'000, 0, 0));
  driver.add(env.spec(2, 10'000'000, 1, 1));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  EXPECT_EQ(env.topo.data_drops(), 0u);

  auto* acct = dynamic_cast<transport::GrantAccounting*>(env.t.get());
  ASSERT_NE(acct, nullptr);
  const auto w = acct->grant_waste();
  // Every byte was moved by exactly one consumed grant — no duplicate
  // solicitation, no waste. Issued can exceed consumed slightly: the two
  // receivers' grant streams share the reverse bottleneck's credit shaper,
  // which drops the marginal overshoot (the probe timer re-solicits the
  // lost budget; that recovery is what keeps `consumed` exact).
  EXPECT_EQ(w.consumed, 2 * grants_for(10'000'000));
  EXPECT_EQ(w.wasted, 0u);
  EXPECT_GE(w.issued, w.consumed);
  EXPECT_LT(w.issued - w.consumed, w.consumed / 20);  // <5% shaper loss
}

// Incast: many senders into one receiver host. One allocator owns that
// NIC's grant budget, so aggregate grants never oversubscribe the last hop
// — no drops, no per-flow convergence transient.
TEST(Sird, IncastSharesOneAllocatorLossless) {
  Env env(runner::Protocol::kSird, 4);
  auto driver = env.make_driver();
  for (uint32_t i = 1; i <= 4; ++i) {
    driver.add(env.spec(i, 2'000'000, i - 1, 0));
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  EXPECT_EQ(env.topo.data_drops(), 0u);

  const auto w =
      dynamic_cast<transport::GrantAccounting*>(env.t.get())->grant_waste();
  EXPECT_EQ(w.issued, 4 * grants_for(2'000'000));
  EXPECT_EQ(w.wasted, 0u);
  // Round-robin grant allocation: the four identical flows finish together
  // (no flow starved behind another).
  Time min_fct = Time::sec(1), max_fct;
  for (const auto& c : driver.connections()) {
    min_fct = std::min(min_fct, c->fct());
    max_fct = std::max(max_fct, c->fct());
  }
  EXPECT_LT(max_fct.to_sec() / min_fct.to_sec(), 1.2);
}

// Two long-running flows into the same receiver split its NIC's grant
// budget evenly and together saturate it.
TEST(Sird, LongRunningFlowsShareReceiverNic) {
  Env env(runner::Protocol::kSird);
  auto driver = env.make_driver();
  driver.add(env.spec(1, transport::kLongRunning, 0, 0));
  driver.add(env.spec(2, transport::kLongRunning, 1, 0));
  env.sim.run_until(Time::ms(20));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(20));
  EXPECT_NEAR(rates[1] / 1e9, rates[2] / 1e9, 1.0);
  // One MSS admitted per credit+MTU cycle: ~9.48G of data at 10G.
  EXPECT_GT((rates[1] + rates[2]) / 1e9, 8.5);
  driver.stop_all();
}

// --- BFC -----------------------------------------------------------------

// Congested incast over a backpressured fabric: the per-flow pause chain
// parks backlogs upstream instead of dropping them, and the dumb endpoint
// never retransmits.
TEST(Bfc, IncastIsLosslessWithoutEndpointCc) {
  Env env(runner::Protocol::kBfc, 4);
  auto driver = env.make_driver();
  for (uint32_t i = 1; i <= 4; ++i) {
    driver.add(env.spec(i, 2'000'000, i - 1, 0));
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  EXPECT_EQ(env.topo.data_drops(), 0u);
  // The mechanism actually engaged: flow-granular pauses at the congested
  // switch, not just luck with timing.
  uint64_t pauses = 0;
  for (size_t i = 0; i < env.d.right->num_ports(); ++i) {
    pauses += env.d.right->port(i).flow_pause_events();
  }
  for (size_t i = 0; i < env.d.left->num_ports(); ++i) {
    pauses += env.d.left->port(i).flow_pause_events();
  }
  EXPECT_GT(pauses, 0u);
  for (const auto& c : driver.connections()) {
    auto* wc = dynamic_cast<transport::WindowConnection*>(c.get());
    ASSERT_NE(wc, nullptr);
    EXPECT_EQ(wc->retransmits(), 0u);
    EXPECT_EQ(wc->timeouts(), 0u);
  }
  // All pause state drained with the queues.
  for (size_t i = 0; i < env.d.right->num_ports(); ++i) {
    EXPECT_EQ(env.d.right->port(i).bp_tracked_flows(), 0u);
  }
}

// The window is a constant: congestion neither collapses it nor lets it
// grow — BFC's endpoint deliberately has no congestion response.
TEST(Bfc, WindowStaysFixedThroughCongestion) {
  Env env(runner::Protocol::kBfc, 2);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 5'000'000, 0, 0));
  driver.add(env.spec(2, 5'000'000, 1, 0));  // same receiver: congestion
  auto* wc = dynamic_cast<transport::WindowConnection*>(
      driver.connections()[0].get());
  ASSERT_NE(wc, nullptr);
  const double w0 = wc->cwnd();
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  EXPECT_EQ(wc->cwnd(), w0);
  auto* bfc = dynamic_cast<transport::BfcTransport*>(env.t.get());
  ASSERT_NE(bfc, nullptr);
  EXPECT_EQ(bfc->config().window.min_cwnd_pkts, w0);
  EXPECT_EQ(bfc->config().window.max_cwnd_pkts, w0);
  // A 2-BDP window at 100us/10G is ~162 MTUs — clearly not slow-start's 2.
  EXPECT_GT(w0, 50.0);
  // BFC reports a (zero) waste scalar so the shootout prints one column
  // per protocol.
  auto* acct = dynamic_cast<transport::GrantAccounting*>(env.t.get());
  ASSERT_NE(acct, nullptr);
  EXPECT_EQ(acct->grant_waste().issued, 0u);
}

}  // namespace
