// Per-protocol behavioral tests: each baseline exhibits its defining
// mechanism on a live simulated path.
#include <gtest/gtest.h>

#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "transport/cubic.hpp"
#include "transport/dctcp.hpp"
#include "transport/dx.hpp"
#include "transport/ideal.hpp"
#include "transport/rcp.hpp"

namespace {

using namespace xpass;
using sim::Time;

struct Env {
  sim::Simulator sim{21};
  net::Topology topo{sim};
  net::Dumbbell d;
  std::unique_ptr<transport::Transport> t;

  Env(runner::Protocol p, size_t pairs = 2) {
    const auto link = runner::protocol_link_config(p, 10e9, Time::us(1));
    d = net::build_dumbbell(topo, pairs, link, link);
    t = runner::make_transport(p, sim, topo, Time::us(100));
  }

  runner::FlowDriver make_driver() { return runner::FlowDriver(sim, *t); }

  transport::FlowSpec spec(uint32_t id, uint64_t bytes,
                           Time start = Time::zero()) {
    transport::FlowSpec s;
    s.id = id;
    s.src = d.senders[(id - 1) % d.senders.size()];
    s.dst = d.receivers[(id - 1) % d.receivers.size()];
    s.size_bytes = bytes;
    s.start_time = start;
    return s;
  }
};

// --- DCTCP ---------------------------------------------------------------

TEST(Dctcp, KeepsQueueNearMarkingThreshold) {
  // Two flows: a single flow at edge rate == bottleneck rate never queues.
  Env env(runner::Protocol::kDctcp);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 25'000'000));
  driver.add(env.spec(2, 25'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  const uint64_t k = runner::dctcp_k_bytes(10e9);
  const uint64_t max_q = env.d.bottleneck->data_queue().stats().max_bytes;
  // Queue is controlled: above zero (it fills to K; slow-start overshoot
  // can spike past it once) but never near capacity.
  EXPECT_GT(max_q, k / 4);
  EXPECT_LT(max_q, runner::default_queue_capacity(10e9) * 7 / 10);
  EXPECT_EQ(env.topo.data_drops(), 0u);
}

TEST(Dctcp, EcnActuallyMarks) {
  Env env(runner::Protocol::kDctcp);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 20'000'000));
  driver.add(env.spec(2, 20'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  EXPECT_GT(env.d.bottleneck->data_queue().stats().ecn_marked, 0u);
}

// --- Cubic ---------------------------------------------------------------

TEST(Cubic, FillsLinkAndExperiencesLoss) {
  Env env(runner::Protocol::kCubic);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 50'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  // Loss-based protocol on drop-tail: it must fill the buffer and drop.
  EXPECT_GT(env.topo.data_drops(), 0u);
  const double gbps = 50e6 * 8.0 / driver.connections()[0]->fct().to_sec();
  EXPECT_GT(gbps / 1e9, 7.0);
}

// --- DX ------------------------------------------------------------------

TEST(Dx, KeepsQueueFarBelowDctcp) {
  Env dx_env(runner::Protocol::kDx);
  auto dx_driver = dx_env.make_driver();
  dx_driver.add(dx_env.spec(1, 30'000'000));
  dx_driver.add(dx_env.spec(2, 30'000'000));
  ASSERT_TRUE(dx_driver.run_to_completion(Time::sec(2)));
  const uint64_t dx_q = dx_env.d.bottleneck->data_queue().stats().max_bytes;

  Env dc_env(runner::Protocol::kDctcp);
  auto dc_driver = dc_env.make_driver();
  dc_driver.add(dc_env.spec(1, 30'000'000));
  dc_driver.add(dc_env.spec(2, 30'000'000));
  ASSERT_TRUE(dc_driver.run_to_completion(Time::sec(2)));
  const uint64_t dc_q = dc_env.d.bottleneck->data_queue().stats().max_bytes;

  EXPECT_LT(dx_q, dc_q);
  EXPECT_EQ(dx_env.topo.data_drops(), 0u);
}

// --- HULL ----------------------------------------------------------------

TEST(Hull, PhantomQueueKeepsRealQueueTiny) {
  Env env(runner::Protocol::kHull);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 20'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  // HULL sacrifices bandwidth for near-zero queues: max queue well under
  // the DCTCP marking threshold.
  EXPECT_LT(env.d.bottleneck->data_queue().stats().max_bytes,
            runner::dctcp_k_bytes(10e9));
  EXPECT_EQ(env.topo.data_drops(), 0u);
}

TEST(Hull, TradesBandwidthForLatency) {
  Env env(runner::Protocol::kHull);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 20'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  const double gbps =
      20e6 * 8.0 / driver.connections()[0]->fct().to_sec() / 1e9;
  EXPECT_LT(gbps, 9.8);  // below line rate (phantom headroom)
  EXPECT_GT(gbps, 6.0);  // but still most of it
}

// --- RCP -----------------------------------------------------------------

TEST(Rcp, AdoptsExplicitRateFromSwitches) {
  Env env(runner::Protocol::kRcp);
  auto driver = env.make_driver();
  driver.add(env.spec(1, 10'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  auto* rcp = dynamic_cast<transport::RcpConnection*>(
      driver.connections()[0].get());
  ASSERT_NE(rcp, nullptr);
  EXPECT_GT(rcp->rate_bps(), 1e9);
  EXPECT_LE(rcp->rate_bps(), 10e9 * 1.01);
}

TEST(Rcp, TwoFlowsShareExplicitRate) {
  Env env(runner::Protocol::kRcp);
  auto driver = env.make_driver();
  driver.add(env.spec(1, transport::kLongRunning));
  driver.add(env.spec(2, transport::kLongRunning));
  env.sim.run_until(Time::ms(20));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(20));
  EXPECT_NEAR(rates[1] / 1e9, rates[2] / 1e9, 1.5);
  EXPECT_GT((rates[1] + rates[2]) / 1e9, 7.0);
  driver.stop_all();
}

// --- Ideal oracle --------------------------------------------------------

TEST(Ideal, AssignsMaxMinRatesInstantly) {
  Env env(runner::Protocol::kDctcp);  // link config irrelevant for oracle
  transport::IdealTransport t(env.sim, env.topo, 1.0);
  runner::FlowDriver driver(env.sim, t);
  driver.add(env.spec(1, transport::kLongRunning));
  driver.add(env.spec(2, transport::kLongRunning));
  env.sim.run_until(Time::ms(5));
  auto* c1 =
      dynamic_cast<transport::IdealConnection*>(driver.connections()[0].get());
  auto* c2 =
      dynamic_cast<transport::IdealConnection*>(driver.connections()[1].get());
  EXPECT_NEAR(c1->rate_bps(), 5e9, 1e6);
  EXPECT_NEAR(c2->rate_bps(), 5e9, 1e6);
  driver.stop_all();
}

TEST(Ideal, RatesReallocateOnDeparture) {
  Env env(runner::Protocol::kDctcp);
  transport::IdealTransport t(env.sim, env.topo, 1.0);
  runner::FlowDriver driver(env.sim, t);
  driver.add(env.spec(1, transport::kLongRunning));
  driver.add(env.spec(2, 1'000'000));  // short flow departs
  ASSERT_TRUE(driver.run_to_completion(Time::ms(50)) ||
              driver.completed() == 1);
  env.sim.run_until(env.sim.now() + Time::ms(1));
  auto* c1 =
      dynamic_cast<transport::IdealConnection*>(driver.connections()[0].get());
  EXPECT_NEAR(c1->rate_bps(), 10e9, 1e7);  // got the whole link back
  driver.stop_all();
}

TEST(Ideal, PacedDeliveryCompletesFlows) {
  Env env(runner::Protocol::kDctcp);
  transport::IdealTransport t(env.sim, env.topo, 1.0);
  runner::FlowDriver driver(env.sim, t);
  driver.add(env.spec(1, 3'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::ms(100)));
  // 3MB at ~10G ~ 2.5ms.
  EXPECT_LT(driver.connections()[0]->fct(), Time::ms(5));
}

}  // namespace
