#include "transport/maxmin.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace {

using xpass::transport::MaxMinProblem;
using xpass::transport::maxmin_rates;

TEST(MaxMin, SingleLinkEqualShare) {
  MaxMinProblem p;
  p.link_capacity = {10.0};
  p.flow_links = {{0}, {0}, {0}, {0}};
  auto r = maxmin_rates(p);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.5);
}

TEST(MaxMin, TwoLinksBottleneckElsewhere) {
  // Flow0 crosses both links; flow1 only link0; flow2 only link1.
  MaxMinProblem p;
  p.link_capacity = {10.0, 4.0};
  p.flow_links = {{0, 1}, {0}, {1}};
  auto r = maxmin_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 2.0);  // bottlenecked at link1 (4/2)
  EXPECT_DOUBLE_EQ(r[1], 8.0);  // takes what flow0 leaves on link0
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(MaxMin, ParkingLot) {
  // Long flow over N links, one cross flow per link: long flow gets C/2,
  // each cross flow gets C/2.
  MaxMinProblem p;
  p.link_capacity = {10.0, 10.0, 10.0};
  p.flow_links = {{0, 1, 2}, {0}, {1}, {2}};
  auto r = maxmin_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
  EXPECT_DOUBLE_EQ(r[2], 5.0);
  EXPECT_DOUBLE_EQ(r[3], 5.0);
}

TEST(MaxMin, Fig11Scenario) {
  // Flow0 crosses only L1; flows 1..N cross L1..L3: everyone gets C/(N+1).
  const int n = 7;
  MaxMinProblem p;
  p.link_capacity = {10.0, 10.0, 10.0};
  p.flow_links.push_back({0});
  for (int i = 0; i < n; ++i) p.flow_links.push_back({0, 1, 2});
  auto r = maxmin_rates(p);
  for (double x : r) EXPECT_NEAR(x, 10.0 / (n + 1), 1e-9);
}

TEST(MaxMin, FlowWithNoLinksUnconstrained) {
  MaxMinProblem p;
  p.link_capacity = {10.0};
  p.flow_links = {{}, {0}};
  auto r = maxmin_rates(p);
  EXPECT_TRUE(std::isinf(r[0]));
  EXPECT_DOUBLE_EQ(r[1], 10.0);
}

TEST(MaxMin, ZeroCapacityLink) {
  MaxMinProblem p;
  p.link_capacity = {0.0, 10.0};
  p.flow_links = {{0, 1}, {1}};
  auto r = maxmin_rates(p);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 10.0);
}

// Property test: water-filling invariants on random problems.
class MaxMinProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperty, InvariantsHold) {
  xpass::sim::Rng rng(GetParam());
  const size_t nl = 2 + rng.uniform_int(0, 6);
  const size_t nf = 2 + rng.uniform_int(0, 20);
  MaxMinProblem p;
  for (size_t l = 0; l < nl; ++l) {
    p.link_capacity.push_back(rng.uniform(1.0, 100.0));
  }
  for (size_t f = 0; f < nf; ++f) {
    std::vector<uint32_t> links;
    for (size_t l = 0; l < nl; ++l) {
      if (rng.uniform() < 0.4) links.push_back(static_cast<uint32_t>(l));
    }
    if (links.empty()) links.push_back(0);
    p.flow_links.push_back(links);
  }
  auto r = maxmin_rates(p);

  // (1) No link oversubscribed.
  std::vector<double> load(nl, 0.0);
  for (size_t f = 0; f < nf; ++f) {
    for (uint32_t l : p.flow_links[f]) load[l] += r[f];
  }
  for (size_t l = 0; l < nl; ++l) {
    EXPECT_LE(load[l], p.link_capacity[l] * (1.0 + 1e-9));
  }

  // (2) Every flow has a saturated bottleneck link where it has a maximal
  // rate (max-min optimality certificate).
  for (size_t f = 0; f < nf; ++f) {
    bool has_bottleneck = false;
    for (uint32_t l : p.flow_links[f]) {
      if (load[l] < p.link_capacity[l] * (1.0 - 1e-6)) continue;
      double max_rate_on_l = 0.0;
      for (size_t g = 0; g < nf; ++g) {
        for (uint32_t gl : p.flow_links[g]) {
          if (gl == l) max_rate_on_l = std::max(max_rate_on_l, r[g]);
        }
      }
      if (r[f] >= max_rate_on_l * (1.0 - 1e-6)) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck) << "flow " << f << " rate " << r[f];
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, MaxMinProperty,
                         ::testing::Range(1, 40));

}  // namespace
