// The extracted receiver-driven credit primitives, in isolation: the
// GrantLedger's conservation identity and the CreditScheduler's shaped
// emission pacing. Byte-identity of the ExpressPass port onto these
// primitives is proven separately by test_recorder_golden.
#include "transport/credit_sched.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace xpass::transport {
namespace {

using sim::Time;

TEST(GrantLedger, ConservationHoldsAtEveryStep) {
  GrantLedger ledger;
  // Interleave grants, consumes, and wastes; the identity
  // granted == consumed + wasted + outstanding must hold after every op.
  auto check = [&] {
    EXPECT_EQ(ledger.granted(),
              ledger.consumed() + ledger.wasted() + ledger.outstanding());
  };
  for (int i = 0; i < 100; ++i) {
    ledger.grant();
    check();
    if (i % 3 == 0) ledger.consume();
    if (i % 7 == 0) ledger.waste();
    check();
  }
  // At i=0 the waste clamps to zero: the lone grant was just consumed.
  EXPECT_EQ(ledger.granted(), 100u);
  EXPECT_EQ(ledger.consumed(), 34u);
  EXPECT_EQ(ledger.wasted(), 14u);
  EXPECT_EQ(ledger.outstanding(), 52u);
  EXPECT_DOUBLE_EQ(ledger.waste_ratio(), 14.0 / 100.0);
}

TEST(GrantLedger, ConsumeAndWasteClampToOutstanding) {
  GrantLedger ledger;
  // Nothing granted: consume/waste move zero units, never underflow.
  EXPECT_EQ(ledger.consume(5), 0u);
  EXPECT_EQ(ledger.waste(5), 0u);
  ledger.grant(10);
  EXPECT_EQ(ledger.consume(7), 7u);
  EXPECT_EQ(ledger.waste(7), 3u);  // only 3 left outstanding
  EXPECT_EQ(ledger.outstanding(), 0u);
  EXPECT_EQ(ledger.granted(), ledger.consumed() + ledger.wasted());
}

TEST(GrantLedger, WasteRatioIsFig20Metric) {
  GrantLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.waste_ratio(), 0.0);  // no grants: defined as 0
  ledger.grant(4);
  ledger.consume(3);
  ledger.waste(1);
  EXPECT_DOUBLE_EQ(ledger.waste_ratio(), 0.25);
}

TEST(CreditScheduler, GapIsOneCycleAtTargetRate) {
  // 10G data rate, 1538+84=1622B cycle: one credit per ~1.2976us.
  EXPECT_DOUBLE_EQ(CreditScheduler::gap_sec(10e9, net::kCreditCycleBytes),
                   net::kCreditCycleBytes * 8.0 / 10e9);
  // Halving the rate doubles the gap.
  EXPECT_DOUBLE_EQ(CreditScheduler::gap_sec(5e9, 1622),
                   2.0 * CreditScheduler::gap_sec(10e9, 1622));
}

TEST(CreditScheduler, PacesEmissionsAtSuppliedRate) {
  sim::Simulator sim;
  const double rate = 10e9;
  uint64_t emitted = 0;
  CreditScheduler::Config cfg;
  cfg.jitter = 0.0;  // exact pacing for this test
  CreditScheduler sched(
      sim, cfg, [&] { return rate; },
      [&] {
        ++emitted;
        return true;
      });
  sched.start();
  EXPECT_TRUE(sched.running());
  const Time horizon = Time::ms(1);
  sim.run_until(horizon);
  // Expected one emission per cycle gap over the horizon (first fires one
  // gap after start).
  const double gap = CreditScheduler::gap_sec(rate, cfg.cycle_bytes);
  const auto expected = static_cast<uint64_t>(horizon.to_sec() / gap);
  EXPECT_EQ(emitted, expected);
  EXPECT_EQ(sched.emitted(), emitted);
}

TEST(CreditScheduler, JitterBoundsTheGap) {
  // With jitter j, every inter-emission gap lies in [(1-j), (1+j)] x gap.
  sim::Simulator sim;
  const double rate = 10e9;
  CreditScheduler::Config cfg;
  cfg.jitter = 0.1;
  Time last = Time::zero();
  bool first = true;
  double min_gap = 1e9, max_gap = 0.0;
  CreditScheduler sched(
      sim, cfg, [&] { return rate; },
      [&] {
        if (!first) {
          const double g = (sim.now() - last).to_sec();
          min_gap = std::min(min_gap, g);
          max_gap = std::max(max_gap, g);
        }
        first = false;
        last = sim.now();
        return true;
      });
  sched.start();
  sim.run_until(Time::ms(1));
  const double gap = CreditScheduler::gap_sec(rate, cfg.cycle_bytes);
  EXPECT_GE(min_gap, gap * (1.0 - cfg.jitter));
  EXPECT_LE(max_gap, gap * (1.0 + cfg.jitter));
  // Jitter actually jitters: the spread is a meaningful fraction of the gap.
  EXPECT_GT(max_gap - min_gap, gap * 0.05);
}

TEST(CreditScheduler, StopCancelsPendingEmission) {
  sim::Simulator sim;
  uint64_t emitted = 0;
  CreditScheduler sched(
      sim, {}, [] { return 10e9; },
      [&] {
        ++emitted;
        return true;
      });
  sched.start();
  sim.run_until(Time::us(10));
  const uint64_t at_stop = emitted;
  EXPECT_GT(at_stop, 0u);
  sched.stop();
  EXPECT_FALSE(sched.running());
  sim.run_until(Time::ms(1));
  EXPECT_EQ(emitted, at_stop);
  // start() re-arms after a stop.
  sched.start();
  sim.run_until(Time::ms(2));
  EXPECT_GT(emitted, at_stop);
}

TEST(CreditScheduler, EmitReturningFalseEndsThePump) {
  sim::Simulator sim;
  uint64_t calls = 0;
  CreditScheduler sched(
      sim, {}, [] { return 10e9; }, [&] { return ++calls < 5; });
  sched.start();
  sim.run_until(Time::ms(1));
  EXPECT_EQ(calls, 5u);          // the fifth call refused; no more fire
  EXPECT_EQ(sched.emitted(), 4u);  // refused emissions don't count
}

}  // namespace
}  // namespace xpass::transport
