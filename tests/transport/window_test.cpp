// Tests of the shared window engine, exercised through DCTCP endpoints on a
// real simulated path (the engine has no meaning without a network).
#include <gtest/gtest.h>

#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "transport/dctcp.hpp"

namespace {

using namespace xpass;
using sim::Time;

struct DumbbellEnv {
  sim::Simulator sim{11};
  net::Topology topo{sim};
  net::Dumbbell d;

  explicit DumbbellEnv(runner::Protocol p = runner::Protocol::kDctcp,
                       size_t pairs = 2) {
    const auto link = runner::protocol_link_config(p, 10e9, Time::us(1));
    d = net::build_dumbbell(topo, pairs, link, link);
  }
};

TEST(WindowEngine, SingleFlowCompletesAndDeliversExactBytes) {
  DumbbellEnv env;
  transport::DctcpConfig cfg;
  transport::DctcpTransport t(env.sim, cfg);
  runner::FlowDriver driver(env.sim, t);
  transport::FlowSpec s;
  s.id = 1;
  s.src = env.d.senders[0];
  s.dst = env.d.receivers[0];
  s.size_bytes = 1'000'000;
  driver.add(s);
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  EXPECT_EQ(driver.connections()[0]->delivered_bytes(), 1'000'000u);
  EXPECT_GT(driver.connections()[0]->fct(), Time::zero());
}

TEST(WindowEngine, ThroughputApproachesLineRate) {
  DumbbellEnv env;
  transport::DctcpTransport t(env.sim, {});
  runner::FlowDriver driver(env.sim, t);
  transport::FlowSpec s;
  s.id = 1;
  s.src = env.d.senders[0];
  s.dst = env.d.receivers[0];
  s.size_bytes = 10'000'000;
  driver.add(s);
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  const double gbps =
      10'000'000 * 8.0 / driver.connections()[0]->fct().to_sec() / 1e9;
  EXPECT_GT(gbps, 8.0);  // goodput ~ 95% of 10G minus slow-start ramp
}

TEST(WindowEngine, TinyFlowSinglePacket) {
  DumbbellEnv env;
  transport::DctcpTransport t(env.sim, {});
  runner::FlowDriver driver(env.sim, t);
  transport::FlowSpec s;
  s.id = 1;
  s.src = env.d.senders[0];
  s.dst = env.d.receivers[0];
  s.size_bytes = 1;  // one byte
  driver.add(s);
  ASSERT_TRUE(driver.run_to_completion(Time::ms(100)));
  EXPECT_EQ(driver.connections()[0]->delivered_bytes(), 1u);
}

TEST(WindowEngine, RecoversFromDropsViaRetransmission) {
  // Shrink the bottleneck queue drastically so slow start overflows it.
  sim::Simulator sim(13);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kDctcp, 10e9,
                                           Time::us(1));
  net::LinkConfig tiny = link;
  tiny.data_queue.capacity_bytes = 8 * net::kMaxWireBytes;
  tiny.data_queue.ecn_threshold_bytes = 0;  // no ECN: force real drops
  auto d = net::build_dumbbell(topo, 2, link, tiny);

  transport::DctcpConfig cfg;
  cfg.window.rto_min = Time::ms(1);
  transport::DctcpTransport t(sim, cfg);
  runner::FlowDriver driver(sim, t);
  for (uint32_t i = 0; i < 2; ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = 2'000'000;
    driver.add(s);
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(5)));
  EXPECT_GT(topo.data_drops(), 0u);  // drops did happen...
  for (const auto& c : driver.connections()) {
    EXPECT_EQ(c->delivered_bytes(), 2'000'000u);  // ...yet all bytes arrive
    auto* w = dynamic_cast<transport::WindowConnection*>(c.get());
    ASSERT_NE(w, nullptr);
    EXPECT_GT(w->retransmits(), 0u);
  }
}

TEST(WindowEngine, RttEstimateTracksPath) {
  DumbbellEnv env;
  transport::DctcpTransport t(env.sim, {});
  runner::FlowDriver driver(env.sim, t);
  transport::FlowSpec s;
  s.id = 1;
  s.src = env.d.senders[0];
  s.dst = env.d.receivers[0];
  s.size_bytes = 100'000;
  driver.add(s);
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  auto* w = dynamic_cast<transport::WindowConnection*>(
      driver.connections()[0].get());
  // Base RTT: 4 links of 1us prop x2 + serialization ~ 10-20us.
  EXPECT_GT(w->srtt(), Time::us(8));
  EXPECT_LT(w->srtt(), Time::us(100));
}

TEST(WindowEngine, ManyFlowsAllComplete) {
  DumbbellEnv env(runner::Protocol::kDctcp, 8);
  transport::DctcpTransport t(env.sim, {});
  runner::FlowDriver driver(env.sim, t);
  for (uint32_t i = 0; i < 8; ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = env.d.senders[i];
    s.dst = env.d.receivers[i];
    s.size_bytes = 500'000;
    s.start_time = Time::us(13 * i);
    driver.add(s);
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  EXPECT_EQ(driver.completed(), 8u);
}

}  // namespace
