// BBR state-machine tests: the four-state machine against a live dumbbell.
//
// Filter windows are shrunk from the 10s wall-clock defaults to ms spans so
// every cadence (startup exit, probe-rtt entry/exit, min-RTT expiry) plays
// out inside a few simulated milliseconds.
#include <gtest/gtest.h>

#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "transport/bbr.hpp"

namespace {

using namespace xpass;
using sim::Time;

struct BbrEnv {
  sim::Simulator sim{21};
  net::Topology topo{sim};
  net::Dumbbell d;
  std::unique_ptr<transport::BbrTransport> t;

  explicit BbrEnv(transport::BbrConfig cfg = {}, size_t pairs = 2) {
    const auto link =
        runner::protocol_link_config(runner::Protocol::kBbr, 10e9,
                                     Time::us(1));
    d = net::build_dumbbell(topo, pairs, link, link);
    cfg.window.base_rtt = Time::us(100);
    t = std::make_unique<transport::BbrTransport>(sim, cfg);
  }

  transport::FlowSpec spec(uint32_t id, uint64_t bytes,
                           Time start = Time::zero()) {
    transport::FlowSpec s;
    s.id = id;
    s.src = d.senders[(id - 1) % d.senders.size()];
    s.dst = d.receivers[(id - 1) % d.receivers.size()];
    s.size_bytes = bytes;
    s.start_time = start;
    return s;
  }
};

transport::BbrConnection* bbr(runner::FlowDriver& driver, size_t i = 0) {
  auto* c = dynamic_cast<transport::BbrConnection*>(
      driver.connections()[i].get());
  EXPECT_NE(c, nullptr);
  return c;
}

TEST(Bbr, StartupExitsOnceBandwidthStopsGrowing) {
  BbrEnv env;
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));
  env.sim.run_until(Time::ms(5));
  auto* c = bbr(driver);
  // Startup doubles the rate each round; on a 10G path with a ~10us RTT it
  // finds the ceiling within a handful of rounds, well inside 5ms.
  EXPECT_NE(c->state(), transport::BbrConnection::State::kStartup);
  // The model converged on the bottleneck: BtlBw within [70%, 105%] of the
  // 10G wire (payload-bytes accounting sits below the wire rate).
  EXPECT_GT(c->btlbw_bps(), 7e9);
  EXPECT_LT(c->btlbw_bps(), 10.5e9);
  driver.stop_all();
}

TEST(Bbr, ProbeBwSustainsUtilizationWithSmallQueue) {
  BbrEnv env;
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));
  env.sim.run_until(Time::ms(30));
  auto* c = bbr(driver);
  const auto st = c->state();
  EXPECT_TRUE(st == transport::BbrConnection::State::kProbeBw ||
              st == transport::BbrConnection::State::kProbeRtt);
  const auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(30));
  EXPECT_GT(rates.at(1), 8e9);  // keeps the pipe full
  // Model-based pacing holds the standing queue far below drop-tail fill.
  EXPECT_LT(env.d.bottleneck->data_queue().stats().max_bytes,
            runner::default_queue_capacity(10e9) / 2);
  EXPECT_EQ(env.topo.data_drops(), 0u);
  driver.stop_all();
}

TEST(Bbr, ProbeRttCadenceClampsAndReleases) {
  transport::BbrConfig cfg;
  cfg.probe_rtt_interval = Time::ms(10);
  cfg.probe_rtt_duration = Time::ms(1);
  cfg.rtprop_window = Time::ms(10);
  BbrEnv env(cfg);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));

  // Sample the state machine every 100us across 60ms.
  size_t probe_rtt_samples = 0;
  size_t probe_bw_samples = 0;
  std::vector<Time> entries;  // rising edges into kProbeRtt
  bool in_probe_rtt = false;
  for (int i = 1; i <= 600; ++i) {
    env.sim.at(Time::us(100) * i, [&, i] {
      auto* c = dynamic_cast<transport::BbrConnection*>(
          driver.connections()[0].get());
      const auto st = c->state();
      if (st == transport::BbrConnection::State::kProbeRtt) {
        ++probe_rtt_samples;
        if (!in_probe_rtt) entries.push_back(Time::us(100) * i);
        in_probe_rtt = true;
      } else {
        if (st == transport::BbrConnection::State::kProbeBw) {
          ++probe_bw_samples;
        }
        in_probe_rtt = false;
      }
    });
  }
  env.sim.run_until(Time::ms(60));

  // Every ~10ms without a fresh RTprop low the machine must dip into
  // probe-rtt, and the 1ms dwell must release back to probe-bw: both states
  // show up repeatedly, and entries are spaced at least an interval apart.
  EXPECT_GE(entries.size(), 3u);
  EXPECT_GT(probe_bw_samples, probe_rtt_samples);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i] - entries[i - 1], Time::ms(9));
  }
  driver.stop_all();
}

TEST(Bbr, MinRttExpiryTracksTheQueuedPath) {
  // Two BBR flows hold cwnd_gain x BDP each in flight, building a standing
  // queue at the shared bottleneck. A short min-filter window must forget
  // the uncontended RTT floor and re-measure the queued path; the stock 10s
  // window would pin rtprop at the first handshake sample.
  transport::BbrConfig cfg;
  cfg.rtprop_window = Time::ms(3);
  cfg.probe_rtt_interval = Time::sec(10);  // isolate expiry from probe-rtt
  BbrEnv env(cfg);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));
  driver.add(env.spec(2, transport::kLongRunning));
  env.sim.run_until(Time::ms(2));
  const Time early = bbr(driver)->rtprop();
  env.sim.run_until(Time::ms(25));
  const Time late = bbr(driver)->rtprop();
  // The early sample (taken before the queue formed) reflects the bare
  // path; after expiry the filter tracks the standing queue above it.
  EXPECT_GT(late, early);
  EXPECT_GT(late, early + Time::us(2));
  driver.stop_all();
}

TEST(Bbr, TwoFlowsConvergeToFairShare) {
  BbrEnv env;
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));
  driver.add(env.spec(2, transport::kLongRunning, Time::ms(2)));
  env.sim.run_until(Time::ms(40));
  const auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(40));
  const double a = rates.at(1);
  const double b = rates.at(2);
  EXPECT_GT(a + b, 7e9);  // pipe stays full
  // Model-based flows sharing one bottleneck: neither starves (each holds
  // at least a quarter of the pair's goodput).
  EXPECT_GT(std::min(a, b) / (a + b), 0.25);
  driver.stop_all();
}

TEST(Bbr, LossDoesNotCollapseTheModel) {
  // BBR ignores fast-retransmit loss events by design: a lossy drop-tail
  // encounter must not send the rate to the floor the way a loss-based
  // scheme would. Tiny queue forces drops during startup overshoot.
  transport::BbrConfig cfg;
  BbrEnv env(cfg);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, 20'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(1)));
  const double gbps =
      20e6 * 8.0 / driver.connections()[0]->fct().to_sec() / 1e9;
  EXPECT_GT(gbps, 6.0);
}

}  // namespace
