// DCQCN and TIMELY behavior tests (extension comparators over PFC).
#include <gtest/gtest.h>

#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "transport/dcqcn.hpp"
#include "transport/timely.hpp"

namespace {

using namespace xpass;
using sim::Time;

struct Env {
  sim::Simulator sim{91};
  net::Topology topo{sim};
  net::Dumbbell d;
  std::unique_ptr<transport::Transport> t;

  explicit Env(runner::Protocol p, size_t pairs = 2) {
    const auto link = runner::protocol_link_config(p, 10e9, Time::us(1));
    d = net::build_dumbbell(topo, pairs, link, link);
    t = runner::make_transport(p, sim, topo, Time::us(20));
  }

  transport::FlowSpec spec(uint32_t id, uint64_t bytes,
                           Time start = Time::zero()) {
    transport::FlowSpec s;
    s.id = id;
    s.src = d.senders[(id - 1) % d.senders.size()];
    s.dst = d.receivers[(id - 1) % d.receivers.size()];
    s.size_bytes = bytes;
    s.start_time = start;
    return s;
  }
};

TEST(Dcqcn, FlowCompletesAtNearLineRate) {
  Env env(runner::Protocol::kDcqcn);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, 20'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  const double gbps =
      20e6 * 8.0 / driver.connections()[0]->fct().to_sec() / 1e9;
  EXPECT_GT(gbps, 7.5);  // starts at line rate, single flow stays high
}

TEST(Dcqcn, CnpCutsRate) {
  Env env(runner::Protocol::kDcqcn);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));
  driver.add(env.spec(2, transport::kLongRunning));
  env.sim.run_until(Time::ms(5));
  auto* c = dynamic_cast<transport::DcqcnConnection*>(
      driver.connections()[0].get());
  // Two line-rate flows on one link must have been CNP'd below line rate.
  EXPECT_LT(c->rate_bps(), 10e9);
  EXPECT_GT(c->alpha(), 0.0);
  driver.stop_all();
}

TEST(Dcqcn, LosslessUnderPfcIncast) {
  Env env(runner::Protocol::kDcqcn, 8);
  runner::FlowDriver driver(env.sim, *env.t);
  for (uint32_t i = 1; i <= 8; ++i) {
    transport::FlowSpec s;
    s.id = i;
    s.src = env.d.senders[i - 1];
    s.dst = env.d.receivers[0];  // all converge on one receiver
    s.size_bytes = 400'000;
    driver.add(s);
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(5)));
  EXPECT_EQ(env.topo.data_drops(), 0u);  // PFC absorbed the burst
  // And PFC actually fired.
  uint64_t pauses = 0;
  for (auto* h : env.topo.hosts()) pauses += h->nic().pause_events();
  EXPECT_GT(pauses, 0u);
}

TEST(Dcqcn, TwoFlowsShareFairly) {
  Env env(runner::Protocol::kDcqcn);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));
  driver.add(env.spec(2, transport::kLongRunning));
  env.sim.run_until(Time::ms(20));
  driver.rates().snapshot_rates_by_flow(Time::ms(20));
  env.sim.run_until(Time::ms(50));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(30));
  EXPECT_GT((rates[1] + rates[2]) / 1e9, 7.5);
  EXPECT_NEAR(rates[1] / 1e9, rates[2] / 1e9, 2.5);
  driver.stop_all();
}

TEST(Timely, FlowCompletes) {
  Env env(runner::Protocol::kTimely);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, 10'000'000));
  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  EXPECT_EQ(driver.connections()[0]->delivered_bytes(), 10'000'000u);
  EXPECT_EQ(env.topo.data_drops(), 0u);
}

TEST(Timely, RateRampsOnLowRtt) {
  Env env(runner::Protocol::kTimely);
  runner::FlowDriver driver(env.sim, *env.t);
  driver.add(env.spec(1, transport::kLongRunning));
  env.sim.run_until(Time::ms(20));
  auto* c = dynamic_cast<transport::TimelyConnection*>(
      driver.connections()[0].get());
  EXPECT_GT(c->rate_bps(), 2e9);  // started at 1G, grew on clean RTTs
  driver.stop_all();
}

TEST(Timely, BacksOffUnderCongestion) {
  Env env(runner::Protocol::kTimely, 4);
  runner::FlowDriver driver(env.sim, *env.t);
  for (uint32_t i = 1; i <= 4; ++i) {
    driver.add(env.spec(i, transport::kLongRunning));
  }
  env.sim.run_until(Time::ms(20));
  driver.rates().snapshot_rates_by_flow(Time::ms(20));
  env.sim.run_until(Time::ms(40));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(20));
  double sum = 0;
  for (auto& [id, r] : rates) {
    (void)id;
    sum += r;
  }
  // Aggregate stays around the link rate (not 4x line rate into a queue).
  EXPECT_LT(sum / 1e9, 10.1);
  EXPECT_GT(sum / 1e9, 5.0);
  EXPECT_EQ(env.topo.data_drops(), 0u);  // PFC keeps it lossless
  driver.stop_all();
}

}  // namespace
