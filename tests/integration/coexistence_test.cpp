// Heterogeneous coexistence, end to end: an ExpressPass credit fabric
// sharing one dumbbell bottleneck with reactive cross-traffic through
// ScenarioSpec::flow_groups.
//
// The headline assertion is the paper's §4.3 open question made executable:
// the minimum credit-rate reservation (w_min) must keep the ExpressPass
// group alive — zero starved flows and aggregate goodput above a hard floor
// — no matter what the loss-based cross-traffic does to the queue. The
// bands are calibrated against bench/ext_coexistence (EXPERIMENTS.md
// "Coexistence & real-time scenarios"): healthy runs hold 60-83% of the
// bottleneck for ExpressPass, so the floors here sit far below healthy and
// far above a broken reservation (a 1%-capped credit schedule lands under
// them, which the oracle test at the bottom proves).
#include <gtest/gtest.h>

#include <string>

#include "check/oracles.hpp"
#include "runner/protocols.hpp"
#include "runner/scenario.hpp"

namespace {

using xpass::check::OracleSuite;
using xpass::runner::FlowGroupSpec;
using xpass::runner::Protocol;
using xpass::runner::ScenarioEngine;
using xpass::runner::ScenarioResult;
using xpass::runner::ScenarioSpec;
using xpass::runner::StopSpec;
using xpass::runner::TrafficKind;
using xpass::sim::Time;

// The oracle-applicable shape: XP primary, dumbbell, kWindow stop with
// >=10ms warmup and window, one long-running XP group plus cross-traffic.
ScenarioSpec coexist_spec(Protocol cross, TrafficKind cross_kind) {
  ScenarioSpec s;
  s.name = "coexist-test";
  s.protocol = Protocol::kExpressPass;
  s.seed = 17;
  s.topology.kind = xpass::runner::TopologyKind::kDumbbell;
  s.topology.scale = 8;
  s.stop = StopSpec::measure_window(Time::ms(10), Time::ms(20));

  FlowGroupSpec xp;
  xp.protocol = Protocol::kExpressPass;
  xp.traffic.kind = TrafficKind::kPairwise;
  xp.traffic.bytes = xpass::transport::kLongRunning;
  xp.traffic.flows = 4;
  s.flow_groups.push_back(xp);

  FlowGroupSpec ct;
  ct.protocol = cross;
  ct.traffic.kind = cross_kind;
  ct.traffic.bytes = xpass::transport::kLongRunning;
  ct.traffic.flows = 4;
  if (cross_kind == TrafficKind::kOnOff) {
    ct.traffic.on_period_sec = 5e-3;
    ct.traffic.on_duty = 0.5;
  }
  s.flow_groups.push_back(ct);
  return s;
}

double bottleneck_bps(const ScenarioSpec& s) {
  return s.topology.fabric_rate_bps > 0 ? s.topology.fabric_rate_bps
                                        : s.topology.host_rate_bps;
}

TEST(Coexistence, ReservationProtectsExpressPassAgainstCubic) {
  const ScenarioSpec spec =
      coexist_spec(Protocol::kCubic, TrafficKind::kPairwise);
  const ScenarioResult r = ScenarioEngine().run(spec);

  ASSERT_EQ(r.groups.size(), 2u);
  const auto& xp = r.groups[0];
  const auto& ct = r.groups[1];
  EXPECT_EQ(xp.protocol, Protocol::kExpressPass);
  EXPECT_EQ(ct.protocol, Protocol::kCubic);
  EXPECT_EQ(xp.scheduled, 4u);
  EXPECT_EQ(ct.scheduled, 4u);

  // The protection band. The oracle floor is 2% of the bottleneck; a
  // healthy fabric sits an order of magnitude above it (calibrated ~70%
  // share for this cell), so assert a band between them: well above the
  // floor, without pinning the exact Cubic-dependent split.
  const double cap = bottleneck_bps(spec);
  EXPECT_GT(xp.goodput_bps, 0.30 * cap)
      << "ExpressPass held only " << xp.goodput_bps / 1e9 << " Gbps";
  EXPECT_EQ(xp.starved, 0u);
  // Coexistence, not conquest: the reactive group must also get real
  // bandwidth — the credit fabric may not lock Cubic out.
  EXPECT_GT(ct.goodput_bps, 0.05 * cap)
      << "Cubic cross-traffic starved at " << ct.goodput_bps / 1e9
      << " Gbps";
  EXPECT_NEAR(xp.goodput_share + ct.goodput_share, 1.0, 1e-9);

  // The per-group scalar family the CI smoke validates must be present.
  const std::string json = r.recorder.to_json(spec.name);
  for (const char* key :
       {"group.0.goodput_bps", "group.0.goodput_share", "group.0.starved",
        "group.1.goodput_bps", "group.1.flows"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(Coexistence, ReservationHoldsUnderOnOffBursts) {
  // Real-time-style on/off cross-traffic: bursts hammer the queue at 50%
  // duty. The ExpressPass floor must hold through the bursts, and the
  // burst group itself must not be starved out by the credit schedule.
  const ScenarioSpec spec = coexist_spec(Protocol::kDctcp, TrafficKind::kOnOff);
  const ScenarioResult r = ScenarioEngine().run(spec);

  ASSERT_EQ(r.groups.size(), 2u);
  const double cap = bottleneck_bps(spec);
  EXPECT_GT(r.groups[0].goodput_bps, 0.30 * cap);
  EXPECT_EQ(r.groups[0].starved, 0u);
  EXPECT_GT(r.groups[1].goodput_bps, 0.0);
}

TEST(Coexistence, CubicVsBbrConvergenceBands) {
  // The two reactive baselines head to head on a drop-tail dumbbell, no
  // credit fabric involved (Cubic primary supplies the link config). The
  // 250-MTU buffer is ~8x the 2-flow BDP, which is BBRv1's documented
  // losing regime: Cubic fills the deep queue, inflating BBR's delivery
  // samples' RTT while BBR's inflight cap stops it from competing for
  // buffer, so Cubic takes the lion's share. Pin that regime as bands —
  // bottleneck utilized, Cubic dominant but BBR alive, queue actually
  // driven into Cubic's full-buffer operating point — so a change to
  // either stack that flips the balance (or collapses it) diffs here.
  ScenarioSpec s;
  s.name = "coexist-test/cubic-vs-bbr";
  s.protocol = Protocol::kCubic;
  s.seed = 17;
  s.topology.kind = xpass::runner::TopologyKind::kDumbbell;
  s.topology.scale = 4;
  s.stop = StopSpec::measure_window(Time::ms(10), Time::ms(20));

  FlowGroupSpec cubic;
  cubic.protocol = Protocol::kCubic;
  cubic.traffic.kind = TrafficKind::kPairwise;
  cubic.traffic.bytes = xpass::transport::kLongRunning;
  cubic.traffic.flows = 2;
  s.flow_groups.push_back(cubic);

  FlowGroupSpec bbr;
  bbr.protocol = Protocol::kBbr;
  bbr.traffic.kind = TrafficKind::kPairwise;
  bbr.traffic.bytes = xpass::transport::kLongRunning;
  bbr.traffic.flows = 2;
  s.flow_groups.push_back(bbr);

  const ScenarioResult r = ScenarioEngine().run(s);
  ASSERT_EQ(r.groups.size(), 2u);
  const double cap = bottleneck_bps(s);
  EXPECT_GT(r.sum_rate_bps, 0.60 * cap)
      << "mixed Cubic/BBR left the bottleneck at " << r.sum_rate_bps / 1e9
      << " Gbps";
  EXPECT_GT(r.groups[0].goodput_share, 0.60) << "Cubic lost its deep-buffer "
      << "dominance (share " << r.groups[0].goodput_share << ")";
  EXPECT_LT(r.groups[0].goodput_share, 0.99);
  EXPECT_GT(r.groups[1].goodput_share, 0.02) << "BBR fully collapsed";
  EXPECT_LT(r.groups[1].goodput_share, 0.40);
  EXPECT_EQ(r.groups[0].starved, 0u);
  // Queue band: Cubic's loss probing must actually reach the full-buffer
  // operating point — a queue that never fills means the run measured
  // slow-start, not the competition regime the shares above pin.
  const uint64_t buf =
      xpass::runner::default_queue_capacity(s.topology.host_rate_bps);
  EXPECT_GE(r.bottleneck_max_queue_bytes, buf / 2);
  EXPECT_LE(r.bottleneck_max_queue_bytes, buf);
}

TEST(Coexistence, OracleAcceptsHealthyRunAndCatchesBrokenReservation) {
  const ScenarioSpec spec =
      coexist_spec(Protocol::kCubic, TrafficKind::kPairwise);
  OracleSuite suite;

  // Healthy engine: the coexistence oracle applies to this spec and passes.
  const auto healthy = suite.evaluate_one(
      "coexistence", spec,
      [](const ScenarioSpec& s) { return ScenarioEngine().run(s); });
  ASSERT_TRUE(healthy.has_value())
      << "coexistence oracle did not consider this spec applicable";
  EXPECT_TRUE(healthy->pass) << healthy->details;

  // Sabotaged engine (the fuzzer's starved-reservation injection, turned up
  // to a deterministic kill): cap each flow's credit schedule at 0.1% of
  // the line rate behind the oracle's back — 4 flows x 10 Mbps = 0.4% of
  // the bottleneck, under both the 2% aggregate floor and the per-flow
  // starvation line. The declared spec is unchanged, so the oracle still
  // applies — and must fail, because the executed run breaks w_min.
  const auto sabotaged = suite.evaluate_one(
      "coexistence", spec, [](const ScenarioSpec& s) {
        ScenarioSpec executed = s;
        xpass::core::ExpressPassConfig xp =
            executed.xp ? *executed.xp : xpass::core::ExpressPassConfig{};
        xp.max_rate_bps = 0.001 * executed.topology.host_rate_bps;
        executed.xp = xp;
        return ScenarioEngine().run(executed);
      });
  ASSERT_TRUE(sabotaged.has_value());
  EXPECT_FALSE(sabotaged->pass)
      << "a 1%-capped credit schedule must trip the coexistence oracle";
}

}  // namespace
