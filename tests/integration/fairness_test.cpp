// Cross-protocol integration: two staggered long flows on a shared
// bottleneck must end up sharing it reasonably for every protocol.
#include <gtest/gtest.h>

#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "stats/fairness.hpp"

namespace {

using namespace xpass;
using sim::Time;

class ProtocolFairness : public ::testing::TestWithParam<runner::Protocol> {};

TEST_P(ProtocolFairness, TwoFlowsShareBottleneck) {
  const auto proto = GetParam();
  sim::Simulator sim(41);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(proto, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, 2, link, link);
  auto t = runner::make_transport(proto, sim, topo, Time::us(100));
  runner::FlowDriver driver(sim, *t);
  for (uint32_t i = 1; i <= 2; ++i) {
    transport::FlowSpec s;
    s.id = i;
    s.src = d.senders[i - 1];
    s.dst = d.receivers[i - 1];
    s.size_bytes = transport::kLongRunning;
    s.start_time = Time::ms(i - 1);
    driver.add(s);
  }
  // Warm up past Cubic's loss-based convergence (paper Fig 2: ~47ms), then
  // measure over a long window.
  sim.run_until(Time::ms(60));
  driver.rates().snapshot_rates_by_flow(Time::ms(60));
  sim.run_until(Time::ms(100));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(40));
  const std::vector<double> xs = {rates[1], rates[2]};
  EXPECT_GT(stats::jain_index(xs), 0.85) << protocol_name(proto);
  EXPECT_GT((rates[1] + rates[2]) / 1e9, 6.5) << protocol_name(proto);
  driver.stop_all();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolFairness,
    ::testing::Values(runner::Protocol::kExpressPass, runner::Protocol::kDctcp,
                      runner::Protocol::kRcp, runner::Protocol::kHull,
                      runner::Protocol::kDx, runner::Protocol::kCubic),
    [](const auto& info) {
      return std::string(runner::protocol_name(info.param));
    });

// Paper §6.1 (Fig 15d): ExpressPass holds fairness with many flows where
// window protocols collapse below cwnd=2.
TEST(ManyFlowFairness, ExpressPassStaysFairAt64Flows) {
  sim::Simulator sim(43);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, 64, link, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  sim::Rng arrival(7);
  for (uint32_t i = 1; i <= 64; ++i) {
    transport::FlowSpec s;
    s.id = i;
    s.src = d.senders[i - 1];
    s.dst = d.receivers[i - 1];
    s.size_bytes = transport::kLongRunning;
    s.start_time = sim::Time::seconds(arrival.uniform(0.0, 2e-3));
    driver.add(s);
  }
  sim.run_until(Time::ms(30));
  driver.rates().snapshot_rates_by_flow(Time::ms(30));
  sim.run_until(Time::ms(130));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(100));
  std::vector<double> xs;
  for (auto& [id, r] : rates) {
    (void)id;
    xs.push_back(r);
  }
  EXPECT_GT(stats::jain_index(xs), 0.8);
  EXPECT_EQ(topo.data_drops(), 0u);
  driver.stop_all();
}

}  // namespace
