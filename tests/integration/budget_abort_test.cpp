// Budget-truncated engine runs: a tripped RunBudget must come out as a
// clean partial result — aborted + reason set, recorder output valid and
// carrying the abort marker, and NO invariant assertions fired against the
// mid-flight network state. Event-budget truncation must additionally be
// deterministic (same spec -> byte-identical recorder JSON).
#include <gtest/gtest.h>

#include <string>

#include "runner/scenario.hpp"
#include "sim/run_budget.hpp"

namespace {

using namespace xpass;
using runner::Protocol;
using sim::Time;

runner::ScenarioSpec budgeted_dumbbell() {
  runner::ScenarioSpec s;
  s.name = "unit/budget_dumbbell";
  s.seed = 11;
  s.topology.kind = runner::TopologyKind::kDumbbell;
  s.topology.scale = 4;
  s.protocol = Protocol::kExpressPass;
  s.traffic.kind = runner::TrafficKind::kPairwise;
  s.traffic.flows = 4;
  s.stop = runner::StopSpec::measure_window(Time::ms(5), Time::ms(40));
  s.check_invariants = true;
  return s;
}

TEST(BudgetAbort, EventBudgetProducesCleanPartialResult) {
  auto s = budgeted_dumbbell();
  sim::RunBudget b;
  b.max_events = 20'000;  // far fewer than the ~45ms run needs
  s.budget = b;
  const auto r = runner::ScenarioEngine().run(s);

  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_reason, "event-budget");
  // The truncation is graceful: no invariant sweep ran against the torn
  // window, so nothing can have fired spuriously.
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_TRUE(r.invariant_messages.empty());

  // The recorder output is a valid document that carries the abort marker.
  EXPECT_TRUE(r.recorder.aborted());
  EXPECT_EQ(r.recorder.abort_reason(), "event-budget");
  const std::string json = r.recorder.to_json(r.name);
  EXPECT_NE(json.find("\"schema\": \"xpass.recorder.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"aborted\": true"), std::string::npos);
  EXPECT_NE(json.find("\"abort_reason\": \"event-budget\""),
            std::string::npos);
}

TEST(BudgetAbort, EventBudgetTruncationIsDeterministic) {
  auto s = budgeted_dumbbell();
  sim::RunBudget b;
  b.max_events = 20'000;
  s.budget = b;
  runner::ScenarioEngine engine;
  const auto a = engine.run(s);
  const auto c = engine.run(s);
  ASSERT_TRUE(a.aborted);
  ASSERT_TRUE(c.aborted);
  // The whole emitted document — every scalar, every series point — is
  // byte-identical: an event budget truncates at the same event everywhere.
  EXPECT_EQ(a.recorder.to_json(a.name), c.recorder.to_json(c.name));
  EXPECT_EQ(a.end_time, c.end_time);
}

TEST(BudgetAbort, SimTimeBudgetCapsTheRunHorizon) {
  auto s = budgeted_dumbbell();
  sim::RunBudget b;
  b.max_sim_time = Time::ms(2);  // the spec asks for 45ms
  s.budget = b;
  const auto r = runner::ScenarioEngine().run(s);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_reason, "sim-time-budget");
  EXPECT_LE(r.end_time, Time::ms(2));
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(BudgetAbort, WallClockOverrideTruncatesCleanly) {
  auto s = budgeted_dumbbell();
  // A horizon this sim cannot finish quickly; the override reins it in.
  s.stop = runner::StopSpec::run_for(Time::sec(3600));
  runner::RunOverrides ov;
  ov.wall_clock_ms = 50;
  const auto r = runner::ScenarioEngine().run(s, ov);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_reason, "wall-clock-budget");
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_TRUE(r.invariant_messages.empty());
  const std::string json = r.recorder.to_json(r.name);
  EXPECT_NE(json.find("\"abort_reason\": \"wall-clock-budget\""),
            std::string::npos);
}

TEST(BudgetAbort, UnexceededBudgetLeavesTheRunUntouched) {
  auto plain = budgeted_dumbbell();
  auto roomy = budgeted_dumbbell();
  sim::RunBudget b;
  b.max_events = 50'000'000;
  b.max_sim_time = Time::sec(10);
  roomy.budget = b;
  runner::ScenarioEngine engine;
  const auto a = engine.run(plain);
  const auto c = engine.run(roomy);
  EXPECT_FALSE(c.aborted);
  // The budget fields feed the cache key, so the names/specs differ — but
  // the measured physics must not.
  EXPECT_EQ(a.sum_rate_bps, c.sum_rate_bps);
  EXPECT_EQ(a.jain, c.jain);
  EXPECT_EQ(a.bottleneck_max_queue_bytes, c.bottleneck_max_queue_bytes);
  EXPECT_EQ(a.invariant_violations, c.invariant_violations);
}

}  // namespace
