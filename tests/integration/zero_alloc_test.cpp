// Zero-allocation hot path: a warmed-up ExpressPass steady state must not
// touch the global allocator at all.
//
// This binary links bench/alloc_probe.cpp, whose counting operator
// new/delete observe every allocation. The simulation below reaches steady
// state (pools, ring buffers, event slots and wheel nodes all at their
// high-water marks), then runs a long measurement window under the probe.
// Every per-packet and per-timer structure is recycled, so the expected
// allocation count is exactly zero — one stray capture spill or deque block
// fails the test.
#include <gtest/gtest.h>

#include "bench/alloc_probe.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"

namespace {

using namespace xpass;
using sim::Time;

TEST(ZeroAllocSteadyState, ExpressPassDumbbellHotPathIsAllocationFree) {
  if (!bench::AllocProbe::enabled()) {
    GTEST_SKIP() << "alloc probe stubbed out under sanitizers";
  }
  sim::Simulator sim(29);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto d = net::build_dumbbell(topo, 16, link, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  for (uint32_t i = 1; i <= 16; ++i) {
    transport::FlowSpec s;
    s.id = i;
    s.src = d.senders[i - 1];
    s.dst = d.receivers[i - 1];
    s.size_bytes = transport::kLongRunning;
    s.start_time = Time::us(50 * i);
    driver.add(s);
  }
  // Warm-up: feedback converges and every pool/ring/slab reaches its
  // high-water mark.
  sim.run_until(Time::ms(40));

  const auto mark = bench::AllocProbe::mark();
  sim.run_until(Time::ms(90));
  const auto delta = bench::AllocProbe::since(mark);

  const uint64_t events = sim.events().fired();
  EXPECT_GT(events, 100000u);  // the window actually carried traffic
  EXPECT_EQ(delta.allocs, 0u)
      << "steady state allocated " << delta.allocs << " times ("
      << delta.bytes << " bytes) across " << events << " events";
  EXPECT_EQ(delta.frees, 0u);
  driver.stop_all();
}

}  // namespace
