// §7 extensions: multi-class credit scheduling (QoS on credits) and
// coexistence with reactive, non-credited traffic.
#include <gtest/gtest.h>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "transport/dctcp.hpp"

namespace {

using namespace xpass;
using sim::Time;

core::ExpressPassConfig xp_cfg(uint8_t cls) {
  core::ExpressPassConfig cfg;
  cfg.update_period = Time::us(100);
  cfg.traffic_class = cls;
  return cfg;
}

// Two long flows in different credit classes with weights {3, 1} must share
// the data bandwidth ~3:1 — QoS is enforced purely by scheduling credits.
TEST(MultiClass, WeightedCreditSharing) {
  sim::Simulator sim(71);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(1));
  link.credit_class_weights = {3.0, 1.0};
  auto d = net::build_dumbbell(topo, 2, link, link);

  core::ExpressPassTransport hi(sim, xp_cfg(0));
  core::ExpressPassTransport lo(sim, xp_cfg(1));
  runner::FlowDriver dhi(sim, hi);
  runner::FlowDriver dlo(sim, lo);
  transport::FlowSpec s1;
  s1.id = 1;
  s1.src = d.senders[0];
  s1.dst = d.receivers[0];
  s1.size_bytes = transport::kLongRunning;
  transport::FlowSpec s2 = s1;
  s2.id = 2;
  s2.src = d.senders[1];
  s2.dst = d.receivers[1];
  dhi.add(s1);
  dlo.add(s2);

  sim.run_until(Time::ms(20));
  dhi.rates().snapshot_rates_by_flow(Time::ms(20));
  dlo.rates().snapshot_rates_by_flow(Time::ms(20));
  sim.run_until(Time::ms(60));
  const double hi_rate = dhi.rates().snapshot_rates_by_flow(Time::ms(40))[1];
  const double lo_rate = dlo.rates().snapshot_rates_by_flow(Time::ms(40))[2];
  EXPECT_GT(hi_rate, 2.0 * lo_rate);
  EXPECT_LT(hi_rate, 4.5 * lo_rate);
  // And the link stays fully used.
  EXPECT_GT((hi_rate + lo_rate) / 1e9, 8.0);
  dhi.stop_all();
  dlo.stop_all();
}

TEST(MultiClass, HugeWeightApproximatesStrictPriority) {
  sim::Simulator sim(73);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(1));
  link.credit_class_weights = {1e6, 1.0};
  auto d = net::build_dumbbell(topo, 2, link, link);
  core::ExpressPassTransport hi(sim, xp_cfg(0));
  core::ExpressPassTransport lo(sim, xp_cfg(1));
  runner::FlowDriver dhi(sim, hi);
  runner::FlowDriver dlo(sim, lo);
  transport::FlowSpec s1;
  s1.id = 1;
  s1.src = d.senders[0];
  s1.dst = d.receivers[0];
  s1.size_bytes = transport::kLongRunning;
  transport::FlowSpec s2 = s1;
  s2.id = 2;
  s2.src = d.senders[1];
  s2.dst = d.receivers[1];
  dhi.add(s1);
  dlo.add(s2);
  sim.run_until(Time::ms(20));
  dhi.rates().snapshot_rates_by_flow(Time::ms(20));
  dlo.rates().snapshot_rates_by_flow(Time::ms(20));
  sim.run_until(Time::ms(40));
  const double hi_rate = dhi.rates().snapshot_rates_by_flow(Time::ms(20))[1];
  const double lo_rate = dlo.rates().snapshot_rates_by_flow(Time::ms(20))[2];
  EXPECT_GT(hi_rate / 1e9, 7.5);
  EXPECT_LT(lo_rate, hi_rate / 5.0);
  dhi.stop_all();
  dlo.stop_all();
}

TEST(MultiClass, UnconfiguredClassFallsBackToLast) {
  // A credit tagged with a class beyond the configured weights must not
  // crash; it lands in the last class.
  sim::Simulator sim(79);
  net::Topology topo(sim);
  auto link = runner::protocol_link_config(runner::Protocol::kExpressPass,
                                           10e9, Time::us(1));
  link.credit_class_weights = {1.0, 1.0};
  auto d = net::build_dumbbell(topo, 1, link, link);
  auto cfg = xp_cfg(7);  // out of range
  core::ExpressPassTransport t(sim, cfg);
  runner::FlowDriver driver(sim, t);
  transport::FlowSpec s;
  s.id = 1;
  s.src = d.senders[0];
  s.dst = d.receivers[0];
  s.size_bytes = 500'000;
  driver.add(s);
  EXPECT_TRUE(driver.run_to_completion(Time::ms(100)));
}

// §7 "presence of other traffic": an ExpressPass flow and a DCTCP flow
// share a bottleneck. The uncredited DCTCP data is absorbed by the data
// queue; both make progress and nothing deadlocks.
TEST(Coexistence, ExpressPassAndDctcpShareLink) {
  sim::Simulator sim(83);
  net::Topology topo(sim);
  // ECN threshold so the DCTCP flow is controlled.
  auto link = runner::protocol_link_config(runner::Protocol::kDctcp, 10e9,
                                           Time::us(1));
  auto d = net::build_dumbbell(topo, 2, link, link);
  core::ExpressPassTransport xp(sim, xp_cfg(0));
  transport::DctcpTransport dctcp(sim, {});
  runner::FlowDriver dx(sim, xp);
  runner::FlowDriver dd(sim, dctcp);
  transport::FlowSpec s1;
  s1.id = 1;
  s1.src = d.senders[0];
  s1.dst = d.receivers[0];
  s1.size_bytes = transport::kLongRunning;
  transport::FlowSpec s2 = s1;
  s2.id = 2;
  s2.src = d.senders[1];
  s2.dst = d.receivers[1];
  dx.add(s1);
  dd.add(s2);
  sim.run_until(Time::ms(20));
  dx.rates().snapshot_rates_by_flow(Time::ms(20));
  dd.rates().snapshot_rates_by_flow(Time::ms(20));
  sim.run_until(Time::ms(50));
  const double xp_rate = dx.rates().snapshot_rates_by_flow(Time::ms(30))[1];
  const double dc_rate = dd.rates().snapshot_rates_by_flow(Time::ms(30))[2];
  EXPECT_GT(xp_rate / 1e9, 0.5);  // neither starves
  EXPECT_GT(dc_rate / 1e9, 0.5);
  EXPECT_GT((xp_rate + dc_rate) / 1e9, 7.0);
  dx.stop_all();
  dd.stop_all();
}

}  // namespace
