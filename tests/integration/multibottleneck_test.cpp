// Multi-bottleneck scenarios (Fig 4, 10, 11): the naive credit scheme loses
// utilization/fairness; the feedback loop restores both.
#include <gtest/gtest.h>

#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"

namespace {

using namespace xpass;
using sim::Time;

core::ExpressPassConfig cfg_feedback() {
  core::ExpressPassConfig c;
  c.update_period = Time::us(100);
  return c;
}

core::ExpressPassConfig cfg_naive() {
  auto c = cfg_feedback();
  c.naive = true;
  return c;
}

// Measures utilization of link 1 in an N-link parking lot.
double parking_lot_link1_util(size_t n_links,
                              const core::ExpressPassConfig& cfg) {
  sim::Simulator sim(61);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto p = net::build_parking_lot(topo, n_links, link, link);
  core::ExpressPassTransport t(sim, cfg);
  runner::FlowDriver driver(sim, t);
  uint32_t id = 1;
  transport::FlowSpec s0;
  s0.id = id++;
  s0.src = p.long_src;
  s0.dst = p.long_dst;
  s0.size_bytes = transport::kLongRunning;
  driver.add(s0);
  for (size_t i = 0; i < n_links; ++i) {
    transport::FlowSpec s;
    s.id = id++;
    s.src = p.cross_srcs[i];
    s.dst = p.cross_dsts[i];
    s.size_bytes = transport::kLongRunning;
    driver.add(s);
  }
  sim.run_until(Time::ms(15));
  const uint64_t before = p.data_links[0]->tx_data_bytes();
  sim.run_until(Time::ms(40));
  const uint64_t bytes = p.data_links[0]->tx_data_bytes() - before;
  driver.stop_all();
  // Normalize by max data rate (95% of link).
  const double max_data = 10e9 * (1538.0 / 1622.0) / 8.0 * 25e-3;
  return static_cast<double>(bytes) / max_data;
}

TEST(ParkingLot, FeedbackRestoresUtilization) {
  // Fig 10b: naive ~83% at 2 bottlenecks, feedback ~98%. Our absolute
  // numbers run a couple of points lower (software pacing noise); the
  // relationship is what matters.
  const double naive = parking_lot_link1_util(2, cfg_naive());
  const double fb = parking_lot_link1_util(2, cfg_feedback());
  EXPECT_LT(naive, 0.90);
  EXPECT_GT(fb, naive + 0.03);
  EXPECT_GT(fb, 0.88);
}

TEST(ParkingLot, NaiveDegradesWithMoreBottlenecks) {
  // Fig 10b: naive drops toward ~60% by 6 bottlenecks.
  const double naive2 = parking_lot_link1_util(2, cfg_naive());
  const double naive5 = parking_lot_link1_util(5, cfg_naive());
  EXPECT_LT(naive5, naive2);
}

TEST(ParkingLot, FeedbackHoldsAcrossDepths) {
  // Fig 10b: feedback keeps ~98% regardless of depth; we allow a wider
  // floor but, crucially, no naive-style collapse toward 60%.
  for (size_t n : {1, 3, 5}) {
    EXPECT_GT(parking_lot_link1_util(n, cfg_feedback()), 0.82) << n;
  }
}

// Fig 11: flow 0 (single bottleneck) vs N flows crossing three links.
double fig11_flow0_gbps(size_t n, bool naive) {
  sim::Simulator sim(67);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto m = net::build_multi_bottleneck(topo, n, link, link);
  core::ExpressPassTransport t(sim, naive ? cfg_naive() : cfg_feedback());
  runner::FlowDriver driver(sim, t);
  uint32_t id = 1;
  transport::FlowSpec s0;
  s0.id = id++;
  s0.src = m.flow0_src;
  s0.dst = m.flow0_dst;
  s0.size_bytes = transport::kLongRunning;
  driver.add(s0);
  for (size_t i = 0; i < n; ++i) {
    transport::FlowSpec s;
    s.id = id++;
    s.src = m.srcs[i];
    s.dst = m.dsts[i];
    s.size_bytes = transport::kLongRunning;
    driver.add(s);
  }
  sim.run_until(Time::ms(15));
  driver.rates().snapshot_rates_by_flow(Time::ms(15));
  sim.run_until(Time::ms(40));
  auto rates = driver.rates().snapshot_rates_by_flow(Time::ms(25));
  driver.stop_all();
  return rates[1] / 1e9;
}

TEST(MultiBottleneck, NaiveOverAllocatesFlow0) {
  // Fig 11b: with naive credits, flow 0 grabs ~half the link regardless of
  // N, far above the max-min share.
  const double f0 = fig11_flow0_gbps(8, /*naive=*/true);
  const double maxmin = 10.0 * (1538.0 / 1622.0) / 9.0;  // ~1.05 Gbps
  EXPECT_GT(f0, 2.5 * maxmin);
}

TEST(MultiBottleneck, FeedbackApproachesMaxMin) {
  // Fig 11b: the feedback loop tracks 1/(N+1) closely for small N.
  for (size_t n : {1, 2, 4}) {
    const double f0 = fig11_flow0_gbps(n, /*naive=*/false);
    const double maxmin = 10.0 * (1538.0 / 1622.0) / (n + 1);
    EXPECT_NEAR(f0, maxmin, 0.45 * maxmin) << "n=" << n;
  }
}

}  // namespace
