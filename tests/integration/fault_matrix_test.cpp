// Fault-matrix acceptance tests: ExpressPass flows must survive link flaps,
// credit corruption, and partial port death — and when no faults are
// injected, the network-wide invariants must hold with zero violations.
#include <gtest/gtest.h>

#include <vector>

#include "core/expresspass.hpp"
#include "exec/sweep_runner.hpp"
#include "net/fault_injector.hpp"
#include "net/topology_builders.hpp"
#include "runner/faults.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"
#include "sim/fault_plan.hpp"
#include "sim/invariants.hpp"

namespace {

using namespace xpass;
using namespace xpass::net;
using sim::Time;

LinkConfig xp_link() {
  return runner::protocol_link_config(runner::Protocol::kExpressPass, 10e9,
                                      Time::us(1));
}

// Mid-transfer bottleneck flap (drop semantics: queues flushed, in-flight
// frames cut) combined with 1% credit corruption on the same link. Every
// flow must still complete — the watchdog re-requests credits after the
// outage, the cum-ack rewind recovers cut data, and corrupted credits are
// just more credit loss to the feedback loop. No hang, no abort.
TEST(FaultMatrix, FlowsSurviveFlapPlusCreditCorruption) {
  sim::Simulator sim(5);
  Topology topo(sim);
  auto d = build_dumbbell(topo, 4, xp_link(), xp_link());
  auto transport = runner::make_transport(runner::Protocol::kExpressPass, sim,
                                          topo, Time::us(100));
  runner::FlowDriver driver(sim, *transport);
  for (uint32_t i = 0; i < 4; ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = 2'000'000;
    driver.add(s);
  }

  sim::FaultPlan plan(0xfa17);
  FaultInjector inj(topo, plan);
  runner::FaultScenario sc;
  sc.flap_down = Time::ms(2);  // well into the transfers
  sc.flap_up = Time::ms(6);
  sc.fail_mode = LinkFailMode::kDrop;
  sc.errors.credit_corrupt = 0.01;
  runner::apply_fault_scenario(sc, inj, *d.left, *d.right);
  plan.arm(sim);

  sim::InvariantChecker chk(sim, sim::InvariantChecker::Mode::kCounting);
  runner::register_network_invariants(chk, topo, driver, &plan);
  chk.start(Time::us(100));

  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)))
      << "completed " << driver.completed() << "/4, failed "
      << driver.failed();
  EXPECT_EQ(driver.failed(), 0u);
  chk.run_checks();
  EXPECT_EQ(chk.violations(), 0u)
      << (chk.messages().empty() ? "" : chk.messages()[0]);

  // The faults actually bit: the link flapped and credits were corrupted.
  const FaultStats t = inj.totals();
  EXPECT_EQ(t.failures, 2u);
  EXPECT_EQ(t.recoveries, 2u);
  EXPECT_GT(t.corrupted_credits, 0u);
}

// One uplink of the sender's edge switch dies permanently mid-transfer on a
// fat tree. Symmetric ECMP exclusion reroutes both credits and data over
// the survivor; the flow completes.
TEST(FaultMatrix, PortDeathReroutesOverSurvivingUplink) {
  sim::Simulator sim(9);
  Topology topo(sim);
  const auto link = xp_link();
  auto ft = build_fat_tree(topo, 4, link, link);
  auto transport = runner::make_transport(runner::Protocol::kExpressPass, sim,
                                          topo, Time::us(100));
  runner::FlowDriver driver(sim, *transport);
  transport::FlowSpec s;
  s.id = 1;
  s.src = ft.hosts[0];
  s.dst = ft.hosts.back();  // cross-pod: must use an uplink
  s.size_bytes = 2'000'000;
  driver.add(s);

  // Kill the uplink the flow actually uses (trace its path), so the test
  // exercises a reroute rather than a no-op.
  const auto path =
      topo.trace_path(ft.hosts[0]->id(), ft.hosts.back()->id(), 1);
  ASSERT_FALSE(path.empty());
  Port* used_uplink = path[1];  // [0] is the host NIC; [1] the edge uplink
  Node& edge = used_uplink->owner();
  Node& aggr = used_uplink->peer()->owner();
  ASSERT_EQ(edge.kind(), Node::Kind::kSwitch);

  sim::FaultPlan plan(1);
  FaultInjector inj(topo, plan);
  inj.schedule_death(edge, aggr, Time::ms(1), LinkFailMode::kDrop);
  plan.arm(sim);

  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  EXPECT_EQ(driver.failed(), 0u);
  // Traffic really moved: the dead link carried some, the survivor the rest.
  EXPECT_EQ(inj.totals().failures, 2u);
}

// The receiver's only link dies: there is no alternative path. The flow
// must abort gracefully (settling run_to_completion) instead of hanging
// until the deadline, and the abort must be attributed.
TEST(FaultMatrix, IsolatedEndpointAbortsGracefully) {
  sim::Simulator sim(3);
  Topology topo(sim);
  auto d = build_dumbbell(topo, 2, xp_link(), xp_link());
  auto transport = runner::make_transport(runner::Protocol::kExpressPass, sim,
                                          topo, Time::us(100));
  runner::FlowDriver driver(sim, *transport);
  transport::FlowSpec s;
  s.id = 1;
  s.src = d.senders[0];
  s.dst = d.receivers[0];
  s.size_bytes = 10'000'000;
  driver.add(s);

  sim::FaultPlan plan(2);
  FaultInjector inj(topo, plan);
  inj.schedule_death(*d.receivers[0], *d.right, Time::ms(1),
                     LinkFailMode::kDrop);
  plan.arm(sim);

  // Settles long before the 10s deadline: the sender exhausts its request
  // retries (~175ms of continuous silence) and fails the flow.
  EXPECT_FALSE(driver.run_to_completion(Time::sec(10)));
  EXPECT_EQ(driver.failed(), 1u);
  EXPECT_LT(sim.now(), Time::sec(1));
  const auto& conn = *driver.connections()[0];
  EXPECT_TRUE(conn.failed());
  EXPECT_FALSE(conn.fail_reason().empty());
}

// Receiver-side guard: if the sender's NIC dies right after the handshake,
// the receiver is the one pacing credits into silence; its dead-period
// detector must stop the credit flow and settle the run.
TEST(FaultMatrix, DeadSenderStopsReceiverCrediting) {
  sim::Simulator sim(4);
  Topology topo(sim);
  auto d = build_dumbbell(topo, 2, xp_link(), xp_link());
  core::ExpressPassConfig xp;
  xp.receiver_dead_periods = 50;  // 5ms of silence, to keep the test fast
  auto transport = runner::make_transport(runner::Protocol::kExpressPass, sim,
                                          topo, Time::us(100), &xp);
  runner::FlowDriver driver(sim, *transport);
  transport::FlowSpec s;
  s.id = 1;
  s.src = d.senders[0];
  s.dst = d.receivers[0];
  s.size_bytes = 10'000'000;
  driver.add(s);

  sim::FaultPlan plan(2);
  FaultInjector inj(topo, plan);
  // Drain mode: the SYN got through, credits flow back, but every data
  // packet the sender releases sits in its dead NIC forever.
  inj.schedule_death(*d.senders[0], *d.left, Time::us(500),
                     LinkFailMode::kDrain);
  plan.arm(sim);

  EXPECT_FALSE(driver.run_to_completion(Time::sec(10)));
  EXPECT_EQ(driver.failed(), 1u);
  EXPECT_LT(sim.now(), Time::sec(1));
}

// The full fault matrix — {drop, drain} flap semantics × three error
// models — swept through exec::SweepRunner the way the benches sweep
// figures: each cell is an independent Simulator, cell seeds derive from
// exec::task_seed, results reduce in grid order. Every cell must complete
// all flows with zero invariant violations, and the sweep result must not
// depend on the worker count.
TEST(FaultMatrix, ScenarioGridSurvivesUnderParallelSweep) {
  struct Cell {
    net::LinkFailMode mode;
    double credit_corrupt;
    double data_drop;
  };
  std::vector<Cell> grid;
  for (auto mode : {LinkFailMode::kDrop, LinkFailMode::kDrain}) {
    grid.push_back({mode, 0.01, 0.0});   // corrupted credits
    grid.push_back({mode, 0.0, 0.005});  // lossy data class
    grid.push_back({mode, 0.01, 0.005}); // both at once
  }

  struct CellResult {
    size_t completed = 0;
    size_t failed = 0;
    uint64_t violations = 0;
    uint64_t fault_failures = 0;
  };
  auto run_cell = [&](size_t i) {
    const Cell& c = grid[i];
    sim::Simulator sim(exec::task_seed(29, i));
    Topology topo(sim);
    auto d = build_dumbbell(topo, 4, xp_link(), xp_link());
    auto transport = runner::make_transport(runner::Protocol::kExpressPass,
                                            sim, topo, Time::us(100));
    runner::FlowDriver driver(sim, *transport);
    for (uint32_t f = 0; f < 4; ++f) {
      transport::FlowSpec s;
      s.id = f + 1;
      s.src = d.senders[f];
      s.dst = d.receivers[f];
      s.size_bytes = 1'000'000;
      driver.add(s);
    }
    sim::FaultPlan plan(exec::task_seed(0xfa17, i));
    FaultInjector inj(topo, plan);
    runner::FaultScenario sc;
    sc.flap_down = Time::ms(1);
    sc.flap_up = Time::ms(4);
    sc.fail_mode = c.mode;
    sc.errors.credit_corrupt = c.credit_corrupt;
    sc.errors.data_drop = c.data_drop;
    runner::apply_fault_scenario(sc, inj, *d.left, *d.right);
    plan.arm(sim);
    sim::InvariantChecker chk(sim, sim::InvariantChecker::Mode::kCounting);
    runner::register_network_invariants(chk, topo, driver, &plan);
    chk.start(Time::us(100));
    CellResult r;
    driver.run_to_completion(Time::sec(5));
    chk.run_checks();
    r.completed = driver.completed();
    r.failed = driver.failed();
    r.violations = chk.violations();
    r.fault_failures = inj.totals().failures;
    return r;
  };

  exec::SweepRunner pool(4);
  const auto results = pool.map(grid.size(), run_cell);
  ASSERT_EQ(results.size(), grid.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].completed, 4u) << "cell " << i;
    EXPECT_EQ(results[i].failed, 0u) << "cell " << i;
    EXPECT_EQ(results[i].violations, 0u) << "cell " << i;
    EXPECT_EQ(results[i].fault_failures, 2u) << "cell " << i;  // flap bit
  }

  // Worker count must not leak into results: re-run the grid inline.
  exec::SweepRunner serial(1);
  const auto again = serial.map(grid.size(), run_cell);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].completed, again[i].completed) << "cell " << i;
    EXPECT_EQ(results[i].violations, again[i].violations) << "cell " << i;
  }
}

// Fig-scenario control run: no faults, invariants armed (including the
// §3.1 queue bound from the calculus module's dominant ToR-down figure and
// zero data loss) — nothing may trip.
TEST(FaultMatrix, HealthyRunHasZeroViolations) {
  sim::Simulator sim(7);
  Topology topo(sim);
  auto d = build_dumbbell(topo, 8, xp_link(), xp_link());
  auto transport = runner::make_transport(runner::Protocol::kExpressPass, sim,
                                          topo, Time::us(100));
  runner::FlowDriver driver(sim, *transport);
  for (uint32_t i = 0; i < 8; ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = d.senders[i];
    s.dst = d.receivers[i];
    s.size_bytes = 1'000'000;
    s.start_time = Time::us(50) * static_cast<double>(i);
    driver.add(s);
  }

  sim::InvariantChecker chk(sim, sim::InvariantChecker::Mode::kCounting);
  runner::NetInvariantOptions opts;
  // Generous but finite: a healthy 8-flow dumbbell stays in the low tens of
  // KB (the §3.1 zero-loss argument); 100KB catches runaway growth without
  // tuning to the exact calculus figure.
  opts.data_queue_bound_bytes = 100'000;
  runner::register_network_invariants(chk, topo, driver, nullptr, opts);
  chk.start(Time::us(100));

  ASSERT_TRUE(driver.run_to_completion(Time::sec(2)));
  chk.run_checks();
  EXPECT_GT(chk.sweeps(), 10u);
  EXPECT_EQ(chk.violations(), 0u)
      << (chk.messages().empty() ? "" : chk.messages()[0]);
  EXPECT_EQ(driver.failed(), 0u);
  EXPECT_EQ(topo.data_drops(), 0u);
}

}  // namespace
