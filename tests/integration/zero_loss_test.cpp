// The headline invariant: ExpressPass never drops a data packet, even under
// incast, as long as buffers meet the calculus bound. Parameterized over
// fan-out (Fig 1c's sweep, scaled).
#include <gtest/gtest.h>

#include "calculus/buffer_bounds.hpp"
#include "core/expresspass.hpp"
#include "net/topology_builders.hpp"
#include "runner/flow_driver.hpp"
#include "runner/protocols.hpp"

namespace {

using namespace xpass;
using sim::Time;

class IncastZeroLoss : public ::testing::TestWithParam<size_t> {};

TEST_P(IncastZeroLoss, NoDataDropAndBoundedQueue) {
  const size_t fanout = GetParam();
  sim::Simulator sim(51);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto star = net::build_star(topo, 33, link);
  for (auto* h : star.hosts) {
    h->set_delay_model(net::HostDelayModel::hardware());
  }
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  net::Host* master = star.hosts[0];
  std::vector<net::Host*> workers(star.hosts.begin() + 1, star.hosts.end());
  uint32_t id = 1;
  for (size_t i = 0; i < fanout; ++i) {
    transport::FlowSpec s;
    s.id = id++;
    s.src = workers[i % workers.size()];
    s.dst = master;
    s.size_bytes = 100'000;
    driver.add(s);
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(10)));
  EXPECT_EQ(topo.data_drops(), 0u);

  // Queue bounded independent of fan-out: for a single-switch star the
  // spread is one credit queue drain plus the host spread; charge it at the
  // receiver's link rate plus slack for the shaper burst.
  calculus::CalculusParams cp;
  cp.delta_host = net::HostDelayModel::hardware().spread();
  auto bound = calculus::compute_buffer_bounds(cp);
  EXPECT_LT(topo.max_switch_data_queue_bytes(),
            2.0 * bound.tor_up.buffer_bytes + 8 * net::kMaxWireBytes);
}

INSTANTIATE_TEST_SUITE_P(FanoutSweep, IncastZeroLoss,
                         ::testing::Values(8, 32, 64, 128, 256));

TEST(ZeroLoss, HeavyIncastAllToOne) {
  // 32 hosts, everyone sends to host 0 simultaneously, repeatedly.
  sim::Simulator sim(53);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto star = net::build_star(topo, 32, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  uint32_t id = 1;
  for (int wave = 0; wave < 3; ++wave) {
    for (size_t i = 1; i < star.hosts.size(); ++i) {
      transport::FlowSpec s;
      s.id = id++;
      s.src = star.hosts[i];
      s.dst = star.hosts[0];
      s.size_bytes = 500'000;
      s.start_time = Time::ms(5 * wave);
      driver.add(s);
    }
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(10)));
  EXPECT_EQ(topo.data_drops(), 0u);
}

TEST(ZeroLoss, FatTreeCrossPodTraffic) {
  sim::Simulator sim(59);
  net::Topology topo(sim);
  const auto link = runner::protocol_link_config(
      runner::Protocol::kExpressPass, 10e9, Time::us(1));
  auto ft = net::build_fat_tree(topo, 4, link, link);
  auto t = runner::make_transport(runner::Protocol::kExpressPass, sim, topo,
                                  Time::us(100));
  runner::FlowDriver driver(sim, *t);
  // All 16 hosts send to a host in another pod.
  for (uint32_t i = 0; i < ft.hosts.size(); ++i) {
    transport::FlowSpec s;
    s.id = i + 1;
    s.src = ft.hosts[i];
    s.dst = ft.hosts[(i + 7) % ft.hosts.size()];
    s.size_bytes = 300'000;
    driver.add(s);
  }
  ASSERT_TRUE(driver.run_to_completion(Time::sec(10)));
  EXPECT_EQ(topo.data_drops(), 0u);
}

}  // namespace
