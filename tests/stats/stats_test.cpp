#include <gtest/gtest.h>

#include "stats/fairness.hpp"
#include "stats/fct.hpp"
#include "stats/percentile.hpp"
#include "stats/rate_tracker.hpp"

namespace {

using namespace xpass;
using namespace xpass::stats;

TEST(Jain, PerfectFairnessIsOne) {
  std::vector<double> xs(10, 3.7);
  EXPECT_DOUBLE_EQ(jain_index(xs), 1.0);
}

TEST(Jain, SingleHogIsOneOverN) {
  std::vector<double> xs(8, 0.0);
  xs[0] = 5.0;
  EXPECT_NEAR(jain_index(xs), 1.0 / 8, 1e-12);
}

TEST(Jain, KnownTwoFlowValue) {
  std::vector<double> xs = {1.0, 3.0};
  // (4)^2 / (2 * 10) = 0.8
  EXPECT_DOUBLE_EQ(jain_index(xs), 0.8);
}

TEST(Jain, EmptyAndZeroConventions) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  std::vector<double> zeros(5, 0.0);
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Jain, ScaleInvariant) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(Samples, MeanMinMax) {
  Samples s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 0.01);
}

TEST(Samples, AddAfterSortingStillCorrect) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Samples, Stddev) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(SizeBin, PaperBinEdges) {
  EXPECT_EQ(size_bin(1), SizeBin::kS);
  EXPECT_EQ(size_bin(10'000), SizeBin::kS);
  EXPECT_EQ(size_bin(10'001), SizeBin::kM);
  EXPECT_EQ(size_bin(100'000), SizeBin::kM);
  EXPECT_EQ(size_bin(100'001), SizeBin::kL);
  EXPECT_EQ(size_bin(1'000'000), SizeBin::kL);
  EXPECT_EQ(size_bin(1'000'001), SizeBin::kXL);
  EXPECT_EQ(size_bin(1'000'000'000), SizeBin::kXL);
}

TEST(FctCollector, RoutesToBins) {
  FctCollector c;
  c.record(5'000, sim::Time::us(10));
  c.record(50'000, sim::Time::us(100));
  c.record(500'000, sim::Time::ms(1));
  c.record(5'000'000, sim::Time::ms(10));
  EXPECT_EQ(c.completed(), 4u);
  EXPECT_EQ(c.bin(SizeBin::kS).count(), 1u);
  EXPECT_EQ(c.bin(SizeBin::kM).count(), 1u);
  EXPECT_EQ(c.bin(SizeBin::kL).count(), 1u);
  EXPECT_EQ(c.bin(SizeBin::kXL).count(), 1u);
  EXPECT_DOUBLE_EQ(c.bin(SizeBin::kS).mean(), 10e-6);
}

TEST(RateTracker, RatesAndReset) {
  RateTracker rt;
  rt.add(1, 125'000);  // 1 Mbit over 1 ms => 1 Gbps
  rt.add(2, 250'000);
  auto rates = rt.snapshot_rates_by_flow(sim::Time::ms(1));
  EXPECT_NEAR(rates[1], 1e9, 1);
  EXPECT_NEAR(rates[2], 2e9, 1);
  // Reset: next snapshot is zero.
  auto again = rt.snapshot_rates_by_flow(sim::Time::ms(1));
  EXPECT_DOUBLE_EQ(again[1], 0.0);
  EXPECT_EQ(rt.total_bytes(), 375'000u);
}

}  // namespace
