#include <gtest/gtest.h>

#include "stats/recorder.hpp"

namespace {

using xpass::stats::Recorder;

TEST(Recorder, ScalarsPushAndPull) {
  Recorder r;
  r.set("a.pushed", 1.5);
  int calls = 0;
  r.gauge("b.gauge", [&] {
    ++calls;
    return 2.0 * calls;
  });
  EXPECT_FALSE(r.has("b.gauge"));  // not evaluated yet
  r.collect();
  EXPECT_DOUBLE_EQ(r.scalar("b.gauge"), 2.0);
  r.collect();  // gauges re-evaluate in place
  EXPECT_DOUBLE_EQ(r.scalar("b.gauge"), 4.0);
  EXPECT_DOUBLE_EQ(r.scalar("a.pushed"), 1.5);
  EXPECT_DOUBLE_EQ(r.scalar("missing"), 0.0);
}

TEST(Recorder, SeriesSampling) {
  Recorder r;
  double v = 10.0;
  r.series_gauge("q.bytes", [&] { return v; });
  r.sample_all(0.001);
  v = 20.0;
  r.sample_all(0.002);
  r.sample("manual", 0.5, 7.0);
  const auto& s = r.series().at("q.bytes");
  ASSERT_EQ(s.t_sec.size(), 2u);
  EXPECT_DOUBLE_EQ(s.t_sec[1], 0.002);
  EXPECT_DOUBLE_EQ(s.v[1], 20.0);
  EXPECT_EQ(r.series().at("manual").v.size(), 1u);
}

TEST(Recorder, DetachKeepsValuesDropsCallbacks) {
  Recorder r;
  int live = 0;
  r.gauge("g", [&] {
    ++live;
    return 42.0;
  });
  r.series_gauge("s", [&] { return 1.0; });
  r.sample_all(0.0);
  r.detach();  // evaluates gauges one last time, then forgets the callbacks
  EXPECT_EQ(live, 1);
  EXPECT_DOUBLE_EQ(r.scalar("g"), 42.0);
  r.collect();
  r.sample_all(1.0);  // no callbacks left: no new points
  EXPECT_EQ(live, 1);
  EXPECT_EQ(r.series().at("s").v.size(), 1u);

  // Movable after detach (the engine returns it inside ScenarioResult).
  Recorder moved = std::move(r);
  EXPECT_DOUBLE_EQ(moved.scalar("g"), 42.0);
}

TEST(Recorder, JsonShape) {
  Recorder r;
  r.set("b", 2.0);
  r.set("a", 1.0);
  r.sample("ts", 0.25, 3.0);
  const std::string json = r.to_json("unit \"test\"");
  EXPECT_NE(json.find("\"schema\": \"xpass.recorder.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"unit \\\"test\\\"\""),
            std::string::npos);
  // Lexicographic scalar order: "a" before "b".
  EXPECT_LT(json.find("\"a\":"), json.find("\"b\":"));
  EXPECT_NE(json.find("\"t_sec\": [0.25]"), std::string::npos);
  EXPECT_NE(json.find("\"v\": [3]"), std::string::npos);
}

TEST(Recorder, SeriesCsv) {
  Recorder r;
  r.sample("q", 0.5, 12.0);
  r.sample("q", 1.0, 13.0);
  EXPECT_EQ(r.series_csv("q"), "t_sec,value\n0.500000000,12\n1.000000000,13\n");
  EXPECT_EQ(r.series_csv("missing"), "");
}

}  // namespace
