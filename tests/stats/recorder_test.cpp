#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/recorder.hpp"

namespace {

using xpass::stats::Recorder;

TEST(Recorder, ScalarsPushAndPull) {
  Recorder r;
  r.set("a.pushed", 1.5);
  int calls = 0;
  r.gauge("b.gauge", [&] {
    ++calls;
    return 2.0 * calls;
  });
  EXPECT_FALSE(r.has("b.gauge"));  // not evaluated yet
  r.collect();
  EXPECT_DOUBLE_EQ(r.scalar("b.gauge"), 2.0);
  r.collect();  // gauges re-evaluate in place
  EXPECT_DOUBLE_EQ(r.scalar("b.gauge"), 4.0);
  EXPECT_DOUBLE_EQ(r.scalar("a.pushed"), 1.5);
  EXPECT_DOUBLE_EQ(r.scalar("missing"), 0.0);
}

TEST(Recorder, SeriesSampling) {
  Recorder r;
  double v = 10.0;
  r.series_gauge("q.bytes", [&] { return v; });
  r.sample_all(0.001);
  v = 20.0;
  r.sample_all(0.002);
  r.sample("manual", 0.5, 7.0);
  const auto& s = r.series().at("q.bytes");
  ASSERT_EQ(s.t_sec.size(), 2u);
  EXPECT_DOUBLE_EQ(s.t_sec[1], 0.002);
  EXPECT_DOUBLE_EQ(s.v[1], 20.0);
  EXPECT_EQ(r.series().at("manual").v.size(), 1u);
}

TEST(Recorder, DetachKeepsValuesDropsCallbacks) {
  Recorder r;
  int live = 0;
  r.gauge("g", [&] {
    ++live;
    return 42.0;
  });
  r.series_gauge("s", [&] { return 1.0; });
  r.sample_all(0.0);
  r.detach();  // evaluates gauges one last time, then forgets the callbacks
  EXPECT_EQ(live, 1);
  EXPECT_DOUBLE_EQ(r.scalar("g"), 42.0);
  r.collect();
  r.sample_all(1.0);  // no callbacks left: no new points
  EXPECT_EQ(live, 1);
  EXPECT_EQ(r.series().at("s").v.size(), 1u);

  // Movable after detach (the engine returns it inside ScenarioResult).
  Recorder moved = std::move(r);
  EXPECT_DOUBLE_EQ(moved.scalar("g"), 42.0);
}

TEST(Recorder, JsonShape) {
  Recorder r;
  r.set("b", 2.0);
  r.set("a", 1.0);
  r.sample("ts", 0.25, 3.0);
  const std::string json = r.to_json("unit \"test\"");
  EXPECT_NE(json.find("\"schema\": \"xpass.recorder.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"unit \\\"test\\\"\""),
            std::string::npos);
  // Lexicographic scalar order: "a" before "b".
  EXPECT_LT(json.find("\"a\":"), json.find("\"b\":"));
  EXPECT_NE(json.find("\"t_sec\": [0.25]"), std::string::npos);
  EXPECT_NE(json.find("\"v\": [3]"), std::string::npos);
}

TEST(Recorder, RejectsNonFiniteScalars) {
  Recorder r;
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  r.set("p", 1.0);
  r.set("p", kNan);  // refused: probe keeps its last good value
  r.set("p", kInf);
  r.set("p", -kInf);
  EXPECT_DOUBLE_EQ(r.scalar("p"), 1.0);
  r.set("fresh", kNan);  // refused before the probe ever existed
  EXPECT_FALSE(r.has("fresh"));
  EXPECT_EQ(r.rejected(), 4u);
}

TEST(Recorder, RejectsNonFiniteSamplesWholePoint) {
  Recorder r;
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  r.sample("s", 0.0, 1.0);
  r.sample("s", 0.1, kNan);          // bad value
  r.sample("s", kNan, 2.0);          // bad timestamp
  r.sample("never", kNan, kNan);     // refusal must not create the series
  const auto& s = r.series().at("s");
  ASSERT_EQ(s.t_sec.size(), 1u);  // t/v stay aligned: whole point dropped
  ASSERT_EQ(s.v.size(), 1u);
  EXPECT_EQ(r.series().count("never"), 0u);
  EXPECT_EQ(r.rejected(), 3u);
}

TEST(Recorder, RejectsNonFiniteGaugeReads) {
  Recorder r;
  double v = 3.0;
  r.gauge("g", [&] { return v; });
  r.series_gauge("sg", [&] { return v; });
  r.collect();
  r.sample_all(0.0);
  v = std::numeric_limits<double>::infinity();
  r.collect();        // refused: scalar keeps 3.0
  r.sample_all(1.0);  // refused: no second point
  EXPECT_DOUBLE_EQ(r.scalar("g"), 3.0);
  EXPECT_EQ(r.series().at("sg").v.size(), 1u);
  EXPECT_EQ(r.rejected(), 2u);
  // The JSON stays parseable — no bare nan/inf tokens ever reach it.
  const std::string json = r.to_json("nonfinite");
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Recorder, DuplicateProbeNames) {
  Recorder r;
  // Scalars: last push wins.
  r.set("dup", 1.0);
  r.set("dup", 2.0);
  EXPECT_DOUBLE_EQ(r.scalar("dup"), 2.0);
  // Gauges: re-registration replaces the callback.
  r.gauge("gdup", [] { return 10.0; });
  r.gauge("gdup", [] { return 20.0; });
  r.collect();
  EXPECT_DOUBLE_EQ(r.scalar("gdup"), 20.0);
  // A gauge sharing a scalar's name overwrites it at collect() time.
  r.set("gdup", 5.0);
  r.collect();
  EXPECT_DOUBLE_EQ(r.scalar("gdup"), 20.0);
  // Series gauges under one name both feed the same series, in
  // registration order: two points per sweep.
  r.series_gauge("sdup", [] { return 1.0; });
  r.series_gauge("sdup", [] { return 2.0; });
  r.sample_all(0.5);
  const auto& s = r.series().at("sdup");
  ASSERT_EQ(s.v.size(), 2u);
  EXPECT_DOUBLE_EQ(s.v[0], 1.0);
  EXPECT_DOUBLE_EQ(s.v[1], 2.0);
}

TEST(Recorder, EmptySeriesAndEmptyRecorderJson) {
  Recorder r;
  // A registered series gauge that never sampled produces no series entry.
  r.series_gauge("quiet", [] { return 0.0; });
  EXPECT_EQ(r.series().count("quiet"), 0u);
  const std::string empty = r.to_json("empty");
  EXPECT_NE(empty.find("\"schema\": \"xpass.recorder.v1\""),
            std::string::npos);
  EXPECT_NE(empty.find("\"scalars\""), std::string::npos);
  // CSV of a never-sampled series behaves like a missing one.
  EXPECT_EQ(r.series_csv("quiet"), "");
}

TEST(Recorder, SeriesCsv) {
  Recorder r;
  r.sample("q", 0.5, 12.0);
  r.sample("q", 1.0, 13.0);
  EXPECT_EQ(r.series_csv("q"), "t_sec,value\n0.500000000,12\n1.000000000,13\n");
  EXPECT_EQ(r.series_csv("missing"), "");
}

}  // namespace
