#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using xpass::sim::EventQueue;
using xpass::sim::Time;
using xpass::sim::TimerId;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::us(3), [&] { order.push_back(3); });
  q.schedule(Time::us(1), [&] { order.push_back(1); });
  q.schedule(Time::us(2), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Time::us(3));
}

TEST(EventQueue, EqualTimestampsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(Time::us(5), [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  TimerId id = q.schedule(Time::us(1), [&] { ++fired; });
  q.schedule(Time::us(2), [&] { ++fired; });
  q.cancel(id);
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  q.cancel(TimerId{});
  q.cancel(TimerId{12345});
  int fired = 0;
  q.schedule(Time::us(1), [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule(Time::us(1), [&] { ++fired; });
  q.schedule(Time::us(10), [&] { ++fired; });
  q.run_until(Time::us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Time::us(5));  // clock advances even with no event
  q.run_until(Time::us(20));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventAtBoundaryIncluded) {
  EventQueue q;
  int fired = 0;
  q.schedule(Time::us(5), [&] { ++fired; });
  q.run_until(Time::us(5));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) q.schedule(q.now() + Time::us(1), step);
  };
  q.schedule(Time::zero(), step);
  q.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(q.now(), Time::us(4));
}

TEST(EventQueue, PendingCountsLiveEvents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  TimerId a = q.schedule(Time::us(1), [] {});
  q.schedule(Time::us(2), [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 2u);  // lazily reclaimed
  q.run();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StepReturnsFalseWhenExhausted) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule(Time::us(1), [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, CancelDuringExecutionOfEarlierEvent) {
  EventQueue q;
  int fired = 0;
  TimerId later{};
  later = q.schedule(Time::us(2), [&] { ++fired; });
  q.schedule(Time::us(1), [&] { q.cancel(later); });
  q.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
